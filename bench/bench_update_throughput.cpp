// Figure 12 (plus §6.2 text): insertion throughput (edges/second) for
// batch sizes on every graph, for Terrace / Aspen / PaC-tree / LSGraph.
// Also reports deletion throughput and a small-batch (size 10) round, both
// discussed in §6.2's prose.
//
// Expected shape: LSGraph highest everywhere; Terrace flattens or degrades
// as batches grow (shared-PMA movement); Aspen/PaC-tree improve with batch
// size but stay below LSGraph; Terrace is skipped on FR as in the paper.
#include <cstdio>

#include "bench/common.h"

namespace lsg {
namespace bench {
namespace {

struct Row {
  std::string system;
  uint64_t batch;
  double insert_tput;
  double delete_tput;
};

template <typename G>
void RunSystem(const char* name, G& g, const DatasetSpec& spec,
               std::vector<Row>* rows, BenchReporter& reporter) {
  auto round = [&](uint64_t batch_size, uint64_t trial) {
    std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, trial);
    InsertDeleteTiming t = TimeInsertDeleteRound(g, batch);
    double ins = Throughput(batch_size, t.insert_seconds);
    double del = Throughput(t.deleted_edges, t.delete_seconds);
    rows->push_back(Row{name, batch_size, ins, del});
    reporter.Add({.dataset = spec.name,
                  .engine = name,
                  .metric = "insert_throughput",
                  .value = ins,
                  .unit = "edges/s",
                  .batch_size = static_cast<int64_t>(batch_size)});
    reporter.Add({.dataset = spec.name,
                  .engine = name,
                  .metric = "delete_throughput",
                  .value = del,
                  .unit = "edges/s",
                  .batch_size = static_cast<int64_t>(batch_size)});
  };
  for (uint64_t batch_size : BatchSizes()) {
    round(batch_size, /*trial=*/0);
  }
  // Small-batch round (batch size 10, §6.2 text).
  round(10, /*trial=*/1);
}

// Phase breakdown for the shared ingestion pipeline (sort / group / apply,
// each in edges-per-second of the full batch) so future changes can see
// which stage moves. Uses the engine's PrepareBatch + InsertPrepared split;
// the inserted edges are removed afterwards so the snapshot is unchanged.
template <typename G>
void RunPhaseBreakdown(const char* name, G& g, const DatasetSpec& spec,
                       ThreadPool& pool, BenchReporter& reporter) {
  std::printf("\n%s InsertBatch phase breakdown (edges/s):\n", name);
  std::printf("%12s %14s %14s %14s\n", "batch", "sort", "group", "apply");
  for (uint64_t batch_size : BatchSizes()) {
    std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, /*trial=*/2);
    std::vector<Edge> fresh(batch);
    ParallelSortEdges(fresh, pool);
    std::erase_if(fresh,
                  [&g](const Edge& e) { return g.HasEdge(e.src, e.dst); });
    PrepareStats stats;
    PreparedBatch pb = PrepareBatch(std::move(batch), pool, &stats);
    Timer timer;
    g.InsertPrepared(pb);
    double apply_s = timer.Seconds();
    g.DeleteBatch(fresh);
    double sort_tput = Throughput(batch_size, stats.sort_seconds);
    double group_tput = Throughput(batch_size, stats.group_seconds);
    double apply_tput = Throughput(batch_size, apply_s);
    std::printf("%12llu %14.3e %14.3e %14.3e\n",
                static_cast<unsigned long long>(batch_size), sort_tput,
                group_tput, apply_tput);
    auto add_phase = [&](const char* phase, double value) {
      reporter.Add({.dataset = spec.name,
                    .engine = name,
                    .metric = std::string("phase_") + phase + "_throughput",
                    .value = value,
                    .unit = "edges/s",
                    .batch_size = static_cast<int64_t>(batch_size)});
    };
    add_phase("sort", sort_tput);
    add_phase("group", group_tput);
    add_phase("apply", apply_tput);
  }
}

void RunDataset(const DatasetSpec& spec, ThreadPool& pool,
                BenchReporter& reporter) {
  std::printf("\n--- %s (|V|=%u) ---\n", spec.name.c_str(),
              NumVerticesFor(spec));
  std::vector<Row> rows;
  {
    auto g = MakeLsGraph(spec, &pool);
    RunSystem("LSGraph", *g, spec, &rows, reporter);
    RunPhaseBreakdown("LSGraph", *g, spec, pool, reporter);
    reporter.AddCoreStats(spec.name, "LSGraph", g->stats());
  }
  // Terrace on the largest graph is omitted, as in the paper ("throughputs
  // of the FR graph for Terrace are omitted because of time constraints").
  if (spec.name != "FR") {
    auto g = MakeTerrace(spec, &pool);
    RunSystem("Terrace", *g, spec, &rows, reporter);
  }
  {
    auto g = MakeAspen(spec, &pool);
    RunSystem("Aspen", *g, spec, &rows, reporter);
  }
  {
    auto g = MakePacTree(spec, &pool);
    RunSystem("PaC-tree", *g, spec, &rows, reporter);
  }

  std::printf("%-9s %12s %16s %16s\n", "system", "batch", "insert(e/s)",
              "delete(e/s)");
  for (const Row& r : rows) {
    std::printf("%-9s %12llu %16.3e %16.3e\n", r.system.c_str(),
                static_cast<unsigned long long>(r.batch), r.insert_tput,
                r.delete_tput);
  }
  // Speedup summary at the largest batch (the headline comparison).
  uint64_t big = BatchSizes().back();
  auto find = [&rows, big](const std::string& name) -> const Row* {
    for (const Row& r : rows) {
      if (r.system == name && r.batch == big) {
        return &r;
      }
    }
    return nullptr;
  };
  const Row* ls = find("LSGraph");
  for (const char* other : {"Terrace", "Aspen", "PaC-tree"}) {
    const Row* r = find(other);
    if (ls != nullptr && r != nullptr && r->insert_tput > 0) {
      std::printf("speedup vs %-9s at batch %llu: insert %.2fx delete %.2fx\n",
                  other, static_cast<unsigned long long>(big),
                  ls->insert_tput / r->insert_tput,
                  ls->delete_tput / r->delete_tput);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Fig. 12: update throughput vs batch size (4 systems, 5 graphs)");
  BenchReporter reporter("update_throughput");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    RunDataset(spec, pool, reporter);
  }
  return reporter.Write() ? 0 : 1;
}
