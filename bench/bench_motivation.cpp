// Figure 3 (motivation study): the update/analytics tension in prior work.
//   (a) BFS time of Aspen normalized to Terrace on each graph — Terrace
//       (array-based) should win analytics by 2-3.5x.
//   (b) Insertion throughput for growing batch sizes on OR — Aspen should
//       overtake Terrace decisively at large batches.
#include <cstdio>

#include "bench/common.h"
#include "src/analytics/bfs.h"

namespace lsg {
namespace bench {
namespace {

void FigureA(ThreadPool& pool, BenchReporter& reporter) {
  std::printf("\nFig. 3(a): BFS time normalized to Terrace\n");
  for (const DatasetSpec& spec : BenchDatasets()) {
    if (spec.name == "FR") {
      continue;
    }
    double terrace_s;
    double aspen_s;
    VertexId source = 0;
    {
      auto g = MakeTerrace(spec, &pool);
      for (VertexId v = 0; v < g->num_vertices(); ++v) {
        if (g->degree(v) > g->degree(source)) {
          source = v;
        }
      }
      (void)Bfs(*g, source, pool);  // warmup: offset rebuild + caches
      Timer timer;
      (void)Bfs(*g, source, pool);
      terrace_s = timer.Seconds();
    }
    {
      auto g = MakeAspen(spec, &pool);
      (void)Bfs(*g, source, pool);  // warmup
      Timer timer;
      (void)Bfs(*g, source, pool);
      aspen_s = timer.Seconds();
    }
    std::printf("%-4s Terrace 1.00x  Aspen %.2fx\n", spec.name.c_str(),
                terrace_s > 0 ? aspen_s / terrace_s : 0.0);
    reporter.Add({.dataset = spec.name,
                  .engine = "Terrace",
                  .metric = "bfs_time",
                  .value = terrace_s,
                  .unit = "s"});
    reporter.Add({.dataset = spec.name,
                  .engine = "Aspen",
                  .metric = "bfs_time",
                  .value = aspen_s,
                  .unit = "s"});
  }
}

void FigureB(ThreadPool& pool, BenchReporter& reporter) {
  std::printf("\nFig. 3(b): insertion throughput on OR (edges/s)\n");
  DatasetSpec spec;
  for (const DatasetSpec& s : BenchDatasets()) {
    if (s.name == "OR") {
      spec = s;
    }
  }
  std::printf("%-9s", "batch");
  for (uint64_t b : BatchSizes()) {
    std::printf(" %12llu", static_cast<unsigned long long>(b));
  }
  std::printf("\n");
  auto run = [&](const char* name, auto factory) {
    std::printf("%-9s", name);
    auto g = factory(&pool);
    for (uint64_t batch_size : BatchSizes()) {
      std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, 0);
      InsertDeleteTiming t = TimeInsertDeleteRound(*g, batch);
      double ins = Throughput(batch_size, t.insert_seconds);
      std::printf(" %12.3e", ins);
      std::fflush(stdout);
      reporter.Add({.dataset = spec.name,
                    .engine = name,
                    .metric = "insert_throughput",
                    .value = ins,
                    .unit = "edges/s",
                    .batch_size = static_cast<int64_t>(batch_size)});
    }
    std::printf("\n");
  };
  run("Terrace", [&](ThreadPool* p) { return MakeTerrace(spec, p); });
  run("Aspen", [&](ThreadPool* p) { return MakeAspen(spec, p); });
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Fig. 3: motivation — Terrace vs Aspen trade-off");
  BenchReporter reporter("motivation");
  ThreadPool pool;
  FigureA(pool, reporter);
  FigureB(pool, reporter);
  return reporter.Write() ? 0 : 1;
}
