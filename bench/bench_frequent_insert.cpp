// Figure 16: scenarios with frequent insertions. Five consecutive large
// batches are inserted into LSGraph on OR (no interleaved deletions), per
// (α, M) configuration; reported is the mean per-batch time.
//
// Expected shape: performance degrades as more structures sit at their RIA
// movement bound, most sharply at small α; HITree's vertical movement keeps
// the degradation bounded (larger M = fewer HITrees = worse here).
#include <cstdio>

#include "bench/common.h"

namespace lsg {
namespace bench {
namespace {

const double kAlphas[] = {1.1, 1.2, 1.5, 2.0};

std::vector<uint32_t> MThresholds() {
  if (BenchScale() == Scale::kFull) {
    return {1 << 12, 1 << 14, 1 << 16};
  }
  return {1 << 8, 1 << 10, 1 << 12, 1 << 14};
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Fig. 16: five consecutive large inserts on OR");
  BenchReporter reporter("frequent_insert");
  ThreadPool pool;
  DatasetSpec spec;
  for (const DatasetSpec& s : BenchDatasets()) {
    if (s.name == "OR") {
      spec = s;
    }
  }
  uint64_t batch_size = LargeBatch();
  for (double alpha : kAlphas) {
    for (uint32_t m : MThresholds()) {
      Options options;
      options.alpha = alpha;
      options.m_threshold = m;
      auto g = MakeLsGraph(spec, &pool, options);
      double total = 0.0;
      for (uint64_t round = 0; round < 5; ++round) {
        std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, round);
        Timer timer;
        g->InsertBatch(batch);
        total += timer.Seconds();
      }
      std::printf(
          "alpha=%.1f M=2^%-2d  mean per-batch insert %8.3fs  "
          "(RIA->HITree conversions %llu, expansions %llu, verticals %llu)\n",
          alpha, 31 - __builtin_clz(m), total / 5,
          static_cast<unsigned long long>(
              g->stats().ria_to_hitree_conversions.load()),
          static_cast<unsigned long long>(g->stats().ria_expansions.load()),
          static_cast<unsigned long long>(
              g->stats().lia_child_creations.load()));
      char params[48];
      std::snprintf(params, sizeof(params), "alpha=%.1f M=%u", alpha, m);
      reporter.Add({.dataset = spec.name,
                    .engine = "LSGraph",
                    .metric = "mean_insert_time",
                    .value = total / 5,
                    .unit = "s",
                    .batch_size = static_cast<int64_t>(batch_size),
                    .params = params});
      reporter.AddCoreStats(spec.name, "LSGraph", g->stats(), params);
    }
  }
  return reporter.Write() ? 0 : 1;
}
