// Figure 13 and Table 2: graph analytics performance across systems.
//   Fig. 13 — BFS and BC running time normalized to LSGraph.
//   Table 2 — absolute PR / CC / TC times for LSGraph vs Terrace, plus TC's
//             traversal-time share (Tra/L).
// Fig. 3(a)'s motivation plot (Terrace vs Aspen on BFS) falls out of the
// same rows.
//
// Expected shape: LSGraph fastest; Terrace close on BFS/BC, behind on PR/TC;
// Aspen/PaC-tree clearly slower on traversal-bound kernels.
#include <cstdio>

#include "bench/common.h"
#include "src/analytics/bc.h"
#include "src/analytics/bfs.h"
#include "src/analytics/cc.h"
#include "src/analytics/pagerank.h"
#include "src/analytics/tc.h"

namespace lsg {
namespace bench {
namespace {

struct KernelTimes {
  double bfs = 0;
  double bc = 0;
  double pr = 0;
  double cc = 0;
  double tc = 0;
  double tc_traversal = 0;
  bool has_tc = false;
};

template <typename G>
KernelTimes RunKernels(const G& g, VertexId source, ThreadPool& pool,
                       bool run_tc, bool stage_tc_arrays = true) {
  KernelTimes t;
  (void)Bfs(g, source, pool);  // warmup: lazy indexes + caches
  Timer timer;
  (void)Bfs(g, source, pool);
  t.bfs = timer.Seconds();
  timer.Reset();
  (void)BetweennessCentrality(g, source, pool);
  t.bc = timer.Seconds();
  timer.Reset();
  (void)PageRank(g, pool);
  t.pr = timer.Seconds();
  timer.Reset();
  (void)ConnectedComponents(g, pool);
  t.cc = timer.Seconds();
  if (run_tc) {
    timer.Reset();
    // LSGraph stages adjacency into arrays first (§6.3); Terrace intersects
    // by re-traversing its structures.
    TriangleCountResult tc = stage_tc_arrays ? TriangleCount(g, pool)
                                             : TriangleCountDirect(g, pool);
    t.tc = timer.Seconds();
    t.tc_traversal = tc.traversal_seconds;
    t.has_tc = true;
  }
  return t;
}

void ReportKernels(BenchReporter& reporter, const std::string& dataset,
                   const char* engine, const KernelTimes& t) {
  auto add = [&](const char* metric, double value) {
    reporter.Add({.dataset = dataset,
                  .engine = engine,
                  .metric = metric,
                  .value = value,
                  .unit = "s"});
  };
  add("bfs_time", t.bfs);
  add("bc_time", t.bc);
  add("pagerank_time", t.pr);
  add("cc_time", t.cc);
  if (t.has_tc) {
    add("tc_time", t.tc);
    add("tc_traversal_time", t.tc_traversal);
  }
}

void RunDataset(const DatasetSpec& spec, ThreadPool& pool,
                BenchReporter& reporter) {
  // TC is reported for LJ/OR/RM/TW (Table 2 has no FR row).
  bool run_tc = spec.name != "FR";
  VertexId source = 0;

  KernelTimes ls;
  KernelTimes terrace;
  KernelTimes aspen;
  KernelTimes pactree;
  {
    auto g = MakeLsGraph(spec, &pool);
    // Pick a high-degree source so BFS/BC cover the graph.
    for (VertexId v = 0; v < g->num_vertices(); ++v) {
      if (g->degree(v) > g->degree(source)) {
        source = v;
      }
    }
    ls = RunKernels(*g, source, pool, run_tc);
  }
  {
    auto g = MakeTerrace(spec, &pool);
    terrace = RunKernels(*g, source, pool, run_tc, /*stage_tc_arrays=*/false);
  }
  {
    auto g = MakeAspen(spec, &pool);
    aspen = RunKernels(*g, source, pool, /*run_tc=*/false);
  }
  {
    auto g = MakePacTree(spec, &pool);
    pactree = RunKernels(*g, source, pool, /*run_tc=*/false);
  }
  ReportKernels(reporter, spec.name, "LSGraph", ls);
  ReportKernels(reporter, spec.name, "Terrace", terrace);
  ReportKernels(reporter, spec.name, "Aspen", aspen);
  ReportKernels(reporter, spec.name, "PaC-tree", pactree);

  std::printf("\n--- %s ---\n", spec.name.c_str());
  std::printf("Fig.13 rows (time in s; x = normalized to LSGraph)\n");
  auto row = [](const char* name, double bfs, double bc, double ls_bfs,
                double ls_bc) {
    std::printf("%-9s BFS %.4fs (%.2fx)   BC %.4fs (%.2fx)\n", name, bfs,
                ls_bfs > 0 ? bfs / ls_bfs : 0.0, bc,
                ls_bc > 0 ? bc / ls_bc : 0.0);
  };
  row("LSGraph", ls.bfs, ls.bc, ls.bfs, ls.bc);
  row("Terrace", terrace.bfs, terrace.bc, ls.bfs, ls.bc);
  row("Aspen", aspen.bfs, aspen.bc, ls.bfs, ls.bc);
  row("PaC-tree", pactree.bfs, pactree.bc, ls.bfs, ls.bc);
  std::printf("Fig.3(a) motivation: Terrace/Aspen BFS ratio = %.2fx\n",
              terrace.bfs > 0 ? aspen.bfs / terrace.bfs : 0.0);

  std::printf("Table 2 row: PR  LSGraph %.4fs Terrace %.4fs (T/L %.2f)\n",
              ls.pr, terrace.pr, ls.pr > 0 ? terrace.pr / ls.pr : 0.0);
  std::printf("Table 2 row: CC  LSGraph %.4fs Terrace %.4fs (T/L %.2f)\n",
              ls.cc, terrace.cc, ls.cc > 0 ? terrace.cc / ls.cc : 0.0);
  if (ls.has_tc) {
    std::printf(
        "Table 2 row: TC  LSGraph %.4fs (traversal %.4fs, Tra/L %.2f%%) "
        "Terrace %.4fs (T/L %.2f)\n",
        ls.tc, ls.tc_traversal,
        ls.tc > 0 ? 100.0 * ls.tc_traversal / ls.tc : 0.0, terrace.tc,
        ls.tc > 0 ? terrace.tc / ls.tc : 0.0);
  }
}

// Direction-optimization study (§6.3): push-only vs auto (Beamer) BFS on the
// same graph, plus the pull scan's early-exit effectiveness — neighbors
// actually decoded as a share of the degree sum the scan covered. Auto must
// not lose to push-only; on dense levels the decoded share sits well under
// 100% because a claimed vertex stops decoding immediately.
void RunDirectionStudy(const DatasetSpec& spec, ThreadPool& pool,
                       BenchReporter& reporter) {
  auto g = MakeLsGraph(spec, &pool);
  VertexId source = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    if (g->degree(v) > g->degree(source)) {
      source = v;
    }
  }

  (void)BfsPush(*g, source, pool);  // warmup
  Timer timer;
  (void)BfsPush(*g, source, pool);
  double push_s = timer.Seconds();

  CoreStats stats;
  EdgeMapOptions auto_options;
  auto_options.stats = &stats;
  (void)Bfs(*g, source, pool, auto_options);  // warmup
  stats.Clear();
  timer.Reset();
  (void)Bfs(*g, source, pool, auto_options);
  double auto_s = timer.Seconds();

  uint64_t decoded = stats.pull_neighbors_decoded.load();
  uint64_t degree = stats.pull_degree_scanned.load();
  std::printf(
      "%-4s BFS push %.4fs  auto %.4fs (%.2fx)  rounds push/pull %llu/%llu  "
      "decoded/degree %.1f%%  early-exits %llu\n",
      spec.name.c_str(), push_s, auto_s, auto_s > 0 ? push_s / auto_s : 0.0,
      static_cast<unsigned long long>(stats.edgemap_push_rounds.load()),
      static_cast<unsigned long long>(stats.edgemap_pull_rounds.load()),
      degree > 0 ? 100.0 * decoded / degree : 0.0,
      static_cast<unsigned long long>(stats.pull_early_exits.load()));
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "bfs_push_time",
                .value = push_s,
                .unit = "s"});
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "bfs_auto_time",
                .value = auto_s,
                .unit = "s"});
  if (degree > 0) {
    reporter.Add({.dataset = spec.name,
                  .engine = "LSGraph",
                  .metric = "pull_decoded_share",
                  .value = 100.0 * decoded / degree,
                  .unit = "%"});
  }
  reporter.AddCoreStats(spec.name, "LSGraph", stats, "study=direction");

  // Frontier prep: the cached parallel EdgeSum vs a serial degree loop over
  // the same frontier. This is the regression guard for the old serial
  // summation — prep must scale O(|frontier|/P), so the parallel path should
  // not be slower than serial outside of noise on small inputs.
  std::vector<VertexId> ids(g->num_vertices());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    ids[v] = v;
  }
  VertexSubset frontier =
      VertexSubset::FromVertices(g->num_vertices(), std::move(ids));
  timer.Reset();
  uint64_t par_sum = frontier.EdgeSum(*g, pool);
  double par_s = timer.Seconds();
  timer.Reset();
  uint64_t ser_sum = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    ser_sum += g->degree(v);
  }
  double ser_s = timer.Seconds();
  if (par_sum != ser_sum) {
    std::printf("     EdgeSum MISMATCH parallel %llu vs serial %llu\n",
                static_cast<unsigned long long>(par_sum),
                static_cast<unsigned long long>(ser_sum));
    std::abort();
  }
  std::printf("     frontier prep (EdgeSum, |F|=%u): parallel %.5fs  "
              "serial %.5fs  speedup %.2fx\n",
              g->num_vertices(), par_s, ser_s,
              par_s > 0 ? ser_s / par_s : 0.0);
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "edgesum_parallel_time",
                .value = par_s,
                .unit = "s"});
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "edgesum_serial_time",
                .value = ser_s,
                .unit = "s"});
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader(
      "Fig. 13 + Table 2 (+ Fig. 3a): analytics across the four systems");
  BenchReporter reporter("analytics");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    RunDataset(spec, pool, reporter);
  }
  std::printf("\n--- Direction optimization (push vs auto) + pull early exit "
              "---\n");
  for (const DatasetSpec& spec : BenchDatasets()) {
    RunDirectionStudy(spec, pool, reporter);
  }
  return reporter.Write() ? 0 : 1;
}
