// Shared benchmark harness: dataset construction, engine factories, timing,
// and table printing for the per-figure experiment binaries.
//
// Scaling: the paper ran on a 64-core, 1 TB machine with billion-edge
// graphs. These binaries default to laptop-scale proxies (see DESIGN.md §3)
// and honor LSG_BENCH_SCALE={tiny,small,full} to shrink or enlarge every
// experiment proportionally. Shapes (who wins, crossovers) are scale-stable;
// absolute numbers are not comparable to the paper's testbed.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/ctree_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "src/parallel/thread_pool.h"
#include "src/util/sort.h"
#include "src/util/timer.h"

namespace lsg {
namespace bench {

enum class Scale { kTiny, kSmall, kFull };

inline Scale BenchScale() {
  const char* env = std::getenv("LSG_BENCH_SCALE");
  if (env == nullptr) {
    return Scale::kSmall;
  }
  if (std::strcmp(env, "tiny") == 0) {
    return Scale::kTiny;
  }
  if (std::strcmp(env, "full") == 0) {
    return Scale::kFull;
  }
  return Scale::kSmall;
}

// Paper datasets with scale-dependent shrink applied to vertex counts.
inline std::vector<DatasetSpec> BenchDatasets() {
  std::vector<DatasetSpec> specs = PaperDatasets();
  int shrink;
  switch (BenchScale()) {
    case Scale::kTiny:
      shrink = 5;
      break;
    case Scale::kSmall:
      shrink = 2;
      break;
    case Scale::kFull:
      shrink = 0;
      break;
  }
  for (DatasetSpec& s : specs) {
    s.scale -= shrink;
  }
  return specs;
}

// Update batch sizes swept by Fig. 12 (paper: 1e4..1e8; scaled down here).
inline std::vector<uint64_t> BatchSizes() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return {1000, 10000, 100000};
    case Scale::kSmall:
      return {1000, 10000, 100000, 1000000};
    case Scale::kFull:
      return {10000, 100000, 1000000, 10000000, 100000000};
  }
  return {};
}

// The "large batch" used by Figs. 14/16 (paper: 1e8).
inline uint64_t LargeBatch() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return 100000;
    case Scale::kSmall:
      return 1000000;
    case Scale::kFull:
      return 100000000;
  }
  return 0;
}

inline VertexId NumVerticesFor(const DatasetSpec& spec) {
  return VertexId{1} << spec.scale;
}

// ---- Engine factories keyed by name, so harnesses can loop systems. ----

struct Engines {
  std::unique_ptr<LSGraph> lsgraph;
  std::unique_ptr<TerraceGraph> terrace;
  std::unique_ptr<AspenGraph> aspen;
  std::unique_ptr<PacTreeGraph> pactree;
};

inline std::unique_ptr<LSGraph> MakeLsGraph(const DatasetSpec& spec,
                                            ThreadPool* pool,
                                            Options options = {}) {
  auto g = std::make_unique<LSGraph>(NumVerticesFor(spec), options, pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

inline std::unique_ptr<TerraceGraph> MakeTerrace(const DatasetSpec& spec,
                                                 ThreadPool* pool) {
  auto g = std::make_unique<TerraceGraph>(NumVerticesFor(spec),
                                          TerraceOptions{}, pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

inline std::unique_ptr<AspenGraph> MakeAspen(const DatasetSpec& spec,
                                             ThreadPool* pool) {
  auto g = std::make_unique<AspenGraph>(NumVerticesFor(spec), pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

inline std::unique_ptr<PacTreeGraph> MakePacTree(const DatasetSpec& spec,
                                                 ThreadPool* pool) {
  auto g = std::make_unique<PacTreeGraph>(NumVerticesFor(spec), pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

// Times one insert-then-delete round (the paper's §6.2 protocol: a batch is
// inserted and subsequently deleted so the snapshot is unchanged between
// rounds). Only the genuinely-new edges are deleted, computed outside the
// timed region, so base-graph edges survive. Returns
// {insert_seconds, delete_seconds}.
template <typename G>
std::pair<double, double> TimeInsertDeleteRound(G& g,
                                                const std::vector<Edge>& batch) {
  std::vector<Edge> fresh(batch.begin(), batch.end());
  ParallelSortEdges(fresh, ThreadPool::Global());
  std::erase_if(fresh, [&g](const Edge& e) { return g.HasEdge(e.src, e.dst); });

  Timer timer;
  g.InsertBatch(batch);
  double insert_s = timer.Seconds();
  timer.Reset();
  g.DeleteBatch(fresh);
  double delete_s = timer.Seconds();
  return {insert_s, delete_s};
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale=%s (set LSG_BENCH_SCALE=tiny|small|full)\n",
              BenchScale() == Scale::kTiny    ? "tiny"
              : BenchScale() == Scale::kSmall ? "small"
                                              : "full");
  std::printf("================================================================\n");
}

inline double Throughput(uint64_t edges, double seconds) {
  return seconds > 0 ? static_cast<double>(edges) / seconds : 0.0;
}

}  // namespace bench
}  // namespace lsg

#endif  // BENCH_COMMON_H_
