// Shared benchmark harness: dataset construction, engine factories, timing,
// and table printing for the per-figure experiment binaries.
//
// Scaling: the paper ran on a 64-core, 1 TB machine with billion-edge
// graphs. These binaries default to laptop-scale proxies (see DESIGN.md §3)
// and honor LSG_BENCH_SCALE={tiny,small,full} to shrink or enlarge every
// experiment proportionally. Shapes (who wins, crossovers) are scale-stable;
// absolute numbers are not comparable to the paper's testbed.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/ctree_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "src/parallel/thread_pool.h"
#include "src/util/metrics.h"
#include "src/util/sort.h"
#include "src/util/timer.h"

namespace lsg {
namespace bench {

enum class Scale { kTiny, kSmall, kFull };

inline Scale BenchScale() {
  const char* env = std::getenv("LSG_BENCH_SCALE");
  if (env == nullptr) {
    return Scale::kSmall;
  }
  if (std::strcmp(env, "tiny") == 0) {
    return Scale::kTiny;
  }
  if (std::strcmp(env, "full") == 0) {
    return Scale::kFull;
  }
  return Scale::kSmall;
}

inline const char* BenchScaleName() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kSmall:
      return "small";
    case Scale::kFull:
      return "full";
  }
  return "small";
}

// Paper datasets with scale-dependent shrink applied to vertex counts.
inline std::vector<DatasetSpec> BenchDatasets() {
  std::vector<DatasetSpec> specs = PaperDatasets();
  int shrink = 0;
  switch (BenchScale()) {
    case Scale::kTiny:
      shrink = 5;
      break;
    case Scale::kSmall:
      shrink = 2;
      break;
    case Scale::kFull:
      shrink = 0;
      break;
  }
  for (DatasetSpec& s : specs) {
    s.scale -= shrink;
  }
  return specs;
}

// Update batch sizes swept by Fig. 12 (paper: 1e4..1e8; scaled down here).
inline std::vector<uint64_t> BatchSizes() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return {1000, 10000, 100000};
    case Scale::kSmall:
      return {1000, 10000, 100000, 1000000};
    case Scale::kFull:
      return {10000, 100000, 1000000, 10000000, 100000000};
  }
  return {};
}

// The "large batch" used by Figs. 14/16 (paper: 1e8).
inline uint64_t LargeBatch() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return 100000;
    case Scale::kSmall:
      return 1000000;
    case Scale::kFull:
      return 100000000;
  }
  return 0;
}

inline VertexId NumVerticesFor(const DatasetSpec& spec) {
  return VertexId{1} << spec.scale;
}

// ---- Engine factories keyed by name, so harnesses can loop systems. ----

struct Engines {
  std::unique_ptr<LSGraph> lsgraph;
  std::unique_ptr<TerraceGraph> terrace;
  std::unique_ptr<AspenGraph> aspen;
  std::unique_ptr<PacTreeGraph> pactree;
};

inline std::unique_ptr<LSGraph> MakeLsGraph(const DatasetSpec& spec,
                                            ThreadPool* pool,
                                            Options options = {}) {
  auto g = std::make_unique<LSGraph>(NumVerticesFor(spec), options, pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

inline std::unique_ptr<TerraceGraph> MakeTerrace(const DatasetSpec& spec,
                                                 ThreadPool* pool) {
  auto g = std::make_unique<TerraceGraph>(NumVerticesFor(spec),
                                          TerraceOptions{}, pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

inline std::unique_ptr<AspenGraph> MakeAspen(const DatasetSpec& spec,
                                             ThreadPool* pool) {
  auto g = std::make_unique<AspenGraph>(NumVerticesFor(spec), pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

inline std::unique_ptr<PacTreeGraph> MakePacTree(const DatasetSpec& spec,
                                                 ThreadPool* pool) {
  auto g = std::make_unique<PacTreeGraph>(NumVerticesFor(spec), pool);
  g->BuildFromEdges(BuildDatasetEdges(spec));
  return g;
}

// Result of one insert-then-delete round. `deleted_edges` is the number of
// genuinely-new edges the delete phase removed (fresh.size()) — NOT the raw
// batch size: duplicates and already-present edges never get deleted, so
// dividing the batch size by delete_seconds would inflate delete throughput.
struct InsertDeleteTiming {
  double insert_seconds = 0.0;
  double delete_seconds = 0.0;
  uint64_t deleted_edges = 0;
};

// Times one insert-then-delete round (the paper's §6.2 protocol: a batch is
// inserted and subsequently deleted so the snapshot is unchanged between
// rounds). Only the genuinely-new edges are deleted, computed outside the
// timed region, so base-graph edges survive.
template <typename G>
InsertDeleteTiming TimeInsertDeleteRound(G& g, const std::vector<Edge>& batch) {
  std::vector<Edge> fresh(batch.begin(), batch.end());
  ParallelSortEdges(fresh, ThreadPool::Global());
  std::erase_if(fresh, [&g](const Edge& e) { return g.HasEdge(e.src, e.dst); });

  InsertDeleteTiming t;
  t.deleted_edges = fresh.size();
  Timer timer;
  g.InsertBatch(batch);
  t.insert_seconds = timer.Seconds();
  timer.Reset();
  g.DeleteBatch(fresh);
  t.delete_seconds = timer.Seconds();
  return t;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale=%s (set LSG_BENCH_SCALE=tiny|small|full)\n",
              BenchScale() == Scale::kTiny    ? "tiny"
              : BenchScale() == Scale::kSmall ? "small"
                                              : "full");
  std::printf("================================================================\n");
}

// Edges per second, or NaN when the timer read <= 0 s (a sub-resolution
// run). The old 0.0 sentinel was indistinguishable from "infinitely slow"
// and would register as a total regression in the telemetry JSON;
// BenchReporter::Add drops non-finite rows instead (printf tables show
// "nan", which is at least honest).
inline double Throughput(uint64_t edges, double seconds) {
  return seconds > 0 ? static_cast<double>(edges) / seconds
                     : std::numeric_limits<double>::quiet_NaN();
}

// ---- Telemetry sink (machine-readable mirror of the printf tables). ----
//
// Every bench binary owns one BenchReporter and routes each printed number
// through Add (or AddCoreStats) as well. On Write() — or destruction, as a
// backstop — the accumulated grid is serialized to
// $LSG_BENCH_OUT/BENCH_<experiment>.json (default: the working directory).
// See src/util/metrics.h for the row schema and DESIGN.md §10 for the
// comparison workflow.
class BenchReporter {
 public:
  explicit BenchReporter(std::string experiment)
      : registry_(std::move(experiment), BenchScaleName()) {}

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  ~BenchReporter() {
    if (!written_) {
      Write();
    }
  }

  void Add(MetricRow row) { registry_.Add(std::move(row)); }

  void AddCoreStats(const std::string& dataset, const std::string& engine,
                    const CoreStats& stats, const std::string& params = "") {
    registry_.AddCoreStats(dataset, engine, stats, params);
  }

  const MetricRegistry& registry() const { return registry_; }

  // Output file path: $LSG_BENCH_OUT/BENCH_<experiment>.json.
  std::string OutputPath() const {
    const char* dir = std::getenv("LSG_BENCH_OUT");
    std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
    if (path.back() != '/') {
      path.push_back('/');
    }
    return path + "BENCH_" + registry_.experiment() + ".json";
  }

  // Serializes and writes the document; announces the path on stdout so a
  // human run shows where the machine-readable copy went.
  bool Write() {
    written_ = true;
    std::string path = OutputPath();
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "BenchReporter: cannot write %s\n", path.c_str());
      return false;
    }
    out << JsonWrite(registry_.ToJson());
    out.close();
    std::printf("\n[telemetry] %zu rows -> %s\n", registry_.num_rows(),
                path.c_str());
    return static_cast<bool>(out);
  }

 private:
  MetricRegistry registry_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace lsg

#endif  // BENCH_COMMON_H_
