// Table 3: memory usage of the four systems per graph, the ratio of
// Terrace's footprint to LSGraph's (T/L), and LSGraph's index overhead (I/L:
// RIA index arrays + LIA models/metadata as a share of total footprint).
//
// Expected shape: Terrace ~2-3x LSGraph (PMA density 0.125-0.25 vs α=1.2);
// Aspen/PaC-tree below LSGraph (compressed chunks); I/L a few percent.
//
// Second table: the compressed-leaf study. One dense rMat per scale is
// built twice — raw leaves vs compress_leaves — and we report resident
// adjacency tail bytes, bytes/tail-edge, the compression ratio, and BFS /
// PageRank wall time in both modes (the decode-while-scan overhead). The
// bytes basis is adjacency tails only: inline VertexBlock ids are identical
// in both modes and would dilute the ratio with a constant.
#include <cstdio>

#include "bench/common.h"
#include "src/analytics/bfs.h"
#include "src/analytics/pagerank.h"

namespace lsg {
namespace bench {
namespace {

double Gib(size_t bytes) { return static_cast<double>(bytes) / (1 << 30); }

void RunDataset(const DatasetSpec& spec, ThreadPool& pool,
                BenchReporter& reporter) {
  size_t ls_bytes;
  size_t ls_index;
  EdgeCount edges;
  {
    auto g = MakeLsGraph(spec, &pool);
    ls_bytes = g->memory_footprint();
    ls_index = g->index_bytes();
    edges = g->num_edges();
  }
  size_t terrace_bytes;
  {
    // Terrace reserves PMA space at low density, as the paper notes.
    auto g = MakeTerrace(spec, &pool);
    terrace_bytes = g->memory_footprint();
  }
  size_t aspen_bytes;
  {
    auto g = MakeAspen(spec, &pool);
    aspen_bytes = g->memory_footprint();
  }
  size_t pactree_bytes;
  {
    auto g = MakePacTree(spec, &pool);
    pactree_bytes = g->memory_footprint();
  }
  std::printf(
      "%-4s |E|=%-10llu LSGraph %8.4f GB  Terrace %8.4f GB  Aspen %8.4f GB  "
      "PaC %8.4f GB  T/L %5.2f  I/L %5.2f%%\n",
      spec.name.c_str(), static_cast<unsigned long long>(edges), Gib(ls_bytes),
      Gib(terrace_bytes), Gib(aspen_bytes), Gib(pactree_bytes),
      static_cast<double>(terrace_bytes) / ls_bytes,
      100.0 * ls_index / ls_bytes);
  auto add = [&](const char* engine, size_t bytes) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = "memory_footprint",
                  .value = static_cast<double>(bytes),
                  .unit = "bytes"});
  };
  add("LSGraph", ls_bytes);
  add("Terrace", terrace_bytes);
  add("Aspen", aspen_bytes);
  add("PaC-tree", pactree_bytes);
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "index_bytes",
                .value = static_cast<double>(ls_index),
                .unit = "bytes"});
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "num_edges",
                .value = static_cast<double>(edges),
                .unit = "count"});
}

// Dense rMat proxy for the compressed-leaf study. Degree is high on
// purpose: compression pays off where adjacency tails are substantial
// (per-tail object overhead is fixed, and smaller deltas shrink varints).
DatasetSpec CompressedSpec() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return {"RMC", 12, 64.0, 7};
    case Scale::kSmall:
      return {"RMC", 16, 64.0, 7};
    case Scale::kFull:
      return {"RMC", 20, 96.0, 7};
  }
  return {};
}

void RunCompressedStudy(ThreadPool& pool, BenchReporter& reporter) {
  DatasetSpec spec = CompressedSpec();
  struct ModeResult {
    size_t adjacency_bytes = 0;
    EdgeCount tail_edges = 0;
    double bfs_seconds = 0.0;
    double pagerank_seconds = 0.0;
  };
  CoreStats stats;
  auto run = [&](bool compressed) {
    Options options;
    options.compress_leaves = compressed;
    if (compressed) {
      options.stats = &stats;
    }
    auto g = MakeLsGraph(spec, &pool, options);
    ModeResult r;
    r.adjacency_bytes = g->adjacency_bytes();
    r.tail_edges = g->tail_edges();
    Timer timer;
    Bfs(*g, 0, pool);
    r.bfs_seconds = timer.Seconds();
    timer.Reset();
    PageRank(*g, pool);
    r.pagerank_seconds = timer.Seconds();
    return r;
  };
  ModeResult raw = run(false);
  ModeResult comp = run(true);
  double te = static_cast<double>(raw.tail_edges);
  double ratio = comp.adjacency_bytes > 0
                     ? static_cast<double>(raw.adjacency_bytes) /
                           static_cast<double>(comp.adjacency_bytes)
                     : 0.0;
  std::printf(
      "%-4s 2^%d tail_edges=%-10llu raw %6.2f B/e  compressed %6.2f B/e  "
      "ratio %.2fx | BFS %.3fs -> %.3fs  PR %.3fs -> %.3fs\n",
      spec.name.c_str(), spec.scale,
      static_cast<unsigned long long>(raw.tail_edges),
      raw.adjacency_bytes / te, comp.adjacency_bytes / te, ratio,
      raw.bfs_seconds, comp.bfs_seconds, raw.pagerank_seconds,
      comp.pagerank_seconds);
  auto add = [&](const char* engine, const char* metric, double value,
                 const char* unit) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = metric,
                  .value = value,
                  .unit = unit});
  };
  add("LSGraph", "adjacency_bytes", static_cast<double>(raw.adjacency_bytes),
      "bytes");
  add("LSGraph-compressed", "adjacency_bytes",
      static_cast<double>(comp.adjacency_bytes), "bytes");
  add("LSGraph", "adjacency_bytes_per_edge", raw.adjacency_bytes / te,
      "bytes/edge");
  add("LSGraph-compressed", "adjacency_bytes_per_edge",
      comp.adjacency_bytes / te, "bytes/edge");
  add("LSGraph-compressed", "compression_ratio", ratio, "x");
  add("LSGraph", "bfs_seconds", raw.bfs_seconds, "s");
  add("LSGraph-compressed", "bfs_seconds", comp.bfs_seconds, "s");
  add("LSGraph", "pagerank_seconds", raw.pagerank_seconds, "s");
  add("LSGraph-compressed", "pagerank_seconds", comp.pagerank_seconds, "s");
  reporter.AddCoreStats(spec.name, "LSGraph-compressed", stats);
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Table 3: memory footprint and index overhead");
  BenchReporter reporter("memory");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    RunDataset(spec, pool, reporter);
  }
  std::printf("\ncompressed-leaf study (adjacency tails, raw vs CRIA):\n");
  RunCompressedStudy(pool, reporter);
  return reporter.Write() ? 0 : 1;
}
