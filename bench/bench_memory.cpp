// Table 3: memory usage of the four systems per graph, the ratio of
// Terrace's footprint to LSGraph's (T/L), and LSGraph's index overhead (I/L:
// RIA index arrays + LIA models/metadata as a share of total footprint).
//
// Expected shape: Terrace ~2-3x LSGraph (PMA density 0.125-0.25 vs α=1.2);
// Aspen/PaC-tree below LSGraph (compressed chunks); I/L a few percent.
#include <cstdio>

#include "bench/common.h"

namespace lsg {
namespace bench {
namespace {

double Gib(size_t bytes) { return static_cast<double>(bytes) / (1 << 30); }

void RunDataset(const DatasetSpec& spec, ThreadPool& pool,
                BenchReporter& reporter) {
  size_t ls_bytes;
  size_t ls_index;
  EdgeCount edges;
  {
    auto g = MakeLsGraph(spec, &pool);
    ls_bytes = g->memory_footprint();
    ls_index = g->index_bytes();
    edges = g->num_edges();
  }
  size_t terrace_bytes;
  {
    // Terrace reserves PMA space at low density, as the paper notes.
    auto g = MakeTerrace(spec, &pool);
    terrace_bytes = g->memory_footprint();
  }
  size_t aspen_bytes;
  {
    auto g = MakeAspen(spec, &pool);
    aspen_bytes = g->memory_footprint();
  }
  size_t pactree_bytes;
  {
    auto g = MakePacTree(spec, &pool);
    pactree_bytes = g->memory_footprint();
  }
  std::printf(
      "%-4s |E|=%-10llu LSGraph %8.4f GB  Terrace %8.4f GB  Aspen %8.4f GB  "
      "PaC %8.4f GB  T/L %5.2f  I/L %5.2f%%\n",
      spec.name.c_str(), static_cast<unsigned long long>(edges), Gib(ls_bytes),
      Gib(terrace_bytes), Gib(aspen_bytes), Gib(pactree_bytes),
      static_cast<double>(terrace_bytes) / ls_bytes,
      100.0 * ls_index / ls_bytes);
  auto add = [&](const char* engine, size_t bytes) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = "memory_footprint",
                  .value = static_cast<double>(bytes),
                  .unit = "bytes"});
  };
  add("LSGraph", ls_bytes);
  add("Terrace", terrace_bytes);
  add("Aspen", aspen_bytes);
  add("PaC-tree", pactree_bytes);
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "index_bytes",
                .value = static_cast<double>(ls_index),
                .unit = "bytes"});
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "num_edges",
                .value = static_cast<double>(edges),
                .unit = "count"});
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Table 3: memory footprint and index overhead");
  BenchReporter reporter("memory");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    RunDataset(spec, pool, reporter);
  }
  return reporter.Write() ? 0 : 1;
}
