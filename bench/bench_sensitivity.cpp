// Figures 14 and 15: sensitivity of LSGraph to the space amplification
// factor α and the RIA/HITree threshold M, on LJ, RM, and TW.
//   Fig. 14 — time to insert the large batch, per (α, M).
//   Fig. 15 — PageRank time, per (α, M).
//
// Expected shape: smaller α slows updates (more movement), especially from
// 1.2 to 1.1; large α slows analytics slightly; update time grows with M at
// small α on high-degree graphs; analytics flat beyond M = 2^12.
#include <cstdio>

#include "bench/common.h"
#include "src/analytics/pagerank.h"

namespace lsg {
namespace bench {
namespace {

const double kAlphas[] = {1.1, 1.2, 1.3, 1.5, 2.0};

std::vector<uint32_t> MThresholds() {
  // Paper sweeps 2^12..2^16; scaled runs shrink the graph, so scale M too.
  if (BenchScale() == Scale::kFull) {
    return {1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16};
  }
  return {1 << 8, 1 << 10, 1 << 12, 1 << 14};
}

void RunDataset(const DatasetSpec& spec, ThreadPool& pool,
                BenchReporter& reporter) {
  std::printf("\n--- %s ---\n", spec.name.c_str());
  uint64_t batch_size = LargeBatch();
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, /*trial=*/0);
  for (double alpha : kAlphas) {
    for (uint32_t m : MThresholds()) {
      Options options;
      options.alpha = alpha;
      options.m_threshold = m;
      auto g = MakeLsGraph(spec, &pool, options);
      Timer timer;
      g->InsertBatch(batch);
      double insert_s = timer.Seconds();
      timer.Reset();
      (void)PageRank(*g, pool);
      double pr_s = timer.Seconds();
      std::printf(
          "alpha=%.1f M=2^%-2d  Fig.14 insert %8.3fs  Fig.15 PR %8.4fs\n",
          alpha, 31 - __builtin_clz(m), insert_s, pr_s);
      char params[48];
      std::snprintf(params, sizeof(params), "alpha=%.1f M=%u", alpha, m);
      reporter.Add({.dataset = spec.name,
                    .engine = "LSGraph",
                    .metric = "insert_time",
                    .value = insert_s,
                    .unit = "s",
                    .batch_size = static_cast<int64_t>(batch_size),
                    .params = params});
      reporter.Add({.dataset = spec.name,
                    .engine = "LSGraph",
                    .metric = "pagerank_time",
                    .value = pr_s,
                    .unit = "s",
                    .params = params});
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Figs. 14-15: alpha / M sensitivity (insert + PageRank)");
  BenchReporter reporter("sensitivity");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    if (spec.name != "LJ" && spec.name != "RM" && spec.name != "TW") {
      continue;  // the paper's sensitivity study uses LJ, RM, TW
    }
    RunDataset(spec, pool, reporter);
  }
  return reporter.Write() ? 0 : 1;
}
