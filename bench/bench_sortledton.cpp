// §6.1's baseline-selection experiment: "we have conducted the experiments
// to compare PaC-tree and Sortledton... PaC-tree outperforms Sortledton",
// which is why the paper uses PaC-tree as its third baseline. This binary
// reruns that comparison (plus LSGraph for reference) on update throughput
// and BFS.
//
// Known deviation: the paper reports PaC-tree 40-142x ahead of Sortledton.
// Our Sortledton reimplements only its data structure (array + unrolled
// skip list), not its transactional machinery (per-vertex latches, version
// management), which is where the real system's update overhead lives — so
// this lean Sortledton measures *faster* than PaC-tree here. See
// EXPERIMENTS.md for discussion.
#include <cstdio>

#include "bench/common.h"
#include "src/analytics/bfs.h"
#include "src/baselines/sortledton_graph.h"

namespace lsg {
namespace bench {
namespace {

void RunDataset(const DatasetSpec& spec, ThreadPool& pool,
                BenchReporter& reporter) {
  uint64_t batch_size = LargeBatch();
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, 0);

  auto measure = [&](auto& g, const char* engine) {
    InsertDeleteTiming t = TimeInsertDeleteRound(g, batch);
    (void)Bfs(g, 0, pool);  // warmup
    Timer timer;
    (void)Bfs(g, 0, pool);
    double bfs_s = timer.Seconds();
    double ins = Throughput(batch_size, t.insert_seconds);
    double del = Throughput(t.deleted_edges, t.delete_seconds);
    auto add = [&](const char* metric, double value, const char* unit) {
      reporter.Add({.dataset = spec.name,
                    .engine = engine,
                    .metric = metric,
                    .value = value,
                    .unit = unit,
                    .batch_size = static_cast<int64_t>(batch_size)});
    };
    add("insert_throughput", ins, "edges/s");
    add("delete_throughput", del, "edges/s");
    add("bfs_time", bfs_s, "s");
    return std::tuple{ins, del, bfs_s};
  };

  SortledtonGraph sortledton(NumVerticesFor(spec), &pool);
  sortledton.BuildFromEdges(BuildDatasetEdges(spec));
  auto [sl_ins, sl_del, sl_bfs] = measure(sortledton, "Sortledton");

  auto pactree = MakePacTree(spec, &pool);
  auto [pt_ins, pt_del, pt_bfs] = measure(*pactree, "PaC-tree");

  auto lsgraph = MakeLsGraph(spec, &pool);
  auto [ls_ins, ls_del, ls_bfs] = measure(*lsgraph, "LSGraph");

  std::printf(
      "%-4s insert e/s: Sortledton %9.3e  PaC %9.3e (%.2fx)  LSGraph %9.3e "
      "(%.2fx) | BFS s: %.4f / %.4f / %.4f\n",
      spec.name.c_str(), sl_ins, pt_ins, sl_ins > 0 ? pt_ins / sl_ins : 0.0,
      ls_ins, sl_ins > 0 ? ls_ins / sl_ins : 0.0, sl_bfs, pt_bfs, ls_bfs);
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("§6.1: PaC-tree vs Sortledton (baseline-selection experiment)");
  BenchReporter reporter("sortledton");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    if (spec.name == "LJ" || spec.name == "OR" || spec.name == "TW") {
      RunDataset(spec, pool, reporter);
    }
  }
  return reporter.Write() ? 0 : 1;
}
