// §6.1's baseline-selection experiment: "we have conducted the experiments
// to compare PaC-tree and Sortledton... PaC-tree outperforms Sortledton",
// which is why the paper uses PaC-tree as its third baseline. This binary
// reruns that comparison (plus LSGraph for reference) on update throughput
// and BFS.
//
// Known deviation: the paper reports PaC-tree 40-142x ahead of Sortledton.
// Our Sortledton reimplements only its data structure (array + unrolled
// skip list), not its transactional machinery (per-vertex latches, version
// management), which is where the real system's update overhead lives — so
// this lean Sortledton measures *faster* than PaC-tree here. See
// EXPERIMENTS.md for discussion.
#include <cstdio>

#include "bench/common.h"
#include "src/analytics/bfs.h"
#include "src/baselines/sortledton_graph.h"

namespace lsg {
namespace bench {
namespace {

void RunDataset(const DatasetSpec& spec, ThreadPool& pool) {
  uint64_t batch_size = LargeBatch();
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, 0);

  auto measure = [&](auto& g) {
    auto [ins_s, del_s] = TimeInsertDeleteRound(g, batch);
    (void)Bfs(g, 0, pool);  // warmup
    Timer timer;
    (void)Bfs(g, 0, pool);
    return std::tuple{Throughput(batch_size, ins_s),
                      Throughput(batch_size, del_s), timer.Seconds()};
  };

  SortledtonGraph sortledton(NumVerticesFor(spec), &pool);
  sortledton.BuildFromEdges(BuildDatasetEdges(spec));
  auto [sl_ins, sl_del, sl_bfs] = measure(sortledton);

  auto pactree = MakePacTree(spec, &pool);
  auto [pt_ins, pt_del, pt_bfs] = measure(*pactree);

  auto lsgraph = MakeLsGraph(spec, &pool);
  auto [ls_ins, ls_del, ls_bfs] = measure(*lsgraph);

  std::printf(
      "%-4s insert e/s: Sortledton %9.3e  PaC %9.3e (%.2fx)  LSGraph %9.3e "
      "(%.2fx) | BFS s: %.4f / %.4f / %.4f\n",
      spec.name.c_str(), sl_ins, pt_ins, sl_ins > 0 ? pt_ins / sl_ins : 0.0,
      ls_ins, sl_ins > 0 ? ls_ins / sl_ins : 0.0, sl_bfs, pt_bfs, ls_bfs);
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("§6.1: PaC-tree vs Sortledton (baseline-selection experiment)");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    if (spec.name == "LJ" || spec.name == "OR" || spec.name == "TW") {
      RunDataset(spec, pool);
    }
  }
  return 0;
}
