// Figure 17: multi-thread scaling of a large insertion batch on OR across
// the four systems.
//
// Expected shape: LSGraph, Aspen, and PaC-tree scale with threads (per-vertex
// parallelism, no shared structure); Terrace plateaus — all its medium-degree
// inserts serialize on the shared PMA lock.
//
// Note: the benchmark machine may have few physical cores; thread counts
// beyond them show oversubscription, not algorithmic scaling. The ranking
// between systems is the reproducible signal.
#include <cstdio>

#include "bench/common.h"

namespace lsg {
namespace bench {
namespace {

std::vector<size_t> ThreadCounts() {
  return {1, 2, 4, 8};
}

void Run(const DatasetSpec& spec, BenchReporter& reporter) {
  uint64_t batch_size = BenchScale() == Scale::kFull ? 10000000 : 200000;
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, /*trial=*/0);
  std::printf("%-9s", "threads");
  for (size_t t : ThreadCounts()) {
    std::printf(" %10zu", t);
  }
  std::printf("   (insert throughput, edges/s)\n");

  auto run_system = [&](const char* name, auto factory) {
    std::printf("%-9s", name);
    for (size_t threads : ThreadCounts()) {
      ThreadPool pool(threads);
      auto g = factory(&pool);
      Timer timer;
      g->InsertBatch(batch);
      double seconds = timer.Seconds();
      double tput = Throughput(batch_size, seconds);
      std::printf(" %10.3e", tput);
      std::fflush(stdout);
      reporter.Add({.dataset = spec.name,
                    .engine = name,
                    .metric = "insert_throughput",
                    .value = tput,
                    .unit = "edges/s",
                    .batch_size = static_cast<int64_t>(batch_size),
                    .threads = static_cast<int64_t>(threads)});
    }
    std::printf("\n");
  };

  run_system("LSGraph",
             [&](ThreadPool* p) { return MakeLsGraph(spec, p); });
  run_system("Terrace", [&](ThreadPool* p) { return MakeTerrace(spec, p); });
  run_system("Aspen", [&](ThreadPool* p) { return MakeAspen(spec, p); });
  run_system("PaC-tree",
             [&](ThreadPool* p) { return MakePacTree(spec, p); });
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Fig. 17: insert scalability vs thread count on OR");
  BenchReporter reporter("scalability");
  for (const DatasetSpec& spec : BenchDatasets()) {
    if (spec.name == "OR") {
      Run(spec, reporter);
    }
  }
  return reporter.Write() ? 0 : 1;
}
