// Serving benchmark (DESIGN.md §13): replays a mixed request workload —
// point reads (60%), update batches (25%), k-hop queries (15%) — against a
// ShardedGraph behind a Router and reports p50/p99/p999 latency per op
// class plus achieved QPS, with routed results checked for exact
// equivalence against a single-engine oracle replay (any divergence
// aborts: a wrong answer served fast is not a result).
//
// Readers run concurrently with the writer the whole time; the latency
// split between the read classes and the update class is the
// reads-never-block-on-ingest property made visible.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/service/router.h"
#include "src/service/shard_map.h"
#include "src/service/sharded_graph.h"
#include "src/service/workload.h"

namespace lsg {
namespace {

struct ServiceTier {
  DatasetSpec spec;
  uint32_t shards;
  uint64_t ops;
  uint64_t batch;
  uint32_t readers;
  double target_qps;  // 0 = closed loop
};

ServiceTier TierForScale() {
  switch (bench::BenchScale()) {
    case bench::Scale::kTiny:
      return {{"SRV", 12, 8.0, 77}, 4, 1600, 500, 2, 4000.0};
    case bench::Scale::kSmall:
      return {{"SRV", 15, 16.0, 77}, 4, 8000, 2000, 2, 0.0};
    case bench::Scale::kFull:
      return {{"SRV", 18, 16.0, 77}, 8, 40000, 10000, 4, 0.0};
  }
  return {{"SRV", 12, 8.0, 77}, 4, 1600, 500, 2, 4000.0};
}

void ReportClass(bench::BenchReporter& reporter, const ServiceTier& tier,
                 const char* op, const LatencyHistogram& hist,
                 int64_t threads) {
  const std::string params =
      std::string("op=") + op + " shards=" + std::to_string(tier.shards);
  struct {
    const char* metric;
    double p;
  } rows[] = {{"latency_p50", 0.50}, {"latency_p99", 0.99},
              {"latency_p999", 0.999}};
  for (const auto& r : rows) {
    reporter.Add({tier.spec.name, "LSGraph", r.metric,
                  hist.PercentileSeconds(r.p), "s",
                  static_cast<int64_t>(tier.batch), threads, params});
  }
  reporter.Add({tier.spec.name, "LSGraph", "latency_ops",
                static_cast<double>(hist.count()), "count",
                static_cast<int64_t>(tier.batch), threads, params});
  std::printf("  %-11s %8llu ops   p50 %9.1f us   p99 %9.1f us   p999 %9.1f us\n",
              op, static_cast<unsigned long long>(hist.count()),
              hist.PercentileSeconds(0.50) * 1e6,
              hist.PercentileSeconds(0.99) * 1e6,
              hist.PercentileSeconds(0.999) * 1e6);
}

int Run() {
  bench::BenchReporter reporter("service");
  const ServiceTier tier = TierForScale();
  const VertexId n = bench::NumVerticesFor(tier.spec);

  std::printf("bench_service: scale=%s graph=2^%d vertices, shards=%u\n",
              bench::BenchScaleName(), tier.spec.scale, tier.shards);

  std::vector<Edge> base = BuildDatasetEdges(tier.spec);
  ServiceOptions sopts;
  sopts.num_shards = tier.shards;
  ShardedGraph graph(n, std::make_unique<HashShardMap>(tier.shards), sopts);
  graph.BuildFromEdges(base);
  Router router(graph);
  const int64_t threads =
      static_cast<int64_t>(graph.service_pool().num_threads());

  WorkloadSpec wl;
  wl.ops = tier.ops;
  wl.point_read_frac = 0.60;
  wl.update_frac = 0.25;
  wl.update_batch_size = tier.batch;
  wl.khop_depth = 2;
  wl.target_qps = tier.target_qps;
  wl.reader_threads = tier.readers;
  wl.seed = tier.spec.seed;
  wl.updates = tier.spec;
  if (std::string err = wl.Validate(); !err.empty()) {
    std::fprintf(stderr, "bench_service: bad workload spec: %s\n",
                 err.c_str());
    return 1;
  }

  WorkloadResult res = RunWorkload(router, wl);

  std::printf("  mixed workload: %llu ops in %.3f s -> %.0f ops/s "
              "(target %.0f), checksum %llu\n",
              static_cast<unsigned long long>(res.ops_issued),
              res.wall_seconds, res.achieved_qps(), wl.target_qps,
              static_cast<unsigned long long>(res.read_checksum));
  ReportClass(reporter, tier, "point_read", res.point_read, threads);
  ReportClass(reporter, tier, "update", res.update, threads);
  ReportClass(reporter, tier, "khop", res.khop, threads);

  const std::string shard_params = "shards=" + std::to_string(tier.shards);
  reporter.Add({tier.spec.name, "LSGraph", "achieved_qps", res.achieved_qps(),
                "ops/s", static_cast<int64_t>(tier.batch), threads,
                shard_params});
  if (res.wall_seconds > 0) {
    reporter.Add({tier.spec.name, "LSGraph", "update_ingest",
                  static_cast<double>(res.edges_submitted) / res.wall_seconds,
                  "edges/s", static_cast<int64_t>(tier.batch), threads,
                  shard_params});
  }

  CoreStats stats;
  graph.AggregateStats(&stats);
  reporter.AddCoreStats(tier.spec.name, "LSGraph", stats, shard_params);

  // A fast wrong answer is not a result: replay the identical update log
  // into a single engine and demand exact equivalence.
  std::string divergence = VerifyAgainstOracle(router, base, res.update_log,
                                               sopts.engine, tier.spec.seed);
  if (!divergence.empty()) {
    std::fprintf(stderr,
                 "bench_service: routed state DIVERGES from single-engine "
                 "oracle: %s\n",
                 divergence.c_str());
    std::abort();
  }
  std::printf("  oracle equivalence: OK (%llu update batches replayed)\n",
              static_cast<unsigned long long>(res.update_log.size()));
  if (!graph.CheckInvariants()) {
    std::fprintf(stderr, "bench_service: invariant check failed\n");
    std::abort();
  }
  return 0;
}

}  // namespace
}  // namespace lsg

int main() { return lsg::Run(); }
