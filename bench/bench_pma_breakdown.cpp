// Figure 4: why Terrace's updates are slow.
//   (a) share of total single-threaded insertion time spent inside the PMA;
//   (b) split of that PMA time between search and data movement.
//
// Protocol follows §2.3: single thread (to remove contention effects),
// large insertion batches, per-phase timers inside the PMA.
//
// Expected shape: PMA dominates total time (paper: up to 97%); search is a
// large minority share (paper: 30-43%), movement the rest.
#include <cstdio>

#include "bench/common.h"

namespace lsg {
namespace bench {
namespace {

void RunDataset(const DatasetSpec& spec, BenchReporter& reporter) {
  ThreadPool pool(1);  // single thread, as in the paper's Fig. 4 analysis
  TerraceOptions options;
  options.pma.timing = true;
  TerraceGraph g(NumVerticesFor(spec), options, &pool);
  g.BuildFromEdges(BuildDatasetEdges(spec));
  g.mutable_pma().mutable_stats().Clear();

  uint64_t batch_size = LargeBatch();
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, /*trial=*/0);
  Timer timer;
  g.InsertBatch(batch);
  double total_s = timer.Seconds();

  const PmaStats& stats = g.pma().stats();
  double pma_s = stats.search_seconds + stats.move_seconds;
  std::printf(
      "%-4s batch=%llu total %.3fs | Fig.4a PMA share %5.1f%% | Fig.4b "
      "search %5.1f%% move %5.1f%% | moved %llu elems, %llu rebalances, %llu "
      "resizes\n",
      spec.name.c_str(), static_cast<unsigned long long>(batch_size), total_s,
      100.0 * pma_s / total_s,
      pma_s > 0 ? 100.0 * stats.search_seconds / pma_s : 0.0,
      pma_s > 0 ? 100.0 * stats.move_seconds / pma_s : 0.0,
      static_cast<unsigned long long>(stats.elements_moved),
      static_cast<unsigned long long>(stats.rebalances),
      static_cast<unsigned long long>(stats.resizes));
  auto add = [&](const char* metric, double value, const char* unit) {
    reporter.Add({.dataset = spec.name,
                  .engine = "Terrace",
                  .metric = metric,
                  .value = value,
                  .unit = unit,
                  .batch_size = static_cast<int64_t>(batch_size),
                  .threads = 1});
  };
  add("insert_total_time", total_s, "s");
  add("pma_search_time", stats.search_seconds, "s");
  add("pma_move_time", stats.move_seconds, "s");
  add("pma_share", total_s > 0 ? 100.0 * pma_s / total_s : 0.0, "%");
  add("pma_elements_moved", static_cast<double>(stats.elements_moved),
      "count");
  add("pma_rebalances", static_cast<double>(stats.rebalances), "count");
  add("pma_resizes", static_cast<double>(stats.resizes), "count");
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Fig. 4: Terrace insertion-time breakdown (single thread)");
  BenchReporter reporter("pma_breakdown");
  for (const DatasetSpec& spec : BenchDatasets()) {
    if (spec.name == "FR") {
      continue;  // Terrace omitted on FR throughout the paper
    }
    RunDataset(spec, reporter);
  }
  return reporter.Write() ? 0 : 1;
}
