// §6.2 ablation: where does LSGraph's update speed come from?
//
//   (1) RIA vs PMA — the paper replaces RIA with PMA and attributes
//       60.9%-83.4% of the improvement to RIA. Here: per-vertex adjacency
//       tails stored in a PMA vs a RIA, same update stream.
//   (2) HITree vs RIA-only — the paper stores high-degree tails in RIA
//       instead of HITree (6.9%-21.5% of improvement). Here: default M vs
//       M = infinity (no HITree ever).
//   (3) LIA learned index vs binary search (1.8%-7.2%) — lookup latency on a
//       built LIA with model prediction vs binary search over the decoded
//       ids.
//
// Also reports the RIA->HITree conversion count for the large batch (§6.2:
// 29-1599 conversions, 0.2%-3.1% overhead).
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/common.h"
#include "src/core/hitree.h"
#include "src/pma/pma.h"
#include "src/util/prng.h"

namespace lsg {
namespace bench {
namespace {

// Variant 1: LSGraph-shaped engine whose tails are PMAs. Only the pieces
// the ablation needs (grouped batch inserts).
class PmaTailGraph {
 public:
  explicit PmaTailGraph(VertexId n, ThreadPool* pool)
      : tails_(n), pool_(pool) {}

  void BuildFromEdges(std::vector<Edge> edges) {
    RadixSortEdges(edges);
    DedupSortedEdges(edges);
    for (const Edge& e : edges) {
      tails_[e.src].Insert(e.dst);
    }
  }

  void InsertBatch(const std::vector<Edge>& batch) {
    std::vector<Edge> edges = batch;
    RadixSortEdges(edges);
    DedupSortedEdges(edges);
    std::vector<size_t> starts;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (i == 0 || edges[i].src != edges[i - 1].src) {
        starts.push_back(i);
      }
    }
    starts.push_back(edges.size());
    size_t groups = starts.empty() ? 0 : starts.size() - 1;
    pool_->ParallelFor(0, groups, [&](size_t g) {
      Pma& tail = tails_[edges[starts[g]].src];
      for (size_t i = starts[g]; i < starts[g + 1]; ++i) {
        tail.Insert(edges[i].dst);
      }
    });
  }

 private:
  std::vector<Pma> tails_;
  ThreadPool* pool_;
};

void RunDataset(const DatasetSpec& spec, ThreadPool& pool,
                BenchReporter& reporter) {
  std::printf("\n--- %s ---\n", spec.name.c_str());
  uint64_t batch_size = LargeBatch();
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, /*trial=*/0);

  double full_s;
  uint64_t conversions;
  {
    auto g = MakeLsGraph(spec, &pool);
    Timer timer;
    g->InsertBatch(batch);
    full_s = timer.Seconds();
    conversions = g->stats().ria_to_hitree_conversions.load();
  }
  double ria_only_s;
  {
    Options options;
    options.m_threshold = ~uint32_t{0};  // never convert to HITree
    auto g = MakeLsGraph(spec, &pool, options);
    Timer timer;
    g->InsertBatch(batch);
    ria_only_s = timer.Seconds();
  }
  double pma_tail_s;
  {
    PmaTailGraph g(NumVerticesFor(spec), &pool);
    g.BuildFromEdges(BuildDatasetEdges(spec));
    Timer timer;
    g.InsertBatch(batch);
    pma_tail_s = timer.Seconds();
  }
  auto add_time = [&](const char* engine, const char* metric, double value) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = metric,
                  .value = value,
                  .unit = "s",
                  .batch_size = static_cast<int64_t>(batch_size)});
  };
  add_time("LSGraph", "insert_time", full_s);
  add_time("LSGraph-noHITree", "insert_time", ria_only_s);
  add_time("PMA-tails", "insert_time", pma_tail_s);
  reporter.Add({.dataset = spec.name,
                .engine = "LSGraph",
                .metric = "ria_to_hitree_conversions",
                .value = static_cast<double>(conversions),
                .unit = "count",
                .batch_size = static_cast<int64_t>(batch_size)});
  std::printf("full LSGraph       %8.3fs  (%llu RIA->HITree conversions)\n",
              full_s, static_cast<unsigned long long>(conversions));
  std::printf("RIA-only (no HITree) %6.3fs  -> HITree contributes %.1f%%\n",
              ria_only_s,
              ria_only_s > 0 ? 100.0 * (ria_only_s - full_s) / ria_only_s
                             : 0.0);
  std::printf("PMA tails (no RIA)   %6.3fs  -> RIA contributes %.1f%%\n",
              pma_tail_s,
              pma_tail_s > 0 ? 100.0 * (pma_tail_s - ria_only_s) / pma_tail_s
                             : 0.0);

  // (3) LIA model vs binary search: lookup cost on one high-degree tail.
  {
    Options options;
    options.m_threshold = 1 << 10;
    std::vector<VertexId> ids;
    SplitMix64 rng(spec.seed);
    std::set<VertexId> chosen;
    while (chosen.size() < 200000) {
      chosen.insert(static_cast<VertexId>(rng.Next() >> 4));
    }
    ids.assign(chosen.begin(), chosen.end());
    Lia lia(options, ids);
    Timer timer;
    uint64_t hits = 0;
    for (int round = 0; round < 5; ++round) {
      for (VertexId v : ids) {
        hits += lia.Contains(v);
      }
    }
    double learned_s = timer.Seconds();
    timer.Reset();
    for (int round = 0; round < 5; ++round) {
      for (VertexId v : ids) {
        hits += std::binary_search(ids.begin(), ids.end(), v);
      }
    }
    double binary_s = timer.Seconds();
    std::printf(
        "LIA lookup: learned %.3fs vs binary search %.3fs (%.2fx) "
        "[checksum %llu]\n",
        learned_s, binary_s, learned_s > 0 ? binary_s / learned_s : 0.0,
        static_cast<unsigned long long>(hits));
    reporter.Add({.dataset = spec.name,
                  .engine = "LSGraph",
                  .metric = "lia_learned_lookup_time",
                  .value = learned_s,
                  .unit = "s"});
    reporter.Add({.dataset = spec.name,
                  .engine = "LSGraph",
                  .metric = "lia_binary_lookup_time",
                  .value = binary_s,
                  .unit = "s"});
  }
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("§6.2 ablation: RIA / HITree / LIA contributions");
  BenchReporter reporter("ablation");
  ThreadPool pool;
  for (const DatasetSpec& spec : BenchDatasets()) {
    if (spec.name == "LJ" || spec.name == "OR") {
      RunDataset(spec, pool, reporter);
    }
  }
  return reporter.Write() ? 0 : 1;
}
