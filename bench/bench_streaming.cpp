// Table 4 / §6.5 "Scenarios with Real-world Streaming Graphs": replay
// realistic temporal streams (bursty arrival, repeats) on all four systems.
// Following the paper, 90% of each stream builds the base graph and the
// final 10% is applied as streamed additions; the table reports streaming
// throughput and LSGraph's speedup.
//
// Expected shape: LSGraph ahead of Terrace by ~1.6-3x and ahead of
// Aspen/PaC-tree by smaller margins (small batches blunt LSGraph's edge).
#include <cstdio>

#include "bench/common.h"
#include "src/gen/temporal.h"

namespace lsg {
namespace bench {
namespace {

// Replays the stream in arrival-order chunks; returns edges/second over the
// whole streamed suffix.
template <typename G>
double ReplayStream(G& g, const std::vector<Edge>& stream) {
  constexpr size_t kChunk = 1000;
  Timer timer;
  for (size_t off = 0; off < stream.size(); off += kChunk) {
    size_t len = std::min(kChunk, stream.size() - off);
    g.InsertBatch(std::span<const Edge>(stream.data() + off, len));
  }
  return Throughput(stream.size(), timer.Seconds());
}

void Run(const TemporalSpec& spec, ThreadPool& pool,
         BenchReporter& reporter) {
  TemporalSplit split = SplitTemporalStream(GenerateTemporalStream(spec));
  double ls;
  double terrace;
  double aspen;
  double pactree;
  {
    LSGraph g(spec.num_vertices, Options{}, &pool);
    g.BuildFromEdges(split.base);
    ls = ReplayStream(g, split.stream);
  }
  {
    TerraceGraph g(spec.num_vertices, TerraceOptions{}, &pool);
    g.BuildFromEdges(split.base);
    terrace = ReplayStream(g, split.stream);
  }
  {
    AspenGraph g(spec.num_vertices, &pool);
    g.BuildFromEdges(split.base);
    aspen = ReplayStream(g, split.stream);
  }
  {
    PacTreeGraph g(spec.num_vertices, &pool);
    g.BuildFromEdges(split.base);
    pactree = ReplayStream(g, split.stream);
  }
  std::printf(
      "%-3s events=%-8llu LSGraph %10.3e e/s | speedup vs Terrace %.2fx, "
      "Aspen %.2fx, PaC %.2fx\n",
      spec.name.c_str(), static_cast<unsigned long long>(spec.num_events), ls,
      terrace > 0 ? ls / terrace : 0.0, aspen > 0 ? ls / aspen : 0.0,
      pactree > 0 ? ls / pactree : 0.0);
  auto add = [&](const char* engine, double tput) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = "stream_throughput",
                  .value = tput,
                  .unit = "edges/s"});
  };
  add("LSGraph", ls);
  add("Terrace", terrace);
  add("Aspen", aspen);
  add("PaC-tree", pactree);
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Table 4 / §6.5: real-world-style temporal streams (10% streamed)");
  BenchReporter reporter("streaming");
  ThreadPool pool;
  for (const TemporalSpec& spec : TemporalDatasets()) {
    Run(spec, pool, reporter);
  }
  return reporter.Write() ? 0 : 1;
}
