// Table 4 / §6.5 "Scenarios with Real-world Streaming Graphs": replay
// realistic temporal streams (bursty arrival, repeats) on all four systems.
// Following the paper, 90% of each stream builds the base graph and the
// final 10% is applied as streamed additions; the table reports streaming
// throughput and LSGraph's speedup.
//
// Expected shape: LSGraph ahead of Terrace by ~1.6-3x and ahead of
// Aspen/PaC-tree by smaller margins (small batches blunt LSGraph's edge).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/analytics/bfs.h"
#include "src/analytics/pagerank.h"
#include "src/gen/temporal.h"

namespace lsg {
namespace bench {
namespace {

// Replays the stream in arrival-order chunks; returns edges/second over the
// whole streamed suffix.
template <typename G>
double ReplayStream(G& g, const std::vector<Edge>& stream) {
  constexpr size_t kChunk = 1000;
  Timer timer;
  for (size_t off = 0; off < stream.size(); off += kChunk) {
    size_t len = std::min(kChunk, stream.size() - off);
    g.InsertBatch(std::span<const Edge>(stream.data() + off, len));
  }
  return Throughput(stream.size(), timer.Seconds());
}

void Run(const TemporalSpec& spec, ThreadPool& pool,
         BenchReporter& reporter) {
  TemporalSplit split = SplitTemporalStream(GenerateTemporalStream(spec));
  double ls;
  double terrace;
  double aspen;
  double pactree;
  {
    LSGraph g(spec.num_vertices, Options{}, &pool);
    g.BuildFromEdges(split.base);
    ls = ReplayStream(g, split.stream);
  }
  {
    TerraceGraph g(spec.num_vertices, TerraceOptions{}, &pool);
    g.BuildFromEdges(split.base);
    terrace = ReplayStream(g, split.stream);
  }
  {
    AspenGraph g(spec.num_vertices, &pool);
    g.BuildFromEdges(split.base);
    aspen = ReplayStream(g, split.stream);
  }
  {
    PacTreeGraph g(spec.num_vertices, &pool);
    g.BuildFromEdges(split.base);
    pactree = ReplayStream(g, split.stream);
  }
  std::printf(
      "%-3s events=%-8llu LSGraph %10.3e e/s | speedup vs Terrace %.2fx, "
      "Aspen %.2fx, PaC %.2fx\n",
      spec.name.c_str(), static_cast<unsigned long long>(spec.num_events), ls,
      terrace > 0 ? ls / terrace : 0.0, aspen > 0 ? ls / aspen : 0.0,
      pactree > 0 ? ls / pactree : 0.0);
  auto add = [&](const char* engine, double tput) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = "stream_throughput",
                  .value = tput,
                  .unit = "edges/s"});
  };
  add("LSGraph", ls);
  add("Terrace", terrace);
  add("Aspen", aspen);
  add("PaC-tree", pactree);
}

// ---- Reads-during-ingest study (§MVCC, DESIGN.md §12). ----
//
// Pins a Snapshot() of the base graph, then streams >= 1M additional edges
// from a writer thread while BFS and PageRank run against the pin. The
// racing results must be identical to a quiesced re-run on the same pin —
// that equality is the whole point of snapshot isolation, so a mismatch
// aborts the binary (and fails the perfsmoke test). Snapshot-acquire
// latency is sampled under writer contention and reported as p50/p99.

struct IngestStudySpec {
  int scale;              // base graph: rMat at this scale, symmetrized
  uint64_t stream_edges;  // edges landed while the pin is held
  uint64_t batch;
};

IngestStudySpec IngestSpec() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return {15, 1'000'000, 20'000};
    case Scale::kSmall:
      return {17, 2'000'000, 50'000};
    case Scale::kFull:
      return {20, 16'000'000, 100'000};
  }
  return {};
}

void CheckPinned(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: pinned %s diverged from quiesced run on the same "
                 "snapshot version\n",
                 what);
    std::abort();
  }
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void RunReadsDuringIngest(ThreadPool& pool, BenchReporter& reporter) {
  IngestStudySpec spec = IngestSpec();
  DatasetSpec base_spec{"RDI", spec.scale, 8.0, 42};
  LSGraph g(NumVerticesFor(base_spec), Options{}, &pool);
  g.BuildFromEdges(BuildDatasetEdges(base_spec));

  // Quiesced reference answers on the pinned version, before ingest starts.
  auto snap = g.Snapshot();
  uint64_t pinned_edges = snap->num_edges();
  BfsResult quiesced_bfs = Bfs(*snap, 0, pool);
  std::vector<double> quiesced_pr = PageRank(*snap, pool, {.iterations = 5});

  // Writer: stream the update batches. Readers below race against the pin
  // on the main thread while these land.
  std::vector<Edge> stream;
  stream.reserve(spec.stream_edges);
  for (uint64_t trial = 0; stream.size() < spec.stream_edges; ++trial) {
    std::vector<Edge> b = BuildUpdateBatch(base_spec, spec.batch, trial);
    stream.insert(stream.end(), b.begin(), b.end());
  }
  Timer ingest_timer;
  std::thread writer([&g, &stream, &spec] {
    for (size_t off = 0; off < stream.size(); off += spec.batch) {
      size_t len = std::min<size_t>(spec.batch, stream.size() - off);
      g.InsertBatch(std::span<const Edge>(stream.data() + off, len));
    }
  });

  // Racing analytics on the pin while the stream lands.
  Timer timer;
  BfsResult racing_bfs = Bfs(*snap, 0, pool);
  double bfs_seconds = timer.Seconds();
  timer.Reset();
  std::vector<double> racing_pr = PageRank(*snap, pool, {.iterations = 5});
  double pr_seconds = timer.Seconds();

  // Snapshot-acquire latency under writer contention: each acquire briefly
  // takes the writer gate, so these samples include time spent waiting for
  // in-flight mutation units.
  constexpr size_t kAcquireSamples = 256;
  std::vector<double> acquire;
  acquire.reserve(kAcquireSamples);
  for (size_t i = 0; i < kAcquireSamples; ++i) {
    Timer t;
    auto probe = g.Snapshot();
    acquire.push_back(t.Seconds());
    probe.reset();
    std::this_thread::yield();
  }
  writer.join();
  double ingest_seconds = ingest_timer.Seconds();

  // The pin must still read the pre-ingest version: same edge count, and
  // byte-identical analytics results whether they raced the writer or ran
  // after it quiesced.
  CheckPinned(snap->num_edges() == pinned_edges, "num_edges");
  CheckPinned(racing_bfs.level == quiesced_bfs.level, "BFS levels");
  CheckPinned(racing_bfs.reached == quiesced_bfs.reached, "BFS reach count");
  CheckPinned(racing_pr == quiesced_pr, "PageRank vector");
  BfsResult after_bfs = Bfs(*snap, 0, pool);
  CheckPinned(after_bfs.level == quiesced_bfs.level, "post-quiesce BFS");
  CheckPinned(PageRank(*snap, pool, {.iterations = 5}) == quiesced_pr,
              "post-quiesce PageRank");

  std::sort(acquire.begin(), acquire.end());
  double p50 = PercentileSorted(acquire, 0.50);
  double p99 = PercentileSorted(acquire, 0.99);
  double ingest_tput = Throughput(stream.size(), ingest_seconds);
  std::printf(
      "RDI streamed=%zu edges during pin | ingest %10.3e e/s | pinned BFS "
      "%.4fs PR %.4fs | snapshot acquire p50 %.2e s p99 %.2e s\n",
      stream.size(), ingest_tput, bfs_seconds, pr_seconds, p50, p99);

  auto add = [&](const char* metric, double value, const char* unit) {
    reporter.Add({.dataset = "RDI",
                  .engine = "LSGraph",
                  .metric = metric,
                  .value = value,
                  .unit = unit,
                  .batch_size = static_cast<int64_t>(spec.batch)});
  };
  add("ingest_throughput_pinned", ingest_tput, "edges/s");
  add("pinned_bfs_time", bfs_seconds, "s");
  add("pinned_pagerank_time", pr_seconds, "s");
  add("snapshot_acquire_p50", p50, "s");
  add("snapshot_acquire_p99", p99, "s");
  reporter.AddCoreStats("RDI", "LSGraph", g.stats());
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("Table 4 / §6.5: real-world-style temporal streams (10% streamed)");
  BenchReporter reporter("streaming");
  ThreadPool pool;
  for (const TemporalSpec& spec : TemporalDatasets()) {
    Run(spec, pool, reporter);
  }
  PrintHeader("MVCC: analytics on a pinned Snapshot() during ingest");
  RunReadsDuringIngest(pool, reporter);
  return reporter.Write() ? 0 : 1;
}
