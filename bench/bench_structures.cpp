// Google-benchmark microbenchmarks of the individual data structures:
// insert / lookup / ordered-scan cost of RIA, LIA, HiNode, PMA, B-tree, and
// C-tree at several sizes. These quantify the per-structure claims behind
// Figs. 4 and 12 (search cost, movement cost, pointer-chasing cost).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.h"
#include "src/btree/btree_set.h"
#include "src/core/hitree.h"
#include "src/core/options.h"
#include "src/core/ria.h"
#include "src/ctree/ctree.h"
#include "src/pma/pma.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

std::vector<VertexId> RandomIds(size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<VertexId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<VertexId>(rng.Next() >> 2));
  }
  return ids;
}

std::vector<VertexId> SortedUnique(std::vector<VertexId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

// ---- Insert ----

void BM_RiaInsert(benchmark::State& state) {
  std::vector<VertexId> ids = RandomIds(state.range(0), 1);
  for (auto _ : state) {
    Ria ria{Options{}};
    for (VertexId v : ids) {
      ria.Insert(v);
    }
    benchmark::DoNotOptimize(ria.size());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_RiaInsert)->Arg(1000)->Arg(100000);

void BM_PmaInsert(benchmark::State& state) {
  std::vector<VertexId> ids = RandomIds(state.range(0), 1);
  for (auto _ : state) {
    Pma pma;
    for (VertexId v : ids) {
      pma.Insert(v);
    }
    benchmark::DoNotOptimize(pma.size());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_PmaInsert)->Arg(1000)->Arg(100000);

void BM_BTreeInsert(benchmark::State& state) {
  std::vector<VertexId> ids = RandomIds(state.range(0), 1);
  for (auto _ : state) {
    BTreeSet tree;
    for (VertexId v : ids) {
      tree.Insert(v);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(100000);

void BM_CTreeInsert(benchmark::State& state) {
  std::vector<VertexId> ids = RandomIds(state.range(0), 1);
  for (auto _ : state) {
    CTree tree(16);
    for (VertexId v : ids) {
      tree.Insert(v);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_CTreeInsert)->Arg(1000)->Arg(100000);

void BM_HiNodeInsert(benchmark::State& state) {
  std::vector<VertexId> ids = RandomIds(state.range(0), 1);
  for (auto _ : state) {
    HiNode node{Options{}};
    for (VertexId v : ids) {
      node.Insert(v);
    }
    benchmark::DoNotOptimize(node.size());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_HiNodeInsert)->Arg(1000)->Arg(100000);

// ---- Lookup ----

template <typename Structure>
void LookupLoop(benchmark::State& state, Structure& s,
                const std::vector<VertexId>& probes) {
  size_t hits = 0;
  for (auto _ : state) {
    for (VertexId v : probes) {
      hits += s.Contains(v);
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * probes.size());
}

void BM_RiaLookup(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 2));
  Ria ria{Options{}};
  ria.BulkLoad(ids);
  LookupLoop(state, ria, ids);
}
BENCHMARK(BM_RiaLookup)->Arg(100000);

void BM_PmaLookup(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 2));
  Pma pma;
  for (VertexId v : ids) {
    pma.Insert(v);
  }
  LookupLoop(state, pma, ids);
}
BENCHMARK(BM_PmaLookup)->Arg(100000);

void BM_HiNodeLookup(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 2));
  HiNode node{Options{}};
  node.BulkLoad(ids);
  LookupLoop(state, node, ids);
}
BENCHMARK(BM_HiNodeLookup)->Arg(100000);

void BM_CTreeLookup(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 2));
  CTree tree(16);
  tree.BulkLoad(ids);
  LookupLoop(state, tree, ids);
}
BENCHMARK(BM_CTreeLookup)->Arg(100000);

// ---- Ordered scan (the analytics access pattern) ----

template <typename Structure>
void ScanLoop(benchmark::State& state, const Structure& s, size_t n) {
  for (auto _ : state) {
    uint64_t sum = 0;
    s.Map([&sum](VertexId v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_RiaScan(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 3));
  Ria ria{Options{}};
  ria.BulkLoad(ids);
  ScanLoop(state, ria, ids.size());
}
BENCHMARK(BM_RiaScan)->Arg(1000000);

void BM_HiNodeScan(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 3));
  HiNode node{Options{}};
  node.BulkLoad(ids);
  ScanLoop(state, node, ids.size());
}
BENCHMARK(BM_HiNodeScan)->Arg(1000000);

void BM_CTreeScan(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 3));
  CTree tree(16);
  tree.BulkLoad(ids);
  ScanLoop(state, tree, ids.size());
}
BENCHMARK(BM_CTreeScan)->Arg(1000000);

void BM_BTreeScan(benchmark::State& state) {
  std::vector<VertexId> ids = SortedUnique(RandomIds(state.range(0), 3));
  BTreeSet tree;
  tree.BulkLoad(ids);
  ScanLoop(state, tree, ids.size());
}
BENCHMARK(BM_BTreeScan)->Arg(1000000);

// Console reporter that additionally routes every finished run into the
// shared telemetry registry, so the microbenchmarks emit the same
// BENCH_<experiment>.json grid as the macro benchmarks.
class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TelemetryReporter(bench::BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations == 0) {
        continue;
      }
      std::string name = run.benchmark_name();
      std::string engine = name.substr(0, name.find('/'));
      auto add = [&](const char* metric, double value, const char* unit) {
        out_->Add({.dataset = "micro",
                   .engine = engine,
                   .metric = metric,
                   .value = value,
                   .unit = unit,
                   .params = name});
      };
      add("time", run.real_accumulated_time /
                      static_cast<double>(run.iterations),
          "s");
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        add("items_throughput", static_cast<double>(it->second), "items/s");
      }
    }
  }

 private:
  bench::BenchReporter* out_;
};

}  // namespace
}  // namespace lsg

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  lsg::bench::BenchReporter reporter("structures");
  lsg::TelemetryReporter display(&reporter);
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  return reporter.Write() ? 0 : 1;
}
