// §6.5 "Scenarios with Larger Graph Datasets": the paper builds a
// graph500-generated graph (1B vertices / 4.3B symmetrized edges) and
// compares update throughput of LSGraph vs Aspen and PaC-tree (Terrace is
// excluded at this size). This binary runs the same comparison on the
// largest rMat proxy the bench scale allows.
//
// Expected shape: LSGraph several times faster than both tree engines.
#include <cstdio>

#include "bench/common.h"

namespace lsg {
namespace bench {
namespace {

DatasetSpec LargeSpec() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return {"G500", 16, 8.0, 500};
    case Scale::kSmall:
      return {"G500", 19, 8.0, 500};
    case Scale::kFull:
      return {"G500", 27, 4.3, 500};
  }
  return {};
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("§6.5: graph500-style large graph, LSGraph vs Aspen/PaC-tree");
  BenchReporter reporter("large_graph");
  ThreadPool pool;
  DatasetSpec spec = LargeSpec();
  uint64_t batch_size = LargeBatch();
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, /*trial=*/0);

  double ls;
  double aspen;
  double pactree;
  {
    auto g = MakeLsGraph(spec, &pool);
    Timer timer;
    g->InsertBatch(batch);
    ls = Throughput(batch_size, timer.Seconds());
  }
  {
    auto g = MakeAspen(spec, &pool);
    Timer timer;
    g->InsertBatch(batch);
    aspen = Throughput(batch_size, timer.Seconds());
  }
  {
    auto g = MakePacTree(spec, &pool);
    Timer timer;
    g->InsertBatch(batch);
    pactree = Throughput(batch_size, timer.Seconds());
  }
  std::printf(
      "|V|=2^%d batch=%llu: LSGraph %10.3e e/s | speedup vs Aspen %.2fx, "
      "PaC-tree %.2fx\n",
      spec.scale, static_cast<unsigned long long>(batch_size), ls,
      aspen > 0 ? ls / aspen : 0.0, pactree > 0 ? ls / pactree : 0.0);
  auto add = [&](const char* engine, double tput) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = "insert_throughput",
                  .value = tput,
                  .unit = "edges/s",
                  .batch_size = static_cast<int64_t>(batch_size)});
  };
  add("LSGraph", ls);
  add("Aspen", aspen);
  add("PaC-tree", pactree);
  return reporter.Write() ? 0 : 1;
}
