// §6.5 "Scenarios with Larger Graph Datasets": the paper builds a
// graph500-generated graph (1B vertices / 4.3B symmetrized edges) and
// compares update throughput of LSGraph vs Aspen and PaC-tree (Terrace is
// excluded at this size). This binary runs the same comparison on the
// largest rMat proxy the bench scale allows.
//
// Expected shape: LSGraph several times faster than both tree engines.
//
// Second table: the .lsgbin binary loader. The largest proxy is converted
// to the on-disk CSR format once, then mmap-loaded at 1/2/8 threads
// (per-range varint decode into disjoint slices); we report the file's
// bytes/edge, per-thread-count load time, the 1->8 speedup, and the
// BuildFromEdges time for the loaded edge list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "src/gen/lsgbin.h"

namespace lsg {
namespace bench {
namespace {

DatasetSpec LargeSpec() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return {"G500", 16, 8.0, 500};
    case Scale::kSmall:
      return {"G500", 19, 8.0, 500};
    case Scale::kFull:
      return {"G500", 27, 4.3, 500};
  }
  return {};
}

// Loader spec: scale >= 22 at every bench scale — per-range decode only
// shows its parallelism once the payload dwarfs the thread-spawn cost, and
// 2^22 vertices is the smallest size where an 8-thread sweep is meaningful.
// Degree rises with bench scale instead of vertex count so tiny stays fast.
DatasetSpec LoaderSpec() {
  switch (BenchScale()) {
    case Scale::kTiny:
      return {"LBIN", 22, 4.0, 500};
    case Scale::kSmall:
      return {"LBIN", 22, 8.0, 500};
    case Scale::kFull:
      return {"LBIN", 24, 16.0, 500};
  }
  return {};
}

void RunLoaderStudy(BenchReporter& reporter) {
  DatasetSpec spec = LoaderSpec();
  VertexId n = NumVerticesFor(spec);
  std::vector<Edge> edges = BuildDatasetEdges(spec);

  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
  if (path.back() != '/') {
    path.push_back('/');
  }
  path += "lsg_bench_large.lsgbin";

  Timer timer;
  size_t file_bytes = WriteLsgbin(path, n, edges);
  double write_seconds = timer.Seconds();
  double file_bpe = static_cast<double>(file_bytes) /
                    static_cast<double>(edges.size());

  double load_seconds[3] = {0, 0, 0};
  const size_t kThreads[3] = {1, 2, 8};
  LoadedGraph loaded;
  for (int t = 0; t < 3; ++t) {
    ThreadPool load_pool(kThreads[t]);
    timer.Reset();
    loaded = LoadLsgbin(path, &load_pool);
    load_seconds[t] = timer.Seconds();
  }
  double speedup =
      load_seconds[2] > 0 ? load_seconds[0] / load_seconds[2] : 0.0;

  timer.Reset();
  LSGraph g(loaded.num_vertices, Options{}, &ThreadPool::Global());
  g.BuildFromEdges(std::move(loaded.edges));
  double build_seconds = timer.Seconds();

  std::printf(
      "%s 2^%d |E|=%zu file %.2f B/e (write %.2fs) | load 1t %.3fs  2t %.3fs  "
      "8t %.3fs  speedup(1->8) %.2fx | BuildFromEdges %.3fs%s\n",
      spec.name.c_str(), spec.scale, edges.size(), file_bpe, write_seconds,
      load_seconds[0], load_seconds[1], load_seconds[2], speedup,
      build_seconds,
      std::thread::hardware_concurrency() < 8
          ? "  [speedup bounded by hw threads]"
          : "");

  auto add = [&](const char* metric, double value, const char* unit,
                 int64_t threads = -1) {
    reporter.Add({.dataset = spec.name,
                  .engine = "lsgbin",
                  .metric = metric,
                  .value = value,
                  .unit = unit,
                  .threads = threads});
  };
  add("file_bytes_per_edge", file_bpe, "bytes/edge");
  add("write_seconds", write_seconds, "s");
  for (int t = 0; t < 3; ++t) {
    add("load_seconds", load_seconds[t], "s",
        static_cast<int64_t>(kThreads[t]));
  }
  add("load_speedup_1_to_8", speedup, "x");
  add("build_from_edges_seconds", build_seconds, "s");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  using namespace lsg;
  using namespace lsg::bench;
  PrintHeader("§6.5: graph500-style large graph, LSGraph vs Aspen/PaC-tree");
  BenchReporter reporter("large_graph");
  ThreadPool pool;
  DatasetSpec spec = LargeSpec();
  uint64_t batch_size = LargeBatch();
  std::vector<Edge> batch = BuildUpdateBatch(spec, batch_size, /*trial=*/0);

  double ls;
  double aspen;
  double pactree;
  {
    auto g = MakeLsGraph(spec, &pool);
    Timer timer;
    g->InsertBatch(batch);
    ls = Throughput(batch_size, timer.Seconds());
  }
  {
    auto g = MakeAspen(spec, &pool);
    Timer timer;
    g->InsertBatch(batch);
    aspen = Throughput(batch_size, timer.Seconds());
  }
  {
    auto g = MakePacTree(spec, &pool);
    Timer timer;
    g->InsertBatch(batch);
    pactree = Throughput(batch_size, timer.Seconds());
  }
  std::printf(
      "|V|=2^%d batch=%llu: LSGraph %10.3e e/s | speedup vs Aspen %.2fx, "
      "PaC-tree %.2fx\n",
      spec.scale, static_cast<unsigned long long>(batch_size), ls,
      aspen > 0 ? ls / aspen : 0.0, pactree > 0 ? ls / pactree : 0.0);
  auto add = [&](const char* engine, double tput) {
    reporter.Add({.dataset = spec.name,
                  .engine = engine,
                  .metric = "insert_throughput",
                  .value = tput,
                  .unit = "edges/s",
                  .batch_size = static_cast<int64_t>(batch_size)});
  };
  add("LSGraph", ls);
  add("Aspen", aspen);
  add("PaC-tree", pactree);

  std::printf("\n.lsgbin parallel loader (mmap + per-range varint decode):\n");
  RunLoaderStudy(reporter);
  return reporter.Write() ? 0 : 1;
}
