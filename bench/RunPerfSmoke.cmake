# Perfsmoke harness: runs one bench binary at tiny scale, then checks that
# its emitted BENCH_<experiment>.json passes schema validation and that the
# comparator can round-trip it (smoke self-compare — schema + row matching,
# no regression gating; tiny-scale numbers are pure noise).
#
# Invoked by CTest as
#   cmake -DBENCH_BIN=... -DCOMPARE_BIN=... -DOUT_DIR=... [-DEXTRA_ARGS=...]
#         -P RunPerfSmoke.cmake
foreach(var BENCH_BIN COMPARE_BIN OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunPerfSmoke.cmake: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

set(extra_args)
if(DEFINED EXTRA_ARGS AND NOT EXTRA_ARGS STREQUAL "")
  separate_arguments(extra_args UNIX_COMMAND "${EXTRA_ARGS}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env LSG_BENCH_SCALE=tiny "LSG_BENCH_OUT=${OUT_DIR}"
          "${BENCH_BIN}" ${extra_args}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench run failed (exit ${rc}): ${BENCH_BIN}")
endif()

file(GLOB emitted "${OUT_DIR}/BENCH_*.json")
if(emitted STREQUAL "")
  message(FATAL_ERROR "no BENCH_*.json emitted into ${OUT_DIR}")
endif()

execute_process(COMMAND "${COMPARE_BIN}" --check "${OUT_DIR}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "schema validation failed (exit ${rc})")
endif()

execute_process(COMMAND "${COMPARE_BIN}" --smoke "${OUT_DIR}" "${OUT_DIR}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smoke self-compare failed (exit ${rc})")
endif()
