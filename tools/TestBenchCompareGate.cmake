# Regression-gating acceptance test for bench_compare: an injected 20%
# throughput drop (and a 30% time growth) must fail a 10%-threshold compare
# with exit code 1, a self-compare must pass at any threshold, and a 30%
# threshold must absorb the same delta.
#
# Invoked by CTest as
#   cmake -DCOMPARE_BIN=... -DWORK_DIR=... -P TestBenchCompareGate.cmake
foreach(var COMPARE_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "TestBenchCompareGate.cmake: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/base" "${WORK_DIR}/new")

set(meta [[
  "meta": {
    "git_sha": "test",
    "scale": "tiny",
    "hw_threads": 1,
    "timestamp_utc": "2026-01-01T00:00:00Z",
    "hostname": "test",
    "omitted_nonfinite": 0
  },
]])

# value fields: insert_throughput (higher better), bfs_time (lower better),
# and one informational count row that must never gate.
function(write_doc path tput bfs conversions)
  file(WRITE "${path}" "{
  \"schema_version\": 1,
  \"experiment\": \"gate\",
${meta}
  \"rows\": [
    {
      \"experiment\": \"gate\", \"dataset\": \"LJ\", \"engine\": \"LSGraph\",
      \"scale\": \"tiny\", \"threads\": -1, \"batch_size\": 1000,
      \"metric\": \"insert_throughput\", \"value\": ${tput},
      \"unit\": \"edges/s\", \"params\": \"\"
    },
    {
      \"experiment\": \"gate\", \"dataset\": \"LJ\", \"engine\": \"LSGraph\",
      \"scale\": \"tiny\", \"threads\": -1, \"batch_size\": -1,
      \"metric\": \"bfs_time\", \"value\": ${bfs},
      \"unit\": \"s\", \"params\": \"\"
    },
    {
      \"experiment\": \"gate\", \"dataset\": \"LJ\", \"engine\": \"LSGraph\",
      \"scale\": \"tiny\", \"threads\": -1, \"batch_size\": -1,
      \"metric\": \"corestats.ria_expansions\", \"value\": ${conversions},
      \"unit\": \"count\", \"params\": \"\"
    }
  ]
}
")
endfunction()

write_doc("${WORK_DIR}/base/BENCH_gate.json" 1000000 1.0 10)
# 20% slower throughput, 30% slower BFS, wildly different (ungated) counter.
write_doc("${WORK_DIR}/new/BENCH_gate.json" 800000 1.3 9999)

function(run_compare expected_rc)
  execute_process(COMMAND "${COMPARE_BIN}" ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "bench_compare ${ARGN}: expected exit ${expected_rc}, got ${rc}")
  endif()
endfunction()

run_compare(0 --check "${WORK_DIR}/base/BENCH_gate.json")
run_compare(0 --check "${WORK_DIR}/new")
# Injected regression beyond the 10% threshold must gate (exit 1) — both
# file-vs-file and directory-vs-directory forms.
run_compare(1 --threshold=0.1
            "${WORK_DIR}/base/BENCH_gate.json"
            "${WORK_DIR}/new/BENCH_gate.json")
run_compare(1 --threshold=0.1 "${WORK_DIR}/base" "${WORK_DIR}/new")
# A 35% allowance absorbs the same delta; counters never gate.
run_compare(0 --threshold=0.35 "${WORK_DIR}/base" "${WORK_DIR}/new")
# Self-compare is clean at the tightest threshold.
run_compare(0 --threshold=0.001 "${WORK_DIR}/base" "${WORK_DIR}/base")
# Smoke mode never gates even on the regressed pair.
run_compare(0 --smoke "${WORK_DIR}/base" "${WORK_DIR}/new")
# Malformed input is a usage/schema error (exit 2), not a pass.
file(WRITE "${WORK_DIR}/bad.json" "{ not json")
run_compare(2 --check "${WORK_DIR}/bad.json")

# Percentile-aware gating: tail-latency metrics get a widened noise
# allowance (p99 -> 2x threshold, p999 -> 3x), so a +30%/+60% tail
# excursion passes a 25% threshold that would gate a median, but the same
# excursion still gates once the widened bar is crossed.
function(write_lat_doc path p50 p99 p999)
  file(WRITE "${path}" "{
  \"schema_version\": 1,
  \"experiment\": \"lat\",
${meta}
  \"rows\": [
    {
      \"experiment\": \"lat\", \"dataset\": \"SRV\", \"engine\": \"LSGraph\",
      \"scale\": \"tiny\", \"threads\": -1, \"batch_size\": 500,
      \"metric\": \"latency_p50\", \"value\": ${p50},
      \"unit\": \"s\", \"params\": \"op=point_read\"
    },
    {
      \"experiment\": \"lat\", \"dataset\": \"SRV\", \"engine\": \"LSGraph\",
      \"scale\": \"tiny\", \"threads\": -1, \"batch_size\": 500,
      \"metric\": \"latency_p99\", \"value\": ${p99},
      \"unit\": \"s\", \"params\": \"op=point_read\"
    },
    {
      \"experiment\": \"lat\", \"dataset\": \"SRV\", \"engine\": \"LSGraph\",
      \"scale\": \"tiny\", \"threads\": -1, \"batch_size\": 500,
      \"metric\": \"latency_p999\", \"value\": ${p999},
      \"unit\": \"s\", \"params\": \"op=point_read\"
    }
  ]
}
")
endfunction()

file(MAKE_DIRECTORY "${WORK_DIR}/base_lat" "${WORK_DIR}/new_lat")
write_lat_doc("${WORK_DIR}/base_lat/BENCH_lat.json" 1.0 1.0 1.0)
write_lat_doc("${WORK_DIR}/new_lat/BENCH_lat.json" 1.05 1.3 1.6)
# p50 +5% < 25%; p99 +30% < 2*25%; p999 +60% < 3*25% -> all absorbed.
run_compare(0 --threshold=0.25 "${WORK_DIR}/base_lat" "${WORK_DIR}/new_lat")
# At 10%: p99 +30% exceeds 2*10% and p999 +60% exceeds 3*10% -> gates.
run_compare(1 --threshold=0.1 "${WORK_DIR}/base_lat" "${WORK_DIR}/new_lat")
