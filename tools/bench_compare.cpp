// Compares BENCH_<experiment>.json telemetry files (src/util/metrics.h)
// against a committed baseline and fails on regressions.
//
//   bench_compare --check FILE...            schema validation only
//   bench_compare --smoke BASELINE NEW       schema + row matching, no gating
//   bench_compare [options] BASELINE NEW     gated compare
//
// BASELINE and NEW are files, or directories holding BENCH_*.json (paired by
// filename). Options:
//   --threshold=F    relative noise allowance for gated rows (default 0.25;
//                    benchmarks on shared machines are noisy — tighten in
//                    controlled environments)
//   --time-floor=S   skip gating "s" rows when both sides are below this
//                    (default 0.05s: sub-resolution timings are all noise)
//
// Gating policy (IsGatedUnit): units "s", "bytes", and anything containing
// "/s" gate; "count" / "%" / "x" rows are informational context only.
// Direction comes from the unit — throughput ("/s") regresses downward,
// time/space regress upward. Tail-latency rows gate with a widened
// allowance (metric containing "p99" -> 2x threshold, "p999" -> 3x): a
// p999 over a few thousand ops is decided by a handful of samples, so the
// deeper the percentile, the wider the legitimate noise floor. Exit codes:
// 0 ok, 1 regression, 2 usage or schema error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/metrics.h"

namespace lsg {
namespace {

namespace fs = std::filesystem;

struct Options {
  double threshold = 0.25;
  double time_floor = 0.05;
  bool check_only = false;
  bool smoke = false;
  std::vector<std::string> paths;
};

struct FlatRow {
  double value = 0.0;
  std::string unit;
  std::string metric;
};

// Percentile-aware noise widening: deeper tail percentiles are decided by
// fewer samples, so their legitimate run-to-run variation is larger. The
// p999 test must come first — "p999" contains "p99" as a substring.
double NoiseFactor(const std::string& metric) {
  if (metric.find("p999") != std::string::npos) {
    return 3.0;
  }
  if (metric.find("p99") != std::string::npos) {
    return 2.0;
  }
  return 1.0;
}

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Parses + schema-validates one telemetry file. Returns false with a
// diagnostic on stderr; the caller maps that to exit code 2.
bool LoadDoc(const std::string& path, JsonValue* doc) {
  std::string text;
  std::string error;
  if (!ReadFileToString(path, &text, &error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return false;
  }
  if (!JsonParse(text, doc, &error)) {
    std::fprintf(stderr, "bench_compare: %s: parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (!ValidateBenchJson(*doc, &error)) {
    std::fprintf(stderr, "bench_compare: %s: schema violation: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  return true;
}

// Identity of a row across runs: everything except the measured value. Two
// runs of the same binary at the same scale produce the same key set (minus
// rows omitted as non-finite).
std::string RowKey(const JsonValue& row) {
  std::string key;
  for (const char* field :
       {"dataset", "engine", "metric", "unit", "params"}) {
    key += row.Find(field)->AsString();
    key += '|';
  }
  key += std::to_string(row.Find("threads")->AsInt());
  key += '|';
  key += std::to_string(row.Find("batch_size")->AsInt());
  return key;
}

std::map<std::string, FlatRow> Flatten(const JsonValue& doc) {
  std::map<std::string, FlatRow> out;
  for (const JsonValue& row : doc.Find("rows")->items()) {
    out[RowKey(row)] = {row.Find("value")->AsDouble(),
                        row.Find("unit")->AsString(),
                        row.Find("metric")->AsString()};
  }
  return out;
}

// Compares one baseline/new document pair. Returns the number of gated
// regressions (always 0 in smoke mode).
int CompareDocs(const JsonValue& base, const JsonValue& next,
                const Options& opt) {
  std::map<std::string, FlatRow> base_rows = Flatten(base);
  std::map<std::string, FlatRow> next_rows = Flatten(next);
  const std::string& experiment = base.Find("experiment")->AsString();

  int regressions = 0;
  int improvements = 0;
  int gated = 0;
  int missing = 0;
  for (const auto& [key, b] : base_rows) {
    auto it = next_rows.find(key);
    if (it == next_rows.end()) {
      // Legitimately absent when this run's value was non-finite (tiny-scale
      // timers routinely read 0s) — warn, never fail.
      std::printf("  [missing] %s\n", key.c_str());
      ++missing;
      continue;
    }
    if (opt.smoke || !IsGatedUnit(b.unit)) {
      continue;
    }
    double old_v = b.value;
    double new_v = it->second.value;
    if (b.unit == "s" && old_v < opt.time_floor && new_v < opt.time_floor) {
      continue;  // both below timer resolution / noise floor
    }
    if (old_v == 0.0) {
      continue;  // no meaningful ratio
    }
    ++gated;
    bool higher_better = b.unit.find("/s") != std::string::npos;
    double rel = new_v / old_v - 1.0;  // signed change, + means grew
    double threshold = opt.threshold * NoiseFactor(b.metric);
    bool regressed = higher_better ? rel < -threshold : rel > threshold;
    bool improved = higher_better ? rel > threshold : rel < -threshold;
    if (regressed) {
      std::printf("  [REGRESSION] %s: %.6g -> %.6g %s (%+.1f%%)\n",
                  key.c_str(), old_v, new_v, b.unit.c_str(), 100.0 * rel);
      ++regressions;
    } else if (improved) {
      std::printf("  [improved]   %s: %.6g -> %.6g %s (%+.1f%%)\n",
                  key.c_str(), old_v, new_v, b.unit.c_str(), 100.0 * rel);
      ++improvements;
    }
  }
  int added = 0;
  for (const auto& [key, n] : next_rows) {
    if (base_rows.find(key) == base_rows.end()) {
      std::printf("  [new row]  %s\n", key.c_str());
      ++added;
    }
  }
  std::printf(
      "%s: %zu baseline rows, %d gated, %d regressed, %d improved, "
      "%d missing, %d new\n",
      experiment.c_str(), base_rows.size(), gated, regressions, improvements,
      missing, added);
  return regressions;
}

// Expands a path argument to the telemetry files under it.
std::vector<fs::path> ExpandPath(const fs::path& p) {
  std::vector<fs::path> out;
  if (fs::is_directory(p)) {
    for (const fs::directory_entry& e : fs::directory_iterator(p)) {
      std::string name = e.path().filename().string();
      if (e.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        out.push_back(e.path());
      }
    }
    std::sort(out.begin(), out.end());
  } else {
    out.push_back(p);
  }
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare --check FILE...\n"
               "       bench_compare [--smoke] [--threshold=F] "
               "[--time-floor=S] BASELINE NEW\n");
  return 2;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      opt.check_only = true;
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      opt.threshold = std::atof(arg.c_str() + std::strlen("--threshold="));
    } else if (arg.rfind("--time-floor=", 0) == 0) {
      opt.time_floor = std::atof(arg.c_str() + std::strlen("--time-floor="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      opt.paths.push_back(arg);
    }
  }

  if (opt.check_only) {
    if (opt.paths.empty()) {
      return Usage();
    }
    for (const std::string& p : opt.paths) {
      for (const fs::path& file : ExpandPath(p)) {
        JsonValue doc;
        if (!LoadDoc(file.string(), &doc)) {
          return 2;
        }
        std::printf("%s: ok (%zu rows)\n", file.string().c_str(),
                    doc.Find("rows")->items().size());
      }
    }
    return 0;
  }

  if (opt.paths.size() != 2) {
    return Usage();
  }
  std::vector<fs::path> base_files = ExpandPath(opt.paths[0]);
  std::vector<fs::path> next_files = ExpandPath(opt.paths[1]);
  if (base_files.empty()) {
    std::fprintf(stderr, "bench_compare: no telemetry files under %s\n",
                 opt.paths[0].c_str());
    return 2;
  }

  int total_regressions = 0;
  for (const fs::path& base_path : base_files) {
    fs::path next_path;
    if (base_files.size() == 1 && next_files.size() == 1) {
      next_path = next_files[0];
    } else {
      for (const fs::path& cand : next_files) {
        if (cand.filename() == base_path.filename()) {
          next_path = cand;
        }
      }
      if (next_path.empty()) {
        std::fprintf(stderr, "bench_compare: no counterpart for %s\n",
                     base_path.string().c_str());
        return 2;
      }
    }
    JsonValue base;
    JsonValue next;
    if (!LoadDoc(base_path.string(), &base) ||
        !LoadDoc(next_path.string(), &next)) {
      return 2;
    }
    if (base.Find("experiment")->AsString() !=
        next.Find("experiment")->AsString()) {
      std::fprintf(stderr,
                   "bench_compare: experiment mismatch: %s vs %s\n",
                   base.Find("experiment")->AsString().c_str(),
                   next.Find("experiment")->AsString().c_str());
      return 2;
    }
    total_regressions += CompareDocs(base, next, opt);
  }
  if (total_regressions > 0) {
    std::printf("FAIL: %d regression(s) beyond %.0f%% threshold\n",
                total_regressions, 100.0 * opt.threshold);
    return 1;
  }
  std::printf(opt.smoke ? "smoke ok\n" : "ok\n");
  return 0;
}

}  // namespace
}  // namespace lsg

int main(int argc, char** argv) { return lsg::Main(argc, argv); }
