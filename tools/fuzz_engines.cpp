// Differential fuzzing driver.
//
// Generates seed-driven op traces and executes them in lockstep against the
// reference oracle and all four engines; on divergence, minimizes the
// failing trace with delta debugging and writes a replay file.
//
//   fuzz_engines --seed=1 --runs=4 --ops=10000 --threads=8
//   fuzz_engines --replay=failure.trace [--threads=N]
//
// Flags:
//   --seed=N            base seed (default 1); run r uses seed+r
//   --runs=N            number of traces to run (default 1)
//   --ops=N             ops per generated trace (default 10000)
//   --vertices=N        initial vertex count (default 96)
//   --max-batch=N       max batch/build payload size (default 512)
//   --threads=N         engine thread-pool size (default 1)
//   --audit-interval=N  invariant audit cadence in ops (default 256)
//   --memory-audit      enable the LSGraph footprint-retention audit
//   --no-minimize       skip shrinking on divergence
//   --out=FILE          where to write the minimized trace
//                       (default fuzz_failure.trace)
//   --replay=FILE       re-execute a trace file instead of generating
//
// Exit status: 0 = clean, 1 = divergence found, 2 = usage/file error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/testing/differential.h"
#include "src/testing/generator.h"
#include "src/testing/shrinker.h"
#include "src/testing/trace.h"

namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

void ReportDivergence(const lsg::Divergence& d) {
  std::fprintf(stderr, "DIVERGENCE at op %zu, engine %s: %s\n", d.op_index,
               d.engine.c_str(), d.message.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int runs = 1;
  lsg::GeneratorConfig gen;
  lsg::RunConfig run;
  bool minimize = true;
  bool memory_audit = false;
  std::string out_path = "fuzz_failure.trace";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--seed", &v)) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--runs", &v)) {
      runs = std::atoi(v);
    } else if (ParseFlag(argv[i], "--ops", &v)) {
      gen.num_ops = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--vertices", &v)) {
      gen.initial_vertices =
          static_cast<lsg::VertexId>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--max-batch", &v)) {
      gen.max_batch = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--threads", &v)) {
      run.threads = std::atoi(v);
    } else if (ParseFlag(argv[i], "--audit-interval", &v)) {
      run.audit_interval = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--memory-audit") == 0) {
      memory_audit = true;
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      minimize = false;
    } else if (ParseFlag(argv[i], "--out", &v)) {
      out_path = v;
    } else if (ParseFlag(argv[i], "--replay", &v)) {
      replay_path = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  run.memory_audit = memory_audit;

  if (!replay_path.empty()) {
    lsg::Trace trace;
    std::string error;
    if (!lsg::ReadTraceFile(replay_path, &trace, &error)) {
      std::fprintf(stderr, "cannot replay %s: %s\n", replay_path.c_str(),
                   error.c_str());
      return 2;
    }
    lsg::Divergence d = lsg::RunTrace(trace, run);
    if (d) {
      ReportDivergence(d);
      return 1;
    }
    std::printf("replay of %s (%zu ops): clean\n", replay_path.c_str(),
                trace.ops.size());
    return 0;
  }

  for (int r = 0; r < runs; ++r) {
    uint64_t run_seed = seed + static_cast<uint64_t>(r);
    lsg::Trace trace = lsg::GenerateTrace(run_seed, gen);
    lsg::Divergence d = lsg::RunTrace(trace, run);
    if (!d) {
      std::printf("seed %llu: %zu ops clean (%d threads)\n",
                  static_cast<unsigned long long>(run_seed), trace.ops.size(),
                  run.threads);
      continue;
    }
    ReportDivergence(d);
    if (minimize) {
      lsg::Trace small = lsg::MinimizeTrace(
          trace, run, [](lsg::VertexId n, lsg::ThreadPool* pool) {
            return lsg::MakeDefaultAdapters(n, pool);
          });
      std::fprintf(stderr, "minimized %zu ops -> %zu ops\n", trace.ops.size(),
                   small.ops.size());
      trace = std::move(small);
    }
    if (lsg::WriteTraceFile(out_path, trace)) {
      std::fprintf(stderr, "replay file written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    }
    return 1;
  }
  return 0;
}
