// Edge-list -> .lsgbin converter.
//
// Reads a SNAP-style text edge list ("src dst" per line, # comments), the
// repo's packed binary edge dump (edge_io.h), or synthesizes an rMat
// dataset, then writes the parallel-loadable .lsgbin container (lsgbin.h).
//
//   make_lsgbin --in=graph.txt --out=graph.lsgbin [--format=text|binary]
//               [--num-vertices=N] [--symmetrize] [--ranges=R]
//   make_lsgbin --rmat=20,8,500 --out=rm20.lsgbin [--ranges=R]
//
// Input edges are sorted and deduplicated here; --num-vertices defaults to
// max endpoint + 1. --symmetrize mirrors every edge (the undirected
// convention the analytics kernels assume).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/gen/datasets.h"
#include "src/gen/edge_io.h"
#include "src/gen/lsgbin.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"
#include "src/util/timer.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: make_lsgbin --in=PATH --out=PATH [--format=text|binary]\n"
               "                   [--num-vertices=N] [--symmetrize] [--ranges=R]\n"
               "       make_lsgbin --rmat=SCALE,AVG_DEGREE,SEED --out=PATH "
               "[--ranges=R]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in;
  std::string out;
  std::string format = "text";
  std::string rmat;
  std::string value;
  uint64_t num_vertices = 0;
  size_t ranges = 0;
  bool symmetrize = false;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--in", &in) || ParseFlag(argv[i], "--out", &out) ||
        ParseFlag(argv[i], "--format", &format) ||
        ParseFlag(argv[i], "--rmat", &rmat)) {
      continue;
    }
    if (ParseFlag(argv[i], "--num-vertices", &value)) {
      num_vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--ranges", &value)) {
      ranges = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--symmetrize") == 0) {
      symmetrize = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage();
    }
  }
  if (out.empty() || (in.empty() == rmat.empty())) {
    return Usage();
  }

  try {
    lsg::Timer timer;
    std::vector<lsg::Edge> edges;
    if (!rmat.empty()) {
      int scale = 0;
      double avg_degree = 0.0;
      unsigned long long seed = 0;
      if (std::sscanf(rmat.c_str(), "%d,%lf,%llu", &scale, &avg_degree,
                      &seed) != 3 ||
          scale < 1 || scale > 30 || avg_degree <= 0.0) {
        std::fprintf(stderr, "bad --rmat spec: %s\n", rmat.c_str());
        return Usage();
      }
      lsg::DatasetSpec spec{"RMAT", scale, avg_degree, seed};
      edges = lsg::BuildDatasetEdges(spec);  // already symmetrized + deduped
      num_vertices = uint64_t{1} << scale;
    } else if (format == "text") {
      edges = lsg::ReadEdgesText(in);
    } else if (format == "binary") {
      edges = lsg::ReadEdgesBinary(in);
    } else {
      std::fprintf(stderr, "unknown --format: %s\n", format.c_str());
      return Usage();
    }
    double read_seconds = timer.Seconds();

    if (symmetrize) {
      size_t n = edges.size();
      edges.reserve(2 * n);
      for (size_t i = 0; i < n; ++i) {
        edges.push_back(lsg::Edge{edges[i].dst, edges[i].src});
      }
    }
    if (num_vertices == 0) {
      for (const lsg::Edge& e : edges) {
        num_vertices = std::max<uint64_t>(
            num_vertices, uint64_t{std::max(e.src, e.dst)} + 1);
      }
    }
    size_t dropped =
        lsg::RemoveOutOfRangeEdges(&edges, static_cast<lsg::VertexId>(num_vertices));
    lsg::ParallelSortEdges(edges, lsg::ThreadPool::Global());

    timer.Reset();
    lsg::WriteLsgbin(out, static_cast<lsg::VertexId>(num_vertices), edges,
                     ranges);
    std::printf(
        "wrote %s: %llu vertices, %zu edges (%zu dropped out-of-range), "
        "read %.3fs write %.3fs\n",
        out.c_str(), static_cast<unsigned long long>(num_vertices),
        edges.size(), dropped, read_seconds, timer.Seconds());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
