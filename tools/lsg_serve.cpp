// lsg_serve: command-line workload driver for the sharded serving layer.
//
// Builds a ShardedGraph (from a generated rMat dataset or a .lsgbin file),
// fronts it with a Router, replays a mixed point-read / update-batch /
// k-hop workload at a target QPS, and prints p50/p99/p999 latency per op
// class plus achieved throughput. With --verify, replays the identical
// update log into a single-engine oracle and fails on any divergence.
//
//   lsg_serve --shards=4 --ops=20000 --qps=10000 --readers=2 --verify
//   lsg_serve --graph=web.lsgbin --shards=8 --ops=100000
//
// Exit codes: 0 ok, 1 divergence or invariant failure, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/gen/datasets.h"
#include "src/gen/lsgbin.h"
#include "src/service/router.h"
#include "src/service/shard_map.h"
#include "src/service/sharded_graph.h"
#include "src/service/workload.h"

namespace lsg {
namespace {

struct Args {
  uint32_t shards = 4;
  int scale = 14;            // 2^scale vertices when generating
  double degree = 8.0;       // average degree when generating
  std::string graph_path;    // non-empty: load .lsgbin instead of generating
  uint64_t ops = 20000;
  double qps = 0.0;          // 0 = closed loop
  uint64_t batch = 1000;
  double read_frac = 0.60;
  double update_frac = 0.25;
  uint32_t khop_depth = 2;
  uint32_t readers = 2;
  size_t engine_threads = 0;  // 0 = hardware width, striped across shards
  uint64_t seed = 42;
  bool compressed = false;
  bool verify = false;
  bool fennel = false;  // Fennel-style placement instead of hash
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: lsg_serve [--shards=N] [--scale=S] [--degree=D]\n"
      "                 [--graph=FILE.lsgbin] [--ops=N] [--qps=Q]\n"
      "                 [--batch=N] [--read-frac=F] [--update-frac=F]\n"
      "                 [--khop-depth=K] [--readers=N] [--threads=N]\n"
      "                 [--seed=N] [--compressed] [--verify] [--fennel]\n");
  return 2;
}

int Run(const Args& args) {
  // Base edges: loaded or generated. The update stream always comes from
  // the rMat generator at the graph's scale so updates hit resident ids.
  DatasetSpec spec{"serve", args.scale, args.degree, args.seed};
  std::vector<Edge> base;
  VertexId n = 0;
  if (!args.graph_path.empty()) {
    LoadedGraph g = LoadLsgbin(args.graph_path);
    base = std::move(g.edges);
    n = g.num_vertices;
    // Update generation needs a scale covering the loaded id space.
    int s = 0;
    while ((VertexId{1} << s) < n && s < 31) {
      ++s;
    }
    spec.scale = s;
  } else {
    base = BuildDatasetEdges(spec);
    n = VertexId{1} << args.scale;
  }
  std::printf("lsg_serve: %u vertices, %zu base edges, %u shards (%s)\n",
              n, base.size(), args.shards, args.fennel ? "fennel" : "hash");

  ServiceOptions sopts;
  sopts.num_shards = args.shards;
  sopts.engine_threads = args.engine_threads;
  sopts.engine.compress_leaves = args.compressed;
  if (std::string err = sopts.Validate(); !err.empty()) {
    std::fprintf(stderr, "lsg_serve: bad options: %s\n", err.c_str());
    return 2;
  }
  std::unique_ptr<ShardMap> map;
  if (args.fennel) {
    map = std::make_unique<TableShardMap>(
        args.shards, BuildFennelShardTable(n, base, args.shards), "fennel");
  } else {
    map = std::make_unique<HashShardMap>(args.shards);
  }
  ShardedGraph graph(n, std::move(map), sopts);
  graph.BuildFromEdges(base);
  Router router(graph);

  WorkloadSpec wl;
  wl.ops = args.ops;
  wl.point_read_frac = args.read_frac;
  wl.update_frac = args.update_frac;
  wl.update_batch_size = args.batch;
  wl.khop_depth = args.khop_depth;
  wl.target_qps = args.qps;
  wl.reader_threads = args.readers;
  wl.seed = args.seed;
  wl.updates = spec;
  wl.keep_update_log = args.verify;
  if (std::string err = wl.Validate(); !err.empty()) {
    std::fprintf(stderr, "lsg_serve: bad workload: %s\n", err.c_str());
    return 2;
  }

  WorkloadResult res = RunWorkload(router, wl);

  std::printf("%llu ops in %.3f s -> %.0f ops/s (target %s)\n",
              static_cast<unsigned long long>(res.ops_issued),
              res.wall_seconds, res.achieved_qps(),
              args.qps > 0 ? std::to_string(args.qps).c_str() : "unpaced");
  struct {
    const char* name;
    const LatencyHistogram* h;
  } classes[] = {{"point_read", &res.point_read},
                 {"update", &res.update},
                 {"khop", &res.khop}};
  std::printf("%-11s %10s %12s %12s %12s %12s\n", "op", "count", "p50(us)",
              "p99(us)", "p999(us)", "max(us)");
  for (const auto& c : classes) {
    std::printf("%-11s %10llu %12.1f %12.1f %12.1f %12.1f\n", c.name,
                static_cast<unsigned long long>(c.h->count()),
                c.h->PercentileSeconds(0.50) * 1e6,
                c.h->PercentileSeconds(0.99) * 1e6,
                c.h->PercentileSeconds(0.999) * 1e6,
                static_cast<double>(c.h->max_nanos()) * 1e-3);
  }
  std::printf("ingest: %llu edges submitted, %llu applied\n",
              static_cast<unsigned long long>(res.edges_submitted),
              static_cast<unsigned long long>(res.edges_applied));

  if (args.verify) {
    std::string divergence = VerifyAgainstOracle(router, base, res.update_log,
                                                 sopts.engine, args.seed);
    if (!divergence.empty()) {
      std::fprintf(stderr, "lsg_serve: DIVERGENCE vs single-engine oracle: %s\n",
                   divergence.c_str());
      return 1;
    }
    if (!graph.CheckInvariants()) {
      std::fprintf(stderr, "lsg_serve: invariant check failed\n");
      return 1;
    }
    std::printf("verify: OK (oracle-equivalent, invariants hold)\n");
  }
  return 0;
}

}  // namespace
}  // namespace lsg

int main(int argc, char** argv) {
  lsg::Args args;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (lsg::ParseFlag(argv[i], "--shards", &v)) {
      args.shards = static_cast<uint32_t>(std::atoi(v));
    } else if (lsg::ParseFlag(argv[i], "--scale", &v)) {
      args.scale = std::atoi(v);
    } else if (lsg::ParseFlag(argv[i], "--degree", &v)) {
      args.degree = std::atof(v);
    } else if (lsg::ParseFlag(argv[i], "--graph", &v)) {
      args.graph_path = v;
    } else if (lsg::ParseFlag(argv[i], "--ops", &v)) {
      args.ops = std::strtoull(v, nullptr, 10);
    } else if (lsg::ParseFlag(argv[i], "--qps", &v)) {
      args.qps = std::atof(v);
    } else if (lsg::ParseFlag(argv[i], "--batch", &v)) {
      args.batch = std::strtoull(v, nullptr, 10);
    } else if (lsg::ParseFlag(argv[i], "--read-frac", &v)) {
      args.read_frac = std::atof(v);
    } else if (lsg::ParseFlag(argv[i], "--update-frac", &v)) {
      args.update_frac = std::atof(v);
    } else if (lsg::ParseFlag(argv[i], "--khop-depth", &v)) {
      args.khop_depth = static_cast<uint32_t>(std::atoi(v));
    } else if (lsg::ParseFlag(argv[i], "--readers", &v)) {
      args.readers = static_cast<uint32_t>(std::atoi(v));
    } else if (lsg::ParseFlag(argv[i], "--threads", &v)) {
      args.engine_threads = static_cast<size_t>(std::atoll(v));
    } else if (lsg::ParseFlag(argv[i], "--seed", &v)) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--compressed") == 0) {
      args.compressed = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      args.verify = true;
    } else if (std::strcmp(argv[i], "--fennel") == 0) {
      args.fennel = true;
    } else {
      return lsg::Usage();
    }
  }
  return lsg::Run(args);
}
