// Tests for the shared parallel batch-ingestion pipeline: ParallelSortEdges
// must be byte-identical to the serial RadixSortEdges + DedupSortedEdges
// reference on adversarial inputs, PrepareBatch's fused grouping must match
// a serial boundary scan, and every engine's InsertBatch / DeleteBatch must
// agree with a std::set reference across 1/2/8 threads under heavy source
// duplication, duplicate (src, dst) pairs, and single-hub skew.
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "src/baselines/ctree_graph.h"
#include "src/baselines/sortledton_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/edgemap.h"
#include "src/core/lsgraph.h"
#include "src/parallel/thread_pool.h"
#include "src/util/prng.h"
#include "src/util/sort.h"
#include "tests/reference.h"

namespace lsg {
namespace {

std::vector<Edge> SerialSortDedup(std::vector<Edge> edges) {
  RadixSortEdges(edges);
  DedupSortedEdges(edges);
  return edges;
}

std::vector<size_t> SerialStarts(const std::vector<Edge>& sorted) {
  std::vector<size_t> starts;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i].src != sorted[i - 1].src) {
      starts.push_back(i);
    }
  }
  starts.push_back(sorted.size());
  return starts;
}

void ExpectByteIdentical(const std::vector<Edge>& got,
                         const std::vector<Edge>& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(Edge)));
  }
}

std::vector<Edge> RandomEdges(size_t n, VertexId universe, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    edges.push_back({static_cast<VertexId>(rng.NextBounded(universe)),
                     static_cast<VertexId>(rng.NextBounded(universe))});
  }
  return edges;
}

TEST(ParallelSortEdgesTest, MatchesSerialOnRandomInputs) {
  for (size_t nthreads : {2u, 8u}) {
    ThreadPool pool(nthreads);
    uint64_t seed = 1;
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{100},
                     size_t{2047}, size_t{2048}, size_t{5000}, size_t{40000},
                     size_t{200000}}) {
      for (VertexId universe : {VertexId{8}, VertexId{1000},
                                VertexId{1} << 20}) {
        std::vector<Edge> edges = RandomEdges(n, universe, seed++);
        std::vector<Edge> want = SerialSortDedup(edges);
        ParallelSortEdges(edges, pool);
        ExpectByteIdentical(edges, want);
      }
    }
  }
}

TEST(ParallelSortEdgesTest, AllEqualKeys) {
  ThreadPool pool(4);
  std::vector<Edge> edges(50000, Edge{7, 9});
  std::vector<Edge> want = SerialSortDedup(edges);
  ParallelSortEdges(edges, pool);
  ExpectByteIdentical(edges, want);
  EXPECT_EQ(edges.size(), 1u);
}

TEST(ParallelSortEdgesTest, ReverseSortedAndPresorted) {
  ThreadPool pool(4);
  std::vector<Edge> reversed;
  for (size_t i = 50000; i-- > 0;) {
    reversed.push_back({static_cast<VertexId>(i / 4),
                        static_cast<VertexId>(i % 4)});
  }
  std::vector<Edge> want = SerialSortDedup(reversed);
  std::vector<Edge> presorted = want;  // already sorted + unique
  ParallelSortEdges(reversed, pool);
  ExpectByteIdentical(reversed, want);
  ParallelSortEdges(presorted, pool);
  ExpectByteIdentical(presorted, want);
}

TEST(ParallelSortEdgesTest, SingleHubSourceWithDuplicates) {
  ThreadPool pool(8);
  SplitMix64 rng(99);
  std::vector<Edge> edges;
  // 70% of the batch hits one source with a small dst range, so duplicate
  // (src, dst) pairs are dense and the key range collapses to dst bits.
  for (size_t i = 0; i < 70000; ++i) {
    edges.push_back({42, static_cast<VertexId>(rng.NextBounded(5000))});
  }
  for (size_t i = 0; i < 30000; ++i) {
    edges.push_back({static_cast<VertexId>(rng.NextBounded(1000)),
                     static_cast<VertexId>(rng.NextBounded(1000))});
  }
  std::vector<Edge> want = SerialSortDedup(edges);
  ParallelSortEdges(edges, pool);
  ExpectByteIdentical(edges, want);
}

TEST(ParallelSortEdgesTest, ExtremeVertexIds) {
  ThreadPool pool(4);
  SplitMix64 rng(7);
  std::vector<Edge> edges;
  for (size_t i = 0; i < 40000; ++i) {
    // Keys clustered near the top of the 64-bit key space.
    edges.push_back(
        {static_cast<VertexId>(~VertexId{0} - rng.NextBounded(17)),
         static_cast<VertexId>(~VertexId{0} - rng.NextBounded(100000))});
  }
  std::vector<Edge> want = SerialSortDedup(edges);
  ParallelSortEdges(edges, pool);
  ExpectByteIdentical(edges, want);
}

TEST(PrepareBatchTest, FusedGroupingMatchesSerialScan) {
  for (size_t nthreads : {1u, 2u, 8u}) {
    ThreadPool pool(nthreads);
    std::vector<Edge> edges = RandomEdges(120000, 5000, 11 + nthreads);
    std::vector<Edge> want = SerialSortDedup(edges);
    PreparedBatch pb = PrepareBatch(std::move(edges), pool);
    ExpectByteIdentical(pb.edges, want);
    EXPECT_EQ(pb.starts, SerialStarts(want));
  }
}

TEST(PrepareBatchTest, OrderIsLargestFirstPermutation) {
  ThreadPool pool(4);
  SplitMix64 rng(3);
  std::vector<Edge> edges;
  for (size_t i = 0; i < 60000; ++i) {  // hub + tail of small groups
    edges.push_back({5, static_cast<VertexId>(rng.NextBounded(40000))});
  }
  for (size_t i = 0; i < 40000; ++i) {
    edges.push_back({static_cast<VertexId>(rng.NextBounded(20000)),
                     static_cast<VertexId>(rng.NextBounded(50))});
  }
  PreparedBatch pb = PrepareBatch(std::move(edges), pool);
  ASSERT_EQ(pb.order.size(), pb.groups());
  std::vector<uint8_t> seen(pb.groups(), 0);
  int prev_class = 65;
  for (uint32_t g : pb.order) {
    ASSERT_LT(g, pb.groups());
    EXPECT_FALSE(seen[g]);
    seen[g] = 1;
    // Sizes are ordered by descending size class (within a class sizes may
    // interleave, but a strictly larger class never follows a smaller one).
    int cls = std::bit_width(pb.group_end(g) - pb.group_begin(g));
    EXPECT_LE(cls, prev_class);
    prev_class = cls;
  }
  // The hub group must be scheduled first.
  EXPECT_EQ(pb.group_source(pb.order[0]), 5u);
}

TEST(PrepareBatchTest, EmptyBatch) {
  ThreadPool pool(2);
  PreparedBatch pb = PrepareBatch({}, pool);
  EXPECT_TRUE(pb.edges.empty());
  EXPECT_EQ(pb.groups(), 0u);
  size_t calls = 0;
  ForEachGroupLargestFirst(pb, pool, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(PrepareBatchTest, PhaseStatsArePopulated) {
  ThreadPool pool(4);
  PrepareStats stats;
  PreparedBatch pb =
      PrepareBatch(RandomEdges(100000, 10000, 21), pool, &stats);
  EXPECT_GT(pb.groups(), 0u);
  EXPECT_GT(stats.sort_seconds, 0.0);
  EXPECT_GE(stats.group_seconds, 0.0);
}

TEST(VertexSubsetTest, AllIsImplicitUntilAsked) {
  // kAll is O(1): no id array, no bitmap. Either materializes only when
  // explicitly requested.
  VertexSubset all = VertexSubset::All(100000);
  ASSERT_EQ(all.size(), 100000u);
  EXPECT_TRUE(all.is_all());
  EXPECT_FALSE(all.sparse_materialized());
  EXPECT_FALSE(all.dense_materialized());
  ThreadPool pool(8);
  const std::vector<VertexId>& ids = all.vertices(&pool);
  EXPECT_TRUE(all.sparse_materialized());
  ASSERT_EQ(ids.size(), 100000u);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(ids[i], static_cast<VertexId>(i));
  }
  const AtomicBitset& bits = all.bits(&pool);
  EXPECT_TRUE(all.dense_materialized());
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(99999));
}

// ---- Engine equivalence vs a std::set reference across thread counts. ----

template <typename E>
std::unique_ptr<E> MakeEngine(VertexId n, ThreadPool* pool);

template <>
std::unique_ptr<LSGraph> MakeEngine(VertexId n, ThreadPool* pool) {
  return std::make_unique<LSGraph>(n, Options{}, pool);
}
template <>
std::unique_ptr<TerraceGraph> MakeEngine(VertexId n, ThreadPool* pool) {
  return std::make_unique<TerraceGraph>(n, TerraceOptions{}, pool);
}
template <>
std::unique_ptr<AspenGraph> MakeEngine(VertexId n, ThreadPool* pool) {
  return std::make_unique<AspenGraph>(n, pool);
}
template <>
std::unique_ptr<PacTreeGraph> MakeEngine(VertexId n, ThreadPool* pool) {
  return std::make_unique<PacTreeGraph>(n, pool);
}
template <>
std::unique_ptr<SortledtonGraph> MakeEngine(VertexId n, ThreadPool* pool) {
  return std::make_unique<SortledtonGraph>(n, pool);
}

template <typename E>
void ExpectMatchesReference(const E& g, const RefGraph& ref) {
  ASSERT_EQ(g.num_edges(), ref.num_edges());
  ASSERT_TRUE(g.CheckInvariants());
  for (VertexId v = 0; v < ref.num_vertices(); ++v) {
    ASSERT_EQ(g.degree(v), ref.degree(v)) << "vertex " << v;
    std::vector<VertexId> got;
    g.map_neighbors(v, [&got](VertexId u) { got.push_back(u); });
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, ref.Neighbors(v)) << "vertex " << v;
  }
}

size_t RefInsertBatch(RefGraph& ref, const std::vector<Edge>& batch) {
  size_t added = 0;
  for (const Edge& e : batch) {
    added += ref.Insert(e.src, e.dst);
  }
  return added;
}

size_t RefDeleteBatch(RefGraph& ref, const std::vector<Edge>& batch) {
  size_t removed = 0;
  for (const Edge& e : batch) {
    removed += ref.Delete(e.src, e.dst);
  }
  return removed;
}

template <typename E>
class BatchEquivalenceTest : public ::testing::Test {};

using EngineTypes = ::testing::Types<LSGraph, TerraceGraph, AspenGraph,
                                     PacTreeGraph, SortledtonGraph>;
TYPED_TEST_SUITE(BatchEquivalenceTest, EngineTypes);

TYPED_TEST(BatchEquivalenceTest, RandomizedAgainstSetReference) {
  constexpr VertexId kV = 3000;
  for (size_t nthreads : {1u, 2u, 8u}) {
    ThreadPool pool(nthreads);
    auto g = MakeEngine<TypeParam>(kV, &pool);
    RefGraph ref(kV);
    SplitMix64 rng(1000 + nthreads);

    // Base load: random batch with natural duplicates.
    std::vector<Edge> base = RandomEdges(20000, kV, rng.Next());
    EXPECT_EQ(g->InsertBatch(base), RefInsertBatch(ref, base));
    ExpectMatchesReference(*g, ref);

    // Heavy source duplication: ten sources, narrow dst range, so both
    // duplicate sources and duplicate (src, dst) pairs are dense.
    std::vector<Edge> dup_heavy;
    for (size_t i = 0; i < 30000; ++i) {
      dup_heavy.push_back({static_cast<VertexId>(rng.NextBounded(10)),
                           static_cast<VertexId>(rng.NextBounded(200))});
    }
    EXPECT_EQ(g->InsertBatch(dup_heavy), RefInsertBatch(ref, dup_heavy));
    ExpectMatchesReference(*g, ref);

    // Single hub vertex receiving > 50% of the batch (skew scheduler path).
    std::vector<Edge> hub;
    for (size_t i = 0; i < 25000; ++i) {
      hub.push_back({42, static_cast<VertexId>(rng.NextBounded(kV))});
    }
    for (size_t i = 0; i < 15000; ++i) {
      hub.push_back({static_cast<VertexId>(rng.NextBounded(kV)),
                     static_cast<VertexId>(rng.NextBounded(kV))});
    }
    EXPECT_EQ(g->InsertBatch(hub), RefInsertBatch(ref, hub));
    ExpectMatchesReference(*g, ref);

    // Deletion mixing present and absent edges, with the hub again heavy.
    std::vector<Edge> del;
    for (size_t i = 0; i < 20000; ++i) {
      del.push_back({42, static_cast<VertexId>(rng.NextBounded(kV))});
    }
    for (size_t i = 0; i < 10000; ++i) {
      del.push_back({static_cast<VertexId>(rng.NextBounded(kV)),
                     static_cast<VertexId>(rng.NextBounded(kV))});
    }
    EXPECT_EQ(g->DeleteBatch(del), RefDeleteBatch(ref, del));
    ExpectMatchesReference(*g, ref);
  }
}

}  // namespace
}  // namespace lsg
