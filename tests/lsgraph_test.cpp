// LSGraph-specific behaviour beyond the engine-generic typed tests:
// representation transitions, option plumbing, stats, index accounting.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/lsgraph.h"
#include "src/gen/rmat.h"
#include "src/util/prng.h"
#include "tests/reference.h"

namespace lsg {
namespace {

std::vector<VertexId> Neighbors(const LSGraph& g, VertexId v) {
  std::vector<VertexId> out;
  g.map_neighbors(v, [&out](VertexId u) { out.push_back(u); });
  return out;
}

TEST(LSGraphTest, InlineOnlyVertexNeverAllocatesTail) {
  LSGraph g(128);
  for (VertexId v = 0; v < LSGraph::kInlineCap; ++v) {
    g.InsertEdge(0, v + 100);
  }
  EXPECT_EQ(g.degree(0), LSGraph::kInlineCap);
  // The whole adjacency fits one cache line: footprint stays at the vertex
  // block array.
  EXPECT_EQ(g.memory_footprint(), 128 * kCacheLineBytes);
  EXPECT_EQ(g.index_bytes(), 0u);
}

TEST(LSGraphTest, InlineKeepsSmallestIds) {
  LSGraph g(128);
  // Insert descending so the inline run must keep rotating.
  for (VertexId v = 100; v-- > 0;) {
    ASSERT_TRUE(g.InsertEdge(0, v));
  }
  std::vector<VertexId> got = Neighbors(g, 0);
  for (VertexId v = 0; v < 100; ++v) {
    ASSERT_EQ(got[v], v);
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(LSGraphTest, SmallMThresholdProducesHiTreeTails) {
  Options options;
  options.a_threshold = 16;
  options.m_threshold = 64;
  options.block_size = 8;
  LSGraph g(1024, options);
  std::vector<Edge> batch;
  for (VertexId v = 0; v < 1000; ++v) {
    batch.push_back(Edge{0, v});
  }
  g.InsertBatch(batch);
  EXPECT_EQ(g.degree(0), 1000u);
  EXPECT_EQ(Neighbors(g, 0).size(), 1000u);
  EXPECT_GT(g.stats().ria_to_hitree_conversions.load() +
                g.stats().ria_expansions.load(),
            0u);
  EXPECT_GT(g.index_bytes(), 0u);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(LSGraphTest, DeleteBackfillsInlineFromTail) {
  LSGraph g(128);
  for (VertexId v = 0; v < 100; ++v) {
    g.InsertEdge(1, v);
  }
  // Delete an inline (small) id: a tail id must backfill so traversal stays
  // complete and ordered.
  ASSERT_TRUE(g.DeleteEdge(1, 0));
  std::vector<VertexId> got = Neighbors(g, 1);
  ASSERT_EQ(got.size(), 99u);
  for (VertexId v = 0; v < 99; ++v) {
    ASSERT_EQ(got[v], v + 1);
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(LSGraphTest, AlphaControlsFootprint) {
  Options tight;
  tight.alpha = 1.1;
  Options loose;
  loose.alpha = 2.0;
  LSGraph g_tight(1024, tight);
  LSGraph g_loose(1024, loose);
  RmatGenerator gen({10, 0.5, 0.1, 0.1}, 77);
  std::vector<Edge> edges = gen.Generate(0, 200000);
  g_tight.BuildFromEdges(edges);
  g_loose.BuildFromEdges(edges);
  EXPECT_EQ(g_tight.num_edges(), g_loose.num_edges());
  EXPECT_LT(g_tight.memory_footprint(), g_loose.memory_footprint());
}

TEST(LSGraphTest, BuildMatchesIncrementalInserts) {
  RmatGenerator gen({8, 0.5, 0.1, 0.1}, 5);
  std::vector<Edge> edges = gen.Generate(0, 3000);
  LSGraph bulk(256);
  bulk.BuildFromEdges(edges);
  LSGraph incremental(256);
  for (const Edge& e : edges) {
    incremental.InsertEdge(e.src, e.dst);
  }
  EXPECT_EQ(bulk.num_edges(), incremental.num_edges());
  for (VertexId v = 0; v < 256; ++v) {
    ASSERT_EQ(Neighbors(bulk, v), Neighbors(incremental, v)) << "vertex " << v;
  }
}

TEST(LSGraphTest, ParallelBatchesWithDedicatedPool) {
  ThreadPool pool(4);
  LSGraph g(512, Options{}, &pool);
  RmatGenerator gen({9, 0.5, 0.1, 0.1}, 13);
  RefGraph ref(512);
  for (int round = 0; round < 10; ++round) {
    std::vector<Edge> batch = gen.Generate(round * 5000, 5000);
    size_t expect = 0;
    for (const Edge& e : batch) {
      expect += ref.Insert(e.src, e.dst);
    }
    ASSERT_EQ(g.InsertBatch(batch), expect);
  }
  for (VertexId v = 0; v < 512; ++v) {
    ASSERT_EQ(Neighbors(g, v), ref.Neighbors(v)) << "vertex " << v;
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(LSGraphTest, FillNeighborsAppends) {
  LSGraph g(4);
  g.InsertEdge(0, 3);
  g.InsertEdge(0, 1);
  std::vector<VertexId> out = {99};
  g.FillNeighbors(0, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{99, 1, 3}));
}

TEST(LSGraphTest, RebuildReplacesAllAdjacency) {
  // Regression: BuildFromEdges on a non-empty engine used to overwrite
  // vb.tail without freeing the old HiNode (leak) and left vertices absent
  // from the new list with their stale adjacency.
  LSGraph g(256);
  RmatGenerator gen({8, 0.5, 0.1, 0.1}, 9);
  g.BuildFromEdges(gen.Generate(0, 20000));
  ASSERT_GT(g.degree(7), 0u);
  // Rebuild with a disjoint edge list touching only vertex 1.
  std::vector<Edge> second;
  for (VertexId v = 2; v < 100; ++v) {
    second.push_back(Edge{1, v});
  }
  g.BuildFromEdges(second);
  EXPECT_EQ(g.num_edges(), second.size());
  EXPECT_EQ(g.degree(1), second.size());
  for (VertexId v = 0; v < 256; ++v) {
    if (v != 1) {
      EXPECT_EQ(g.degree(v), 0u) << "stale adjacency on vertex " << v;
    }
  }
  EXPECT_TRUE(g.CheckInvariants());
  // Footprint matches a fresh engine built straight from the second list:
  // nothing from the first build is retained.
  LSGraph fresh(256);
  fresh.BuildFromEdges(second);
  EXPECT_EQ(g.memory_footprint(), fresh.memory_footprint());
}

TEST(LSGraphTest, DeleteHeavyStreamReleasesFootprint) {
  // Regression for delete-path retention: draining 90% of a hub vertex
  // must release tail structures (drained-tail free + LIA->RIA->array
  // downgrades + RIA contraction), not pin the high-water representation.
  Options o;
  o.m_threshold = 1024;
  LSGraph g(40000, o);
  std::vector<Edge> edges;
  for (VertexId u = 13; u < 40000; ++u) {
    edges.push_back(Edge{0, u});  // hub vertex, LIA-sized tail
  }
  g.BuildFromEdges(edges);
  ASSERT_GT(g.degree(0), 30000u);
  size_t peak = g.memory_footprint();
  std::vector<Edge> dels;
  VertexId kept = 0;
  g.map_neighbors(0, [&](VertexId u) {
    if (kept++ % 100 != 0) {
      dels.push_back(Edge{0, u});  // keep 1 in 100: shrinks past M/2
    }
  });
  g.DeleteBatch(dels);
  EXPECT_TRUE(g.CheckInvariants());
  EXPECT_GT(g.stats().hitree_to_ria_conversions.load() +
                g.stats().ria_to_array_conversions.load() +
                g.stats().ria_contractions.load(),
            0u);
  // Rebuilding the surviving edges from scratch gives the floor; the live
  // engine must be within a small constant factor of it, far below peak.
  std::vector<Edge> survivors;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    g.map_neighbors(v, [&](VertexId u) { survivors.push_back(Edge{v, u}); });
  }
  LSGraph fresh(g.num_vertices(), o);
  fresh.BuildFromEdges(survivors);
  EXPECT_LT(g.memory_footprint(),
            3 * fresh.memory_footprint() + (size_t{1} << 16));
  EXPECT_LT(g.memory_footprint(), peak);
}

TEST(LSGraphTest, IndexOverheadStaysSmall) {
  // Table 3 reports index overhead of 2.9%-5.4%; our accounting should land
  // in the same ballpark on a skewed graph.
  LSGraph g(1 << 14);
  RmatGenerator gen({14, 0.5, 0.1, 0.1}, 21);
  g.BuildFromEdges(gen.Generate(0, 2000000));
  double ratio =
      static_cast<double>(g.index_bytes()) / g.memory_footprint();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 0.15);
}

}  // namespace
}  // namespace lsg
