#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/analytics/bc.h"
#include "src/analytics/bfs.h"
#include "src/analytics/cc.h"
#include "src/analytics/kcore.h"
#include "src/analytics/pagerank.h"
#include "src/analytics/tc.h"
#include "src/core/cria.h"
#include "src/core/hitree.h"
#include "src/core/lsgraph.h"
#include "src/core/ria.h"
#include "src/gen/datasets.h"
#include "src/parallel/thread_pool.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

Options MakeOptions(uint32_t block_bytes = 32, double alpha = 1.2,
                    CoreStats* stats = nullptr) {
  Options o;
  o.compress_leaves = true;
  o.cria_block_bytes = block_bytes;
  o.alpha = alpha;
  o.stats = stats;
  return o;
}

TEST(CriaTest, EmptyCria) {
  Cria cria(MakeOptions());
  EXPECT_TRUE(cria.empty());
  EXPECT_FALSE(cria.Contains(3));
  EXPECT_FALSE(cria.Delete(3));
  EXPECT_TRUE(cria.CheckInvariants());
}

TEST(CriaTest, FirstInsertBootstraps) {
  Cria cria(MakeOptions());
  EXPECT_TRUE(cria.Insert(42));
  EXPECT_TRUE(cria.Contains(42));
  EXPECT_EQ(cria.First(), 42u);
  EXPECT_EQ(cria.size(), 1u);
  EXPECT_TRUE(cria.CheckInvariants());
}

TEST(CriaTest, BulkLoadRoundTrips) {
  Cria cria(MakeOptions());
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 1000; ++v) {
    ids.push_back(v * 5);
  }
  cria.BulkLoad(ids);
  EXPECT_EQ(cria.size(), 1000u);
  EXPECT_EQ(cria.Decode(), ids);
  EXPECT_TRUE(cria.CheckInvariants());
}

TEST(CriaTest, DuplicateInsertRejected) {
  Cria cria(MakeOptions());
  std::vector<VertexId> ids = {1, 2, 3, 4, 5};
  cria.BulkLoad(ids);
  EXPECT_FALSE(cria.Insert(3));
  EXPECT_EQ(cria.size(), 5u);
}

TEST(CriaTest, ContainsFindsAnchorsAndInteriorIds) {
  Cria cria(MakeOptions(16));  // small blocks: many anchors
  std::vector<VertexId> ids;
  for (VertexId v = 10; v < 500; v += 3) {
    ids.push_back(v);
  }
  cria.BulkLoad(ids);
  for (VertexId v = 0; v < 520; ++v) {
    EXPECT_EQ(cria.Contains(v), std::binary_search(ids.begin(), ids.end(), v))
        << v;
  }
}

TEST(CriaTest, MapWhileStopsEarly) {
  Cria cria(MakeOptions());
  std::vector<VertexId> ids = {2, 4, 6, 8, 10};
  cria.BulkLoad(ids);
  std::vector<VertexId> seen;
  bool finished = cria.MapWhile([&seen](VertexId v) {
    seen.push_back(v);
    return v < 6;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(seen, (std::vector<VertexId>{2, 4, 6}));
  EXPECT_TRUE(cria.MapWhile([](VertexId) { return true; }));
}

TEST(CriaTest, WideDeltasUseMultiByteVarints) {
  // Deltas straddling the 1/2/3-byte varint boundaries, plus the max id.
  Cria cria(MakeOptions(32));
  std::vector<VertexId> ids = {0,      1,       128,        16384,
                               100000, 4000000, 0xfffffffe};
  cria.BulkLoad(ids);
  EXPECT_EQ(cria.Decode(), ids);
  for (VertexId v : ids) {
    EXPECT_TRUE(cria.Contains(v)) << v;
  }
  EXPECT_TRUE(cria.Insert(0xfffffffd));
  EXPECT_TRUE(cria.Delete(16384));
  EXPECT_TRUE(cria.CheckInvariants());
}

TEST(CriaTest, MapDecodesExtremeDeltasAcrossManyBlocks) {
  // Stress the fused window decoder: every varint length (1-5 bytes)
  // interleaved, spread over enough blocks to exercise the quad, pair, and
  // serial remainder paths plus their drain loops (counts differ per block
  // because the widths vary). Checked at several block counts so each
  // remainder (num_blocks % 4 in 0..3) is hit.
  SplitMix64 rng(21);
  for (int target_blocks = 1; target_blocks <= 9; ++target_blocks) {
    Cria cria(MakeOptions(32));
    std::vector<VertexId> ids;
    uint64_t v = 0;
    while (cria.num_blocks() < static_cast<size_t>(target_blocks)) {
      static constexpr uint64_t kSpans[5] = {1, 1u << 7, 1u << 14, 1u << 21,
                                             1u << 28};
      v += kSpans[rng.Next() % 5] + rng.Next() % 64;
      if (v > 0xfffffffeULL) {
        break;
      }
      ids.push_back(static_cast<VertexId>(v));
      cria.BulkLoad(ids);
    }
    EXPECT_EQ(cria.Decode(), ids) << "blocks=" << target_blocks;
    ASSERT_TRUE(cria.CheckInvariants());
  }
}

TEST(CriaTest, RandomizedInsertDeleteMatchesSet) {
  // Tiny blocks force frequent redistributions and rebuilds.
  CoreStats stats;
  Cria cria(MakeOptions(16, 1.1, &stats));
  std::set<VertexId> ref;
  SplitMix64 rng(7);
  for (int i = 0; i < 6000; ++i) {
    VertexId v = static_cast<VertexId>(rng.Next() % 2048);
    if (rng.Next() % 3 != 0) {
      EXPECT_EQ(cria.Insert(v), ref.insert(v).second);
    } else {
      EXPECT_EQ(cria.Delete(v), ref.erase(v) != 0);
    }
    if (i % 256 == 0) {
      ASSERT_TRUE(cria.CheckInvariants()) << "op " << i;
    }
  }
  ASSERT_TRUE(cria.CheckInvariants());
  std::vector<VertexId> expect(ref.begin(), ref.end());
  EXPECT_EQ(cria.Decode(), expect);
  // The churn must have exercised the multi-block re-encode paths.
  EXPECT_GT(cria.stats().redistributions + cria.stats().rebuilds, 0u);
  EXPECT_GT(stats.cria_recompressions.load(), 0u);
}

TEST(CriaTest, MergeInsertAndDeleteMatchSetAlgebra) {
  Cria cria(MakeOptions());
  std::vector<VertexId> base = {1, 5, 9, 13, 17, 21};
  cria.BulkLoad(base);
  std::vector<VertexId> add = {2, 5, 9, 30};  // two dups
  EXPECT_EQ(cria.MergeInsert(add), 2u);
  EXPECT_EQ(cria.size(), 8u);
  std::vector<VertexId> del = {1, 2, 3, 30};  // one miss
  EXPECT_EQ(cria.MergeDelete(del), 3u);
  EXPECT_EQ(cria.Decode(), (std::vector<VertexId>{5, 9, 13, 17, 21}));
  EXPECT_TRUE(cria.CheckInvariants());
}

TEST(CriaTest, DeleteHeavyStreamContractsAllocation) {
  Cria cria(MakeOptions(64, 1.2));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 20000; ++v) {
    ids.push_back(v);
  }
  cria.BulkLoad(ids);
  size_t full = cria.memory_footprint();
  SplitMix64 rng(3);
  while (cria.size() > 100) {
    VertexId v = static_cast<VertexId>(rng.Next() % 20000);
    cria.Delete(v);
  }
  ASSERT_TRUE(cria.CheckInvariants());
  EXPECT_GT(cria.stats().contractions, 0u);
  EXPECT_LT(cria.memory_footprint(), full / 8);
}

TEST(CriaTest, NeighborsDecodedCounterTracksScans) {
  CoreStats stats;
  Cria cria(MakeOptions(32, 1.2, &stats));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 100; ++v) {
    ids.push_back(v * 2);
  }
  cria.BulkLoad(ids);
  stats.neighbors_decoded = 0;
  cria.Map([](VertexId) {});
  EXPECT_EQ(stats.neighbors_decoded.load(), 100u);
  stats.neighbors_decoded = 0;
  cria.MapWhile([](VertexId v) { return v < 10; });  // stops at 10: 6 decoded
  EXPECT_EQ(stats.neighbors_decoded.load(), 6u);
  stats.neighbors_decoded = 0;
  cria.Contains(0);  // anchor hit: one id
  EXPECT_EQ(stats.neighbors_decoded.load(), 1u);
  uint64_t before = stats.neighbors_decoded.load();
  cria.Insert(33);  // update path decodes its home block
  EXPECT_GT(stats.neighbors_decoded.load(), before);
}

TEST(CriaTest, BytesResidentGaugeFollowsLifetime) {
  CoreStats stats;
  {
    Cria cria(MakeOptions(64, 1.2, &stats));
    std::vector<VertexId> ids;
    for (VertexId v = 0; v < 5000; ++v) {
      ids.push_back(v * 3);
    }
    cria.BulkLoad(ids);
    uint64_t resident = stats.bytes_resident.load();
    EXPECT_EQ(resident, cria.memory_footprint());
    cria.BulkLoad(std::vector<VertexId>{1, 2, 3});
    EXPECT_LT(stats.bytes_resident.load(), resident);
    EXPECT_EQ(stats.bytes_resident.load(), cria.memory_footprint());
  }
  EXPECT_EQ(stats.bytes_resident.load(), 0u);  // destructor released it all
}

TEST(CriaTest, CompressesDenseRunsWellBelowRawRia) {
  Options copt = MakeOptions(128);
  Options ropt;  // raw defaults
  std::vector<VertexId> ids;
  SplitMix64 rng(11);
  std::set<VertexId> pick;
  while (pick.size() < 50000) {
    pick.insert(static_cast<VertexId>(rng.Next() % 400000));  // avg delta 8
  }
  ids.assign(pick.begin(), pick.end());
  Cria cria(copt);
  cria.BulkLoad(ids);
  Ria ria(ropt);
  ria.BulkLoad(ids);
  EXPECT_EQ(cria.Decode(), ria.Decode());
  // >= 2x on the adjacency bytes, the Table 3 axis this mode targets.
  EXPECT_LT(cria.memory_footprint() * 2, ria.memory_footprint());
}

// ---------------------------------------------------------------- HiNode --

TEST(CriaHiNodeTest, CompressedLadderUpAndDown) {
  CoreStats stats;
  Options o = MakeOptions(32, 1.2, &stats);
  o.m_threshold = 64;
  HiNode node(o);
  node.BulkLoad(std::vector<VertexId>{});
  EXPECT_EQ(node.kind(), HiNode::Kind::kCria);
  std::set<VertexId> ref;
  SplitMix64 rng(5);
  // Grow past M: the CRIA must convert to a HITree whose leaves compress.
  while (ref.size() < 400) {
    VertexId v = static_cast<VertexId>(rng.Next() % 100000);
    EXPECT_EQ(node.Insert(v), ref.insert(v).second);
  }
  EXPECT_EQ(node.kind(), HiNode::Kind::kLia);
  EXPECT_GT(stats.ria_to_hitree_conversions.load(), 0u);
  std::vector<VertexId> expect(ref.begin(), ref.end());
  EXPECT_EQ(node.Decode(), expect);
  ASSERT_TRUE(node.CheckInvariants());
  // Shrink below M/2: downgrade back to a flat CRIA.
  while (ref.size() > 20) {
    VertexId v = *ref.begin();
    ref.erase(ref.begin());
    EXPECT_TRUE(node.Delete(v));
  }
  EXPECT_EQ(node.kind(), HiNode::Kind::kCria);
  EXPECT_GT(stats.hitree_to_ria_conversions.load(), 0u);
  expect.assign(ref.begin(), ref.end());
  EXPECT_EQ(node.Decode(), expect);
  ASSERT_TRUE(node.CheckInvariants());
}

// --------------------------------------------------------------- LSGraph --

std::vector<Edge> TestEdges() {
  return BuildDatasetEdges(TestDataset(), /*symmetrize=*/true);
}

TEST(CriaLSGraphTest, CompressedEngineMatchesRawOnBuildAndUpdates) {
  ThreadPool pool(4);
  std::vector<Edge> edges = TestEdges();
  Options copt;
  copt.compress_leaves = true;
  LSGraph raw(1u << 10, Options{}, &pool);
  LSGraph comp(1u << 10, copt, &pool);
  raw.BuildFromEdges(edges);
  comp.BuildFromEdges(edges);
  ASSERT_EQ(raw.num_edges(), comp.num_edges());
  ASSERT_TRUE(comp.CheckInvariants());

  // Batched churn drives the grouped-batch merge path (groups of all sizes).
  std::vector<Edge> batch = BuildUpdateBatch(TestDataset(), 4000, 0);
  EXPECT_EQ(raw.InsertBatch(batch), comp.InsertBatch(batch));
  EXPECT_EQ(raw.num_edges(), comp.num_edges());
  std::vector<Edge> del(batch.begin(), batch.begin() + batch.size() / 2);
  EXPECT_EQ(raw.DeleteBatch(del), comp.DeleteBatch(del));
  EXPECT_EQ(raw.num_edges(), comp.num_edges());
  ASSERT_TRUE(comp.CheckInvariants());

  for (VertexId v = 0; v < raw.num_vertices(); ++v) {
    ASSERT_EQ(raw.degree(v), comp.degree(v)) << v;
    std::vector<VertexId> a;
    std::vector<VertexId> b;
    raw.FillNeighbors(v, &a);
    comp.FillNeighbors(v, &b);
    ASSERT_EQ(a, b) << v;
  }
  EXPECT_GT(comp.stats().bytes_resident.load(), 0u);
  EXPECT_GT(comp.stats().neighbors_decoded.load(), 0u);
  EXPECT_GT(comp.stats().cria_recompressions.load(), 0u);
}

TEST(CriaLSGraphTest, CompressedAdjacencyAtLeastHalvesTailBytes) {
  // Compression pays off where adjacency tails are substantial: per-tail
  // object overhead is fixed, so a denser rMat (avg symmetrized degree
  // ~115 -> mostly one-byte deltas at this scale) is the regime the mode
  // targets. Sparse graphs keep most ids inline, where both modes are
  // byte-identical.
  ThreadPool pool(4);
  std::vector<Edge> edges =
      BuildDatasetEdges(DatasetSpec{"DENSE", 10, 64.0, 7}, /*symmetrize=*/true);
  Options copt;
  copt.compress_leaves = true;
  LSGraph raw(1u << 10, Options{}, &pool);
  LSGraph comp(1u << 10, copt, &pool);
  raw.BuildFromEdges(edges);
  comp.BuildFromEdges(edges);
  ASSERT_EQ(raw.tail_edges(), comp.tail_edges());
  EXPECT_LT(comp.adjacency_bytes() * 2, raw.adjacency_bytes());
}

TEST(CriaLSGraphTest, AllSixKernelsIdenticalInBothModes) {
  ThreadPool pool(4);
  std::vector<Edge> edges = TestEdges();
  Options copt;
  copt.compress_leaves = true;
  LSGraph raw(1u << 10, Options{}, &pool);
  LSGraph comp(1u << 10, copt, &pool);
  raw.BuildFromEdges(edges);
  comp.BuildFromEdges(std::move(edges));

  BfsResult bfs_raw = Bfs(raw, 0, pool);
  BfsResult bfs_comp = Bfs(comp, 0, pool);
  EXPECT_EQ(bfs_raw.level, bfs_comp.level);  // parents may legally differ
  EXPECT_EQ(bfs_raw.reached, bfs_comp.reached);

  EXPECT_EQ(ConnectedComponents(raw, pool), ConnectedComponents(comp, pool));
  EXPECT_EQ(KCoreDecomposition(raw, pool), KCoreDecomposition(comp, pool));
  EXPECT_EQ(TriangleCount(raw, pool).triangles,
            TriangleCount(comp, pool).triangles);

  std::vector<double> pr_raw = PageRank(raw, pool);
  std::vector<double> pr_comp = PageRank(comp, pool);
  ASSERT_EQ(pr_raw.size(), pr_comp.size());
  for (size_t i = 0; i < pr_raw.size(); ++i) {
    EXPECT_NEAR(pr_raw[i], pr_comp[i], 1e-9) << i;
  }

  std::vector<double> bc_raw = BetweennessCentrality(raw, 0, pool);
  std::vector<double> bc_comp = BetweennessCentrality(comp, 0, pool);
  ASSERT_EQ(bc_raw.size(), bc_comp.size());
  for (size_t i = 0; i < bc_raw.size(); ++i) {
    EXPECT_NEAR(bc_raw[i], bc_comp[i], 1e-6) << i;
  }
}

}  // namespace
}  // namespace lsg
