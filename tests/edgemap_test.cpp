#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/edgemap.h"
#include "src/core/lsgraph.h"

namespace lsg {
namespace {

TEST(VertexSubsetTest, SingleAndAll) {
  VertexSubset s = VertexSubset::Single(10, 3);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.vertices().front(), 3u);
  EXPECT_EQ(s.universe(), 10u);
  VertexSubset all = VertexSubset::All(5);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(all.vertices().back(), 4u);
}

// These graphs are directed, so the tests pin Direction::kPush — the auto
// heuristic may pick pull, which reads out-neighbors as in-neighbors and is
// only meaningful on symmetrized graphs.
EdgeMapOptions PushOnly() {
  EdgeMapOptions options;
  options.direction = Direction::kPush;
  return options;
}

TEST(EdgeMapTest, VisitsEveryEdgeFromFrontier) {
  ThreadPool pool(3);
  LSGraph g(6);
  g.InsertEdge(0, 1);
  g.InsertEdge(0, 2);
  g.InsertEdge(1, 3);
  g.InsertEdge(4, 5);
  VertexSubset frontier = VertexSubset::FromVertices(6, {0, 1});
  std::atomic<int> visited{0};
  VertexSubset next = EdgeMap(
      g, frontier,
      [&visited](VertexId, VertexId) {
        visited.fetch_add(1, std::memory_order_relaxed);
        return true;
      },
      [](VertexId) { return true; }, pool, PushOnly());
  EXPECT_EQ(visited.load(), 3);  // edges (0,1),(0,2),(1,3); (4,5) untouched
  EXPECT_EQ(next.size(), 3u);
}

TEST(EdgeMapTest, CondFiltersTargets) {
  ThreadPool pool(2);
  LSGraph g(4);
  g.InsertEdge(0, 1);
  g.InsertEdge(0, 2);
  g.InsertEdge(0, 3);
  VertexSubset frontier = VertexSubset::Single(4, 0);
  VertexSubset next = EdgeMap(
      g, frontier, [](VertexId, VertexId) { return true; },
      [](VertexId v) { return v % 2 == 1; }, pool, PushOnly());
  std::vector<VertexId> got = next.vertices();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<VertexId>{1, 3}));
}

TEST(EdgeMapTest, UpdateReturningFalseKeepsVertexOut) {
  ThreadPool pool(2);
  LSGraph g(3);
  g.InsertEdge(0, 1);
  VertexSubset frontier = VertexSubset::Single(3, 0);
  VertexSubset next = EdgeMap(
      g, frontier, [](VertexId, VertexId) { return false; },
      [](VertexId) { return true; }, pool);
  EXPECT_TRUE(next.empty());
}

TEST(EdgeMapTest, EmptyFrontierShortCircuits) {
  ThreadPool pool(2);
  LSGraph g(3);
  g.InsertEdge(0, 1);
  VertexSubset frontier(3);
  VertexSubset next = EdgeMap(
      g, frontier, [](VertexId, VertexId) { return true; },
      [](VertexId) { return true; }, pool);
  EXPECT_TRUE(next.empty());
}

TEST(VertexMapTest, KeepsOnlyMatching) {
  ThreadPool pool(2);
  VertexSubset frontier = VertexSubset::All(10);
  VertexSubset evens = VertexMap(
      frontier, [](VertexId v) { return v % 2 == 0; }, pool);
  std::vector<VertexId> got = evens.vertices();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<VertexId>{0, 2, 4, 6, 8}));
}

}  // namespace
}  // namespace lsg
