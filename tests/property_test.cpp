// Cross-structure property tests: every ordered-set structure in the repo
// (RIA, HiNode, B-tree, C-tree, PMA) must expose identical set semantics
// under identical operation sequences — insert/delete/contains agree, and
// ordered traversal yields the same sequence. Sweeps seeds and skews via
// TEST_P.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/btree/btree_set.h"
#include "src/core/hitree.h"
#include "src/core/ria.h"
#include "src/ctree/ctree.h"
#include "src/pma/pma.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

struct Param {
  uint64_t seed;
  uint64_t key_space;
  double insert_prob;
  int ops;
};

class SetEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(SetEquivalenceTest, AllStructuresAgreeOnEverySequence) {
  const Param& p = GetParam();
  Options options;
  options.a_threshold = 16;
  options.m_threshold = 256;
  options.block_size = 8;
  Ria ria(options);
  HiNode hinode(options);
  BTreeSet btree;
  CTree ctree(16);
  Pma pma;
  std::set<VertexId> oracle;

  SplitMix64 rng(p.seed);
  for (int op = 0; op < p.ops; ++op) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(p.key_space));
    if (rng.NextDouble() < p.insert_prob) {
      bool expect = oracle.insert(key).second;
      ASSERT_EQ(ria.Insert(key), expect) << "ria key " << key;
      ASSERT_EQ(hinode.Insert(key), expect) << "hinode key " << key;
      ASSERT_EQ(btree.Insert(key), expect) << "btree key " << key;
      ASSERT_EQ(ctree.Insert(key), expect) << "ctree key " << key;
      ASSERT_EQ(pma.Insert(key), expect) << "pma key " << key;
    } else {
      bool expect = oracle.erase(key) != 0;
      ASSERT_EQ(ria.Delete(key), expect) << "ria key " << key;
      ASSERT_EQ(hinode.Delete(key), expect) << "hinode key " << key;
      ASSERT_EQ(btree.Delete(key), expect) << "btree key " << key;
      ASSERT_EQ(ctree.Delete(key), expect) << "ctree key " << key;
      ASSERT_EQ(pma.Delete(key), expect) << "pma key " << key;
    }
  }

  // Point queries agree on hits and misses.
  for (int probe = 0; probe < 500; ++probe) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(p.key_space));
    bool expect = oracle.count(key) != 0;
    ASSERT_EQ(ria.Contains(key), expect);
    ASSERT_EQ(hinode.Contains(key), expect);
    ASSERT_EQ(btree.Contains(key), expect);
    ASSERT_EQ(ctree.Contains(key), expect);
    ASSERT_EQ(pma.Contains(key), expect);
  }

  // Ordered traversal is identical everywhere.
  std::vector<VertexId> expected(oracle.begin(), oracle.end());
  EXPECT_EQ(ria.Decode(), expected);
  EXPECT_EQ(hinode.Decode(), expected);
  std::vector<VertexId> from_btree;
  btree.Map([&from_btree](VertexId v) { from_btree.push_back(v); });
  EXPECT_EQ(from_btree, expected);
  EXPECT_EQ(ctree.Decode(), expected);
  std::vector<VertexId> from_pma;
  pma.MapAll([&from_pma](uint64_t k) {
    from_pma.push_back(static_cast<VertexId>(k));
  });
  EXPECT_EQ(from_pma, expected);

  // Structural invariants hold at the end of every sequence.
  EXPECT_TRUE(ria.CheckInvariants());
  EXPECT_TRUE(hinode.CheckInvariants());
  EXPECT_TRUE(btree.CheckInvariants());
  EXPECT_TRUE(ctree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSkews, SetEquivalenceTest,
    ::testing::Values(
        Param{1, 100, 0.7, 6000},           // tiny key space, heavy churn
        Param{2, 5000, 0.6, 8000},          // medium
        Param{3, 5000, 0.9, 8000},          // insert-heavy (growth paths)
        Param{4, 5000, 0.35, 8000},         // delete-heavy (shrink paths)
        Param{5, 1u << 30, 0.7, 8000},      // sparse keys
        Param{6, 300, 0.5, 10000},          // long alternating churn
        Param{7, 65536, 0.8, 12000}));      // crosses M repeatedly

// Sequential patterns that historically break ordered structures.
TEST(SetPatternTest, AscendingThenDescendingChurn) {
  Options options;
  options.a_threshold = 16;
  options.m_threshold = 256;
  options.block_size = 8;
  HiNode hinode(options);
  Ria ria(options);
  for (VertexId v = 0; v < 5000; ++v) {
    ASSERT_TRUE(hinode.Insert(v));
    ASSERT_TRUE(ria.Insert(v));
  }
  for (VertexId v = 10000; v-- > 5000;) {
    ASSERT_TRUE(hinode.Insert(v));
    ASSERT_TRUE(ria.Insert(v));
  }
  for (VertexId v = 0; v < 10000; v += 2) {
    ASSERT_TRUE(hinode.Delete(v));
    ASSERT_TRUE(ria.Delete(v));
  }
  EXPECT_EQ(hinode.size(), 5000u);
  EXPECT_EQ(ria.size(), 5000u);
  EXPECT_EQ(hinode.Decode(), ria.Decode());
  EXPECT_TRUE(hinode.CheckInvariants());
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(SetPatternTest, ClusteredBurstsStressLiaBlocks) {
  Options options;
  options.a_threshold = 16;
  options.m_threshold = 128;
  options.block_size = 8;
  HiNode node(options);
  std::set<VertexId> oracle;
  SplitMix64 rng(99);
  // Bursts of tightly clustered keys defeat a linear model and force the
  // horizontal-then-vertical conflict path repeatedly.
  for (int burst = 0; burst < 60; ++burst) {
    VertexId base = static_cast<VertexId>(rng.NextBounded(1u << 24));
    for (int i = 0; i < 100; ++i) {
      VertexId key = base + static_cast<VertexId>(rng.NextBounded(64));
      ASSERT_EQ(node.Insert(key), oracle.insert(key).second);
    }
  }
  EXPECT_EQ(node.size(), oracle.size());
  EXPECT_EQ(node.Decode(), std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(SetPatternTest, BoundaryKeys) {
  // Extremes of the key space must be storable everywhere.
  Options options;
  Ria ria(options);
  HiNode node(options);
  CTree ctree(16);
  BTreeSet btree;
  for (VertexId key : {VertexId{0}, VertexId{1}, kInvalidVertex - 1}) {
    EXPECT_TRUE(ria.Insert(key));
    EXPECT_TRUE(node.Insert(key));
    EXPECT_TRUE(ctree.Insert(key));
    EXPECT_TRUE(btree.Insert(key));
  }
  std::vector<VertexId> expected = {0, 1, kInvalidVertex - 1};
  EXPECT_EQ(ria.Decode(), expected);
  EXPECT_EQ(node.Decode(), expected);
  EXPECT_EQ(ctree.Decode(), expected);
}

}  // namespace
}  // namespace lsg
