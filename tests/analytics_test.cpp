#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "src/analytics/bc.h"
#include "src/analytics/bfs.h"
#include "src/analytics/cc.h"
#include "src/analytics/pagerank.h"
#include "src/analytics/tc.h"
#include "src/baselines/ctree_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "src/gen/rmat.h"
#include "tests/reference.h"

namespace lsg {
namespace {

// Small symmetric test graph shared by all kernel tests.
struct Fixture {
  static constexpr VertexId kN = 512;

  Fixture() : ref(kN), pool(4) {
    DatasetSpec spec{"T", 9, 6.0, 2024};
    edges = BuildDatasetEdges(spec, /*symmetrize=*/true);
    for (const Edge& e : edges) {
      ref.Insert(e.src, e.dst);
    }
  }

  std::vector<Edge> edges;
  RefGraph ref;
  ThreadPool pool;
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

template <typename E>
std::unique_ptr<E> BuildEngine() {
  auto g = std::make_unique<E>(Fixture::kN);
  g->BuildFromEdges(SharedFixture().edges);
  return g;
}

template <typename E>
class AnalyticsTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<LSGraph, TerraceGraph, AspenGraph, PacTreeGraph>;
TYPED_TEST_SUITE(AnalyticsTest, EngineTypes);

TYPED_TEST(AnalyticsTest, BfsLevelsMatchReference) {
  Fixture& fx = SharedFixture();
  auto g = BuildEngine<TypeParam>();
  VertexId source = fx.edges.front().src;
  BfsResult result = Bfs(*g, source, fx.pool);
  std::vector<uint32_t> expected = RefBfsLevels(fx.ref, source);
  ASSERT_EQ(result.level.size(), expected.size());
  size_t reached = 0;
  for (VertexId v = 0; v < Fixture::kN; ++v) {
    ASSERT_EQ(result.level[v], expected[v]) << "vertex " << v;
    reached += expected[v] != ~uint32_t{0};
  }
  EXPECT_EQ(result.reached, reached);
  // Parent edges must exist and step one level down.
  for (VertexId v = 0; v < Fixture::kN; ++v) {
    if (result.parent[v] != kInvalidVertex && v != source) {
      EXPECT_TRUE(fx.ref.Has(result.parent[v], v));
      EXPECT_EQ(result.level[result.parent[v]] + 1, result.level[v]);
    }
  }
}

TYPED_TEST(AnalyticsTest, PageRankMatchesReference) {
  Fixture& fx = SharedFixture();
  auto g = BuildEngine<TypeParam>();
  PageRankOptions pr_options;
  std::vector<double> got = PageRank(*g, fx.pool, pr_options);
  std::vector<double> expected =
      RefPageRank(fx.ref, pr_options.damping, pr_options.iterations);
  double total = 0.0;
  for (VertexId v = 0; v < Fixture::kN; ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-9) << "vertex " << v;
    total += got[v];
  }
  EXPECT_LE(total, 1.0 + 1e-6);
}

TYPED_TEST(AnalyticsTest, ConnectedComponentsPartitionMatches) {
  Fixture& fx = SharedFixture();
  auto g = BuildEngine<TypeParam>();
  std::vector<VertexId> got = ConnectedComponents(*g, fx.pool);
  std::vector<VertexId> expected = RefComponents(fx.ref);
  // Labels may differ; the partition must not. Same-component vertices must
  // share labels in both, cross-component must differ in both.
  for (VertexId v = 0; v < Fixture::kN; ++v) {
    for (VertexId u : fx.ref.Neighbors(v)) {
      ASSERT_EQ(got[v], got[u]);
    }
  }
  std::map<VertexId, VertexId> mapping;
  for (VertexId v = 0; v < Fixture::kN; ++v) {
    auto [it, fresh] = mapping.emplace(got[v], expected[v]);
    ASSERT_EQ(it->second, expected[v]) << "vertex " << v;
    (void)fresh;
  }
}

TYPED_TEST(AnalyticsTest, TriangleCountMatchesReference) {
  Fixture& fx = SharedFixture();
  auto g = BuildEngine<TypeParam>();
  TriangleCountResult result = TriangleCount(*g, fx.pool);
  EXPECT_EQ(result.triangles, RefTriangles(fx.ref));
  EXPECT_GE(result.traversal_seconds, 0.0);
}

TYPED_TEST(AnalyticsTest, BetweennessMatchesReference) {
  Fixture& fx = SharedFixture();
  auto g = BuildEngine<TypeParam>();
  VertexId source = fx.edges.front().src;
  std::vector<double> got = BetweennessCentrality(*g, source, fx.pool);
  std::vector<double> expected = RefBetweenness(fx.ref, source);
  for (VertexId v = 0; v < Fixture::kN; ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-6) << "vertex " << v;
  }
}

TEST(AnalyticsEdgeCases, BfsFromIsolatedVertex) {
  ThreadPool pool(2);
  LSGraph g(10);
  g.InsertEdge(1, 2);
  BfsResult result = Bfs(g, 0, pool);
  EXPECT_EQ(result.reached, 1u);
  EXPECT_EQ(result.level[0], 0u);
  EXPECT_EQ(result.level[1], ~uint32_t{0});
}

TEST(AnalyticsEdgeCases, PageRankOnEmptyGraphIsUniform) {
  ThreadPool pool(2);
  LSGraph g(4);
  std::vector<double> rank = PageRank(g, pool, {.damping = 0.85, .iterations = 5});
  for (double r : rank) {
    EXPECT_NEAR(r, (1.0 - 0.85) / 4, 1e-12);
  }
}

TEST(AnalyticsEdgeCases, CcOnEdgelessGraphGivesSingletons) {
  ThreadPool pool(2);
  LSGraph g(6);
  std::vector<VertexId> labels = ConnectedComponents(g, pool);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(labels[v], v);
  }
}

TEST(AnalyticsEdgeCases, TriangleOfThree) {
  ThreadPool pool(2);
  LSGraph g(3);
  for (auto [a, b] : {std::pair{0, 1}, {1, 2}, {0, 2}}) {
    g.InsertEdge(a, b);
    g.InsertEdge(b, a);
  }
  EXPECT_EQ(TriangleCount(g, pool).triangles, 1u);
}

TEST(AnalyticsEdgeCases, BcOnPathGraph) {
  // 0-1-2: vertex 1 lies on the single shortest path between 0 and 2.
  ThreadPool pool(2);
  LSGraph g(3);
  for (auto [a, b] : {std::pair{0, 1}, {1, 0}, {1, 2}, {2, 1}}) {
    g.InsertEdge(a, b);
  }
  std::vector<double> bc = BetweennessCentrality(g, 0, pool);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

}  // namespace
}  // namespace lsg
