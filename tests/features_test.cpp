// Extension features: dynamic vertex growth (LSGraph) and functional
// snapshots (Aspen/PaC-tree baselines).
#include <gtest/gtest.h>

#include <vector>

#include "src/baselines/ctree_graph.h"
#include "src/core/lsgraph.h"

namespace lsg {
namespace {

TEST(AddVerticesTest, NewVerticesStartEmptyAndAcceptEdges) {
  LSGraph g(4);
  g.InsertEdge(0, 1);
  VertexId first = g.AddVertices(4);
  EXPECT_EQ(first, 4u);
  EXPECT_EQ(g.num_vertices(), 8u);
  for (VertexId v = 4; v < 8; ++v) {
    EXPECT_EQ(g.degree(v), 0u);
  }
  EXPECT_TRUE(g.InsertEdge(7, 0));
  EXPECT_TRUE(g.InsertEdge(0, 7));
  EXPECT_TRUE(g.HasEdge(7, 0));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(AddVerticesTest, GrowThenBatchUpdate) {
  LSGraph g(2);
  g.AddVertices(1000);
  std::vector<Edge> batch;
  for (VertexId v = 0; v < 1000; ++v) {
    batch.push_back(Edge{v, v + 1});
  }
  EXPECT_EQ(g.InsertBatch(batch), 1000u);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(SnapshotTest, SnapshotIsIsolatedFromFutureUpdates) {
  AspenGraph g(64);
  std::vector<Edge> base;
  for (VertexId v = 0; v < 64; ++v) {
    base.push_back(Edge{v, (v + 1) % 64});
  }
  g.BuildFromEdges(base);

  CTreeGraph snap = g.Snapshot();
  EXPECT_EQ(snap.num_edges(), g.num_edges());

  // Mutate the live graph; the snapshot must not change.
  std::vector<Edge> extra;
  for (VertexId v = 0; v < 64; ++v) {
    extra.push_back(Edge{v, (v + 7) % 64});
  }
  g.InsertBatch(extra);
  g.DeleteEdge(0, 1);
  EXPECT_EQ(snap.num_edges(), 64u);
  EXPECT_TRUE(snap.HasEdge(0, 1));
  EXPECT_FALSE(snap.HasEdge(0, 7));
  EXPECT_TRUE(g.HasEdge(0, 7));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(snap.CheckInvariants());
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(SnapshotTest, SnapshotOfSnapshotAndMutationOfSnapshot) {
  PacTreeGraph g(16);
  for (VertexId v = 0; v < 16; ++v) {
    g.InsertEdge(v, 0);
  }
  CTreeGraph s1 = g.Snapshot();
  CTreeGraph s2 = s1.Snapshot();
  s1.InsertEdge(3, 9);
  EXPECT_TRUE(s1.HasEdge(3, 9));
  EXPECT_FALSE(s2.HasEdge(3, 9));
  EXPECT_FALSE(g.HasEdge(3, 9));
  EXPECT_EQ(s2.num_edges(), 16u);
}

TEST(SnapshotTest, SnapshotSharesMemory) {
  AspenGraph g(1024);
  std::vector<Edge> base;
  for (VertexId v = 0; v < 1024; ++v) {
    for (VertexId k = 0; k < 64; ++k) {
      base.push_back(Edge{v, (v * 64 + k * 17) % 1024});
    }
  }
  g.BuildFromEdges(base);
  size_t one = g.memory_footprint();
  CTreeGraph snap = g.Snapshot();
  // Footprint counts shared nodes twice, but the snapshot itself only adds
  // the vertex array — the edge trees are shared, so a full deep copy would
  // be ~2x `one`; the actual incremental cost is the vertex array only.
  // Verify sharing indirectly: snapshot footprint equals the original's.
  EXPECT_EQ(snap.memory_footprint(), one);
}

}  // namespace
}  // namespace lsg
