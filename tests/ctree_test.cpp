#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/ctree/compressed_chunk.h"
#include "src/ctree/ctree.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

TEST(CompressedChunkTest, EncodeDecodeRoundtrip) {
  std::vector<VertexId> ids = {5, 6, 100, 1000, 1000000, 4000000000u};
  CompressedChunk c = CompressedChunk::Encode(ids, 4);
  EXPECT_EQ(c.count(), ids.size());
  EXPECT_EQ(c.Decode(4), ids);
}

TEST(CompressedChunkTest, EmptyChunk) {
  CompressedChunk c;
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.Decode(0).empty());
  EXPECT_FALSE(c.Contains(0, 5));
}

TEST(CompressedChunkTest, ContainsFindsAllMembers) {
  std::vector<VertexId> ids = {10, 11, 20, 35};
  CompressedChunk c = CompressedChunk::Encode(ids, 9);
  for (VertexId v : ids) {
    EXPECT_TRUE(c.Contains(9, v));
  }
  EXPECT_FALSE(c.Contains(9, 12));
  EXPECT_FALSE(c.Contains(9, 36));
}

TEST(CompressedChunkTest, DenseRunCompressesToOneBytePerId) {
  std::vector<VertexId> ids;
  for (VertexId v = 1000; v < 2000; ++v) {
    ids.push_back(v);
  }
  CompressedChunk c = CompressedChunk::Encode(ids, 999);
  EXPECT_EQ(c.byte_size(), 1000u);  // delta 1 -> one varint byte each
}

TEST(CompressedChunkTest, VarintBoundaries) {
  for (uint32_t v : {0u, 127u, 128u, 16383u, 16384u, ~0u}) {
    std::vector<uint8_t> bytes;
    AppendVarint(bytes, v);
    const uint8_t* p = bytes.data();
    EXPECT_EQ(ReadVarint(p), v);
    EXPECT_EQ(p, bytes.data() + bytes.size());
  }
}

TEST(CTreeTest, InsertContainsDelete) {
  CTree t(16);
  EXPECT_TRUE(t.Insert(5));
  EXPECT_FALSE(t.Insert(5));
  EXPECT_TRUE(t.Contains(5));
  EXPECT_FALSE(t.Contains(6));
  EXPECT_TRUE(t.Delete(5));
  EXPECT_FALSE(t.Delete(5));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(CTreeTest, BulkLoadMatchesMap) {
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 5000; ++v) {
    ids.push_back(v * 2);
  }
  CTree t(16);
  t.BulkLoad(ids);
  EXPECT_EQ(t.size(), ids.size());
  EXPECT_EQ(t.Decode(), ids);
  EXPECT_TRUE(t.CheckInvariants());
  for (VertexId v : {0u, 4998u, 9998u}) {
    EXPECT_TRUE(t.Contains(v));
  }
  EXPECT_FALSE(t.Contains(1));
}

TEST(CTreeTest, IdZeroLivesInPrefix) {
  CTree t(16);
  EXPECT_TRUE(t.Insert(0));
  EXPECT_TRUE(t.Contains(0));
  EXPECT_EQ(t.Decode(), (std::vector<VertexId>{0}));
  EXPECT_TRUE(t.Delete(0));
  EXPECT_FALSE(t.Contains(0));
}

TEST(CTreeTest, CopiesShareStructureAndDivergeOnUpdate) {
  CTree a(16);
  for (VertexId v = 0; v < 1000; ++v) {
    a.Insert(v * 3);
  }
  CTree b = a;  // functional snapshot
  EXPECT_TRUE(b.Insert(1));
  EXPECT_TRUE(b.Contains(1));
  EXPECT_FALSE(a.Contains(1));  // the original version is untouched
  EXPECT_TRUE(a.Delete(0));
  EXPECT_TRUE(b.Contains(0));
  EXPECT_TRUE(a.CheckInvariants());
  EXPECT_TRUE(b.CheckInvariants());
}

TEST(CTreeTest, HeadDeletionFoldsTailIntoPredecessor) {
  CTree t(4);  // small chunks -> many heads
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 400; ++v) {
    ids.push_back(v);
  }
  CTree loaded(4);
  loaded.BulkLoad(ids);
  // Delete every third id, including heads; membership must stay exact.
  std::set<VertexId> oracle(ids.begin(), ids.end());
  for (VertexId v = 0; v < 400; v += 3) {
    ASSERT_EQ(loaded.Delete(v), oracle.erase(v) != 0);
    ASSERT_TRUE(loaded.CheckInvariants()) << "after deleting " << v;
  }
  EXPECT_EQ(loaded.Decode(),
            std::vector<VertexId>(oracle.begin(), oracle.end()));
}

TEST(CTreeTest, MemoryFootprintBenefitsFromDenseIds) {
  // Dense ids delta-compress to ~1 byte; random ids need several.
  CTree dense(64);
  CTree sparse(64);
  std::vector<VertexId> dense_ids;
  std::vector<VertexId> sparse_ids;
  SplitMix64 rng(5);
  std::set<VertexId> chosen;
  for (VertexId v = 0; v < 10000; ++v) {
    dense_ids.push_back(v);
    chosen.insert(static_cast<VertexId>(rng.Next() >> 2));
  }
  sparse_ids.assign(chosen.begin(), chosen.end());
  dense.BulkLoad(dense_ids);
  sparse.BulkLoad(sparse_ids);
  EXPECT_LT(dense.memory_footprint(), sparse.memory_footprint());
}

struct CTreeParam {
  uint32_t chunk;
  uint64_t key_space;
};

class CTreeOracleTest
    : public ::testing::TestWithParam<CTreeParam> {};

TEST_P(CTreeOracleTest, RandomizedAgainstStdSet) {
  const CTreeParam& param = GetParam();
  CTree t(param.chunk);
  std::set<VertexId> oracle;
  SplitMix64 rng(23);
  for (int op = 0; op < 15000; ++op) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(param.key_space));
    if (rng.NextDouble() < 0.6) {
      ASSERT_EQ(t.Insert(key), oracle.insert(key).second) << "key " << key;
    } else {
      ASSERT_EQ(t.Delete(key), oracle.erase(key) != 0) << "key " << key;
    }
    ASSERT_EQ(t.size(), oracle.size());
  }
  EXPECT_EQ(t.Decode(), std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(t.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    ChunksAndKeySpaces, CTreeOracleTest,
    ::testing::Values(CTreeParam{4, 500}, CTreeParam{16, 500},
                      CTreeParam{16, 100000}, CTreeParam{64, 100000},
                      CTreeParam{64, 4000000000ull}));

TEST(CTreeTest, MapWhileStopsMidChunk) {
  CTree t(16);
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 5000; ++v) {
    ids.push_back(v * 3);
  }
  t.BulkLoad(ids);
  std::vector<VertexId> seen;
  // 40 spans several compressed chunks; the cut lands mid-decode.
  bool full = t.MapWhile([&seen](VertexId v) {
    seen.push_back(v);
    return seen.size() < 40;
  });
  EXPECT_FALSE(full);
  ASSERT_EQ(seen.size(), 40u);
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), ids.begin()));
  size_t visits = 0;
  EXPECT_TRUE(t.MapWhile([&visits](VertexId) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, t.size());
}

}  // namespace
}  // namespace lsg
