#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/baselines/ctree_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/rmat.h"
#include "src/gen/snapshot.h"

namespace lsg {
namespace {

TEST(SnapshotTest, DumpEdgesIsSortedAndComplete) {
  LSGraph g(16);
  g.InsertEdge(3, 1);
  g.InsertEdge(0, 5);
  g.InsertEdge(3, 0);
  std::vector<Edge> edges = DumpEdges(g);
  EXPECT_EQ(edges, (std::vector<Edge>{{0, 5}, {3, 0}, {3, 1}}));
}

TEST(SnapshotTest, FreezeToCsrPreservesNeighbors) {
  RmatGenerator gen({8, 0.5, 0.1, 0.1}, 44);
  LSGraph g(256);
  g.BuildFromEdges(gen.Generate(0, 5000));
  Csr csr = FreezeToCsr(g);
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  for (VertexId v = 0; v < 256; ++v) {
    std::vector<VertexId> from_engine;
    g.map_neighbors(v, [&](VertexId u) { from_engine.push_back(u); });
    std::vector<VertexId> from_csr(csr.neighbors(v).begin(),
                                   csr.neighbors(v).end());
    ASSERT_EQ(from_engine, from_csr) << "vertex " << v;
  }
}

TEST(SnapshotTest, SaveLoadRoundtripsAcrossEngineTypes) {
  RmatGenerator gen({8, 0.5, 0.1, 0.1}, 45);
  LSGraph original(256);
  original.BuildFromEdges(gen.Generate(0, 4000));
  std::string path = ::testing::TempDir() + "/snap.bin";
  SaveSnapshot(original, path);

  // Reload into a different engine type: snapshots are engine-agnostic.
  std::unique_ptr<AspenGraph> reloaded = LoadSnapshot<AspenGraph>(path, 256);
  EXPECT_EQ(reloaded->num_edges(), original.num_edges());
  for (VertexId v = 0; v < 256; ++v) {
    std::vector<VertexId> a;
    std::vector<VertexId> b;
    original.map_neighbors(v, [&](VertexId u) { a.push_back(u); });
    reloaded->map_neighbors(v, [&](VertexId u) { b.push_back(u); });
    ASSERT_EQ(a, b) << "vertex " << v;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lsg
