#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/pma/pma.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

std::vector<uint64_t> Dump(const Pma& pma) {
  std::vector<uint64_t> out;
  pma.MapAll([&out](uint64_t k) { out.push_back(k); });
  return out;
}

TEST(PmaTest, InsertAndContains) {
  Pma pma;
  EXPECT_TRUE(pma.Insert(10));
  EXPECT_TRUE(pma.Insert(5));
  EXPECT_TRUE(pma.Insert(20));
  EXPECT_FALSE(pma.Insert(10));  // duplicate
  EXPECT_TRUE(pma.Contains(5));
  EXPECT_TRUE(pma.Contains(10));
  EXPECT_TRUE(pma.Contains(20));
  EXPECT_FALSE(pma.Contains(15));
  EXPECT_EQ(pma.size(), 3u);
}

TEST(PmaTest, MapAllAscending) {
  Pma pma;
  for (uint64_t k : {9u, 1u, 7u, 3u, 5u}) {
    pma.Insert(k);
  }
  EXPECT_EQ(Dump(pma), (std::vector<uint64_t>{1, 3, 5, 7, 9}));
}

TEST(PmaTest, DeleteRemovesOnlyTarget) {
  Pma pma;
  for (uint64_t k = 0; k < 50; ++k) {
    pma.Insert(k * 2);
  }
  EXPECT_TRUE(pma.Delete(10));
  EXPECT_FALSE(pma.Delete(10));
  EXPECT_FALSE(pma.Delete(11));  // never present
  EXPECT_EQ(pma.size(), 49u);
  EXPECT_FALSE(pma.Contains(10));
  EXPECT_TRUE(pma.Contains(12));
}

TEST(PmaTest, GrowsUnderSequentialInsert) {
  Pma pma;
  size_t initial_cap = pma.capacity();
  for (uint64_t k = 0; k < 10000; ++k) {
    pma.Insert(k);
  }
  EXPECT_GT(pma.capacity(), initial_cap);
  EXPECT_EQ(pma.size(), 10000u);
  EXPECT_EQ(Dump(pma).size(), 10000u);
  EXPECT_GT(pma.stats().resizes, 0u);
}

TEST(PmaTest, ShrinksAfterMassDeletion) {
  Pma pma;
  for (uint64_t k = 0; k < 10000; ++k) {
    pma.Insert(k);
  }
  size_t grown_cap = pma.capacity();
  for (uint64_t k = 0; k < 9990; ++k) {
    pma.Delete(k);
  }
  EXPECT_LT(pma.capacity(), grown_cap);
  EXPECT_EQ(pma.size(), 10u);
  EXPECT_EQ(Dump(pma), (std::vector<uint64_t>{9990, 9991, 9992, 9993, 9994,
                                              9995, 9996, 9997, 9998, 9999}));
}

TEST(PmaTest, MapRangeRespectsBounds) {
  Pma pma;
  for (uint64_t k = 0; k < 100; ++k) {
    pma.Insert(k * 3);
  }
  std::vector<uint64_t> out;
  pma.MapRange(30, 60, [&out](uint64_t k) { out.push_back(k); });
  EXPECT_EQ(out, (std::vector<uint64_t>{30, 33, 36, 39, 42, 45, 48, 51, 54, 57}));
  EXPECT_EQ(pma.CountRange(30, 60), 10u);
  EXPECT_EQ(pma.CountRange(1000, 2000), 0u);
}

TEST(PmaTest, LowerBoundOnGappedArray) {
  Pma pma;
  for (uint64_t k : {10u, 20u, 30u}) {
    pma.Insert(k);
  }
  size_t i = pma.LowerBound(15);
  // Every key >= 15 must lie at or after the returned slot.
  std::vector<uint64_t> after;
  pma.MapRange(15, ~uint64_t{0} - 1, [&after](uint64_t k) { after.push_back(k); });
  EXPECT_EQ(after, (std::vector<uint64_t>{20, 30}));
  EXPECT_LE(i, pma.capacity());
}

TEST(PmaTest, TimingInstrumentationAccumulates) {
  PmaOptions options;
  options.timing = true;
  Pma pma(options);
  for (uint64_t k = 0; k < 2000; ++k) {
    pma.Insert(k * 7 % 4096);
  }
  EXPECT_GT(pma.stats().search_seconds, 0.0);
  EXPECT_GT(pma.stats().move_seconds, 0.0);
  EXPECT_GT(pma.stats().search_probes, 0u);
  EXPECT_GT(pma.stats().elements_moved, 0u);
}

struct PmaParam {
  double leaf_lower;
  double leaf_upper;
  double root_lower;
  double root_upper;
  uint64_t key_space;
};

class PmaOracleTest : public ::testing::TestWithParam<PmaParam> {};

TEST_P(PmaOracleTest, RandomizedAgainstStdSet) {
  const PmaParam& param = GetParam();
  PmaOptions options;
  options.leaf_lower = param.leaf_lower;
  options.leaf_upper = param.leaf_upper;
  options.root_lower = param.root_lower;
  options.root_upper = param.root_upper;
  Pma pma(options);
  std::set<uint64_t> oracle;
  SplitMix64 rng(42);
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.NextBounded(param.key_space);
    if (rng.NextDouble() < 0.65) {
      EXPECT_EQ(pma.Insert(key), oracle.insert(key).second);
    } else {
      EXPECT_EQ(pma.Delete(key), oracle.erase(key) != 0);
    }
    ASSERT_EQ(pma.size(), oracle.size());
  }
  std::vector<uint64_t> expected(oracle.begin(), oracle.end());
  EXPECT_EQ(Dump(pma), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, PmaOracleTest,
    ::testing::Values(PmaParam{0.10, 0.90, 0.25, 0.75, 1000},
                      PmaParam{0.125, 0.25, 0.2, 0.22, 1000},  // Terrace-like
                      PmaParam{0.30, 0.95, 0.40, 0.80, 100},
                      PmaParam{0.10, 0.90, 0.25, 0.75, 1000000}));

TEST(PmaTest, MapSlotsWhileStopsAtFirstFalse) {
  Pma pma;
  for (uint64_t k = 0; k < 500; ++k) {
    pma.Insert(k * 2);
  }
  std::vector<uint64_t> seen;
  bool full = pma.MapSlotsWhile(0, pma.capacity(), [&seen](uint64_t k) {
    seen.push_back(k);
    return seen.size() < 7;
  });
  EXPECT_FALSE(full);
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 2, 4, 6, 8, 10, 12}));
  size_t visits = 0;
  EXPECT_TRUE(pma.MapSlotsWhile(0, pma.capacity(), [&visits](uint64_t) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, pma.size());
}

}  // namespace
}  // namespace lsg
