#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/baselines/sortledton_graph.h"
#include "src/skiplist/block_skip_list.h"
#include "src/util/prng.h"
#include "tests/reference.h"

namespace lsg {
namespace {

std::vector<VertexId> Dump(const BlockSkipList& l) {
  std::vector<VertexId> out;
  l.Map([&out](VertexId v) { out.push_back(v); });
  return out;
}

TEST(BlockSkipListTest, EmptyList) {
  BlockSkipList l;
  EXPECT_TRUE(l.empty());
  EXPECT_FALSE(l.Contains(5));
  EXPECT_FALSE(l.Delete(5));
  EXPECT_TRUE(Dump(l).empty());
  EXPECT_TRUE(l.CheckInvariants());
}

TEST(BlockSkipListTest, InsertBelowMinimum) {
  BlockSkipList l;
  l.Insert(100);
  EXPECT_TRUE(l.Insert(5));
  EXPECT_TRUE(l.Insert(1));
  EXPECT_EQ(l.First(), 1u);
  EXPECT_EQ(Dump(l), (std::vector<VertexId>{1, 5, 100}));
  EXPECT_TRUE(l.CheckInvariants());
}

TEST(BlockSkipListTest, SplitOnFullBlock) {
  BlockSkipList l;
  for (VertexId v = 0; v < 2000; ++v) {
    ASSERT_TRUE(l.Insert(v * 2));
  }
  EXPECT_EQ(l.size(), 2000u);
  EXPECT_TRUE(l.CheckInvariants());
  // Middle inserts hit both halves of prior splits.
  for (VertexId v = 0; v < 2000; ++v) {
    ASSERT_TRUE(l.Insert(v * 2 + 1));
  }
  std::vector<VertexId> dump = Dump(l);
  ASSERT_EQ(dump.size(), 4000u);
  for (VertexId v = 0; v < 4000; ++v) {
    ASSERT_EQ(dump[v], v);
  }
  EXPECT_TRUE(l.CheckInvariants());
}

TEST(BlockSkipListTest, DeleteUnlinksEmptyBlocks) {
  BlockSkipList l;
  for (VertexId v = 0; v < 1000; ++v) {
    l.Insert(v);
  }
  for (VertexId v = 0; v < 1000; ++v) {
    ASSERT_TRUE(l.Delete(v));
  }
  EXPECT_TRUE(l.empty());
  EXPECT_TRUE(l.CheckInvariants());
  EXPECT_TRUE(l.Insert(3));
  EXPECT_EQ(l.First(), 3u);
}

TEST(BlockSkipListTest, BulkLoadRoundtrip) {
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 5000; ++v) {
    ids.push_back(v * 3 + 1);
  }
  BlockSkipList l;
  l.BulkLoad(ids);
  EXPECT_EQ(l.size(), ids.size());
  EXPECT_EQ(Dump(l), ids);
  EXPECT_TRUE(l.CheckInvariants());
  // BulkLoad over existing contents replaces them.
  std::vector<VertexId> small = {7, 8, 9};
  l.BulkLoad(small);
  EXPECT_EQ(Dump(l), small);
}

TEST(BlockSkipListTest, MoveSemantics) {
  BlockSkipList a;
  a.Insert(1);
  a.Insert(2);
  BlockSkipList b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(b.Contains(1));
}

class SkipListOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkipListOracleTest, RandomizedAgainstStdSet) {
  BlockSkipList l;
  std::set<VertexId> oracle;
  SplitMix64 rng(GetParam());
  for (int op = 0; op < 25000; ++op) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(4000));
    if (rng.NextDouble() < 0.6) {
      ASSERT_EQ(l.Insert(key), oracle.insert(key).second) << key;
    } else {
      ASSERT_EQ(l.Delete(key), oracle.erase(key) != 0) << key;
    }
  }
  EXPECT_EQ(Dump(l), std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(l.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListOracleTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(SortledtonGraphTest, MatchesReferenceUnderChurn) {
  constexpr VertexId kN = 128;
  SortledtonGraph g(kN);
  RefGraph ref(kN);
  SplitMix64 rng(11);
  for (int round = 0; round < 20; ++round) {
    std::vector<Edge> batch;
    for (int i = 0; i < 300; ++i) {
      batch.push_back(Edge{static_cast<VertexId>(rng.NextBounded(kN)),
                           static_cast<VertexId>(rng.NextBounded(kN))});
    }
    std::set<Edge> seen;
    size_t expect = 0;
    bool deleting = round % 4 == 3;
    for (const Edge& e : batch) {
      if (seen.insert(e).second) {
        expect += deleting ? ref.Delete(e.src, e.dst) : ref.Insert(e.src, e.dst);
      }
    }
    size_t got = deleting ? g.DeleteBatch(batch) : g.InsertBatch(batch);
    ASSERT_EQ(got, expect) << "round " << round;
  }
  for (VertexId v = 0; v < kN; ++v) {
    std::vector<VertexId> out;
    g.map_neighbors(v, [&out](VertexId u) { out.push_back(u); });
    ASSERT_EQ(out, ref.Neighbors(v)) << "vertex " << v;
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(SortledtonGraphTest, PromotesToSkipListAtThreshold) {
  SortledtonGraph g(512);
  for (VertexId v = 0; v <= SortledtonGraph::kSmallSetMax + 50; ++v) {
    ASSERT_TRUE(g.InsertEdge(0, v));
  }
  EXPECT_EQ(g.degree(0), SortledtonGraph::kSmallSetMax + 51);
  std::vector<VertexId> out;
  g.map_neighbors(0, [&out](VertexId u) { out.push_back(u); });
  for (VertexId v = 0; v < out.size(); ++v) {
    ASSERT_EQ(out[v], v);
  }
  EXPECT_TRUE(g.HasEdge(0, 100));
  EXPECT_TRUE(g.DeleteEdge(0, 100));
  EXPECT_FALSE(g.HasEdge(0, 100));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(SortledtonGraphTest, OutOfRangeEndpointsRejectedAndCounted) {
  // Same endpoint-validation policy as the other engines (DESIGN.md
  // "Endpoint validation"): out-of-range endpoints are counted and skipped
  // on every path, including the skip-list promoted adjacency.
  SortledtonGraph g(8);
  EXPECT_FALSE(g.InsertEdge(0, 8));
  EXPECT_FALSE(g.InsertEdge(9, 0));
  EXPECT_FALSE(g.DeleteEdge(0, 8));
  EXPECT_FALSE(g.HasEdge(0, 8));
  EXPECT_FALSE(g.HasEdge(8, 0));
  EXPECT_EQ(g.oob_rejected(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);

  std::vector<Edge> batch = {{0, 1}, {0, 8}, {8, 1}};
  EXPECT_EQ(g.InsertBatch(batch), 1u);
  EXPECT_EQ(g.oob_rejected(), 5u);
  g.BuildFromEdges({{2, 3}, {2, 9}, {9, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.oob_rejected(), 7u);

  EXPECT_EQ(g.AddVertices(4), 8u);
  EXPECT_TRUE(g.InsertEdge(0, 8));
  EXPECT_TRUE(g.HasEdge(0, 8));
  EXPECT_EQ(g.oob_rejected(), 7u);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(BlockSkipListTest, MapWhileStopsAtFirstFalse) {
  BlockSkipList l;
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 2000; ++v) {
    ids.push_back(v * 5);
    l.Insert(v * 5);
  }
  std::vector<VertexId> seen;
  // Deep enough to cross several blocks on the level-0 chain.
  bool full = l.MapWhile([&seen](VertexId v) {
    seen.push_back(v);
    return seen.size() < 50;
  });
  EXPECT_FALSE(full);
  ASSERT_EQ(seen.size(), 50u);
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), ids.begin()));
  size_t visits = 0;
  EXPECT_TRUE(l.MapWhile([&visits](VertexId) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, l.size());
}

}  // namespace
}  // namespace lsg
