// Typed tests run against all four engines: LSGraph and the three baselines
// must expose identical graph semantics, which the analytics layer and the
// benchmark harness both rely on.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/baselines/ctree_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/rmat.h"
#include "src/util/prng.h"
#include "tests/reference.h"

namespace lsg {
namespace {

template <typename E>
std::unique_ptr<E> MakeEngine(VertexId n);

template <>
std::unique_ptr<LSGraph> MakeEngine(VertexId n) {
  return std::make_unique<LSGraph>(n);
}
template <>
std::unique_ptr<TerraceGraph> MakeEngine(VertexId n) {
  return std::make_unique<TerraceGraph>(n);
}
template <>
std::unique_ptr<AspenGraph> MakeEngine(VertexId n) {
  return std::make_unique<AspenGraph>(n);
}
template <>
std::unique_ptr<PacTreeGraph> MakeEngine(VertexId n) {
  return std::make_unique<PacTreeGraph>(n);
}

template <typename E>
std::vector<VertexId> Neighbors(const E& g, VertexId v) {
  std::vector<VertexId> out;
  g.map_neighbors(v, [&out](VertexId u) { out.push_back(u); });
  return out;
}

template <typename E>
class EngineTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<LSGraph, TerraceGraph, AspenGraph, PacTreeGraph>;
TYPED_TEST_SUITE(EngineTest, EngineTypes);

TYPED_TEST(EngineTest, EmptyGraph) {
  auto g = MakeEngine<TypeParam>(10);
  EXPECT_EQ(g->num_vertices(), 10u);
  EXPECT_EQ(g->num_edges(), 0u);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(g->degree(v), 0u);
    EXPECT_TRUE(Neighbors(*g, v).empty());
  }
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, SingleEdgeInsertDelete) {
  auto g = MakeEngine<TypeParam>(4);
  EXPECT_TRUE(g->InsertEdge(1, 2));
  EXPECT_FALSE(g->InsertEdge(1, 2));
  EXPECT_TRUE(g->HasEdge(1, 2));
  EXPECT_FALSE(g->HasEdge(2, 1));  // directed storage
  EXPECT_EQ(g->degree(1), 1u);
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_TRUE(g->DeleteEdge(1, 2));
  EXPECT_FALSE(g->DeleteEdge(1, 2));
  EXPECT_EQ(g->num_edges(), 0u);
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, SelfLoopIsStored) {
  auto g = MakeEngine<TypeParam>(4);
  EXPECT_TRUE(g->InsertEdge(3, 3));
  EXPECT_TRUE(g->HasEdge(3, 3));
  EXPECT_EQ(Neighbors(*g, 3), (std::vector<VertexId>{3}));
}

TYPED_TEST(EngineTest, BuildFromEdgesMatchesReference) {
  constexpr VertexId kN = 256;
  RmatGenerator gen({8, 0.5, 0.1, 0.1}, 99);
  std::vector<Edge> edges = gen.Generate(0, 4000);
  auto g = MakeEngine<TypeParam>(kN);
  g->BuildFromEdges(edges);
  RefGraph ref(kN);
  for (const Edge& e : edges) {
    ref.Insert(e.src, e.dst);
  }
  EXPECT_EQ(g->num_edges(), ref.num_edges());
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_EQ(g->degree(v), ref.degree(v)) << "vertex " << v;
    ASSERT_EQ(Neighbors(*g, v), ref.Neighbors(v)) << "vertex " << v;
  }
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, BatchInsertThenDeleteRestoresGraph) {
  constexpr VertexId kN = 512;
  RmatGenerator gen({9, 0.5, 0.1, 0.1}, 7);
  std::vector<Edge> base = gen.Generate(0, 6000);
  auto g = MakeEngine<TypeParam>(kN);
  g->BuildFromEdges(base);
  EdgeCount edges_before = g->num_edges();

  // The paper's protocol: insert a batch, then delete it again so the
  // original graph is restored. Edges already present must not be deleted,
  // so the delete batch is the genuinely-new subset.
  RefGraph ref(kN);
  for (const Edge& e : base) {
    ref.Insert(e.src, e.dst);
  }
  std::vector<Edge> batch = gen.Generate(6000, 3000);
  std::vector<Edge> fresh;
  {
    std::set<Edge> seen;
    for (const Edge& e : batch) {
      if (!ref.Has(e.src, e.dst) && seen.insert(e).second) {
        fresh.push_back(e);
      }
    }
  }
  size_t added = g->InsertBatch(batch);
  EXPECT_EQ(added, fresh.size());
  EXPECT_EQ(g->num_edges(), edges_before + added);
  size_t removed = g->DeleteBatch(fresh);
  EXPECT_EQ(removed, added);
  EXPECT_EQ(g->num_edges(), edges_before);
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_EQ(Neighbors(*g, v), ref.Neighbors(v)) << "vertex " << v;
  }
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, EmptyBatchIsNoop) {
  auto g = MakeEngine<TypeParam>(8);
  g->InsertEdge(0, 1);
  EXPECT_EQ(g->InsertBatch({}), 0u);
  EXPECT_EQ(g->DeleteBatch({}), 0u);
  EXPECT_EQ(g->num_edges(), 1u);
}

TYPED_TEST(EngineTest, DuplicateHeavyBatchCountsUniqueEdges) {
  auto g = MakeEngine<TypeParam>(8);
  std::vector<Edge> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(Edge{1, 2});
    batch.push_back(Edge{3, 4});
  }
  EXPECT_EQ(g->InsertBatch(batch), 2u);
  EXPECT_EQ(g->num_edges(), 2u);
}

TYPED_TEST(EngineTest, DeleteOfAbsentEdgesIsIgnored) {
  auto g = MakeEngine<TypeParam>(8);
  g->InsertEdge(0, 1);
  std::vector<Edge> batch = {{0, 2}, {5, 6}, {0, 1}};
  EXPECT_EQ(g->DeleteBatch(batch), 1u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TYPED_TEST(EngineTest, HighDegreeVertexCrossesAllRepresentations) {
  constexpr VertexId kN = 20016;
  auto g = MakeEngine<TypeParam>(kN);
  // One hub vertex accumulating 20k neighbors in shuffled order exercises
  // inline -> array -> RIA -> HITree (or PMA -> B-tree for Terrace).
  constexpr VertexId kDeg = 20000;
  std::vector<Edge> batch;
  SplitMix64 rng(13);
  std::vector<VertexId> dsts;
  for (VertexId v = 0; v < kDeg; ++v) {
    dsts.push_back(v + 10);
  }
  for (VertexId v = kDeg; v-- > 1;) {
    std::swap(dsts[v], dsts[rng.NextBounded(v + 1)]);
  }
  for (VertexId dst : dsts) {
    batch.push_back(Edge{0, dst});
  }
  size_t added = g->InsertBatch(batch);
  EXPECT_EQ(added, kDeg);
  EXPECT_EQ(g->degree(0), kDeg);
  std::vector<VertexId> got = Neighbors(*g, 0);
  ASSERT_EQ(got.size(), kDeg);
  for (VertexId v = 0; v < kDeg; ++v) {
    ASSERT_EQ(got[v], v + 10);
  }
  // Now delete every other edge and re-verify.
  std::vector<Edge> dels;
  for (VertexId v = 0; v < kDeg; v += 2) {
    dels.push_back(Edge{0, v + 10});
  }
  EXPECT_EQ(g->DeleteBatch(dels), dels.size());
  EXPECT_EQ(g->degree(0), kDeg / 2);
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, RandomizedChurnAgainstReference) {
  constexpr VertexId kN = 128;
  auto g = MakeEngine<TypeParam>(kN);
  RefGraph ref(kN);
  SplitMix64 rng(55);
  for (int round = 0; round < 30; ++round) {
    std::vector<Edge> batch;
    for (int i = 0; i < 200; ++i) {
      batch.push_back(Edge{static_cast<VertexId>(rng.NextBounded(kN)),
                           static_cast<VertexId>(rng.NextBounded(kN))});
    }
    if (round % 3 == 2) {
      size_t expect = 0;
      std::set<Edge> seen;
      for (const Edge& e : batch) {
        if (seen.insert(e).second && ref.Delete(e.src, e.dst)) {
          ++expect;
        }
      }
      ASSERT_EQ(g->DeleteBatch(batch), expect);
    } else {
      size_t expect = 0;
      std::set<Edge> seen;
      for (const Edge& e : batch) {
        if (seen.insert(e).second && ref.Insert(e.src, e.dst)) {
          ++expect;
        }
      }
      ASSERT_EQ(g->InsertBatch(batch), expect);
    }
    ASSERT_EQ(g->num_edges(), ref.num_edges());
  }
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_EQ(Neighbors(*g, v), ref.Neighbors(v)) << "vertex " << v;
  }
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, OutOfRangeEndpointsRejectedAndCounted) {
  // Shared endpoint-validation policy (DESIGN.md "Endpoint validation"):
  // edges naming a vertex >= num_vertices() are counted and skipped by every
  // update path, probes on them report false, and no state changes.
  constexpr VertexId kN = 16;
  auto g = MakeEngine<TypeParam>(kN);
  ASSERT_TRUE(g->InsertEdge(1, 2));

  EXPECT_FALSE(g->InsertEdge(1, kN));
  EXPECT_FALSE(g->InsertEdge(kN + 5, 1));
  EXPECT_FALSE(g->DeleteEdge(1, kN));
  EXPECT_EQ(g->oob_rejected(), 3u);
  EXPECT_FALSE(g->HasEdge(1, kN));
  EXPECT_FALSE(g->HasEdge(kN, 1));

  // Batch paths: the whole out-of-range group and individual out-of-range
  // destinations are skipped, valid edges still land.
  std::vector<Edge> batch = {{2, 3}, {2, kN}, {kN, 3}, {kN, kN + 1}};
  EXPECT_EQ(g->InsertBatch(batch), 1u);
  EXPECT_EQ(g->oob_rejected(), 6u);
  EXPECT_TRUE(g->HasEdge(2, 3));
  EXPECT_EQ(g->num_edges(), 2u);

  // BuildFromEdges filters before loading.
  g->BuildFromEdges({{4, 5}, {4, kN + 2}, {kN + 2, 4}});
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_TRUE(g->HasEdge(4, 5));
  EXPECT_EQ(g->oob_rejected(), 8u);

  // After growing the vertex set, the same ids become legal.
  EXPECT_EQ(g->AddVertices(8), kN);
  EXPECT_TRUE(g->InsertEdge(1, kN));
  EXPECT_TRUE(g->HasEdge(1, kN));
  EXPECT_EQ(g->oob_rejected(), 8u);
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, AddVerticesPreservesExistingAdjacency) {
  // CTreeGraph re-homes its Eytzinger vertex tree on growth; every engine
  // must keep prior adjacency intact and serve the new ids.
  constexpr VertexId kN = 100;
  auto g = MakeEngine<TypeParam>(kN);
  RefGraph ref(kN);
  SplitMix64 rng(91);
  for (int i = 0; i < 2000; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(kN));
    VertexId v = static_cast<VertexId>(rng.NextBounded(kN));
    ASSERT_EQ(g->InsertEdge(u, v), ref.Insert(u, v));
  }
  EXPECT_EQ(g->AddVertices(57), kN);
  EXPECT_EQ(g->num_vertices(), kN + 57u);
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_EQ(Neighbors(*g, v), ref.Neighbors(v)) << "vertex " << v;
  }
  for (VertexId v = kN; v < kN + 57; ++v) {
    ASSERT_EQ(g->degree(v), 0u);
  }
  ASSERT_TRUE(g->InsertEdge(kN + 56, 0));
  EXPECT_TRUE(g->HasEdge(kN + 56, 0));
  EXPECT_TRUE(g->CheckInvariants());
}

TYPED_TEST(EngineTest, MemoryFootprintIsPositiveAndGrows) {
  auto g = MakeEngine<TypeParam>(1024);
  size_t empty_bytes = g->memory_footprint();
  RmatGenerator gen({10, 0.5, 0.1, 0.1}, 3);
  g->BuildFromEdges(gen.Generate(0, 50000));
  EXPECT_GT(g->memory_footprint(), empty_bytes);
}

}  // namespace
}  // namespace lsg
