#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/options.h"
#include "src/core/ria.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

Options MakeOptions(double alpha = 1.2, uint32_t block_size = 16) {
  Options o;
  o.alpha = alpha;
  o.block_size = block_size;
  return o;
}

TEST(RiaTest, EmptyRia) {
  Ria ria(MakeOptions());
  EXPECT_TRUE(ria.empty());
  EXPECT_FALSE(ria.Contains(3));
  EXPECT_FALSE(ria.Delete(3));
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(RiaTest, FirstInsertBootstraps) {
  Ria ria(MakeOptions());
  EXPECT_TRUE(ria.Insert(42));
  EXPECT_TRUE(ria.Contains(42));
  EXPECT_EQ(ria.First(), 42u);
  EXPECT_EQ(ria.size(), 1u);
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(RiaTest, BulkLoadSpreadsEvenlyWithNoEmptyBlocks) {
  Ria ria(MakeOptions(1.2, 16));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 1000; ++v) {
    ids.push_back(v * 5);
  }
  ria.BulkLoad(ids);
  EXPECT_EQ(ria.size(), 1000u);
  EXPECT_EQ(ria.Decode(), ids);
  EXPECT_TRUE(ria.CheckInvariants());
  // Capacity follows alpha: ~1200 slots rounded to whole blocks.
  EXPECT_GE(ria.capacity(), 1200u);
  EXPECT_LE(ria.capacity(), 1200u + 16);
}

TEST(RiaTest, DuplicateInsertRejected) {
  Ria ria(MakeOptions());
  std::vector<VertexId> ids = {1, 2, 3, 4, 5};
  ria.BulkLoad(ids);
  EXPECT_FALSE(ria.Insert(3));
  EXPECT_EQ(ria.size(), 5u);
}

TEST(RiaTest, CascadeMovesIntoNeighborBlocks) {
  // Load so one block is full, then hammer inserts into its key range; the
  // cascade should spill into neighbors before any expansion happens.
  Ria ria(MakeOptions(1.2, 8));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 64; ++v) {
    ids.push_back(v * 100);
  }
  ria.BulkLoad(ids);
  uint64_t expansions_before = ria.stats().expansions;
  for (VertexId v = 1; v <= 3; ++v) {
    ASSERT_TRUE(ria.Insert(v));  // all land in block 0's range
  }
  EXPECT_GT(ria.stats().cascades + 3, 0u);
  EXPECT_EQ(ria.stats().expansions, expansions_before);
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(RiaTest, ExpansionWhenMovementBoundExceeded) {
  Ria ria(MakeOptions(1.1, 4));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 4000; ++v) {
    ids.push_back(v);
  }
  ria.BulkLoad(ids);
  // Dense id space: keep inserting into the middle until expansion triggers.
  for (VertexId v = 0; v < 4000; ++v) {
    ria.Insert(4000 + v);
  }
  EXPECT_GT(ria.stats().expansions, 0u);
  EXPECT_EQ(ria.size(), 8000u);
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(RiaTest, DeleteRebuildsOnEmptyBlock) {
  Ria ria(MakeOptions(1.2, 4));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 40; ++v) {
    ids.push_back(v);
  }
  ria.BulkLoad(ids);
  for (VertexId v = 0; v < 40; ++v) {
    ASSERT_TRUE(ria.Delete(v));
    ASSERT_TRUE(ria.CheckInvariants()) << "after deleting " << v;
  }
  EXPECT_TRUE(ria.empty());
  EXPECT_TRUE(ria.Insert(7));  // usable after emptying
}

TEST(RiaTest, TryInsertReportsNeedExpandWithoutMutating) {
  Ria ria(MakeOptions(1.05, 4));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 256; ++v) {
    ids.push_back(v * 2);
  }
  ria.BulkLoad(ids);
  // Fill gaps until TryInsert reports expansion needed.
  bool saw_need_expand = false;
  for (VertexId v = 0; v < 256 && !saw_need_expand; ++v) {
    Ria::InsertResult res = ria.TryInsert(v * 2 + 1);
    if (res == Ria::InsertResult::kNeedExpand) {
      saw_need_expand = true;
      size_t size_before = ria.size();
      EXPECT_FALSE(ria.Contains(v * 2 + 1));
      EXPECT_EQ(ria.size(), size_before);
    }
  }
  EXPECT_TRUE(saw_need_expand);
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(RiaTest, CascadeLeftCountsEvictedId) {
  // Whitebox check of the movement accounting: fill the last block so the
  // next insert into its range must cascade left into its (non-full)
  // neighbor, then assert the exact elements_moved delta.
  Ria ria(MakeOptions(1.2, 8));
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 64; ++v) {
    ids.push_back(v * 100);
  }
  ria.BulkLoad(ids);
  // BulkLoad spreads 64 ids over 10 blocks (7,7,7,7,6,6,6,6,6,6); two
  // appends fill the last block to 8.
  ASSERT_TRUE(ria.Insert(6400));
  ASSERT_TRUE(ria.Insert(6500));
  uint64_t cascades_before = ria.stats().cascades;
  uint64_t moved_before = ria.stats().elements_moved;
  ASSERT_TRUE(ria.Insert(6600));
  ASSERT_EQ(ria.stats().cascades, cascades_before + 1);
  // The left cascade relocates all 8 ids of the full home block (7 shift
  // down one slot, the first id is evicted), writes the new id, and appends
  // the evictee to the left neighbor: exactly 10 moves. Counting after the
  // count decrement under-reports the evictee (9).
  EXPECT_EQ(ria.stats().elements_moved, moved_before + 10);
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(RiaTest, DeleteContractsSlackCapacity) {
  CoreStats core;
  Options o = MakeOptions(1.2, 16);
  o.stats = &core;
  Ria ria(o);
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 2000; ++v) {
    ids.push_back(v);
  }
  ria.BulkLoad(ids);
  size_t cap_before = ria.capacity();
  size_t footprint_before = ria.memory_footprint();
  // Delete evenly across the keyspace so no block empties (the empty-block
  // rebuild path would reset capacity on its own): the contraction check
  // must fire from occupancy alone.
  for (VertexId v = 0; v < 2000; v += 2) {
    ASSERT_TRUE(ria.Delete(v));
  }
  for (VertexId v = 1; v < 2000; v += 4) {
    ASSERT_TRUE(ria.Delete(v));
  }
  for (VertexId v = 3; v < 2000; v += 8) {
    ASSERT_TRUE(ria.Delete(v));
  }
  EXPECT_GT(ria.stats().contractions, 0u);
  EXPECT_GT(core.ria_contractions.load(), 0u);
  EXPECT_EQ(ria.size(), 250u);
  // Capacity and actual footprint both track the α target again instead of
  // parking the high-water mark.
  EXPECT_LT(ria.capacity(), cap_before / 2);
  EXPECT_LT(ria.memory_footprint(), footprint_before / 2);
  for (VertexId v = 7; v < 2000; v += 8) {
    EXPECT_TRUE(ria.Contains(v));
  }
  EXPECT_TRUE(ria.CheckInvariants());
}

TEST(RiaTest, IndexBytesAreSmallFractionOfFootprint) {
  Ria ria(MakeOptions());
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 100000; ++v) {
    ids.push_back(v);
  }
  ria.BulkLoad(ids);
  EXPECT_LT(ria.index_bytes() * 8, ria.memory_footprint());
}

struct RiaParam {
  double alpha;
  uint32_t block_size;
  uint64_t key_space;
};

class RiaOracleTest : public ::testing::TestWithParam<RiaParam> {};

TEST_P(RiaOracleTest, RandomizedAgainstStdSet) {
  const RiaParam& param = GetParam();
  Ria ria(MakeOptions(param.alpha, param.block_size));
  std::set<VertexId> oracle;
  SplitMix64 rng(31);
  for (int op = 0; op < 20000; ++op) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(param.key_space));
    if (rng.NextDouble() < 0.6) {
      ASSERT_EQ(ria.Insert(key), oracle.insert(key).second) << "key " << key;
    } else {
      ASSERT_EQ(ria.Delete(key), oracle.erase(key) != 0) << "key " << key;
    }
    ASSERT_EQ(ria.size(), oracle.size());
  }
  EXPECT_EQ(ria.Decode(), std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(ria.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBlockKeySpace, RiaOracleTest,
    ::testing::Values(RiaParam{1.2, 16, 1000}, RiaParam{1.1, 16, 1000},
                      RiaParam{2.0, 16, 1000}, RiaParam{1.2, 4, 300},
                      RiaParam{1.2, 64, 100000},
                      RiaParam{1.3, 16, 4000000000ull}));

TEST(RiaTest, MapWhileStopsAtFirstFalse) {
  Ria ria(MakeOptions(1.2, 16));
  for (VertexId v = 0; v < 200; ++v) {
    ria.Insert(v * 3);
  }
  std::vector<VertexId> seen;
  bool full = ria.MapWhile([&seen](VertexId v) {
    seen.push_back(v);
    return seen.size() < 5;
  });
  EXPECT_FALSE(full);  // cut short
  EXPECT_EQ(seen, (std::vector<VertexId>{0, 3, 6, 9, 12}));  // ascending
  size_t visits = 0;
  EXPECT_TRUE(ria.MapWhile([&visits](VertexId) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, ria.size());
}

}  // namespace
}  // namespace lsg
