// Service layer tests (DESIGN.md §13): shard placement determinism, option
// validation, routed-vs-single-engine equivalence on randomized mixed
// workloads, the reads-never-block-on-ingest property, queue backpressure,
// partitioned .lsgbin loading, and teardown ordering.
//
// Runs under the `tsan` CTest label: the drainer threads, view swaps,
// completion handshakes, and concurrent reader/writer workloads here are
// real cross-thread interleavings worth a -DLSG_SANITIZE=thread pass.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "src/gen/lsgbin.h"
#include "src/service/router.h"
#include "src/service/shard_map.h"
#include "src/service/sharded_graph.h"
#include "src/service/workload.h"

namespace lsg {
namespace {

// ---- ShardMap ----

TEST(ShardMapTest, HashIsDeterministicTotalAndBalanced) {
  HashShardMap map(4);
  EXPECT_EQ(map.num_shards(), 4u);
  std::vector<size_t> load(4, 0);
  for (VertexId v = 0; v < 10000; ++v) {
    uint32_t s = map.ShardOf(v);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, map.ShardOf(v));  // deterministic
    ++load[s];
  }
  for (size_t l : load) {  // roughly balanced (hash, 10k draws)
    EXPECT_GT(l, 10000 / 4 / 2);
    EXPECT_LT(l, 10000 / 4 * 2);
  }
}

TEST(ShardMapTest, RangeCoversUniverse) {
  RangeShardMap map(3, 10);  // ceil(10/3) = 4: [0,4) [4,8) [8,10)
  EXPECT_EQ(map.ShardOf(0), 0u);
  EXPECT_EQ(map.ShardOf(3), 0u);
  EXPECT_EQ(map.ShardOf(4), 1u);
  EXPECT_EQ(map.ShardOf(9), 2u);
  EXPECT_EQ(map.ShardOf(10), 2u);  // beyond universe clamps to last
}

TEST(ShardMapTest, TableFallsBackToHashBeyondTable) {
  TableShardMap map(4, {1, 3, 0});
  EXPECT_EQ(map.ShardOf(0), 1u);
  EXPECT_EQ(map.ShardOf(1), 3u);
  EXPECT_EQ(map.ShardOf(2), 0u);
  HashShardMap hash(4);
  EXPECT_EQ(map.ShardOf(100), hash.ShardOf(100));  // beyond table
  // Invalid table entries also fall back instead of escaping the range.
  TableShardMap bad(2, {7});
  EXPECT_LT(bad.ShardOf(0), 2u);
}

TEST(ShardMapTest, FennelPlacesNeighborsTogetherUnderLoadBound) {
  DatasetSpec spec = TestDataset();
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  const VertexId n = VertexId{1} << spec.scale;
  std::vector<uint32_t> table = BuildFennelShardTable(n, edges, 4);
  ASSERT_EQ(table.size(), n);
  std::vector<size_t> load(4, 0);
  for (uint32_t s : table) {
    ASSERT_LT(s, 4u);
    ++load[s];
  }
  // The gamma load penalty keeps placement from collapsing onto one shard.
  for (size_t l : load) {
    EXPECT_GT(l, n / 4 / 4);
  }
  // Determinism: same inputs, same table.
  EXPECT_EQ(table, BuildFennelShardTable(n, edges, 4));
}

// ---- Option validation ----

TEST(OptionsTest, ValidateRejectsAbsurdValues) {
  EXPECT_EQ(Options{}.Validate(), "");

  Options bad_alpha;
  bad_alpha.alpha = 0.5;
  EXPECT_NE(bad_alpha.Validate(), "");

  Options bad_m;
  bad_m.m_threshold = 0;
  EXPECT_NE(bad_m.Validate(), "");

  Options bad_a;
  bad_a.a_threshold = Options{}.m_threshold + 1;
  EXPECT_NE(bad_a.Validate(), "");

  Options bad_block;
  bad_block.block_size = 0;
  EXPECT_NE(bad_block.Validate(), "");

  // CRIA block bytes gate only when compression is on (uint16 structural
  // ceiling 0xfffe, floor 16).
  Options cria;
  cria.cria_block_bytes = 8;
  EXPECT_EQ(cria.Validate(), "");
  cria.compress_leaves = true;
  EXPECT_NE(cria.Validate(), "");
  cria.cria_block_bytes = 65535;
  EXPECT_NE(cria.Validate(), "");
  cria.cria_block_bytes = 256;
  EXPECT_EQ(cria.Validate(), "");
}

TEST(OptionsTest, EngineCtorThrowsOnInvalidOptions) {
  Options bad;
  bad.m_threshold = 0;
  EXPECT_THROW(LSGraph(16, bad), std::invalid_argument);
}

TEST(ServiceOptionsTest, ValidateRejectsBadShapes) {
  EXPECT_EQ(ServiceOptions{}.Validate(), "");

  ServiceOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_NE(zero_shards.Validate(), "");

  ServiceOptions zero_queue;
  zero_queue.queue_depth = 0;
  EXPECT_NE(zero_queue.Validate(), "");

  // Engine violations propagate through the service options.
  ServiceOptions bad_engine;
  bad_engine.engine.alpha = 1000.0;
  EXPECT_NE(bad_engine.Validate(), "");

  EXPECT_THROW(ShardedGraph(16, nullptr, zero_shards), std::invalid_argument);

  // A shard map disagreeing with num_shards is a construction error.
  ServiceOptions four;
  four.num_shards = 4;
  EXPECT_THROW(ShardedGraph(16, std::make_unique<HashShardMap>(2), four),
               std::invalid_argument);
}

// ---- Routed vs single-engine equivalence ----

struct EquivParam {
  uint32_t reader_threads;
  bool compressed;
};

class ServiceEquivalenceTest : public ::testing::TestWithParam<EquivParam> {};

TEST_P(ServiceEquivalenceTest, RandomizedMixedWorkloadMatchesOracle) {
  const EquivParam p = GetParam();
  DatasetSpec spec{"TEST", 10, 8.0, 7 + p.reader_threads};
  const VertexId n = VertexId{1} << spec.scale;
  std::vector<Edge> base = BuildDatasetEdges(spec);

  ServiceOptions sopts;
  sopts.num_shards = 4;
  sopts.engine.compress_leaves = p.compressed;
  ShardedGraph graph(n, std::make_unique<HashShardMap>(4), sopts);
  graph.BuildFromEdges(base);
  Router router(graph);

  WorkloadSpec wl;
  wl.ops = 600;
  wl.point_read_frac = 0.60;
  wl.update_frac = 0.25;
  wl.update_batch_size = 400;
  wl.khop_depth = 2;
  wl.reader_threads = p.reader_threads;
  wl.seed = spec.seed;
  wl.updates = spec;
  ASSERT_EQ(wl.Validate(), "");

  WorkloadResult res = RunWorkload(router, wl);
  EXPECT_EQ(res.ops_issued, wl.ops);
  EXPECT_GT(res.point_read.count(), 0u);
  EXPECT_GT(res.update.count(), 0u);

  EXPECT_EQ(
      VerifyAgainstOracle(router, base, res.update_log, sopts.engine, 99),
      "");
  EXPECT_TRUE(graph.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Threads, ServiceEquivalenceTest,
    ::testing::Values(EquivParam{1, false}, EquivParam{2, false},
                      EquivParam{8, false}, EquivParam{1, true},
                      EquivParam{2, true}, EquivParam{8, true}),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      return std::to_string(info.param.reader_threads) + "readers_" +
             (info.param.compressed ? "cria" : "uncompressed");
    });

// ---- Reads never block on ingest (acceptance criterion) ----

TEST(ServiceIngestTest, ReadsProgressWhileMillionEdgeBatchLands) {
  DatasetSpec spec{"TEST", 14, 4.0, 21};
  const VertexId n = VertexId{1} << spec.scale;
  std::vector<Edge> base = BuildDatasetEdges(spec);

  ServiceOptions sopts;
  sopts.num_shards = 4;
  ShardedGraph graph(n, std::make_unique<HashShardMap>(4), sopts);
  graph.BuildFromEdges(base);
  Router router(graph);

  // A ~1M-edge batch, held in the queues while paused.
  RmatGenerator gen({static_cast<int>(spec.scale), 0.5, 0.1, 0.1}, 777);
  std::vector<Edge> big = gen.Generate(0, 1000000);
  ASSERT_GE(big.size(), 1000000u);
  // A probe edge guaranteed in the batch and absent from the base graph.
  const Edge probe = big.front();
  ASSERT_FALSE(router.HasEdge(probe.src, probe.dst))
      << "probe edge already present; pick a different seed";

  graph.PauseIngestForTest(true);
  graph.SubmitInsert(big);

  // Queued but unapplied: reads still serve the pre-batch state instantly.
  EXPECT_FALSE(router.HasEdge(probe.src, probe.dst));
  const size_t degree_before = router.Degree(probe.src);

  // Release the drainers and hammer reads while the batch lands.
  std::atomic<bool> applied{false};
  std::thread flusher([&] {
    graph.PauseIngestForTest(false);
    graph.Flush();
    applied.store(true);
  });
  size_t reads_during_apply = 0;
  while (!applied.load()) {
    volatile size_t sink = router.Degree(probe.src);
    (void)sink;
    volatile bool sink2 = router.HasEdge(probe.src, probe.dst);
    (void)sink2;
    reads_during_apply += 2;
  }
  flusher.join();

  // The million-edge apply takes long enough that a blocked reader would
  // have produced (nearly) zero completed reads in the window.
  EXPECT_GT(reads_during_apply, 100u);
  // And the batch became visible exactly at the flush boundary.
  EXPECT_TRUE(router.HasEdge(probe.src, probe.dst));
  EXPECT_GE(router.Degree(probe.src), degree_before);
  EXPECT_TRUE(graph.CheckInvariants());
}

// ---- Queue backpressure ----

TEST(ServiceIngestTest, SubmitBlocksAtQueueDepthAndResumes) {
  ServiceOptions sopts;
  sopts.num_shards = 2;
  sopts.queue_depth = 2;
  ShardedGraph graph(64, std::make_unique<HashShardMap>(2), sopts);

  graph.PauseIngestForTest(true);
  // Fill every shard's queue to the brim (each submit enqueues one task
  // per shard).
  graph.SubmitInsert({{1, 2}, {3, 4}});
  graph.SubmitInsert({{5, 6}, {7, 8}});
  EXPECT_EQ(graph.PendingBatchesForTest(0), 2u);
  EXPECT_EQ(graph.PendingBatchesForTest(1), 2u);

  std::atomic<bool> third_submitted{false};
  std::thread submitter([&] {
    graph.SubmitInsert({{9, 10}, {11, 12}});
    third_submitted.store(true);
  });
  // The third submit must be parked on backpressure, not completed.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_submitted.load());

  graph.PauseIngestForTest(false);
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  graph.Flush();
  EXPECT_EQ(graph.num_edges(), 6u);
}

// ---- Partitioned .lsgbin loading ----

TEST(ServiceLoadTest, PartitionedLsgbinLoadMatchesBuildFromEdges) {
  DatasetSpec spec = TestDataset();
  const VertexId n = VertexId{1} << spec.scale;
  std::vector<Edge> base = BuildDatasetEdges(spec);
  const std::string path = ::testing::TempDir() + "/service_load.lsgbin";
  ASSERT_GT(WriteLsgbin(path, n, base), 0u);

  ServiceOptions sopts;
  sopts.num_shards = 4;
  ShardedGraph from_file(n, std::make_unique<HashShardMap>(4), sopts);
  from_file.BuildFromLsgbin(path);
  ShardedGraph from_edges(n, std::make_unique<HashShardMap>(4), sopts);
  from_edges.BuildFromEdges(base);

  EXPECT_EQ(from_file.num_edges(), from_edges.num_edges());
  Router ra(from_file), rb(from_edges);
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(ra.Degree(v), rb.Degree(v)) << v;
  }
  for (VertexId v = 0; v < n; v += 17) {
    EXPECT_EQ(ra.Neighbors(v), rb.Neighbors(v)) << v;
  }
  EXPECT_TRUE(from_file.CheckInvariants());
  std::remove(path.c_str());
}

// ---- k-hop and point reads against a hand-built graph ----

TEST(RouterTest, PointReadsAndKHopOnKnownGraph) {
  // Path 0-1-2-3 plus a triangle 4-5-6 (undirected = both directions).
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2},
                             {4, 5}, {5, 4}, {5, 6}, {6, 5}, {6, 4}, {4, 6}};
  ServiceOptions sopts;
  sopts.num_shards = 3;
  ShardedGraph graph(8, std::make_unique<HashShardMap>(3), sopts);
  graph.BuildFromEdges(edges);
  Router router(graph);

  EXPECT_TRUE(router.HasEdge(0, 1));
  EXPECT_FALSE(router.HasEdge(0, 2));
  EXPECT_FALSE(router.HasEdge(0, 99999));  // out of range: false, no throw
  EXPECT_EQ(router.Degree(1), 2u);
  EXPECT_EQ(router.Degree(7), 0u);
  EXPECT_EQ(router.Neighbors(5), (std::vector<VertexId>{4, 6}));

  // k-hop from 0: 1 hop reaches {0,1}; 2 hops {0,1,2}; 3 hops all of the
  // path; the triangle stays unreachable at any depth.
  EXPECT_EQ(router.KHop(0, 0).reached, 1u);
  EXPECT_EQ(router.KHop(0, 1).reached, 2u);
  EXPECT_EQ(router.KHop(0, 2).reached, 3u);
  EXPECT_EQ(router.KHop(0, 3).reached, 4u);
  EXPECT_EQ(router.KHop(0, 10).reached, 4u);
  EXPECT_EQ(router.KHop(4, 1).reached, 3u);  // triangle closes in one hop
  EXPECT_EQ(router.KHop(99999, 2).reached, 0u);  // out of range
}

// ---- Vertex growth and teardown ----

TEST(ServiceAdminTest, AddVerticesGrowsEveryShard) {
  ServiceOptions sopts;
  sopts.num_shards = 2;
  ShardedGraph graph(8, std::make_unique<HashShardMap>(2), sopts);
  graph.BuildFromEdges({{0, 1}, {1, 0}});
  Router router(graph);

  EXPECT_EQ(graph.AddVertices(4), 8u);
  EXPECT_EQ(graph.num_vertices(), 12u);
  // New ids are writable and readable immediately.
  EXPECT_EQ(router.InsertBatch(std::vector<Edge>{{10, 11}, {11, 10}}), 2u);
  EXPECT_TRUE(router.HasEdge(10, 11));
  EXPECT_EQ(graph.oob_rejected(), 0u);
  // Beyond the grown universe still rejects.
  router.InsertBatch(std::vector<Edge>{{50, 51}});
  EXPECT_GT(graph.oob_rejected(), 0u);
  EXPECT_TRUE(graph.CheckInvariants());
}

TEST(ServiceAdminTest, DestructionDrainsPendingAsyncSubmits) {
  // Teardown with work still queued: the destructor must flush, join the
  // drainers, and release pins in order — no hang, no leak, no crash.
  for (int round = 0; round < 3; ++round) {
    ServiceOptions sopts;
    sopts.num_shards = 3;
    ShardedGraph graph(256, std::make_unique<HashShardMap>(3), sopts);
    for (int i = 0; i < 10; ++i) {
      std::vector<Edge> batch;
      for (VertexId v = 0; v < 50; ++v) {
        batch.push_back({v, static_cast<VertexId>((v + i + 1) % 256)});
      }
      graph.SubmitInsert(std::move(batch));
    }
    // Destructor runs here with queues plausibly non-empty.
  }
}

TEST(ServiceAdminTest, AggregateStatsSumsShards) {
  ServiceOptions sopts;
  sopts.num_shards = 4;
  ShardedGraph graph(64, std::make_unique<HashShardMap>(4), sopts);
  Router router(graph);
  std::vector<Edge> batch;
  for (VertexId v = 0; v < 64; ++v) {
    batch.push_back({v, static_cast<VertexId>((v + 1) % 64)});
  }
  router.InsertBatch(batch);
  CoreStats stats;
  graph.AggregateStats(&stats);
  // Every shard holds exactly one pinned read view, so the aggregated
  // snapshots_live gauge counts all four engines.
  EXPECT_EQ(stats.snapshots_live.load(), 4u);
  // And the aggregate is the per-engine sum, field by field.
  uint64_t cow_sum = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    cow_sum += graph.shard_engine(s).stats().cow_copies.load();
  }
  EXPECT_EQ(stats.cow_copies.load(), cow_sum);
}

}  // namespace
}  // namespace lsg
