// Compile-time API contract: every engine satisfies StreamingEngine, and the
// static CSR satisfies GraphView. Failures here are build breaks by design.
#include <gtest/gtest.h>

#include "src/baselines/ctree_graph.h"
#include "src/baselines/sortledton_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/engine_concept.h"
#include "src/core/lsgraph.h"
#include "src/gen/csr.h"

namespace lsg {
namespace {

static_assert(StreamingEngine<LSGraph>);
static_assert(StreamingEngine<TerraceGraph>);
static_assert(StreamingEngine<AspenGraph>);
static_assert(StreamingEngine<PacTreeGraph>);
static_assert(StreamingEngine<CTreeGraph>);
static_assert(StreamingEngine<SortledtonGraph>);

static_assert(GraphView<LSGraph>);
static_assert(!StreamingEngine<Csr>);  // static snapshot: view only

// Csr lacks HasEdge; it is a view in spirit but intentionally minimal. Keep
// the distinction visible: the analytics kernels only require the members
// they use, which Csr provides.
static_assert(!GraphView<Csr>);
static_assert(!GraphView<int>);

// A view with the classic traversal members but no early-exit
// map_neighbors_while must be rejected: pull-mode EdgeMap depends on it.
struct NoMapWhileView {
  VertexId num_vertices() const { return 0; }
  EdgeCount num_edges() const { return 0; }
  size_t degree(VertexId) const { return 0; }
  bool HasEdge(VertexId, VertexId) const { return false; }
  template <typename F>
  void map_neighbors(VertexId, F&&) const {}
};
static_assert(!GraphView<NoMapWhileView>);

TEST(ConceptTest, CompileTimeChecksHold) {
  SUCCEED();  // the static_asserts above are the test
}

}  // namespace
}  // namespace lsg
