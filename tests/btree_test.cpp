#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/btree/btree_set.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

std::vector<VertexId> Dump(const BTreeSet& t) {
  std::vector<VertexId> out;
  t.Map([&out](VertexId v) { out.push_back(v); });
  return out;
}

TEST(BTreeTest, EmptyTree) {
  BTreeSet t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Contains(1));
  EXPECT_FALSE(t.Delete(1));
  EXPECT_TRUE(Dump(t).empty());
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTreeTest, InsertContainsDuplicate) {
  BTreeSet t;
  EXPECT_TRUE(t.Insert(5));
  EXPECT_FALSE(t.Insert(5));
  EXPECT_TRUE(t.Contains(5));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, AscendingInsertSplitsCorrectly) {
  BTreeSet t;
  for (VertexId k = 0; k < 10000; ++k) {
    ASSERT_TRUE(t.Insert(k));
  }
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_TRUE(t.CheckInvariants());
  std::vector<VertexId> dump = Dump(t);
  for (VertexId k = 0; k < 10000; ++k) {
    ASSERT_EQ(dump[k], k);
  }
}

TEST(BTreeTest, DescendingInsert) {
  BTreeSet t;
  for (VertexId k = 5000; k-- > 0;) {
    ASSERT_TRUE(t.Insert(k));
  }
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(Dump(t).front(), 0u);
  EXPECT_EQ(Dump(t).back(), 4999u);
  EXPECT_EQ(t.First(), 0u);
}

TEST(BTreeTest, DeleteDownToEmpty) {
  BTreeSet t;
  for (VertexId k = 0; k < 1000; ++k) {
    t.Insert(k * 3);
  }
  for (VertexId k = 0; k < 1000; ++k) {
    ASSERT_TRUE(t.Delete(k * 3));
    ASSERT_FALSE(t.Contains(k * 3));
    ASSERT_TRUE(t.CheckInvariants()) << "after deleting " << k * 3;
  }
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Insert(7));  // still usable after emptying
  EXPECT_EQ(t.First(), 7u);
}

TEST(BTreeTest, BulkLoadMatchesInsertion) {
  std::vector<VertexId> keys;
  for (VertexId k = 0; k < 3000; ++k) {
    keys.push_back(k * 2 + 1);
  }
  BTreeSet t;
  t.BulkLoad(keys);
  EXPECT_EQ(t.size(), keys.size());
  EXPECT_EQ(Dump(t), keys);
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTreeTest, MoveTransfersContents) {
  BTreeSet a;
  a.Insert(1);
  a.Insert(2);
  BTreeSet b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_TRUE(b.Contains(1));
}

TEST(BTreeTest, MemoryFootprintGrowsWithContent) {
  BTreeSet t;
  size_t empty_bytes = t.memory_footprint();
  for (VertexId k = 0; k < 10000; ++k) {
    t.Insert(k);
  }
  EXPECT_GT(t.memory_footprint(), empty_bytes + 10000 * sizeof(VertexId) / 2);
}

// Regression: ascending deletion hollows out the leftmost leaves. The empty
// leaf can survive under a chain of single-child internal nodes, in which
// case First() reads a stale key from it and Delete(First()) fails.
TEST(BTreeTest, FirstStaysFreshUnderAscendingDeletes) {
  BTreeSet t;
  constexpr VertexId kN = 5000;
  for (VertexId k = 0; k < kN; ++k) {
    t.Insert(k);
  }
  for (VertexId k = 0; k + 1 < kN; ++k) {
    ASSERT_TRUE(t.Delete(k));
    ASSERT_EQ(t.First(), k + 1) << "stale key after deleting " << k;
    ASSERT_TRUE(t.Contains(t.First()));
  }
  EXPECT_TRUE(t.Delete(kN - 1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.CheckInvariants());
}

// Same shape via the min-extraction pattern Terrace's backfill uses: every
// First() must be deletable.
TEST(BTreeTest, ExtractMinDrainsCompletely) {
  BTreeSet t;
  std::set<VertexId> oracle;
  SplitMix64 rng(99);
  for (int i = 0; i < 4000; ++i) {
    VertexId k = static_cast<VertexId>(rng.NextBounded(1u << 20));
    t.Insert(k);
    oracle.insert(k);
  }
  while (!oracle.empty()) {
    VertexId min = t.First();
    ASSERT_EQ(min, *oracle.begin());
    ASSERT_TRUE(t.Delete(min));
    oracle.erase(oracle.begin());
  }
  EXPECT_EQ(t.size(), 0u);
}

class BTreeOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeOracleTest, RandomizedAgainstStdSet) {
  uint64_t key_space = GetParam();
  BTreeSet t;
  std::set<VertexId> oracle;
  SplitMix64 rng(17);
  for (int op = 0; op < 30000; ++op) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(key_space));
    if (rng.NextDouble() < 0.6) {
      ASSERT_EQ(t.Insert(key), oracle.insert(key).second);
    } else {
      ASSERT_EQ(t.Delete(key), oracle.erase(key) != 0);
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  EXPECT_EQ(Dump(t), std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(t.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(KeySpaces, BTreeOracleTest,
                         ::testing::Values(64, 1000, 100000, 4000000000ull));

TEST(BTreeTest, MapWhileStopsAtFirstFalse) {
  BTreeSet t;
  SplitMix64 rng(17);
  for (int i = 0; i < 1000; ++i) {
    t.Insert(rng.Next() % 100000);
  }
  std::vector<VertexId> all = Dump(t);
  std::vector<VertexId> seen;
  // Stop deep enough that the cut crosses leaf and internal-node boundaries.
  bool full = t.MapWhile([&seen](VertexId v) {
    seen.push_back(v);
    return seen.size() < 100;
  });
  EXPECT_FALSE(full);
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), all.begin()));
  size_t visits = 0;
  EXPECT_TRUE(t.MapWhile([&visits](VertexId) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, t.size());
}

}  // namespace
}  // namespace lsg
