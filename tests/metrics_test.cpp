// Telemetry layer tests: JSON writer/parser round-trips, the
// BENCH_*.json schema authority (ValidateBenchJson), non-finite row
// handling, and the BenchReporter file path end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/common.h"
#include "src/core/options.h"
#include "src/util/json.h"
#include "src/util/metrics.h"

namespace lsg {
namespace {

TEST(JsonTest, WriteParseRoundTrip) {
  JsonValue doc = JsonValue::Object();
  doc.Set("name", JsonValue("bench \"quoted\"\n\ttabbed"));
  doc.Set("count", JsonValue(int64_t{123456789}));
  doc.Set("ratio", JsonValue(0.37519999999999998));
  doc.Set("flag", JsonValue(true));
  doc.Set("nothing", JsonValue());
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue(int64_t{-7}));
  arr.Append(JsonValue("x"));
  JsonValue inner = JsonValue::Object();
  inner.Set("k", JsonValue(1e-9));
  arr.Append(std::move(inner));
  doc.Set("items", std::move(arr));

  std::string text = JsonWrite(doc);
  JsonValue back;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &back, &error)) << error;
  // Writing the parse result again must reproduce the text exactly — keys
  // keep insertion order, numbers round-trip via %.17g.
  EXPECT_EQ(JsonWrite(back), text);
  EXPECT_EQ(back.Find("name")->AsString(), "bench \"quoted\"\n\ttabbed");
  EXPECT_EQ(back.Find("count")->AsInt(), 123456789);
  EXPECT_DOUBLE_EQ(back.Find("ratio")->AsDouble(), 0.37519999999999998);
  EXPECT_TRUE(back.Find("flag")->AsBool());
  EXPECT_TRUE(back.Find("nothing")->is_null());
  EXPECT_EQ(back.Find("items")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(
      back.Find("items")->items()[2].Find("k")->AsDouble(), 1e-9);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "{\"a\":1} trailing", "\"unterminated",
        "nul", "1.2.3", "{\"a\":}"}) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonParse(bad, &v, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, ParsesEscapesAndNestedStructures) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(R"({"s":"aA\n\\","a":[[],{}],"n":-1.5e3})", &v,
                        &error))
      << error;
  EXPECT_EQ(v.Find("s")->AsString(), "aA\n\\");
  EXPECT_EQ(v.Find("a")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(v.Find("n")->AsDouble(), -1500.0);
}

MetricRow Row(const char* metric, double value, const char* unit) {
  return {.dataset = "LJ",
          .engine = "LSGraph",
          .metric = metric,
          .value = value,
          .unit = unit,
          .batch_size = 1000,
          .threads = 4,
          .params = "alpha=1.2"};
}

TEST(MetricsTest, RegistryDropsNonFiniteRows) {
  MetricRegistry reg("unit", "tiny");
  reg.Add(Row("ok", 1.5, "s"));
  reg.Add(Row("nan", std::numeric_limits<double>::quiet_NaN(), "s"));
  reg.Add(Row("inf", std::numeric_limits<double>::infinity(), "edges/s"));
  EXPECT_EQ(reg.num_rows(), 1u);
  EXPECT_EQ(reg.omitted_nonfinite(), 2u);
  JsonValue doc = reg.ToJson();
  EXPECT_EQ(doc.Find("meta")->Find("omitted_nonfinite")->AsInt(), 2);
  EXPECT_EQ(doc.Find("rows")->items().size(), 1u);
}

TEST(MetricsTest, ToJsonSatisfiesSchemaRoundTrip) {
  MetricRegistry reg("unit", "tiny");
  reg.Add(Row("insert_throughput", 1.25e6, "edges/s"));
  reg.Add(Row("bfs_time", 0.125, "s"));
  CoreStats stats;
  stats.ria_expansions.fetch_add(3);
  reg.AddCoreStats("LJ", "LSGraph", stats, "m=64");
  EXPECT_EQ(reg.num_rows(), 2u + 17u);  // 17 CoreStats counters

  std::string text = JsonWrite(reg.ToJson());
  JsonValue back;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &back, &error)) << error;
  EXPECT_TRUE(ValidateBenchJson(back, &error)) << error;

  const JsonValue& row0 = back.Find("rows")->items()[0];
  EXPECT_EQ(row0.Find("experiment")->AsString(), "unit");
  EXPECT_EQ(row0.Find("scale")->AsString(), "tiny");
  EXPECT_EQ(row0.Find("dataset")->AsString(), "LJ");
  EXPECT_EQ(row0.Find("metric")->AsString(), "insert_throughput");
  EXPECT_DOUBLE_EQ(row0.Find("value")->AsDouble(), 1.25e6);
  EXPECT_EQ(row0.Find("batch_size")->AsInt(), 1000);
  EXPECT_EQ(row0.Find("threads")->AsInt(), 4);
  // One "count" row per CoreStats field, prefixed for greppability.
  const JsonValue& stat_row = back.Find("rows")->items()[3];
  EXPECT_EQ(stat_row.Find("metric")->AsString(),
            "corestats.ria_expansions");
  EXPECT_DOUBLE_EQ(stat_row.Find("value")->AsDouble(), 3.0);
  EXPECT_EQ(stat_row.Find("params")->AsString(), "m=64");
}

TEST(MetricsTest, ValidateRejectsCorruptDocuments) {
  MetricRegistry reg("unit", "tiny");
  reg.Add(Row("t", 1.0, "s"));
  std::string error;

  JsonValue doc = reg.ToJson();
  doc.Set("schema_version", JsonValue(int64_t{2}));
  EXPECT_FALSE(ValidateBenchJson(doc, &error));

  doc = reg.ToJson();
  doc.Set("rows", JsonValue("not an array"));
  EXPECT_FALSE(ValidateBenchJson(doc, &error));

  doc = reg.ToJson();
  doc.Set("experiment", JsonValue("renamed"));  // rows still say "unit"
  EXPECT_FALSE(ValidateBenchJson(doc, &error));

  EXPECT_FALSE(ValidateBenchJson(JsonValue(1.0), &error));
  EXPECT_FALSE(ValidateBenchJson(JsonValue::Object(), &error));
}

TEST(MetricsTest, GatedUnitPolicy) {
  EXPECT_TRUE(IsGatedUnit("s"));
  EXPECT_TRUE(IsGatedUnit("bytes"));
  EXPECT_TRUE(IsGatedUnit("edges/s"));
  EXPECT_TRUE(IsGatedUnit("items/s"));
  EXPECT_FALSE(IsGatedUnit("count"));
  EXPECT_FALSE(IsGatedUnit("%"));
  EXPECT_FALSE(IsGatedUnit("x"));
}

TEST(BenchTest, ThroughputIsNaNForNonPositiveTime) {
  EXPECT_DOUBLE_EQ(bench::Throughput(100, 2.0), 50.0);
  EXPECT_TRUE(std::isnan(bench::Throughput(100, 0.0)));
  EXPECT_TRUE(std::isnan(bench::Throughput(100, -1.0)));
  EXPECT_TRUE(std::isnan(bench::Throughput(0, 0.0)));
}

TEST(BenchTest, ReporterWritesSchemaValidFile) {
  std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("LSG_BENCH_OUT", dir.c_str(), 1), 0);
  std::string path;
  {
    bench::BenchReporter reporter("metrics_selftest");
    reporter.Add(Row("t", 0.5, "s"));
    path = reporter.OutputPath();
    EXPECT_TRUE(reporter.Write());
  }
  unsetenv("LSG_BENCH_OUT");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParse(ss.str(), &doc, &error)) << error;
  EXPECT_TRUE(ValidateBenchJson(doc, &error)) << error;
  EXPECT_EQ(doc.Find("experiment")->AsString(), "metrics_selftest");
  EXPECT_EQ(doc.Find("rows")->items().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lsg
