// Telemetry layer tests: JSON writer/parser round-trips, the
// BENCH_*.json schema authority (ValidateBenchJson), non-finite row
// handling, and the BenchReporter file path end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/common.h"
#include "src/core/options.h"
#include "src/util/json.h"
#include "src/util/metrics.h"

namespace lsg {
namespace {

TEST(JsonTest, WriteParseRoundTrip) {
  JsonValue doc = JsonValue::Object();
  doc.Set("name", JsonValue("bench \"quoted\"\n\ttabbed"));
  doc.Set("count", JsonValue(int64_t{123456789}));
  doc.Set("ratio", JsonValue(0.37519999999999998));
  doc.Set("flag", JsonValue(true));
  doc.Set("nothing", JsonValue());
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue(int64_t{-7}));
  arr.Append(JsonValue("x"));
  JsonValue inner = JsonValue::Object();
  inner.Set("k", JsonValue(1e-9));
  arr.Append(std::move(inner));
  doc.Set("items", std::move(arr));

  std::string text = JsonWrite(doc);
  JsonValue back;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &back, &error)) << error;
  // Writing the parse result again must reproduce the text exactly — keys
  // keep insertion order, numbers round-trip via %.17g.
  EXPECT_EQ(JsonWrite(back), text);
  EXPECT_EQ(back.Find("name")->AsString(), "bench \"quoted\"\n\ttabbed");
  EXPECT_EQ(back.Find("count")->AsInt(), 123456789);
  EXPECT_DOUBLE_EQ(back.Find("ratio")->AsDouble(), 0.37519999999999998);
  EXPECT_TRUE(back.Find("flag")->AsBool());
  EXPECT_TRUE(back.Find("nothing")->is_null());
  EXPECT_EQ(back.Find("items")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(
      back.Find("items")->items()[2].Find("k")->AsDouble(), 1e-9);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "{\"a\":1} trailing", "\"unterminated",
        "nul", "1.2.3", "{\"a\":}"}) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonParse(bad, &v, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, ParsesEscapesAndNestedStructures) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(R"({"s":"aA\n\\","a":[[],{}],"n":-1.5e3})", &v,
                        &error))
      << error;
  EXPECT_EQ(v.Find("s")->AsString(), "aA\n\\");
  EXPECT_EQ(v.Find("a")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(v.Find("n")->AsDouble(), -1500.0);
}

MetricRow Row(const char* metric, double value, const char* unit) {
  return {.dataset = "LJ",
          .engine = "LSGraph",
          .metric = metric,
          .value = value,
          .unit = unit,
          .batch_size = 1000,
          .threads = 4,
          .params = "alpha=1.2"};
}

TEST(MetricsTest, RegistryDropsNonFiniteRows) {
  MetricRegistry reg("unit", "tiny");
  reg.Add(Row("ok", 1.5, "s"));
  reg.Add(Row("nan", std::numeric_limits<double>::quiet_NaN(), "s"));
  reg.Add(Row("inf", std::numeric_limits<double>::infinity(), "edges/s"));
  EXPECT_EQ(reg.num_rows(), 1u);
  EXPECT_EQ(reg.omitted_nonfinite(), 2u);
  JsonValue doc = reg.ToJson();
  EXPECT_EQ(doc.Find("meta")->Find("omitted_nonfinite")->AsInt(), 2);
  EXPECT_EQ(doc.Find("rows")->items().size(), 1u);
}

TEST(MetricsTest, ToJsonSatisfiesSchemaRoundTrip) {
  MetricRegistry reg("unit", "tiny");
  reg.Add(Row("insert_throughput", 1.25e6, "edges/s"));
  reg.Add(Row("bfs_time", 0.125, "s"));
  CoreStats stats;
  stats.ria_expansions.fetch_add(3);
  reg.AddCoreStats("LJ", "LSGraph", stats, "m=64");
  EXPECT_EQ(reg.num_rows(), 2u + 17u);  // 17 CoreStats counters

  std::string text = JsonWrite(reg.ToJson());
  JsonValue back;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &back, &error)) << error;
  EXPECT_TRUE(ValidateBenchJson(back, &error)) << error;

  const JsonValue& row0 = back.Find("rows")->items()[0];
  EXPECT_EQ(row0.Find("experiment")->AsString(), "unit");
  EXPECT_EQ(row0.Find("scale")->AsString(), "tiny");
  EXPECT_EQ(row0.Find("dataset")->AsString(), "LJ");
  EXPECT_EQ(row0.Find("metric")->AsString(), "insert_throughput");
  EXPECT_DOUBLE_EQ(row0.Find("value")->AsDouble(), 1.25e6);
  EXPECT_EQ(row0.Find("batch_size")->AsInt(), 1000);
  EXPECT_EQ(row0.Find("threads")->AsInt(), 4);
  // One "count" row per CoreStats field, prefixed for greppability.
  const JsonValue& stat_row = back.Find("rows")->items()[3];
  EXPECT_EQ(stat_row.Find("metric")->AsString(),
            "corestats.ria_expansions");
  EXPECT_DOUBLE_EQ(stat_row.Find("value")->AsDouble(), 3.0);
  EXPECT_EQ(stat_row.Find("params")->AsString(), "m=64");
}

TEST(MetricsTest, ValidateRejectsCorruptDocuments) {
  MetricRegistry reg("unit", "tiny");
  reg.Add(Row("t", 1.0, "s"));
  std::string error;

  JsonValue doc = reg.ToJson();
  doc.Set("schema_version", JsonValue(int64_t{2}));
  EXPECT_FALSE(ValidateBenchJson(doc, &error));

  doc = reg.ToJson();
  doc.Set("rows", JsonValue("not an array"));
  EXPECT_FALSE(ValidateBenchJson(doc, &error));

  doc = reg.ToJson();
  doc.Set("experiment", JsonValue("renamed"));  // rows still say "unit"
  EXPECT_FALSE(ValidateBenchJson(doc, &error));

  EXPECT_FALSE(ValidateBenchJson(JsonValue(1.0), &error));
  EXPECT_FALSE(ValidateBenchJson(JsonValue::Object(), &error));
}

TEST(MetricsTest, GatedUnitPolicy) {
  EXPECT_TRUE(IsGatedUnit("s"));
  EXPECT_TRUE(IsGatedUnit("bytes"));
  EXPECT_TRUE(IsGatedUnit("edges/s"));
  EXPECT_TRUE(IsGatedUnit("items/s"));
  EXPECT_FALSE(IsGatedUnit("count"));
  EXPECT_FALSE(IsGatedUnit("%"));
  EXPECT_FALSE(IsGatedUnit("x"));
}

TEST(BenchTest, ThroughputIsNaNForNonPositiveTime) {
  EXPECT_DOUBLE_EQ(bench::Throughput(100, 2.0), 50.0);
  EXPECT_TRUE(std::isnan(bench::Throughput(100, 0.0)));
  EXPECT_TRUE(std::isnan(bench::Throughput(100, -1.0)));
  EXPECT_TRUE(std::isnan(bench::Throughput(0, 0.0)));
}

TEST(BenchTest, ReporterWritesSchemaValidFile) {
  std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("LSG_BENCH_OUT", dir.c_str(), 1), 0);
  std::string path;
  {
    bench::BenchReporter reporter("metrics_selftest");
    reporter.Add(Row("t", 0.5, "s"));
    path = reporter.OutputPath();
    EXPECT_TRUE(reporter.Write());
  }
  unsetenv("LSG_BENCH_OUT");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParse(ss.str(), &doc, &error)) << error;
  EXPECT_TRUE(ValidateBenchJson(doc, &error)) << error;
  EXPECT_EQ(doc.Find("experiment")->AsString(), "metrics_selftest");
  EXPECT_EQ(doc.Find("rows")->items().size(), 1u);
  std::remove(path.c_str());
}

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Below kSub the mapping is identity (exact nanoseconds).
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{31}}) {
    EXPECT_EQ(LatencyHistogram::BucketOf(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(
                  LatencyHistogram::BucketOf(v)),
              v);
  }
  // From kSub upward: log-linear, lower bound never exceeds the value and
  // the relative error stays within one sub-bucket (~1/32).
  for (uint64_t v : {uint64_t{32}, uint64_t{33}, uint64_t{63}, uint64_t{64},
                     uint64_t{1000}, uint64_t{123456789},
                     uint64_t{1} << 40}) {
    uint32_t b = LatencyHistogram::BucketOf(v);
    uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    EXPECT_LE(lo, v) << v;
    EXPECT_GT(LatencyHistogram::BucketLowerBound(b + 1), v) << v;
    EXPECT_LE(static_cast<double>(v - lo) / static_cast<double>(v),
              1.0 / 32.0 + 1e-9)
        << v;
  }
  // Octave edges land in fresh octaves.
  EXPECT_EQ(LatencyHistogram::BucketOf(32), LatencyHistogram::kSub);
  EXPECT_EQ(LatencyHistogram::BucketOf(64), 2 * LatencyHistogram::kSub);
}

TEST(LatencyHistogramTest, PercentilesAndMerge) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.PercentileNanos(0.99), 0u);

  LatencyHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Record(i);  // 1..1000 ns, exact buckets below 32, ~3% above
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min_nanos(), 1u);
  EXPECT_EQ(h.max_nanos(), 1000u);
  // p50 = 500 ns: bucket lower bound within one sub-bucket below.
  EXPECT_GE(h.PercentileNanos(0.50), 480u);
  EXPECT_LE(h.PercentileNanos(0.50), 500u);
  EXPECT_GE(h.PercentileNanos(0.99), 950u);
  EXPECT_LE(h.PercentileNanos(0.99), 990u);
  // Monotone in p, and p=1 reaches the top bucket.
  EXPECT_LE(h.PercentileNanos(0.5), h.PercentileNanos(0.99));
  EXPECT_LE(h.PercentileNanos(0.99), h.PercentileNanos(1.0));

  // Merge = distribution union (the per-thread recorder pattern).
  LatencyHistogram a, b;
  for (uint64_t i = 1; i <= 500; ++i) {
    a.Record(i);
  }
  for (uint64_t i = 501; i <= 1000; ++i) {
    b.Record(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.max_nanos(), 1000u);
  EXPECT_EQ(a.PercentileNanos(0.99), h.PercentileNanos(0.99));

  // RecordSeconds ignores garbage, converts otherwise.
  LatencyHistogram s;
  s.RecordSeconds(-1.0);
  s.RecordSeconds(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(s.count(), 0u);
  s.RecordSeconds(1e-6);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_NEAR(s.PercentileSeconds(1.0), 1e-6, 1e-7);
}

}  // namespace
}  // namespace lsg
