// Terrace-baseline-specific behaviour: PMA<->B-tree migration at the
// high-degree threshold, offset-array maintenance, and the low-density PMA
// configuration the paper attributes Terrace's memory blowup to.
#include <gtest/gtest.h>

#include <vector>

#include "src/baselines/terrace_graph.h"
#include "src/gen/rmat.h"
#include "tests/reference.h"

namespace lsg {
namespace {

std::vector<VertexId> Neighbors(const TerraceGraph& g, VertexId v) {
  std::vector<VertexId> out;
  g.map_neighbors(v, [&out](VertexId u) { out.push_back(u); });
  return out;
}

TEST(TerraceTest, MigratesToBTreeAtThreshold) {
  TerraceOptions options;
  options.high_degree_threshold = 100;
  TerraceGraph g(100000, options);
  // Push one vertex past inline + threshold; adjacency must stay exact
  // across the PMA -> B-tree migration.
  RefGraph ref(100000);
  for (VertexId v = 0; v < 500; ++v) {
    VertexId dst = (v * 2654435761u) % 100000;  // scrambled order
    ASSERT_EQ(g.InsertEdge(0, dst), ref.Insert(0, dst)) << v;
  }
  EXPECT_EQ(g.degree(0), ref.degree(0));
  EXPECT_EQ(Neighbors(g, 0), ref.Neighbors(0));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(TerraceTest, DeletesWorkAcrossMigration) {
  TerraceOptions options;
  options.high_degree_threshold = 64;
  TerraceGraph g(1024, options);
  for (VertexId v = 0; v < 300; ++v) {
    g.InsertEdge(1, v * 3);
  }
  for (VertexId v = 0; v < 300; v += 2) {
    ASSERT_TRUE(g.DeleteEdge(1, v * 3));
  }
  EXPECT_EQ(g.degree(1), 150u);
  std::vector<VertexId> got = Neighbors(g, 1);
  ASSERT_EQ(got.size(), 150u);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], (2 * i + 1) * 3);
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(TerraceTest, OffsetArrayStaysFreshAcrossUpdates) {
  TerraceGraph g(64);
  RmatGenerator gen({6, 0.5, 0.1, 0.1}, 3);
  RefGraph ref(64);
  for (int round = 0; round < 20; ++round) {
    std::vector<Edge> batch = gen.Generate(round * 500, 500);
    for (const Edge& e : batch) {
      ref.Insert(e.src, e.dst);
    }
    g.InsertBatch(batch);
    // Traversal immediately after an update must see the fresh state (the
    // offset array is rebuilt lazily; staleness would surface here).
    for (VertexId v = 0; v < 64; ++v) {
      ASSERT_EQ(Neighbors(g, v), ref.Neighbors(v))
          << "round " << round << " vertex " << v;
    }
  }
}

TEST(TerraceTest, SharedPmaKeepsGlobalOrder) {
  // Interleaved inserts across vertices end in one globally sorted array;
  // per-vertex ranges must not bleed into each other.
  TerraceGraph g(256);
  for (VertexId dst = 0; dst < 200; ++dst) {
    for (VertexId src = 0; src < 8; ++src) {
      g.InsertEdge(src, dst * 7 % 200);
    }
  }
  for (VertexId src = 0; src < 8; ++src) {
    std::vector<VertexId> n = Neighbors(g, src);
    ASSERT_EQ(n.size(), 200u);
    ASSERT_TRUE(std::is_sorted(n.begin(), n.end()));
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(TerraceTest, LowDensityPmaInflatesFootprint) {
  // Table 3's explanation: Terrace's (0.125, 0.25) density costs 4-8x space
  // on the PMA-resident portion.
  TerraceGraph low_density(1024);  // default: low density
  TerraceOptions dense_options;
  dense_options.pma = PmaOptions{};  // ordinary densities
  TerraceGraph dense(1024, dense_options);
  RmatGenerator gen({10, 0.5, 0.1, 0.1}, 17);
  std::vector<Edge> edges = gen.Generate(0, 100000);
  low_density.BuildFromEdges(edges);
  dense.BuildFromEdges(edges);
  EXPECT_GT(low_density.memory_footprint(), dense.memory_footprint());
}

}  // namespace
}  // namespace lsg
