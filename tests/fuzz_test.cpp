// Differential fuzz harness tests: trace format round-trips, lockstep
// smoke runs across every engine, divergence detection on an injected bug,
// shrinker minimization, and replay determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/testing/adapters.h"
#include "src/testing/differential.h"
#include "src/testing/generator.h"
#include "src/testing/shrinker.h"
#include "src/testing/trace.h"

namespace lsg {
namespace {

AdapterFactory DefaultFactory() {
  return [](VertexId n, ThreadPool* pool) {
    return MakeDefaultAdapters(n, pool);
  };
}

// Reference vs. a deterministically buggy oracle that drops some inserts.
AdapterFactory BuggyFactory() {
  return [](VertexId n, ThreadPool*) {
    std::vector<std::unique_ptr<EngineAdapter>> out;
    out.push_back(MakeReferenceAdapter(n));
    out.push_back(MakeDropInsertAdapter(n, /*modulus=*/37, /*residue=*/13));
    return out;
  };
}

TEST(TraceFormatTest, SerializeParseRoundTrip) {
  Trace trace;
  trace.initial_vertices = 42;
  TraceOp ins = TraceOp::Of(TraceOpKind::kInsert);
  ins.u = 3;
  ins.v = 9;
  trace.ops.push_back(ins);
  TraceOp batch = TraceOp::Of(TraceOpKind::kInsertBatch);
  batch.edges = {{1, 2}, {2, 3}, {1, 2}};
  trace.ops.push_back(batch);
  TraceOp build = TraceOp::Of(TraceOpKind::kBuild);
  build.edges = {{0, 1}};
  trace.ops.push_back(build);
  TraceOp add = TraceOp::Of(TraceOpKind::kAddVertices);
  add.u = 5;
  trace.ops.push_back(add);
  trace.ops.push_back(TraceOp::Of(TraceOpKind::kSnapshot));
  trace.ops.push_back(TraceOp::Of(TraceOpKind::kAudit));
  TraceOp bfs = TraceOp::Of(TraceOpKind::kBfs);
  bfs.u = 7;
  trace.ops.push_back(bfs);

  std::string text = SerializeTrace(trace);
  Trace parsed;
  std::string error;
  ASSERT_TRUE(ParseTrace(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, trace);
  // Canonical: re-serializing is byte-identical (replay files are stable).
  EXPECT_EQ(SerializeTrace(parsed), text);
}

TEST(TraceFormatTest, RejectsMalformedInput) {
  Trace out;
  EXPECT_FALSE(ParseTrace("", &out));
  EXPECT_FALSE(ParseTrace("lsgfuzz 2\nv 4\n", &out));
  EXPECT_FALSE(ParseTrace("lsgfuzz 1\ni 1 2\n", &out));        // op before v
  EXPECT_FALSE(ParseTrace("lsgfuzz 1\nv 4\nI 2\ne 1 2\n", &out));  // truncated
  EXPECT_FALSE(ParseTrace("lsgfuzz 1\nv 4\nz 1\n", &out));     // unknown op
  EXPECT_FALSE(ParseTrace("lsgfuzz 1\nv 4\ne 1 2\n", &out));   // stray edge
}

TEST(TraceFormatTest, GeneratorIsDeterministic) {
  GeneratorConfig config;
  config.num_ops = 500;
  Trace a = GenerateTrace(7, config);
  Trace b = GenerateTrace(7, config);
  EXPECT_EQ(a, b);
  Trace c = GenerateTrace(8, config);
  EXPECT_NE(a, c);
}

TEST(FuzzSmokeTest, AllEnginesAgreeSingleThread) {
  GeneratorConfig gen;
  gen.num_ops = 2000;
  RunConfig run;
  run.threads = 1;
  run.audit_interval = 128;
  run.memory_audit = true;
  for (uint64_t seed : {1, 2, 3}) {
    Divergence d = RunTrace(GenerateTrace(seed, gen), run, DefaultFactory());
    EXPECT_FALSE(d.found) << "seed " << seed << ": op " << d.op_index << " ["
                          << d.engine << "] " << d.message;
  }
}

TEST(FuzzSmokeTest, AllEnginesAgreeMultiThread) {
  GeneratorConfig gen;
  gen.num_ops = 2000;
  RunConfig run;
  run.threads = 4;
  run.audit_interval = 256;
  for (uint64_t seed : {4, 5}) {
    Divergence d = RunTrace(GenerateTrace(seed, gen), run, DefaultFactory());
    EXPECT_FALSE(d.found) << "seed " << seed << ": op " << d.op_index << " ["
                          << d.engine << "] " << d.message;
  }
}

TEST(FuzzSmokeTest, ThreadCountDoesNotChangeResults) {
  // The trace executor must be deterministic across pool sizes: a trace
  // that runs clean at 1 thread runs clean at 8, and vice versa.
  GeneratorConfig gen;
  gen.num_ops = 1500;
  Trace trace = GenerateTrace(11, gen);
  for (int threads : {1, 2, 8}) {
    RunConfig run;
    run.threads = threads;
    Divergence d = RunTrace(trace, run, DefaultFactory());
    EXPECT_FALSE(d.found) << threads << " threads: " << d.message;
  }
}

TEST(FuzzHarnessTest, DetectsInjectedBug) {
  GeneratorConfig gen;
  gen.num_ops = 2000;
  RunConfig run;
  Divergence d = RunTrace(GenerateTrace(21, gen), run, BuggyFactory());
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.engine, "drop-insert");
}

TEST(FuzzHarnessTest, ShrinkerMinimizesToReplayableTrace) {
  GeneratorConfig gen;
  gen.num_ops = 2000;
  RunConfig run;
  Trace trace = GenerateTrace(21, gen);
  ASSERT_TRUE(RunTrace(trace, run, BuggyFactory()).found);

  Trace small = MinimizeTrace(trace, run, BuggyFactory());
  EXPECT_LE(small.ops.size(), 50u);
  EXPECT_LT(small.ops.size(), trace.ops.size());

  // The minimized trace still diverges, and survives a serialize/parse
  // round trip byte-for-byte (replay determinism).
  std::string text = SerializeTrace(small);
  Trace replayed;
  std::string error;
  ASSERT_TRUE(ParseTrace(text, &replayed, &error)) << error;
  EXPECT_EQ(SerializeTrace(replayed), text);
  Divergence again = RunTrace(replayed, run, BuggyFactory());
  ASSERT_TRUE(again.found);
  EXPECT_EQ(again.engine, "drop-insert");

  // Minimization is deterministic.
  EXPECT_EQ(MinimizeTrace(trace, run, BuggyFactory()), small);
}

TEST(FuzzHarnessTest, OutOfRangeEdgesViaReplayFormat) {
  // Regression for the endpoint-validation policy, expressed in the replay
  // format: every engine must count and skip out-of-range endpoints exactly
  // like the reference (the audit compares oob counters), and the final
  // snapshot confirms no stray adjacency was created.
  const std::string text =
      "lsgfuzz 1\n"
      "v 8\n"
      "i 0 100\n"     // single insert, dst out of range
      "i 100 0\n"     // single insert, src out of range
      "d 3 99\n"      // delete of an out-of-range edge
      "q 0 100\n"     // probe must report false everywhere
      "I 3\n"
      "e 1 2\n"
      "e 1 9\n"       // batch: one valid edge, two rejects
      "e 9 1\n"
      "B 2\n"
      "e 2 3\n"
      "e 2 12\n"      // rebuild with one out-of-range edge
      "a 8\n"         // grow; ids 8..15 become valid
      "i 1 12\n"      // now in range
      "s\n"
      "c\n";
  Trace trace;
  std::string error;
  ASSERT_TRUE(ParseTrace(text, &trace, &error)) << error;
  RunConfig run;
  Divergence d = RunTrace(trace, run, DefaultFactory());
  EXPECT_FALSE(d.found) << "op " << d.op_index << " [" << d.engine << "] "
                        << d.message;
}

TEST(FuzzHarnessTest, MemoryAuditFlagsRetention) {
  // A cohort whose engine under test retains 100x a fresh build must trip
  // the footprint audit. Simulated with a reference wrapper reporting
  // inflated live footprints.
  class Bloated : public EngineAdapter {
   public:
    explicit Bloated(VertexId n) : inner_(MakeReferenceAdapter(n)) {}
    std::string_view name() const override { return "bloated"; }
    bool InsertEdge(VertexId s, VertexId t) override {
      return inner_->InsertEdge(s, t);
    }
    bool DeleteEdge(VertexId s, VertexId t) override {
      return inner_->DeleteEdge(s, t);
    }
    size_t InsertBatch(std::span<const Edge> b) override {
      return inner_->InsertBatch(b);
    }
    size_t DeleteBatch(std::span<const Edge> b) override {
      return inner_->DeleteBatch(b);
    }
    void BuildFromEdges(std::vector<Edge> e) override {
      inner_->BuildFromEdges(std::move(e));
    }
    VertexId AddVertices(VertexId c) override { return inner_->AddVertices(c); }
    bool HasEdge(VertexId s, VertexId t) const override {
      return inner_->HasEdge(s, t);
    }
    size_t Degree(VertexId v) const override { return inner_->Degree(v); }
    VertexId NumVertices() const override { return inner_->NumVertices(); }
    EdgeCount NumEdges() const override { return inner_->NumEdges(); }
    uint64_t OobRejected() const override { return inner_->OobRejected(); }
    std::vector<VertexId> Neighbors(VertexId v) const override {
      return inner_->Neighbors(v);
    }
    bool CheckInvariants() const override { return inner_->CheckInvariants(); }
    size_t LiveFootprint() const override { return 100 << 20; }
    size_t FreshFootprint() const override { return 1 << 20; }

   private:
    std::unique_ptr<EngineAdapter> inner_;
  };

  Trace trace;
  trace.initial_vertices = 4;
  TraceOp ins = TraceOp::Of(TraceOpKind::kInsert);
  ins.u = 0;
  ins.v = 1;
  trace.ops.push_back(ins);
  RunConfig run;
  run.memory_audit = true;
  Divergence d = RunTrace(trace, run, [](VertexId n, ThreadPool*) {
    std::vector<std::unique_ptr<EngineAdapter>> out;
    out.push_back(MakeReferenceAdapter(n));
    out.push_back(std::make_unique<Bloated>(n));
    return out;
  });
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.engine, "bloated");
  EXPECT_NE(d.message.find("footprint retention"), std::string::npos);
}

}  // namespace
}  // namespace lsg
