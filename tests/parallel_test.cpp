#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/parallel/thread_pool.h"

namespace lsg {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, 100, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(10, 10, [&](size_t) { ran = true; });
  pool.ParallelFor(10, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, NonZeroBeginRespected) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 200, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ThreadPoolTest, ChunkedCoversRangeWithValidThreadIds) {
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelForChunked(0, kN, [&](size_t lo, size_t hi, size_t tid) {
    ASSERT_LT(tid, pool.num_threads());
    for (size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(0, 1000, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 1000u);
  }
}

TEST(ThreadPoolTest, ExplicitGrainStillCoversRange) {
  ThreadPool pool(4);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(
      0, 1003, [&](size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
      /*grain=*/7);
  EXPECT_EQ(sum.load(), 1002ull * 1003 / 2);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<size_t> count{0};
  ParallelFor(0, 100, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace lsg
