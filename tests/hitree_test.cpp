#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/hitree.h"
#include "src/core/options.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

Options SmallThresholds(CoreStats* stats = nullptr) {
  // Shrunk thresholds so tests cross every representation boundary quickly.
  Options o;
  o.alpha = 1.2;
  o.block_size = 8;
  o.a_threshold = 16;
  o.m_threshold = 128;
  o.stats = stats;
  return o;
}

std::vector<VertexId> Iota(VertexId n, VertexId stride = 1) {
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < n; ++v) {
    ids.push_back(v * stride);
  }
  return ids;
}

TEST(LiaTest, BulkLoadRoundtrip) {
  Options o = SmallThresholds();
  std::vector<VertexId> ids = Iota(1000, 3);
  Lia lia(o, ids);
  EXPECT_EQ(lia.size(), ids.size());
  std::vector<VertexId> out;
  lia.Map([&out](VertexId v) { out.push_back(v); });
  EXPECT_EQ(out, ids);
  EXPECT_TRUE(lia.CheckInvariants());
  for (VertexId v : {0u, 999u * 3, 500u * 3}) {
    EXPECT_TRUE(lia.Contains(v));
  }
  EXPECT_FALSE(lia.Contains(1));
  EXPECT_EQ(lia.First(), 0u);
}

TEST(LiaTest, SkewedKeysForceChildren) {
  Options o = SmallThresholds();
  // Clustered keys defeat the linear model, forcing packed blocks and
  // children at bulkload.
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 300; ++v) {
    ids.push_back(v);  // dense cluster
  }
  for (VertexId v = 0; v < 50; ++v) {
    ids.push_back(1000000 + v * 1000);  // sparse far tail
  }
  Lia lia(o, ids);
  EXPECT_EQ(lia.size(), ids.size());
  std::vector<VertexId> out;
  lia.Map([&out](VertexId v) { out.push_back(v); });
  EXPECT_EQ(out, ids);
  EXPECT_TRUE(lia.CheckInvariants());
}

TEST(LiaTest, InsertAllCases) {
  CoreStats stats;
  Options o = SmallThresholds(&stats);
  std::vector<VertexId> ids = Iota(500, 10);
  Lia lia(o, ids);
  std::set<VertexId> oracle(ids.begin(), ids.end());
  SplitMix64 rng(3);
  for (int i = 0; i < 3000; ++i) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(5000));
    ASSERT_EQ(lia.Insert(key), oracle.insert(key).second) << "key " << key;
  }
  EXPECT_EQ(lia.size(), oracle.size());
  std::vector<VertexId> out;
  lia.Map([&out](VertexId v) { out.push_back(v); });
  EXPECT_EQ(out, std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(lia.CheckInvariants());
  // Dense inserts into a small array must have gone vertical at least once.
  EXPECT_GT(stats.lia_child_creations.load(), 0u);
}

TEST(LiaTest, DeleteAcrossEntryTypes) {
  Options o = SmallThresholds();
  std::vector<VertexId> ids = Iota(2000);
  Lia lia(o, ids);  // dense ids -> mixture of E, B, and C blocks
  std::set<VertexId> oracle(ids.begin(), ids.end());
  SplitMix64 rng(4);
  for (int i = 0; i < 1500; ++i) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(2200));
    ASSERT_EQ(lia.Delete(key), oracle.erase(key) != 0) << "key " << key;
  }
  std::vector<VertexId> out;
  lia.Map([&out](VertexId v) { out.push_back(v); });
  EXPECT_EQ(out, std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(lia.CheckInvariants());
}

TEST(HiNodeTest, StartsAsArrayAndUpgrades) {
  CoreStats stats;
  Options o = SmallThresholds(&stats);
  HiNode node(o);
  EXPECT_EQ(node.kind(), HiNode::Kind::kArray);
  // Fill past A: upgrade to RIA.
  for (VertexId v = 0; v < o.a_threshold + 1; ++v) {
    ASSERT_TRUE(node.Insert(v * 2));
  }
  EXPECT_EQ(node.kind(), HiNode::Kind::kRia);
  // Fill past M with adversarial density until a RIA rebuild crosses M:
  // conversion to LIA must eventually happen.
  for (VertexId v = 0; v < 4 * o.m_threshold; ++v) {
    node.Insert(v);
  }
  EXPECT_EQ(node.kind(), HiNode::Kind::kLia);
  EXPECT_GT(stats.ria_to_hitree_conversions.load(), 0u);
  EXPECT_TRUE(node.CheckInvariants());
  EXPECT_EQ(node.size(), 4 * o.m_threshold);
}

TEST(HiNodeTest, BulkLoadSelectsKindBySize) {
  Options o = SmallThresholds();
  HiNode a(o);
  a.BulkLoad(Iota(o.a_threshold));
  EXPECT_EQ(a.kind(), HiNode::Kind::kArray);
  HiNode r(o);
  r.BulkLoad(Iota(o.m_threshold));
  EXPECT_EQ(r.kind(), HiNode::Kind::kRia);
  HiNode l(o);
  l.BulkLoad(Iota(o.m_threshold + 1));
  EXPECT_EQ(l.kind(), HiNode::Kind::kLia);
  HiNode forced(o);
  forced.BulkLoad(Iota(o.m_threshold + 1), /*force_flat=*/true);
  EXPECT_EQ(forced.kind(), HiNode::Kind::kRia);
}

TEST(HiNodeTest, FirstAcrossKinds) {
  Options o = SmallThresholds();
  for (VertexId n : {VertexId{5}, VertexId{100}, VertexId{300}}) {
    HiNode node(o);
    std::vector<VertexId> ids = Iota(n, 7);
    for (VertexId& v : ids) {
      v += 13;
    }
    node.BulkLoad(ids);
    EXPECT_EQ(node.First(), 13u);
  }
}

TEST(HiNodeTest, DeleteToEmptyAndReuse) {
  Options o = SmallThresholds();
  HiNode node(o);
  node.BulkLoad(Iota(200));
  for (VertexId v = 0; v < 200; ++v) {
    ASSERT_TRUE(node.Delete(v));
  }
  EXPECT_EQ(node.size(), 0u);
  EXPECT_TRUE(node.Insert(9));
  EXPECT_TRUE(node.Contains(9));
}

TEST(HiNodeTest, ArrayToRiaUpgradeDoesNotAliasItsOwnBuffer) {
  // Regression: the array -> RIA upgrade used to pass a span over array_
  // into BulkLoad, which clears array_ before reading the span — a
  // read-after-clear that ASan's container annotations flag and that can
  // silently corrupt the new RIA. The upgrade must stage the ids in a
  // local buffer.
  Options o = SmallThresholds();
  HiNode node(o);
  std::vector<VertexId> ids = Iota(o.a_threshold + 1, 3);
  for (VertexId v : ids) {
    ASSERT_TRUE(node.Insert(v));  // the last insert crosses a_threshold
  }
  EXPECT_EQ(node.kind(), HiNode::Kind::kRia);
  EXPECT_EQ(node.size(), ids.size());
  EXPECT_EQ(node.Decode(), ids);
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(HiNodeTest, DeleteDowngradesRepresentation) {
  CoreStats stats;
  Options o = SmallThresholds(&stats);
  HiNode node(o);
  node.BulkLoad(Iota(2 * o.m_threshold));
  ASSERT_EQ(node.kind(), HiNode::Kind::kLia);
  size_t lia_footprint = node.memory_footprint();
  // Shrink past half of M: LIA must give way to RIA.
  for (VertexId v = 2 * o.m_threshold; v-- > o.m_threshold / 2;) {
    ASSERT_TRUE(node.Delete(v));
  }
  EXPECT_EQ(node.kind(), HiNode::Kind::kRia);
  EXPECT_GT(stats.hitree_to_ria_conversions.load(), 0u);
  EXPECT_LT(node.memory_footprint(), lia_footprint / 2);
  // Shrink past half of A: RIA must give way to the plain array.
  for (VertexId v = o.m_threshold / 2; v-- > o.a_threshold / 4;) {
    ASSERT_TRUE(node.Delete(v));
  }
  EXPECT_EQ(node.kind(), HiNode::Kind::kArray);
  EXPECT_GT(stats.ria_to_array_conversions.load(), 0u);
  EXPECT_EQ(node.size(), o.a_threshold / 4);
  EXPECT_EQ(node.Decode(), Iota(o.a_threshold / 4));
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(LiaTest, DetachedChildSlotsAreReused) {
  // Regression: DetachChild left its children_ slot null forever, so
  // delete/insert churn through child creation grew children_ (and the
  // footprint) without bound. The free-slot list must cap it.
  Options o = SmallThresholds();
  // Dense cluster + sparse tail defeats the linear model and forces child
  // creation at bulkload and on re-insertion.
  std::vector<VertexId> cluster = Iota(300);
  std::vector<VertexId> all = cluster;
  for (VertexId v = 0; v < 50; ++v) {
    all.push_back(1000000 + v * 1000);
  }
  Lia lia(o, all);
  ASSERT_TRUE(lia.CheckInvariants());
  size_t baseline = 0;
  for (int cycle = 0; cycle < 12; ++cycle) {
    for (VertexId v : cluster) {
      ASSERT_TRUE(lia.Delete(v));  // drains every cluster child
    }
    for (VertexId v : cluster) {
      ASSERT_TRUE(lia.Insert(v));  // re-creates them
    }
    ASSERT_TRUE(lia.CheckInvariants()) << "cycle " << cycle;
    if (cycle == 1) {
      baseline = lia.memory_footprint();
    }
  }
  EXPECT_EQ(lia.size(), all.size());
  // Without slot reuse the footprint grows every cycle; with it, ten more
  // churn cycles stay within a small slack of the early-cycle footprint.
  EXPECT_LE(lia.memory_footprint(), baseline + baseline / 4);
}

struct HiParam {
  uint32_t a;
  uint32_t m;
  uint32_t bks;
  uint64_t key_space;
};

class HiNodeOracleTest : public ::testing::TestWithParam<HiParam> {};

TEST_P(HiNodeOracleTest, RandomizedAgainstStdSet) {
  const HiParam& param = GetParam();
  Options o;
  o.a_threshold = param.a;
  o.m_threshold = param.m;
  o.block_size = param.bks;
  HiNode node(o);
  std::set<VertexId> oracle;
  SplitMix64 rng(77);
  for (int op = 0; op < 25000; ++op) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(param.key_space));
    if (rng.NextDouble() < 0.65) {
      ASSERT_EQ(node.Insert(key), oracle.insert(key).second) << "key " << key;
    } else {
      ASSERT_EQ(node.Delete(key), oracle.erase(key) != 0) << "key " << key;
    }
    ASSERT_EQ(node.size(), oracle.size());
  }
  EXPECT_EQ(node.Decode(), std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(node.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, HiNodeOracleTest,
    ::testing::Values(HiParam{16, 128, 8, 2000},     // all kinds exercised
                      HiParam{16, 128, 8, 100000},   // sparse keys
                      HiParam{8, 64, 4, 1000},       // tiny blocks
                      HiParam{32, 4096, 16, 50000},  // paper defaults
                      HiParam{16, 128, 8, 4000000000ull}));

TEST(LiaTest, MapWhileStopsAcrossChildBoundaries) {
  Options o = SmallThresholds();
  std::vector<VertexId> ids = Iota(1000, 3);
  Lia lia(o, ids);
  std::vector<VertexId> seen;
  // 300 ids crosses multiple packed blocks / child subtrees.
  bool full = lia.MapWhile([&seen](VertexId v) {
    seen.push_back(v);
    return seen.size() < 300;
  });
  EXPECT_FALSE(full);
  ASSERT_EQ(seen.size(), 300u);
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), ids.begin()));
  size_t visits = 0;
  EXPECT_TRUE(lia.MapWhile([&visits](VertexId) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, lia.size());
}

TEST(HiNodeTest, MapWhileWorksInEveryKind) {
  Options o = SmallThresholds();
  for (VertexId n : {o.a_threshold,          // kArray
                     o.m_threshold,          // kRia
                     o.m_threshold + 64}) {  // kLia
    HiNode node(o);
    node.BulkLoad(Iota(n));
    size_t visits = 0;
    bool full = node.MapWhile([&visits](VertexId) { return ++visits < 3; });
    EXPECT_FALSE(full) << "n=" << n;
    EXPECT_EQ(visits, 3u) << "n=" << n;
    visits = 0;
    EXPECT_TRUE(node.MapWhile([&visits](VertexId) {
      ++visits;
      return true;
    }));
    EXPECT_EQ(visits, node.size()) << "n=" << n;
  }
}

}  // namespace
}  // namespace lsg
