// Shared test oracles: a std::set-based reference graph and serial reference
// implementations of every analytics kernel.
#ifndef TESTS_REFERENCE_H_
#define TESTS_REFERENCE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <set>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

// Adjacency-set reference graph.
class RefGraph {
 public:
  explicit RefGraph(VertexId n) : adj_(n) {}

  bool Insert(VertexId u, VertexId v) { return adj_[u].insert(v).second; }
  bool Delete(VertexId u, VertexId v) { return adj_[u].erase(v) != 0; }
  bool Has(VertexId u, VertexId v) const { return adj_[u].count(v) != 0; }

  VertexId num_vertices() const { return static_cast<VertexId>(adj_.size()); }
  size_t degree(VertexId v) const { return adj_[v].size(); }
  EdgeCount num_edges() const {
    EdgeCount total = 0;
    for (const auto& s : adj_) {
      total += s.size();
    }
    return total;
  }

  std::vector<VertexId> Neighbors(VertexId v) const {
    return {adj_[v].begin(), adj_[v].end()};
  }

  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    for (VertexId u : adj_[v]) {
      f(u);
    }
  }

 private:
  std::vector<std::set<VertexId>> adj_;
};

inline std::vector<uint32_t> RefBfsLevels(const RefGraph& g, VertexId source) {
  std::vector<uint32_t> level(g.num_vertices(), ~uint32_t{0});
  std::deque<VertexId> queue{source};
  level[source] = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.Neighbors(u)) {
      if (level[v] == ~uint32_t{0}) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return level;
}

inline std::vector<double> RefPageRank(const RefGraph& g, double damping,
                                       int iterations) {
  VertexId n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> contrib(n, 0.0);
    for (VertexId v = 0; v < n; ++v) {
      if (g.degree(v) != 0) {
        contrib[v] = rank[v] / g.degree(v);
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (VertexId u : g.Neighbors(v)) {
        sum += contrib[u];
      }
      next[v] = (1.0 - damping) / n + damping * sum;
    }
    rank.swap(next);
  }
  return rank;
}

inline std::vector<VertexId> RefComponents(const RefGraph& g) {
  VertexId n = g.num_vertices();
  std::vector<VertexId> label(n, kInvalidVertex);
  for (VertexId s = 0; s < n; ++s) {
    if (label[s] != kInvalidVertex) {
      continue;
    }
    std::deque<VertexId> queue{s};
    label[s] = s;
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : g.Neighbors(u)) {
        if (label[v] == kInvalidVertex) {
          label[v] = s;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

inline uint64_t RefTriangles(const RefGraph& g) {
  uint64_t count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<VertexId> nv = g.Neighbors(v);
    for (VertexId u : nv) {
      if (u <= v) {
        continue;
      }
      for (VertexId w : nv) {
        if (w > u && g.Has(u, w)) {
          ++count;
        }
      }
    }
  }
  return count;
}

inline std::vector<double> RefBetweenness(const RefGraph& g, VertexId source) {
  VertexId n = g.num_vertices();
  std::vector<double> sigma(n, 0.0);
  std::vector<uint32_t> level(n, ~uint32_t{0});
  std::vector<double> delta(n, 0.0);
  std::vector<VertexId> order;
  std::deque<VertexId> queue{source};
  sigma[source] = 1.0;
  level[source] = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (VertexId v : g.Neighbors(u)) {
      if (level[v] == ~uint32_t{0}) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
      if (level[v] == level[u] + 1) {
        sigma[v] += sigma[u];
      }
    }
  }
  for (size_t i = order.size(); i-- > 0;) {
    VertexId w = order[i];
    for (VertexId v : g.Neighbors(w)) {
      if (level[v] + 1 == level[w] && sigma[w] != 0.0) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
    }
  }
  delta[source] = 0.0;
  return delta;
}

}  // namespace lsg

#endif  // TESTS_REFERENCE_H_
