// Hybrid frontier runtime tests: sparse/dense/kAll representation
// round-trips, the parallel cached edge sum, and push-vs-auto-vs-pull
// equivalence of the frontier kernels on every engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "src/analytics/bfs.h"
#include "src/analytics/cc.h"
#include "src/baselines/ctree_graph.h"
#include "src/baselines/sortledton_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/edgemap.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"

namespace lsg {
namespace {

std::vector<VertexId> SortedVertices(const VertexSubset& s, ThreadPool& pool) {
  std::vector<VertexId> ids = s.vertices(&pool);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(FrontierTest, SparseToDenseToSparseRoundTripsExactly) {
  std::mt19937_64 rng(7);
  ThreadPool pool(4);
  for (int trial = 0; trial < 20; ++trial) {
    VertexId universe = 1 + static_cast<VertexId>(rng() % 5000);
    std::set<VertexId> want;
    size_t target = rng() % (universe + 1);
    while (want.size() < target) {
      want.insert(static_cast<VertexId>(rng() % universe));
    }
    std::vector<VertexId> ids(want.begin(), want.end());
    std::shuffle(ids.begin(), ids.end(), rng);

    VertexSubset sparse = VertexSubset::FromVertices(universe, ids);
    ASSERT_EQ(sparse.size(), want.size());

    // Sparse -> dense: every member set, every non-member clear.
    const AtomicBitset& bits = sparse.bits(&pool);
    for (VertexId v = 0; v < universe; ++v) {
      ASSERT_EQ(bits.Get(v), want.count(v) != 0) << "vertex " << v;
    }

    // Dense -> sparse on a bitmap-born subset: identical membership.
    AtomicBitset raw(universe);
    for (VertexId v : want) {
      raw.Set(v);
    }
    VertexSubset dense =
        VertexSubset::FromBitset(universe, std::move(raw), want.size());
    ASSERT_EQ(dense.size(), want.size());
    EXPECT_FALSE(dense.sparse_materialized());
    std::vector<VertexId> got = SortedVertices(dense, pool);
    EXPECT_EQ(got, std::vector<VertexId>(want.begin(), want.end()));
  }
}

TEST(FrontierTest, AllNeverMaterializesInsideTheRuntime) {
  constexpr VertexId kN = 1 << 15;
  VertexSubset all = VertexSubset::All(kN);
  EXPECT_TRUE(all.is_all());
  EXPECT_EQ(all.size(), static_cast<size_t>(kN));
  EXPECT_FALSE(all.empty());

  ThreadPool pool(4);
  LSGraph g(kN);
  g.InsertEdge(1, 2);
  g.InsertEdge(2, 1);

  // EdgeSum answers from num_edges(); ForEach iterates the implicit range.
  EXPECT_EQ(all.EdgeSum(g, pool), g.num_edges());
  std::atomic<uint64_t> sum{0};
  std::atomic<size_t> count{0};
  all.ForEach(pool, [&](VertexId v, size_t /*tid*/) {
    sum.fetch_add(v, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), static_cast<size_t>(kN));
  EXPECT_EQ(sum.load(), uint64_t{kN} * (kN - 1) / 2);

  // Neither representation was ever built.
  EXPECT_FALSE(all.sparse_materialized());
  EXPECT_FALSE(all.dense_materialized());
}

TEST(FrontierTest, EdgeSumMatchesSerialDegreeSumAndIsCached) {
  DatasetSpec spec{"FS", 9, 6.0, 11};
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  constexpr VertexId kN = 512;
  LSGraph g(kN);
  g.BuildFromEdges(edges);
  ThreadPool pool(8);

  std::mt19937_64 rng(13);
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < kN; ++v) {
    if (rng() % 3 == 0) {
      ids.push_back(v);
    }
  }
  uint64_t expected = 0;
  for (VertexId v : ids) {
    expected += g.degree(v);
  }
  VertexSubset frontier = VertexSubset::FromVertices(kN, std::move(ids));
  EXPECT_EQ(frontier.EdgeSum(g, pool), expected);
  EXPECT_EQ(frontier.EdgeSum(g, pool), expected);  // cached path
}

TEST(FrontierTest, ForEachVisitsDenseRepWithoutSparseList) {
  constexpr VertexId kN = 4096;
  AtomicBitset raw(kN);
  std::set<VertexId> want;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 600; ++i) {
    VertexId v = static_cast<VertexId>(rng() % kN);
    if (want.insert(v).second) {
      raw.Set(v);
    }
  }
  VertexSubset dense =
      VertexSubset::FromBitset(kN, std::move(raw), want.size());
  ThreadPool pool(8);
  std::vector<std::atomic<uint32_t>> seen(kN);
  dense.ForEach(pool, [&seen](VertexId v, size_t /*tid*/) {
    seen[v].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_FALSE(dense.sparse_materialized());
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_EQ(seen[v].load(), want.count(v) != 0 ? 1u : 0u) << "vertex " << v;
  }
}

TEST(FrontierTest, ForEachSpreadsWorkAcrossThePool) {
  // The frontier-prep satellite: degree summation and frontier iteration run
  // O(|frontier|/P), not serially on the calling thread. Chunk scheduling is
  // dynamic and the calling thread can race ahead of waking workers, so the
  // first chunk briefly parks until a second thread has claimed work (bounded
  // wait — a serial ForEach regression fails after the timeout, a parallel
  // one passes in microseconds).
  constexpr VertexId kN = 1 << 16;
  ThreadPool pool(8);
  VertexSubset all = VertexSubset::All(kN);
  std::atomic<uint64_t> tid_mask{0};
  std::atomic<bool> parked{false};
  all.ForEach(pool, [&tid_mask, &parked](VertexId /*v*/, size_t tid) {
    uint64_t mask = tid_mask.fetch_or(uint64_t{1} << tid,
                                      std::memory_order_relaxed) |
                    (uint64_t{1} << tid);
    if (std::popcount(mask) < 2 && !parked.exchange(true)) {
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (std::popcount(tid_mask.load(std::memory_order_relaxed)) < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
  });
  EXPECT_GE(std::popcount(tid_mask.load()), 2);
}

// ---- Push vs auto vs forced-pull equivalence, per engine and thread count.

template <typename E>
std::unique_ptr<E> MakeEngine(VertexId n);

template <>
std::unique_ptr<LSGraph> MakeEngine<LSGraph>(VertexId n) {
  return std::make_unique<LSGraph>(n);
}
template <>
std::unique_ptr<TerraceGraph> MakeEngine<TerraceGraph>(VertexId n) {
  return std::make_unique<TerraceGraph>(n);
}
template <>
std::unique_ptr<AspenGraph> MakeEngine<AspenGraph>(VertexId n) {
  return std::make_unique<AspenGraph>(n);
}
template <>
std::unique_ptr<SortledtonGraph> MakeEngine<SortledtonGraph>(VertexId n) {
  return std::make_unique<SortledtonGraph>(n);
}

template <typename E>
class FrontierEquivalenceTest : public ::testing::Test {};

using EngineTypes =
    ::testing::Types<LSGraph, TerraceGraph, AspenGraph, SortledtonGraph>;
TYPED_TEST_SUITE(FrontierEquivalenceTest, EngineTypes);

TYPED_TEST(FrontierEquivalenceTest, AutoAndPullBfsMatchPushAcrossThreads) {
  DatasetSpec spec{"FE", 10, 7.0, 42};
  std::vector<Edge> edges = BuildDatasetEdges(spec);  // symmetrized
  constexpr VertexId kN = 1024;
  auto g = MakeEngine<TypeParam>(kN);
  g->BuildFromEdges(edges);
  VertexId source = edges.front().src;

  EdgeMapOptions pull_options;
  pull_options.direction = Direction::kPull;
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    BfsResult push = BfsPush(*g, source, pool);
    BfsResult aut = Bfs(*g, source, pool);
    BfsResult pull = Bfs(*g, source, pool, pull_options);
    EXPECT_EQ(aut.level, push.level) << "threads=" << threads;
    EXPECT_EQ(aut.reached, push.reached) << "threads=" << threads;
    EXPECT_EQ(pull.level, push.level) << "threads=" << threads;
    EXPECT_EQ(pull.reached, push.reached) << "threads=" << threads;
  }
}

TYPED_TEST(FrontierEquivalenceTest, AutoAndPullCcMatchPushAcrossThreads) {
  DatasetSpec spec{"FC", 10, 5.0, 77};
  std::vector<Edge> edges = BuildDatasetEdges(spec);  // symmetrized
  constexpr VertexId kN = 1024;
  auto g = MakeEngine<TypeParam>(kN);
  g->BuildFromEdges(edges);

  EdgeMapOptions push_options;
  push_options.direction = Direction::kPush;
  EdgeMapOptions pull_options;
  pull_options.direction = Direction::kPull;
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    // The fixpoint label is the component minimum, so all modes agree
    // exactly, not just up to relabeling.
    std::vector<VertexId> push = ConnectedComponents(*g, pool, push_options);
    std::vector<VertexId> aut = ConnectedComponents(*g, pool);
    std::vector<VertexId> pull = ConnectedComponents(*g, pool, pull_options);
    EXPECT_EQ(aut, push) << "threads=" << threads;
    EXPECT_EQ(pull, push) << "threads=" << threads;
  }
}

TEST(FrontierStatsTest, PullScanEarlyExitsOnDenseBfsLevels) {
  DatasetSpec spec{"FP", 11, 8.0, 5};
  std::vector<Edge> edges = BuildDatasetEdges(spec);  // symmetrized
  constexpr VertexId kN = 2048;
  LSGraph g(kN);
  g.BuildFromEdges(edges);
  ThreadPool pool(4);

  CoreStats stats;
  EdgeMapOptions options;
  options.direction = Direction::kPull;
  options.stats = &stats;
  (void)Bfs(g, edges.front().src, pool, options);

  uint64_t decoded = stats.pull_neighbors_decoded.load();
  uint64_t degree = stats.pull_degree_scanned.load();
  EXPECT_GT(stats.edgemap_pull_rounds.load(), 0u);
  EXPECT_EQ(stats.edgemap_push_rounds.load(), 0u);
  ASSERT_GT(degree, 0u);
  ASSERT_GT(decoded, 0u);
  // The point of MapWhile: a claimed vertex stops decoding its adjacency, so
  // strictly less than the full degree is touched.
  EXPECT_LT(decoded, degree);
  EXPECT_GT(stats.pull_early_exits.load(), 0u);

  // Auto BFS on the same graph mixes directions and counts rounds.
  stats.Clear();
  options.direction = Direction::kAuto;
  (void)Bfs(g, edges.front().src, pool, options);
  EXPECT_GT(stats.edgemap_pull_rounds.load() + stats.edgemap_push_rounds.load(),
            0u);
}

TEST(FrontierStatsTest, PushOnlyBfsRecordsNoPullRounds) {
  DatasetSpec spec{"FQ", 8, 4.0, 6};
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  constexpr VertexId kN = 256;
  LSGraph g(kN);
  g.BuildFromEdges(edges);
  ThreadPool pool(2);

  CoreStats stats;
  EdgeMapOptions options;
  options.direction = Direction::kPush;
  options.stats = &stats;
  (void)Bfs(g, edges.front().src, pool, options);
  EXPECT_GT(stats.edgemap_push_rounds.load(), 0u);
  EXPECT_EQ(stats.edgemap_pull_rounds.load(), 0u);
  EXPECT_EQ(stats.pull_neighbors_decoded.load(), 0u);
}

}  // namespace
}  // namespace lsg
