// White-box tests of rare structural paths: LIA merged children and child
// detachment, RIA cascade directions at array boundaries, PMA window
// rebalance edges, HiNode force_flat, thread-pool contention.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "src/core/hitree.h"
#include "src/core/ria.h"
#include "src/parallel/thread_pool.h"
#include "src/pma/pma.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

Options TightOptions() {
  Options o;
  o.alpha = 1.2;
  o.block_size = 8;
  o.a_threshold = 16;
  o.m_threshold = 64;
  return o;
}

TEST(LiaWhitebox, MergedChildrenSurviveChurn) {
  // A huge dense cluster in the middle of a sparse range maps thousands of
  // ids onto a handful of LIA blocks -> adjacent child groups get merged.
  Options o = TightOptions();
  std::vector<VertexId> ids;
  ids.push_back(0);
  for (VertexId v = 0; v < 3000; ++v) {
    ids.push_back(500000 + v);  // dense cluster
  }
  ids.push_back(4000000000u);
  Lia lia(o, ids);
  EXPECT_TRUE(lia.CheckInvariants());
  // Delete the entire cluster through the merged child.
  for (VertexId v = 0; v < 3000; ++v) {
    ASSERT_TRUE(lia.Delete(500000 + v)) << v;
  }
  EXPECT_TRUE(lia.CheckInvariants());
  EXPECT_EQ(lia.size(), 2u);
  EXPECT_TRUE(lia.Contains(0));
  EXPECT_TRUE(lia.Contains(4000000000u));
  EXPECT_FALSE(lia.Contains(500001));
  // The detached blocks must accept fresh inserts again.
  for (VertexId v = 0; v < 100; ++v) {
    ASSERT_TRUE(lia.Insert(500000 + v * 7));
  }
  EXPECT_TRUE(lia.CheckInvariants());
}

TEST(LiaWhitebox, ChildOfChildRecursion) {
  // Keys so clustered that a child node itself exceeds M and recurses into
  // another LIA (or a forced-flat RIA on degenerate progress).
  Options o = TightOptions();
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 2000; ++v) {
    ids.push_back(1000000 + v);
  }
  Lia lia(o, ids);
  EXPECT_TRUE(lia.CheckInvariants());
  std::vector<VertexId> out;
  lia.Map([&out](VertexId v) { out.push_back(v); });
  EXPECT_EQ(out, ids);
}

TEST(LiaWhitebox, DeleteFromEverySlotTypeThenReinsert) {
  Options o = TightOptions();
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 500; ++v) {
    ids.push_back(v * 16);  // spread: mostly E entries
  }
  for (VertexId v = 0; v < 64; ++v) {
    ids.push_back(3000 + v);  // cluster: B and C entries
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  Lia lia(o, ids);
  std::set<VertexId> oracle(ids.begin(), ids.end());
  SplitMix64 rng(5);
  for (int round = 0; round < 3000; ++round) {
    VertexId key = ids[rng.NextBounded(ids.size())];
    if (rng.NextDouble() < 0.5) {
      ASSERT_EQ(lia.Delete(key), oracle.erase(key) != 0);
    } else {
      ASSERT_EQ(lia.Insert(key), oracle.insert(key).second);
    }
  }
  std::vector<VertexId> out;
  lia.Map([&out](VertexId v) { out.push_back(v); });
  EXPECT_EQ(out, std::vector<VertexId>(oracle.begin(), oracle.end()));
  EXPECT_TRUE(lia.CheckInvariants());
}

TEST(RiaWhitebox, CascadeAtLeftEdgeOfArray) {
  // Block 0 full, all gaps to the right: inserts below the minimum must
  // cascade rightward from block 0 (no left neighbor exists).
  Options o = TightOptions();
  Ria ria(o);
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 64; ++v) {
    ids.push_back(1000 + v);
  }
  ria.BulkLoad(ids);
  // Fill block 0's range downward.
  for (VertexId v = 0; v < 30; ++v) {
    ASSERT_TRUE(ria.Insert(v)) << v;
    ASSERT_TRUE(ria.CheckInvariants()) << v;
  }
  EXPECT_EQ(ria.First(), 0u);
}

TEST(RiaWhitebox, CascadeAtRightEdgeOfArray) {
  Options o = TightOptions();
  Ria ria(o);
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 64; ++v) {
    ids.push_back(v);
  }
  ria.BulkLoad(ids);
  // Push past the maximum: the home block is the last one; gaps may only be
  // found leftward.
  for (VertexId v = 0; v < 30; ++v) {
    ASSERT_TRUE(ria.Insert(1000 + v)) << v;
    ASSERT_TRUE(ria.CheckInvariants()) << v;
  }
}

TEST(RiaWhitebox, InterleavedCascadesKeepIndexRedundant) {
  Options o = TightOptions();
  Ria ria(o);
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 256; ++v) {
    ids.push_back(v * 10);
  }
  ria.BulkLoad(ids);
  SplitMix64 rng(9);
  std::set<VertexId> oracle(ids.begin(), ids.end());
  for (int i = 0; i < 3000; ++i) {
    VertexId key = static_cast<VertexId>(rng.NextBounded(2560));
    ASSERT_EQ(ria.Insert(key), oracle.insert(key).second);
    if (i % 64 == 0) {
      ASSERT_TRUE(ria.CheckInvariants()) << "op " << i;
    }
  }
  EXPECT_EQ(ria.Decode(), std::vector<VertexId>(oracle.begin(), oracle.end()));
}

TEST(PmaWhitebox, AlternatingGrowShrinkCycles) {
  Pma pma;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (uint64_t k = 0; k < 5000; ++k) {
      pma.Insert(k * 3 + cycle);
    }
    size_t grown = pma.capacity();
    for (uint64_t k = 0; k < 5000; ++k) {
      pma.Delete(k * 3 + cycle);
    }
    EXPECT_LE(pma.capacity(), grown);
    EXPECT_EQ(pma.size(), 0u);
  }
}

TEST(PmaWhitebox, InsertAtEndOfArrayRepeatedly) {
  // Appending the running maximum hammers the last segment and the
  // insert-at-end window-selection path.
  Pma pma;
  for (uint64_t k = 0; k < 20000; ++k) {
    ASSERT_TRUE(pma.Insert(k));
  }
  EXPECT_EQ(pma.size(), 20000u);
  uint64_t prev = 0;
  bool first = true;
  pma.MapAll([&](uint64_t k) {
    if (!first) {
      ASSERT_GT(k, prev);
    }
    prev = k;
    first = false;
  });
}

TEST(HiNodeWhitebox, ForceFlatStaysRiaAboveM) {
  Options o = TightOptions();
  HiNode node(o);
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 4 * o.m_threshold; ++v) {
    ids.push_back(v);
  }
  node.BulkLoad(ids, /*force_flat=*/true);
  EXPECT_EQ(node.kind(), HiNode::Kind::kRia);
  EXPECT_EQ(node.size(), ids.size());
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(ThreadPoolWhitebox, ManyConcurrentAtomicUpdates) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  constexpr size_t kN = 1 << 18;
  pool.ParallelFor(0, kN, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), uint64_t{kN} * (kN - 1) / 2);
}

TEST(ThreadPoolWhitebox, UnbalancedWorkSelfSchedules) {
  // Front-loaded work: dynamic chunking must not leave threads idle so long
  // that the job stalls (smoke test for the scheduling loop, not a timing
  // assertion).
  ThreadPool pool(4);
  std::atomic<size_t> done{0};
  std::atomic<uint64_t> sink{0};
  pool.ParallelFor(
      0, 1000,
      [&](size_t i) {
        uint64_t x = 0;
        size_t spin = i < 10 ? 100000 : 10;
        for (size_t k = 0; k < spin; ++k) {
          x += k * k;
        }
        sink.fetch_add(x, std::memory_order_relaxed);  // keep the spin alive
        done.fetch_add(1, std::memory_order_relaxed);
      },
      /*grain=*/1);
  EXPECT_EQ(done.load(), 1000u);
}

}  // namespace
}  // namespace lsg
