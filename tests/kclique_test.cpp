// Tests for k-clique counting and direction-optimized BFS.
#include <gtest/gtest.h>

#include <vector>

#include "src/analytics/bfs.h"
#include "src/analytics/kclique.h"
#include "src/analytics/tc.h"
#include "src/baselines/ctree_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "tests/reference.h"

namespace lsg {
namespace {

void AddUndirected(LSGraph& g, VertexId a, VertexId b) {
  g.InsertEdge(a, b);
  g.InsertEdge(b, a);
}

TEST(KCliqueTest, CompleteGraphHasBinomialCounts) {
  // K6: C(6,k) cliques of size k.
  constexpr VertexId kN = 6;
  LSGraph g(kN);
  for (VertexId a = 0; a < kN; ++a) {
    for (VertexId b = a + 1; b < kN; ++b) {
      AddUndirected(g, a, b);
    }
  }
  ThreadPool pool(2);
  const uint64_t expected[] = {0, 6, 15, 20, 15, 6, 1};
  for (int k = 1; k <= 6; ++k) {
    EXPECT_EQ(CountKCliques(g, k, pool), expected[k]) << "k=" << k;
  }
  EXPECT_EQ(CountKCliques(g, 7, pool), 0u);
}

TEST(KCliqueTest, TriangleCountAgreesWithTc) {
  DatasetSpec spec{"KC", 9, 6.0, 91};
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  LSGraph g(512);
  g.BuildFromEdges(edges);
  ThreadPool pool(4);
  EXPECT_EQ(CountKCliques(g, 3, pool), TriangleCount(g, pool).triangles);
  EXPECT_EQ(CountKCliques(g, 2, pool), g.num_edges() / 2);  // symmetrized
  EXPECT_EQ(CountKCliques(g, 1, pool), 512u);
}

TEST(KCliqueTest, FourCliquesOnKnownGraph) {
  // Two K4s sharing one edge: K4 count = 2.
  LSGraph g(6);
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) {
      AddUndirected(g, a, b);
    }
  }
  // Second K4 on {2,3,4,5}.
  for (VertexId a = 2; a < 6; ++a) {
    for (VertexId b = a + 1; b < 6; ++b) {
      if (!g.HasEdge(a, b)) {
        AddUndirected(g, a, b);
      }
    }
  }
  ThreadPool pool(2);
  EXPECT_EQ(CountKCliques(g, 4, pool), 2u);
  EXPECT_EQ(CountKCliques(g, 5, pool), 0u);
}

TEST(KCliqueTest, SelfLoopsDoNotInflateCounts) {
  LSGraph g(3);
  AddUndirected(g, 0, 1);
  AddUndirected(g, 1, 2);
  AddUndirected(g, 0, 2);
  g.InsertEdge(0, 0);
  g.InsertEdge(1, 1);
  ThreadPool pool(2);
  EXPECT_EQ(CountKCliques(g, 3, pool), 1u);
}

TEST(KCliqueTest, AgreesAcrossEngines) {
  DatasetSpec spec{"KX", 8, 8.0, 12};
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  ThreadPool pool(4);
  LSGraph ls(256);
  ls.BuildFromEdges(edges);
  AspenGraph aspen(256);
  aspen.BuildFromEdges(edges);
  for (int k = 3; k <= 5; ++k) {
    EXPECT_EQ(CountKCliques(ls, k, pool), CountKCliques(aspen, k, pool))
        << "k=" << k;
  }
}

TEST(DirectionOptimizedBfsTest, AutoDirectionLevelsMatchPushOnlyBfs) {
  DatasetSpec spec{"DO", 10, 7.0, 5};
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  LSGraph g(1024);
  g.BuildFromEdges(edges);
  ThreadPool pool(4);
  VertexId source = edges.front().src;
  BfsResult push = BfsPush(g, source, pool);
  BfsResult diropt = Bfs(g, source, pool);  // default options: kAuto
  EXPECT_EQ(push.level, diropt.level);
  EXPECT_EQ(push.reached, diropt.reached);
  // Parents may differ but must be valid: one level up and a real edge.
  for (VertexId v = 0; v < 1024; ++v) {
    if (diropt.parent[v] == kInvalidVertex || v == source) {
      continue;
    }
    EXPECT_TRUE(g.HasEdge(diropt.parent[v], v)) << v;
    EXPECT_EQ(diropt.level[diropt.parent[v]] + 1, diropt.level[v]) << v;
  }
}

TEST(DirectionOptimizedBfsTest, ForcedDenseModeStillCorrect) {
  DatasetSpec spec{"DN", 8, 6.0, 6};
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  LSGraph g(256);
  g.BuildFromEdges(edges);
  ThreadPool pool(2);
  VertexId source = edges.front().src;
  // Threshold 0 forces every round through the pull path.
  EdgeMapOptions dense_options;
  dense_options.dense_threshold = 0.0;
  BfsResult dense = Bfs(g, source, pool, dense_options);
  BfsResult push = BfsPush(g, source, pool);
  EXPECT_EQ(dense.level, push.level);
}

TEST(DirectionOptimizedBfsTest, ExplicitPullDirectionStillCorrect) {
  DatasetSpec spec{"DP", 8, 6.0, 7};
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  LSGraph g(256);
  g.BuildFromEdges(edges);
  ThreadPool pool(2);
  VertexId source = edges.front().src;
  EdgeMapOptions pull_options;
  pull_options.direction = Direction::kPull;
  BfsResult pull = Bfs(g, source, pool, pull_options);
  BfsResult push = BfsPush(g, source, pool);
  EXPECT_EQ(pull.level, push.level);
  EXPECT_EQ(pull.reached, push.reached);
}

TEST(DirectionOptimizedBfsTest, IsolatedSourceTerminates) {
  LSGraph g(8);
  g.InsertEdge(1, 2);
  ThreadPool pool(2);
  BfsResult r = Bfs(g, 0, pool);
  EXPECT_EQ(r.reached, 1u);
}

}  // namespace
}  // namespace lsg
