#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/gen/datasets.h"
#include "src/gen/lsgbin.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {
namespace {

class LsgbinTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    std::string path =
        ::testing::TempDir() + "lsgbin_test_" + name + ".lsgbin";
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& p : paths_) {
      std::remove(p.c_str());
    }
  }

  // Reads the whole file, applies mutate, writes it back.
  static void Rewrite(const std::string& path,
                      void (*mutate)(std::vector<uint8_t>*)) {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<uint8_t> bytes(std::ftell(f));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    mutate(&bytes);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

 private:
  std::vector<std::string> paths_;
};

TEST_F(LsgbinTest, RoundTripsRmatAtOneTwoAndEightThreads) {
  std::vector<Edge> edges = BuildDatasetEdges(TestDataset());
  VertexId n = VertexId{1} << TestDataset().scale;
  std::string path = TempPath("roundtrip");
  WriteLsgbin(path, n, edges, /*num_ranges=*/13);  // odd count: uneven cuts
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    LoadedGraph g = LoadLsgbin(path, &pool);
    EXPECT_EQ(g.num_vertices, n) << threads << " threads";
    ASSERT_EQ(g.edges.size(), edges.size()) << threads << " threads";
    EXPECT_EQ(g.edges, edges) << threads << " threads";
  }
}

TEST_F(LsgbinTest, RoundTripsEmptyAndEdgelessGraphs) {
  std::string path = TempPath("empty");
  WriteLsgbin(path, 0, {});
  LoadedGraph g = LoadLsgbin(path);
  EXPECT_EQ(g.num_vertices, 0u);
  EXPECT_TRUE(g.edges.empty());

  WriteLsgbin(path, 100, {});  // vertices but no edges
  g = LoadLsgbin(path);
  EXPECT_EQ(g.num_vertices, 100u);
  EXPECT_TRUE(g.edges.empty());
}

TEST_F(LsgbinTest, RangeCountIsClampedAndPreservesContent) {
  std::vector<Edge> edges = {{0, 1}, {0, 3}, {1, 0}, {3, 0}};
  std::string path = TempPath("clamp");
  // More ranges than vertices: the writer must clamp, not emit empty junk.
  WriteLsgbin(path, 4, edges, /*num_ranges=*/64);
  LoadedGraph g = LoadLsgbin(path);
  EXPECT_EQ(g.edges, edges);
}

TEST_F(LsgbinTest, MissingFileFailsToOpen) {
  EXPECT_THROW(
      {
        try {
          LoadLsgbin("/nonexistent/dir/nope.lsgbin");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("cannot open"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(LsgbinTest, MmapFailureIsReported) {
  // A directory opens fine but cannot be mmapped (ENODEV on Linux).
  EXPECT_THROW(
      {
        try {
          LoadLsgbin(::testing::TempDir());
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("mmap failed"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(LsgbinTest, TruncationAtEveryLayerIsRejected) {
  std::vector<Edge> edges = BuildDatasetEdges(TestDataset());
  std::string full = TempPath("full");
  WriteLsgbin(full, VertexId{1} << TestDataset().scale, edges, 8);
  FILE* f = std::fopen(full.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  // Cut in the header, in the range table, and in the payload.
  for (size_t cut : {size_t{12}, size_t{40}, bytes.size() - 7}) {
    std::string path = TempPath("cut" + std::to_string(cut));
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f), cut);
    std::fclose(f);
    EXPECT_THROW(LoadLsgbin(path), std::runtime_error) << "cut at " << cut;
  }
}

TEST_F(LsgbinTest, BadMagicIsRejected) {
  std::string path = TempPath("magic");
  WriteLsgbin(path, 4, std::vector<Edge>{{0, 1}});
  Rewrite(path, [](std::vector<uint8_t>* b) { (*b)[0] ^= 0xff; });
  EXPECT_THROW(
      {
        try {
          LoadLsgbin(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("bad magic"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(LsgbinTest, HugeEdgeCountHeaderIsRejectedBeforeAllocating) {
  std::string path = TempPath("huge_edges");
  WriteLsgbin(path, 4, std::vector<Edge>{{0, 1}, {1, 2}}, 1);
  // Claim ~10^18 edges in a file a few dozen bytes long. The loader used to
  // size its output vector straight from this count (a multi-exabyte
  // allocation) before any payload check could run; it must now reject the
  // header because each edge costs at least one payload byte.
  Rewrite(path, [](std::vector<uint8_t>* b) {
    uint64_t huge = uint64_t{1} << 60;
    std::memcpy(b->data() + 16, &huge, sizeof(huge));
  });
  EXPECT_THROW(
      {
        try {
          LoadLsgbin(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("exceed file size"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(LsgbinTest, HugeVertexCountHeaderIsRejected) {
  std::string path = TempPath("huge_vertices");
  WriteLsgbin(path, 4, std::vector<Edge>{{0, 1}}, 1);
  // A vertex count that passes the id-width check but cannot fit its degree
  // varints in the payload must be rejected before it sizes anything.
  Rewrite(path, [](std::vector<uint8_t>* b) {
    uint64_t huge = uint64_t{1} << 30;
    std::memcpy(b->data() + 8, &huge, sizeof(huge));
  });
  EXPECT_THROW(LoadLsgbin(path), std::runtime_error);
}

TEST_F(LsgbinTest, CorruptPayloadVarintIsRejected) {
  std::string path = TempPath("varint");
  WriteLsgbin(path, 4, std::vector<Edge>{{0, 1}, {0, 2}}, 1);
  // Set the continuation bit on the final payload byte: the varint now runs
  // off the end of the file and TryReadVarint must refuse it.
  Rewrite(path, [](std::vector<uint8_t>* b) { b->back() |= 0x80; });
  EXPECT_THROW(LoadLsgbin(path), std::runtime_error);
}

TEST_F(LsgbinTest, OutOfRangeNeighborIsRejected) {
  std::string path = TempPath("oob");
  // Two vertices, one edge 0->1. The payload starts after the 32-byte
  // header and the 2-entry range table (48 bytes): [deg=1, dst=1, deg=0].
  // Bumping the dst byte to 5 decodes a neighbor >= num_vertices.
  WriteLsgbin(path, 2, std::vector<Edge>{{0, 1}}, 1);
  Rewrite(path, [](std::vector<uint8_t>* b) {
    ASSERT_EQ(b->size(), 32u + 48u + 3u);
    (*b)[81] = 5;
  });
  EXPECT_THROW(
      {
        try {
          LoadLsgbin(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("out of range"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

}  // namespace
}  // namespace lsg
