// End-to-end streaming pipeline: build a snapshot, alternate update batches
// with analytics (the paper's workload model, §1), and verify every engine
// agrees with a reference graph and reference kernels at each step.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/analytics/bfs.h"
#include "src/analytics/cc.h"
#include "src/analytics/pagerank.h"
#include "src/analytics/tc.h"
#include "src/baselines/ctree_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "src/gen/temporal.h"
#include "tests/reference.h"

namespace lsg {
namespace {

TEST(IntegrationTest, AlternatingUpdatesAndAnalyticsAcrossEngines) {
  constexpr VertexId kN = 1 << 10;
  DatasetSpec spec{"INT", 10, 8.0, 303};
  std::vector<Edge> base = BuildDatasetEdges(spec);
  ThreadPool pool(4);

  LSGraph ls(kN, Options{}, &pool);
  TerraceGraph terrace(kN, TerraceOptions{}, &pool);
  AspenGraph aspen(kN, &pool);
  PacTreeGraph pactree(kN, &pool);
  RefGraph ref(kN);

  ls.BuildFromEdges(base);
  terrace.BuildFromEdges(base);
  aspen.BuildFromEdges(base);
  pactree.BuildFromEdges(base);
  for (const Edge& e : base) {
    ref.Insert(e.src, e.dst);
  }

  RmatGenerator stream({10, 0.5, 0.1, 0.1}, 999);
  uint64_t cursor = 0;
  for (int round = 0; round < 4; ++round) {
    // Symmetrized update batch so the graph stays undirected.
    std::vector<Edge> raw = stream.Generate(cursor, 4000);
    cursor += 4000;
    std::vector<Edge> batch;
    for (const Edge& e : raw) {
      if (e.src == e.dst) {
        continue;
      }
      batch.push_back(e);
      batch.push_back(Edge{e.dst, e.src});
    }
    size_t expect = 0;
    {
      std::set<Edge> seen;
      for (const Edge& e : batch) {
        if (seen.insert(e).second) {
          expect += ref.Insert(e.src, e.dst);
        }
      }
    }
    ASSERT_EQ(ls.InsertBatch(batch), expect);
    ASSERT_EQ(terrace.InsertBatch(batch), expect);
    ASSERT_EQ(aspen.InsertBatch(batch), expect);
    ASSERT_EQ(pactree.InsertBatch(batch), expect);

    // Analytics on the updated snapshot must agree with the reference.
    VertexId source = batch.front().src;
    std::vector<uint32_t> expected_levels = RefBfsLevels(ref, source);
    EXPECT_EQ(Bfs(ls, source, pool).level, expected_levels);
    EXPECT_EQ(Bfs(terrace, source, pool).level, expected_levels);
    EXPECT_EQ(Bfs(aspen, source, pool).level, expected_levels);
    EXPECT_EQ(Bfs(pactree, source, pool).level, expected_levels);

    uint64_t expected_triangles = RefTriangles(ref);
    EXPECT_EQ(TriangleCount(ls, pool).triangles, expected_triangles);
    EXPECT_EQ(TriangleCount(aspen, pool).triangles, expected_triangles);
  }

  EXPECT_TRUE(ls.CheckInvariants());
  EXPECT_TRUE(terrace.CheckInvariants());
  EXPECT_TRUE(aspen.CheckInvariants());
  EXPECT_TRUE(pactree.CheckInvariants());
}

TEST(IntegrationTest, TemporalStreamReplay) {
  TemporalSpec spec{"IT", 2000, 40000, 0.35, 88};
  TemporalSplit split = SplitTemporalStream(GenerateTemporalStream(spec));
  ThreadPool pool(4);

  LSGraph g(spec.num_vertices, Options{}, &pool);
  RefGraph ref(spec.num_vertices);
  g.BuildFromEdges(split.base);
  for (const Edge& e : split.base) {
    ref.Insert(e.src, e.dst);
  }
  ASSERT_EQ(g.num_edges(), ref.num_edges());

  // Replay the streamed 10% in arrival-order chunks (unsorted, bursty,
  // duplicate-heavy), as in §6.5.
  constexpr size_t kChunk = 500;
  for (size_t off = 0; off < split.stream.size(); off += kChunk) {
    size_t len = std::min(kChunk, split.stream.size() - off);
    std::vector<Edge> chunk(split.stream.begin() + off,
                            split.stream.begin() + off + len);
    size_t expect = 0;
    std::set<Edge> seen;
    for (const Edge& e : chunk) {
      if (seen.insert(e).second) {
        expect += ref.Insert(e.src, e.dst);
      }
    }
    ASSERT_EQ(g.InsertBatch(chunk), expect);
  }
  ASSERT_EQ(g.num_edges(), ref.num_edges());
  for (VertexId v = 0; v < spec.num_vertices; ++v) {
    std::vector<VertexId> got;
    g.map_neighbors(v, [&got](VertexId u) { got.push_back(u); });
    ASSERT_EQ(got, ref.Neighbors(v)) << "vertex " << v;
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(IntegrationTest, InsertDeleteChurnPreservesAnalytics) {
  // Heavy churn (the paper's insert-then-delete protocol repeated) must
  // leave analytics results identical to a fresh build.
  constexpr VertexId kN = 256;
  DatasetSpec spec{"CH", 8, 6.0, 11};
  std::vector<Edge> base = BuildDatasetEdges(spec);
  ThreadPool pool(2);
  LSGraph g(kN, Options{}, &pool);
  g.BuildFromEdges(base);

  // Track which batch edges are genuinely new so the delete pass removes
  // exactly them (batch edges overlapping the base graph must survive).
  RefGraph ref(kN);
  for (const Edge& e : base) {
    ref.Insert(e.src, e.dst);
  }
  RmatGenerator stream({8, 0.5, 0.1, 0.1}, 123);
  for (int round = 0; round < 5; ++round) {
    std::vector<Edge> batch = stream.Generate(round * 2000, 2000);
    std::vector<Edge> fresh;
    std::set<Edge> seen;
    for (const Edge& e : batch) {
      if (!ref.Has(e.src, e.dst) && seen.insert(e).second) {
        fresh.push_back(e);
      }
    }
    size_t added = g.InsertBatch(batch);
    ASSERT_EQ(added, fresh.size());
    size_t removed = g.DeleteBatch(fresh);
    ASSERT_EQ(added, removed);
  }

  LSGraph fresh(kN, Options{}, &pool);
  fresh.BuildFromEdges(base);
  ASSERT_EQ(g.num_edges(), fresh.num_edges());
  std::vector<double> pr_churned = PageRank(g, pool);
  std::vector<double> pr_fresh = PageRank(fresh, pool);
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_DOUBLE_EQ(pr_churned[v], pr_fresh[v]);
  }
  std::vector<VertexId> cc_churned = ConnectedComponents(g, pool);
  std::vector<VertexId> cc_fresh = ConnectedComponents(fresh, pool);
  EXPECT_EQ(cc_churned, cc_fresh);
}

}  // namespace
}  // namespace lsg
