#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/gen/csr.h"
#include "src/gen/datasets.h"
#include "src/gen/edge_io.h"
#include "src/gen/rmat.h"
#include "src/gen/temporal.h"

namespace lsg {
namespace {

TEST(RmatTest, DeterministicByIndex) {
  RmatGenerator gen({16, 0.5, 0.1, 0.1}, 42);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.EdgeAt(i), gen.EdgeAt(i));
  }
  std::vector<Edge> a = gen.Generate(100, 50);
  std::vector<Edge> b = gen.Generate(100, 50);
  EXPECT_EQ(a, b);
}

TEST(RmatTest, VerticesWithinRange) {
  RmatGenerator gen({12, 0.5, 0.1, 0.1}, 1);
  for (const Edge& e : gen.Generate(0, 10000)) {
    EXPECT_LT(e.src, gen.num_vertices());
    EXPECT_LT(e.dst, gen.num_vertices());
  }
}

TEST(RmatTest, SkewedDegreeDistribution) {
  // rMat with a=0.5 concentrates edges on low ids: the max degree must far
  // exceed the average (power-law-like skew drives LSGraph's design).
  RmatGenerator gen({12, 0.5, 0.1, 0.1}, 9);
  std::vector<uint32_t> degree(gen.num_vertices(), 0);
  constexpr uint64_t kEdges = 200000;
  for (const Edge& e : gen.Generate(0, kEdges)) {
    ++degree[e.src];
  }
  uint32_t max_degree = *std::max_element(degree.begin(), degree.end());
  double avg = static_cast<double>(kEdges) / gen.num_vertices();
  EXPECT_GT(max_degree, 5 * avg);
}

TEST(UniformTest, CoversSpaceEvenly) {
  UniformGenerator gen(10, 3);
  std::vector<uint32_t> degree(gen.num_vertices(), 0);
  for (const Edge& e : gen.Generate(0, 102400)) {
    ++degree[e.src];
  }
  uint32_t max_degree = *std::max_element(degree.begin(), degree.end());
  EXPECT_LT(max_degree, 300u);  // mean 100, uniform tail stays close
}

TEST(DatasetTest, BuildDatasetEdgesIsSortedUniqueSymmetric) {
  DatasetSpec spec = TestDataset();
  std::vector<Edge> edges = BuildDatasetEdges(spec);
  ASSERT_FALSE(edges.empty());
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);  // self-loops removed
    EXPECT_TRUE(std::binary_search(edges.begin(), edges.end(),
                                   Edge{e.dst, e.src}))
        << e.src << "->" << e.dst;
  }
}

TEST(DatasetTest, UpdateBatchesDifferByTrial) {
  DatasetSpec spec = TestDataset();
  std::vector<Edge> a = BuildUpdateBatch(spec, 100, 0);
  std::vector<Edge> b = BuildUpdateBatch(spec, 100, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BuildUpdateBatch(spec, 100, 0));
}

TEST(TemporalTest, StreamHasRepeatsAndStaysInRange) {
  TemporalSpec spec{"T", 100, 5000, 0.4, 9};
  std::vector<Edge> events = GenerateTemporalStream(spec);
  ASSERT_EQ(events.size(), spec.num_events);
  size_t repeats = 0;
  std::set<Edge> seen;
  for (const Edge& e : events) {
    EXPECT_LT(e.src, spec.num_vertices);
    EXPECT_LT(e.dst, spec.num_vertices);
    repeats += !seen.insert(e).second;
  }
  EXPECT_GT(repeats, spec.num_events / 10);  // realistic duplicate pressure
}

TEST(TemporalTest, SplitTakesTenPercentSuffix) {
  TemporalSpec spec{"T", 100, 1000, 0.3, 4};
  TemporalSplit split = SplitTemporalStream(GenerateTemporalStream(spec));
  EXPECT_EQ(split.base.size(), 900u);
  EXPECT_EQ(split.stream.size(), 100u);
}

TEST(CsrTest, NeighborsMatchInput) {
  std::vector<Edge> edges = {{0, 1}, {0, 3}, {1, 0}, {3, 2}, {0, 2}, {0, 1}};
  Csr csr = Csr::FromEdges(4, edges);
  EXPECT_EQ(csr.num_edges(), 5u);  // duplicate removed
  std::vector<VertexId> n0(csr.neighbors(0).begin(), csr.neighbors(0).end());
  EXPECT_EQ(n0, (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(csr.degree(2), 0u);
  size_t visited = 0;
  csr.map_neighbors(3, [&visited](VertexId u) {
    EXPECT_EQ(u, 2u);
    ++visited;
  });
  EXPECT_EQ(visited, 1u);
}

TEST(EdgeIoTest, TextRoundtrip) {
  std::vector<Edge> edges = {{1, 2}, {3, 4}, {0, 0}};
  std::string path = ::testing::TempDir() + "/edges.txt";
  WriteEdgesText(path, edges);
  EXPECT_EQ(ReadEdgesText(path), edges);
  std::remove(path.c_str());
}

TEST(EdgeIoTest, TextSkipsComments) {
  std::string path = ::testing::TempDir() + "/commented.txt";
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "# SNAP header\n1 2\n%% other comment\n3 4\n");
  fclose(f);
  std::vector<Edge> edges = ReadEdgesText(path);
  EXPECT_EQ(edges, (std::vector<Edge>{{1, 2}, {3, 4}}));
  std::remove(path.c_str());
}

TEST(EdgeIoTest, BinaryRoundtrip) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 1000; ++v) {
    edges.push_back(Edge{v, v * 7});
  }
  std::string path = ::testing::TempDir() + "/edges.bin";
  WriteEdgesBinary(path, edges);
  EXPECT_EQ(ReadEdgesBinary(path), edges);
  std::remove(path.c_str());
}

TEST(EdgeIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadEdgesText("/nonexistent/nope.txt"), std::runtime_error);
  EXPECT_THROW(ReadEdgesBinary("/nonexistent/nope.bin"), std::runtime_error);
}

}  // namespace
}  // namespace lsg
