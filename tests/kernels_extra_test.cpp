// Tests for the extension kernels (k-core, MIS) against serial references,
// across engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/analytics/kcore.h"
#include "src/analytics/mis.h"
#include "src/baselines/ctree_graph.h"
#include "src/baselines/sortledton_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "tests/reference.h"

namespace lsg {
namespace {

// Serial reference k-core: repeated minimum-degree peeling.
std::vector<uint32_t> RefKCore(const RefGraph& g) {
  VertexId n = g.num_vertices();
  std::vector<uint32_t> deg(n);
  std::vector<bool> alive(n, true);
  std::vector<uint32_t> core(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<uint32_t>(g.degree(v));
  }
  size_t remaining = n;
  uint32_t k = 0;
  while (remaining > 0) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (alive[v] && deg[v] <= k) {
          alive[v] = false;
          core[v] = k;
          --remaining;
          progressed = true;
          for (VertexId u : g.Neighbors(v)) {
            if (alive[u] && deg[u] > 0) {
              --deg[u];
            }
          }
        }
      }
    }
    ++k;
  }
  return core;
}

struct Workload {
  Workload() : ref(kN) {
    DatasetSpec spec{"K", 9, 5.0, 77};
    edges = BuildDatasetEdges(spec);
    for (const Edge& e : edges) {
      ref.Insert(e.src, e.dst);
    }
  }
  static constexpr VertexId kN = 512;
  std::vector<Edge> edges;
  RefGraph ref;
};

Workload& SharedWorkload() {
  static Workload w;
  return w;
}

template <typename E>
class ExtraKernelTest : public ::testing::Test {};

using EngineTypes = ::testing::Types<LSGraph, AspenGraph, SortledtonGraph>;
TYPED_TEST_SUITE(ExtraKernelTest, EngineTypes);

TYPED_TEST(ExtraKernelTest, KCoreMatchesReference) {
  Workload& w = SharedWorkload();
  ThreadPool pool(4);
  TypeParam g(Workload::kN);
  g.BuildFromEdges(w.edges);
  std::vector<uint32_t> got = KCoreDecomposition(g, pool);
  std::vector<uint32_t> expected = RefKCore(w.ref);
  for (VertexId v = 0; v < Workload::kN; ++v) {
    ASSERT_EQ(got[v], expected[v]) << "vertex " << v;
  }
}

TYPED_TEST(ExtraKernelTest, MisIsIndependentAndMaximal) {
  Workload& w = SharedWorkload();
  ThreadPool pool(4);
  TypeParam g(Workload::kN);
  g.BuildFromEdges(w.edges);
  std::vector<MisState> state = MaximalIndependentSet(g, pool);
  size_t in_count = 0;
  for (VertexId v = 0; v < Workload::kN; ++v) {
    ASSERT_NE(state[v], MisState::kUndecided);
    if (state[v] != MisState::kIn) {
      continue;
    }
    ++in_count;
    // Independence: no two adjacent IN vertices.
    for (VertexId u : w.ref.Neighbors(v)) {
      if (u != v) {
        ASSERT_NE(state[u], MisState::kIn) << v << " ~ " << u;
      }
    }
  }
  EXPECT_GT(in_count, 0u);
  // Maximality: every OUT vertex has an IN neighbor.
  for (VertexId v = 0; v < Workload::kN; ++v) {
    if (state[v] != MisState::kOut) {
      continue;
    }
    bool has_in_neighbor = false;
    for (VertexId u : w.ref.Neighbors(v)) {
      if (u != v && state[u] == MisState::kIn) {
        has_in_neighbor = true;
      }
    }
    ASSERT_TRUE(has_in_neighbor) << "vertex " << v;
  }
}

TEST(ExtraKernelEdgeCases, KCoreOnEdgelessGraphIsAllZero) {
  ThreadPool pool(2);
  LSGraph g(8);
  std::vector<uint32_t> core = KCoreDecomposition(g, pool);
  EXPECT_TRUE(std::all_of(core.begin(), core.end(),
                          [](uint32_t c) { return c == 0; }));
}

TEST(ExtraKernelEdgeCases, KCoreOfCliqueIsNMinusOne) {
  ThreadPool pool(2);
  constexpr VertexId kN = 8;
  LSGraph g(kN);
  for (VertexId a = 0; a < kN; ++a) {
    for (VertexId b = 0; b < kN; ++b) {
      if (a != b) {
        g.InsertEdge(a, b);
      }
    }
  }
  std::vector<uint32_t> core = KCoreDecomposition(g, pool);
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_EQ(core[v], kN - 1);
  }
}

TEST(ExtraKernelEdgeCases, MisOnEdgelessGraphIsEverything) {
  ThreadPool pool(2);
  LSGraph g(5);
  std::vector<MisState> state = MaximalIndependentSet(g, pool);
  for (MisState s : state) {
    EXPECT_EQ(s, MisState::kIn);
  }
}

TEST(ExtraKernelEdgeCases, MisOnCliqueIsSingleton) {
  ThreadPool pool(2);
  constexpr VertexId kN = 6;
  LSGraph g(kN);
  for (VertexId a = 0; a < kN; ++a) {
    for (VertexId b = 0; b < kN; ++b) {
      if (a != b) {
        g.InsertEdge(a, b);
      }
    }
  }
  std::vector<MisState> state = MaximalIndependentSet(g, pool);
  size_t in_count = 0;
  for (MisState s : state) {
    in_count += s == MisState::kIn;
  }
  EXPECT_EQ(in_count, 1u);
  EXPECT_EQ(state[0], MisState::kIn);  // lexicographically-first MIS
}

}  // namespace
}  // namespace lsg
