#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/bitvector.h"
#include "src/util/cache.h"
#include "src/util/graph_types.h"
#include "src/util/prng.h"
#include "src/util/sort.h"

namespace lsg {
namespace {

TEST(CacheTest, AlignedAllocReturnsCacheLineAlignedMemory) {
  for (size_t n : {1u, 63u, 64u, 65u, 4096u}) {
    void* p = AlignedAlloc(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kCacheLineBytes, 0u);
    AlignedFree(p);
  }
}

TEST(CacheTest, PerCacheLineCounts) {
  EXPECT_EQ(kPerCacheLine<uint32_t>, 16u);
  EXPECT_EQ(kPerCacheLine<uint64_t>, 8u);
}

TEST(CacheTest, AlignedBufferMoveTransfersOwnership) {
  AlignedBuffer<uint32_t> a(100);
  a[0] = 42;
  AlignedBuffer<uint32_t> b = std::move(a);
  EXPECT_EQ(b[0], 42u);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(CacheTest, AlignedBufferReset) {
  AlignedBuffer<uint32_t> a(10);
  a.reset(20);
  EXPECT_EQ(a.size(), 20u);
  a.reset(0);
  EXPECT_TRUE(a.empty());
}

TEST(PrngTest, DeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, NextBoundedInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(PrngTest, MixSeedProducesDistinctStreams) {
  EXPECT_NE(MixSeed(1, 0), MixSeed(1, 1));
  EXPECT_NE(MixSeed(1, 0), MixSeed(2, 0));
  EXPECT_EQ(MixSeed(5, 9), MixSeed(5, 9));
}

TEST(TypeVectorTest, SetAndGetAllTypes) {
  TypeVector tv(100);
  tv.Set(0, SlotType::kEdge);
  tv.Set(50, SlotType::kBlock);
  tv.Set(99, SlotType::kChild);
  EXPECT_EQ(tv.Get(0), SlotType::kEdge);
  EXPECT_EQ(tv.Get(1), SlotType::kUnused);
  EXPECT_EQ(tv.Get(50), SlotType::kBlock);
  EXPECT_EQ(tv.Get(99), SlotType::kChild);
}

TEST(TypeVectorTest, SetRange) {
  TypeVector tv(64);
  tv.SetRange(10, 30, SlotType::kChild);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(tv.Get(i), i >= 10 && i < 30 ? SlotType::kChild
                                           : SlotType::kUnused);
  }
}

TEST(TypeVectorTest, OverwritePreservesNeighbors) {
  TypeVector tv(32);
  for (size_t i = 0; i < 32; ++i) {
    tv.Set(i, SlotType::kEdge);
  }
  tv.Set(16, SlotType::kChild);
  EXPECT_EQ(tv.Get(15), SlotType::kEdge);
  EXPECT_EQ(tv.Get(16), SlotType::kChild);
  EXPECT_EQ(tv.Get(17), SlotType::kEdge);
}

TEST(AtomicBitsetTest, TestAndSetFiresOnce) {
  AtomicBitset bs(128);
  EXPECT_TRUE(bs.TestAndSet(5));
  EXPECT_FALSE(bs.TestAndSet(5));
  EXPECT_TRUE(bs.Get(5));
  EXPECT_FALSE(bs.Get(6));
}

TEST(AtomicBitsetTest, ClearResetsAllBits) {
  AtomicBitset bs(70);
  bs.Set(0);
  bs.Set(69);
  bs.Clear();
  EXPECT_FALSE(bs.Get(0));
  EXPECT_FALSE(bs.Get(69));
}

TEST(SortTest, RadixMatchesStdSortSmall) {
  SplitMix64 rng(3);
  std::vector<Edge> edges;
  for (int i = 0; i < 500; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(rng.NextBounded(1000)),
                         static_cast<VertexId>(rng.NextBounded(1000))});
  }
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  RadixSortEdges(edges);
  EXPECT_EQ(edges, expected);
}

TEST(SortTest, RadixMatchesStdSortLarge) {
  SplitMix64 rng(4);
  std::vector<Edge> edges;
  for (int i = 0; i < 100000; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(rng.Next()),
                         static_cast<VertexId>(rng.Next())});
  }
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  RadixSortEdges(edges);
  EXPECT_EQ(edges, expected);
}

TEST(SortTest, DedupRemovesAdjacentDuplicates) {
  std::vector<Edge> edges = {{1, 2}, {1, 2}, {1, 3}, {2, 2}, {2, 2}, {2, 2}};
  DedupSortedEdges(edges);
  std::vector<Edge> expected = {{1, 2}, {1, 3}, {2, 2}};
  EXPECT_EQ(edges, expected);
}

TEST(SortTest, EmptyAndSingleElement) {
  std::vector<Edge> empty;
  RadixSortEdges(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<Edge> one = {{5, 6}};
  RadixSortEdges(one);
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
}  // namespace lsg
