#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/bitvector.h"
#include "src/util/cache.h"
#include "src/util/graph_types.h"
#include "src/util/prng.h"
#include "src/util/sort.h"

namespace lsg {
namespace {

TEST(CacheTest, AlignedAllocReturnsCacheLineAlignedMemory) {
  for (size_t n : {1u, 63u, 64u, 65u, 4096u}) {
    void* p = AlignedAlloc(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kCacheLineBytes, 0u);
    AlignedFree(p);
  }
}

TEST(CacheTest, PerCacheLineCounts) {
  EXPECT_EQ(kPerCacheLine<uint32_t>, 16u);
  EXPECT_EQ(kPerCacheLine<uint64_t>, 8u);
}

TEST(CacheTest, AlignedBufferMoveTransfersOwnership) {
  AlignedBuffer<uint32_t> a(100);
  a[0] = 42;
  AlignedBuffer<uint32_t> b = std::move(a);
  EXPECT_EQ(b[0], 42u);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(CacheTest, AlignedBufferReset) {
  AlignedBuffer<uint32_t> a(10);
  a.reset(20);
  EXPECT_EQ(a.size(), 20u);
  a.reset(0);
  EXPECT_TRUE(a.empty());
}

TEST(PrngTest, DeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, NextBoundedInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(PrngTest, MixSeedProducesDistinctStreams) {
  EXPECT_NE(MixSeed(1, 0), MixSeed(1, 1));
  EXPECT_NE(MixSeed(1, 0), MixSeed(2, 0));
  EXPECT_EQ(MixSeed(5, 9), MixSeed(5, 9));
}

TEST(TypeVectorTest, SetAndGetAllTypes) {
  TypeVector tv(100);
  tv.Set(0, SlotType::kEdge);
  tv.Set(50, SlotType::kBlock);
  tv.Set(99, SlotType::kChild);
  EXPECT_EQ(tv.Get(0), SlotType::kEdge);
  EXPECT_EQ(tv.Get(1), SlotType::kUnused);
  EXPECT_EQ(tv.Get(50), SlotType::kBlock);
  EXPECT_EQ(tv.Get(99), SlotType::kChild);
}

TEST(TypeVectorTest, SetRange) {
  TypeVector tv(64);
  tv.SetRange(10, 30, SlotType::kChild);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(tv.Get(i), i >= 10 && i < 30 ? SlotType::kChild
                                           : SlotType::kUnused);
  }
}

TEST(TypeVectorTest, OverwritePreservesNeighbors) {
  TypeVector tv(32);
  for (size_t i = 0; i < 32; ++i) {
    tv.Set(i, SlotType::kEdge);
  }
  tv.Set(16, SlotType::kChild);
  EXPECT_EQ(tv.Get(15), SlotType::kEdge);
  EXPECT_EQ(tv.Get(16), SlotType::kChild);
  EXPECT_EQ(tv.Get(17), SlotType::kEdge);
}

TEST(AtomicBitsetTest, TestAndSetFiresOnce) {
  AtomicBitset bs(128);
  EXPECT_TRUE(bs.TestAndSet(5));
  EXPECT_FALSE(bs.TestAndSet(5));
  EXPECT_TRUE(bs.Get(5));
  EXPECT_FALSE(bs.Get(6));
}

TEST(AtomicBitsetTest, ClearResetsAllBits) {
  AtomicBitset bs(70);
  bs.Set(0);
  bs.Set(69);
  bs.Clear();
  EXPECT_FALSE(bs.Get(0));
  EXPECT_FALSE(bs.Get(69));
}

// SetRange's word-masked fast path against the slot-at-a-time reference, at
// every boundary that matters: empty/one-slot vectors, the 32-slot word
// boundary (2-bit lanes), and the 64-slot double-word boundary.
TEST(TypeVectorTest, SetRangeMatchesSlotLoopAtBoundaries) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{31}, size_t{32}, size_t{33},
                   size_t{63}, size_t{64}, size_t{65}, size_t{100}}) {
    size_t step = n > 40 ? 7 : 1;
    for (size_t begin = 0; begin <= n; begin += step) {
      for (size_t end = begin; end <= n; end += step) {
        TypeVector fast(n);
        TypeVector ref(n);
        for (size_t i = 0; i < n; ++i) {
          SlotType t = static_cast<SlotType>(i % 4);
          fast.Set(i, t);
          ref.Set(i, t);
        }
        fast.SetRange(begin, end, SlotType::kChild);
        for (size_t i = begin; i < end; ++i) {
          ref.Set(i, SlotType::kChild);
        }
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(fast.Get(i), ref.Get(i))
              << "n=" << n << " range=[" << begin << "," << end
              << ") slot=" << i;
        }
      }
    }
  }
}

TEST(TypeVectorTest, SetRangeFullAndEmptyRanges) {
  TypeVector tv(65);
  tv.SetRange(0, 65, SlotType::kBlock);
  for (size_t i = 0; i < 65; ++i) {
    ASSERT_EQ(tv.Get(i), SlotType::kBlock);
  }
  tv.SetRange(10, 10, SlotType::kEdge);  // empty: no-op
  tv.SetRange(65, 65, SlotType::kEdge);  // empty at the end: no-op
  for (size_t i = 0; i < 65; ++i) {
    ASSERT_EQ(tv.Get(i), SlotType::kBlock);
  }
}

// Clear/SetAll at word-boundary sizes, serial and with a pool. SetAll must
// leave bits beyond size() zero so word-level popcounts stay exact.
TEST(AtomicBitsetTest, ClearSetAllBoundarySizes) {
  ThreadPool pool(2);
  for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
                   size_t{100}, size_t{128}, size_t{129}, size_t{1000}}) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      AtomicBitset bs(n);
      bs.SetAll(p);
      size_t pop = 0;
      for (size_t w = 0; w < bs.num_words(); ++w) {
        pop += static_cast<size_t>(__builtin_popcountll(bs.Word(w)));
      }
      EXPECT_EQ(pop, n) << "n=" << n << " tail bits leaked past size()";
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(bs.Get(i)) << "n=" << n << " bit=" << i;
      }
      bs.Clear(p);
      for (size_t w = 0; w < bs.num_words(); ++w) {
        ASSERT_EQ(bs.Word(w), 0u) << "n=" << n << " word=" << w;
      }
    }
  }
}

// Large enough to cross FillBytes's parallel-split threshold (8 MB of
// words), so the pool path itself gets exercised, not just its API.
TEST(AtomicBitsetTest, ClearSetAllLargeParallelFill) {
  ThreadPool pool(2);
  const size_t n = (size_t{64} << 20) + 37;  // 8 MB of words + partial tail
  AtomicBitset bs(n);
  bs.SetAll(&pool);
  size_t pop = 0;
  for (size_t w = 0; w < bs.num_words(); ++w) {
    pop += static_cast<size_t>(__builtin_popcountll(bs.Word(w)));
  }
  EXPECT_EQ(pop, n);
  bs.Clear(&pool);
  for (size_t w = 0; w < bs.num_words(); ++w) {
    ASSERT_EQ(bs.Word(w), 0u);
  }
}

// Guards the histogram counter width in RadixSortEdges: a uint32_t counter
// silently wraps at 2^32 edges, corrupting every prefix sum after it. The
// sort now uses size_t; this pins the bound-checking predicate at synthetic
// small widths so the overflow condition itself is exercised.
TEST(SortTest, CounterWidthGuards) {
  EXPECT_TRUE(sort_internal::CountersCanHold<uint8_t>(255));
  EXPECT_FALSE(sort_internal::CountersCanHold<uint8_t>(256));
  EXPECT_TRUE(sort_internal::CountersCanHold<uint16_t>(65535));
  EXPECT_FALSE(sort_internal::CountersCanHold<uint16_t>(65536));
  EXPECT_TRUE(sort_internal::CountersCanHold<uint32_t>((uint64_t{1} << 32) - 1));
  EXPECT_FALSE(sort_internal::CountersCanHold<uint32_t>(uint64_t{1} << 32));
  EXPECT_TRUE(sort_internal::CountersCanHold<size_t>(uint64_t{1} << 32));
}

TEST(SortTest, RadixMatchesStdSortSmall) {
  SplitMix64 rng(3);
  std::vector<Edge> edges;
  for (int i = 0; i < 500; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(rng.NextBounded(1000)),
                         static_cast<VertexId>(rng.NextBounded(1000))});
  }
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  RadixSortEdges(edges);
  EXPECT_EQ(edges, expected);
}

TEST(SortTest, RadixMatchesStdSortLarge) {
  SplitMix64 rng(4);
  std::vector<Edge> edges;
  for (int i = 0; i < 100000; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(rng.Next()),
                         static_cast<VertexId>(rng.Next())});
  }
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  RadixSortEdges(edges);
  EXPECT_EQ(edges, expected);
}

TEST(SortTest, DedupRemovesAdjacentDuplicates) {
  std::vector<Edge> edges = {{1, 2}, {1, 2}, {1, 3}, {2, 2}, {2, 2}, {2, 2}};
  DedupSortedEdges(edges);
  std::vector<Edge> expected = {{1, 2}, {1, 3}, {2, 2}};
  EXPECT_EQ(edges, expected);
}

TEST(SortTest, EmptyAndSingleElement) {
  std::vector<Edge> empty;
  RadixSortEdges(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<Edge> one = {{5, 6}};
  RadixSortEdges(one);
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
}  // namespace lsg
