// Epoch-based snapshot isolation tests (DESIGN.md §12): Snapshot() pins an
// immutable view that analytics read unchanged while update batches land,
// copy-on-write preserves pre-images per vertex, and the epoch reclaimer
// frees replaced structures only after readers quiesce. The *Concurrent*
// tests interleave real reader/writer threads and are the core of the
// `tsan` label.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/core/engine_concept.h"
#include "src/core/lsgraph.h"
#include "src/util/prng.h"

namespace lsg {
namespace {

// A pinned snapshot is a first-class graph view: EdgeMap and every
// analytics kernel accept it without change.
static_assert(GraphView<GraphSnapshot>);

template <typename G>
std::vector<VertexId> Dump(const G& g, VertexId v) {
  std::vector<VertexId> out;
  g.map_neighbors(v, [&out](VertexId u) { out.push_back(u); });
  return out;
}

template <typename G>
std::vector<std::vector<VertexId>> DumpAll(const G& g) {
  std::vector<std::vector<VertexId>> out(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out[v] = Dump(g, v);
  }
  return out;
}

template <typename G>
std::vector<uint32_t> BfsLevels(const G& g, VertexId source) {
  constexpr uint32_t kUnreached = ~uint32_t{0};
  std::vector<uint32_t> level(g.num_vertices(), kUnreached);
  std::deque<VertexId> queue{source};
  level[source] = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    g.map_neighbors(u, [&](VertexId v) {
      if (level[v] == kUnreached) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    });
  }
  return level;
}

std::vector<Edge> RandomEdges(uint64_t seed, VertexId n, size_t count) {
  SplitMix64 rng(MixSeed(seed, 1));
  std::vector<Edge> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(rng.NextBounded(n)),
                         static_cast<VertexId>(rng.NextBounded(n))});
  }
  return edges;
}

TEST(MvccTest, SnapshotSeesPreBatchStateWhileLiveMovesOn) {
  LSGraph g(64);
  g.BuildFromEdges({{0, 1}, {0, 2}, {1, 2}, {5, 9}});
  auto snap = g.Snapshot();
  std::vector<std::vector<VertexId>> before = DumpAll(g);
  EXPECT_EQ(snap->num_edges(), 4u);

  EXPECT_EQ(g.InsertBatch(std::vector<Edge>{{0, 3}, {0, 4}, {5, 1}, {7, 7}}),
            4u);
  EXPECT_TRUE(g.DeleteEdge(0, 1));

  // Live graph moved...
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 1));
  // ...the snapshot did not.
  EXPECT_EQ(snap->num_edges(), 4u);
  EXPECT_TRUE(snap->HasEdge(0, 1));
  EXPECT_FALSE(snap->HasEdge(0, 3));
  EXPECT_EQ(snap->degree(0), 2u);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(Dump(*snap, v), before[v]) << "vertex " << v;
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(MvccTest, MultiplePinnedVersionsCoexist) {
  LSGraph g(32);
  g.InsertEdge(1, 2);
  auto s1 = g.Snapshot();
  g.InsertEdge(1, 3);
  auto s2 = g.Snapshot();
  g.InsertEdge(1, 4);
  g.DeleteEdge(1, 2);

  EXPECT_EQ(Dump(*s1, 1), (std::vector<VertexId>{2}));
  EXPECT_EQ(Dump(*s2, 1), (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(Dump(g, 1), (std::vector<VertexId>{3, 4}));

  // Release out of order: the older pin must stay intact.
  s2.reset();
  EXPECT_EQ(Dump(*s1, 1), (std::vector<VertexId>{2}));
  EXPECT_EQ(s1->degree(1), 1u);
}

TEST(MvccTest, SnapshotSurvivesBuildFromEdges) {
  LSGraph g(128);
  std::vector<Edge> first = RandomEdges(7, 128, 900);
  g.BuildFromEdges(first);
  auto snap = g.Snapshot();
  std::vector<std::vector<VertexId>> before = DumpAll(g);
  EdgeCount edges_before = g.num_edges();

  g.BuildFromEdges(RandomEdges(8, 128, 700));  // full rebuild under the pin

  EXPECT_EQ(snap->num_edges(), edges_before);
  for (VertexId v = 0; v < 128; ++v) {
    ASSERT_EQ(Dump(*snap, v), before[v]) << "vertex " << v;
  }
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(MvccTest, CountersTrackCowAndReclamation) {
  LSGraph g(64);
  g.BuildFromEdges(RandomEdges(11, 64, 600));
  const CoreStats& stats = g.stats();
  EXPECT_EQ(stats.snapshots_live.load(), 0u);

  uint64_t cow_before = stats.cow_copies.load();
  {
    auto snap = g.Snapshot();
    EXPECT_EQ(stats.snapshots_live.load(), 1u);
    g.InsertBatch(RandomEdges(12, 64, 400));
    // Mutating tailed vertices under a pin must have cloned tails.
    EXPECT_GT(stats.cow_copies.load(), cow_before);
    EXPECT_EQ(snap->version(), snap->version());  // pin is stable
  }
  EXPECT_EQ(stats.snapshots_live.load(), 0u);
  // Releasing the pin let pruning retire the preserved pre-images.
  EXPECT_GT(stats.deferred_frees.load(), 0u);

  // With no snapshot pinned, updates take the in-place path: no new COW
  // copies, no new deferred frees beyond epoch-retired replacements.
  uint64_t cow_quiesced = stats.cow_copies.load();
  g.InsertBatch(RandomEdges(13, 64, 200));
  EXPECT_EQ(stats.cow_copies.load(), cow_quiesced);
}

// Satellite regression: the compressed (Cria) adjacency is one
// [anchors|meta|payload] allocation. Its COW clone must capture a private
// copy of those bytes — an aliasing clone would let a recompression free
// or rewrite the buffer a pinned snapshot scan is standing in (ASan-visible
// use-after-free in this test).
TEST(MvccTest, CriaSnapshotScanSurvivesRecompressionMidScan) {
  Options opt;
  opt.compress_leaves = true;
  opt.m_threshold = 64;
  opt.cria_block_bytes = 32;
  LSGraph g(512, opt);
  std::vector<Edge> edges;
  for (VertexId u = 1; u < 400; u += 2) {
    edges.push_back(Edge{0, u});  // a ~200-degree compressed vertex
  }
  g.BuildFromEdges(edges);

  auto snap = g.Snapshot();
  std::vector<VertexId> expected = Dump(*snap, 0);
  ASSERT_EQ(expected.size(), g.degree(0));

  // Interleave: mid-way through a pinned scan of vertex 0, rewrite vertex
  // 0's adjacency (delete + insert enough to force recompression), then
  // let the scan finish. The scan must emit the pinned neighbor set
  // byte-for-byte.
  std::vector<VertexId> seen;
  size_t mutate_at = expected.size() / 2;
  bool complete = snap->map_neighbors_while(0, [&](VertexId u) {
    if (seen.size() == mutate_at) {
      std::vector<Edge> del;
      for (VertexId w = 1; w < 400; w += 4) {
        del.push_back(Edge{0, w});
      }
      g.DeleteBatch(del);
      std::vector<Edge> add;
      for (VertexId w = 400; w < 500; ++w) {
        add.push_back(Edge{0, w});
      }
      g.InsertBatch(add);
    }
    seen.push_back(u);
    return true;
  });
  EXPECT_TRUE(complete);
  EXPECT_EQ(seen, expected);
  // And a fresh full scan of the still-pinned snapshot agrees too.
  EXPECT_EQ(Dump(*snap, 0), expected);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(MvccTest, PinnedAnalyticsMatchQuiescedRunOnSameVersion) {
  const VertexId n = 256;
  LSGraph g(n);
  g.BuildFromEdges(RandomEdges(21, n, 2000));

  // Record the expected pinned state, pin, then keep ingesting from another
  // thread while BFS runs against the pin.
  std::vector<std::vector<VertexId>> expected = DumpAll(g);
  auto snap = g.Snapshot();
  std::vector<uint32_t> quiesced_bfs = BfsLevels(*snap, 0);

  std::thread writer([&g] {
    for (uint64_t b = 0; b < 16; ++b) {
      g.InsertBatch(RandomEdges(100 + b, n, 400));
      if (b % 4 == 3) {
        g.DeleteBatch(RandomEdges(200 + b, n, 150));
      }
    }
  });
  std::vector<uint32_t> racing_bfs = BfsLevels(*snap, 0);
  std::vector<std::vector<VertexId>> racing_dump = DumpAll(*snap);
  writer.join();

  EXPECT_EQ(racing_bfs, quiesced_bfs);
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(racing_dump[v], expected[v]) << "vertex " << v;
  }
  // After the writer quiesced the pin still reads the same version.
  EXPECT_EQ(BfsLevels(*snap, 0), quiesced_bfs);
  EXPECT_TRUE(g.CheckInvariants());
}

// The interleaved reader/writer stress the `tsan` label exists for:
// concurrent snapshot readers pin, double-dump (stability), and release
// while a writer streams batches, in both plain and compressed-leaf modes.
void ConcurrentStress(Options opt) {
  const VertexId n = 160;
  LSGraph g(n, opt);
  g.BuildFromEdges(RandomEdges(31, n, 1200));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_taken{0};
  auto reader = [&](uint64_t seed) {
    SplitMix64 rng(MixSeed(seed, 2));
    while (!stop.load(std::memory_order_relaxed)) {
      auto snap = g.Snapshot();
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      // Dump a random slice twice: a pinned view must never move.
      VertexId v0 = static_cast<VertexId>(rng.NextBounded(n));
      for (VertexId d = 0; d < 24; ++d) {
        VertexId v = (v0 + d) % n;
        std::vector<VertexId> a = Dump(*snap, v);
        std::vector<VertexId> b = Dump(*snap, v);
        ASSERT_EQ(a, b) << "pinned view moved at vertex " << v;
        ASSERT_EQ(a.size(), snap->degree(v));
        ASSERT_TRUE(std::is_sorted(a.begin(), a.end()));
        for (VertexId u : a) {
          ASSERT_LT(u, snap->num_vertices());
          ASSERT_TRUE(snap->HasEdge(v, u));
        }
      }
      std::vector<uint32_t> l1 = BfsLevels(*snap, v0);
      std::vector<uint32_t> l2 = BfsLevels(*snap, v0);
      ASSERT_EQ(l1, l2) << "pinned BFS unstable from source " << v0;
    }
  };

  std::vector<std::thread> readers;
  readers.emplace_back(reader, 41);
  readers.emplace_back(reader, 42);
  // Keep streaming until the readers have demonstrably overlapped with the
  // writer (on a single hardware thread the first 24 batches can finish
  // before a reader is ever scheduled); cap the loop so a wedged reader
  // fails the test instead of hanging it.
  for (uint64_t b = 0;
       b < 24 || (snapshots_taken.load(std::memory_order_relaxed) < 4 &&
                  b < 4000);
       ++b) {
    g.InsertBatch(RandomEdges(300 + b, n, 300));
    g.DeleteBatch(RandomEdges(400 + b, n, 120));
    g.InsertEdge(static_cast<VertexId>(b % n), static_cast<VertexId>(b));
    if (b % 8 == 7) {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(g.stats().snapshots_live.load(), 0u);
  EXPECT_TRUE(g.CheckInvariants());

  // Quiesced: live reads and a fresh pin agree exactly.
  auto final_snap = g.Snapshot();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(Dump(*final_snap, v), Dump(g, v)) << "vertex " << v;
  }
}

TEST(MvccTest, ConcurrentReadersDuringIngest) { ConcurrentStress(Options{}); }

TEST(MvccTest, ConcurrentReadersDuringIngestCompressed) {
  Options opt;
  opt.compress_leaves = true;
  opt.m_threshold = 64;
  opt.cria_block_bytes = 32;
  ConcurrentStress(opt);
}

// Interleaved reader/writer against a std::set reference: a writer applies
// batches one at a time and records the full reference adjacency at every
// pin point; reader threads pin concurrently and must observe exactly one
// of the recorded reference states (snapshots land on batch boundaries).
TEST(MvccTest, ConcurrentSnapshotsMatchSomeReferenceState) {
  const VertexId n = 96;
  LSGraph g(n);

  // Pre-compute the batch sequence and each prefix's reference state.
  const size_t kBatches = 20;
  std::vector<std::vector<Edge>> batches;
  std::vector<std::vector<std::set<VertexId>>> reference(kBatches + 1);
  std::vector<std::set<VertexId>> sets(n);
  reference[0] = sets;
  for (size_t b = 0; b < kBatches; ++b) {
    batches.push_back(RandomEdges(500 + b, n, 250));
    for (const Edge& e : batches.back()) {
      sets[e.src].insert(e.dst);
    }
    reference[b + 1] = sets;
  }
  // num_edges at each prefix identifies which state a snapshot pinned.
  std::vector<EdgeCount> prefix_edges(kBatches + 1, 0);
  for (size_t b = 0; b <= kBatches; ++b) {
    EdgeCount total = 0;
    for (const auto& s : reference[b]) {
      total += s.size();
    }
    prefix_edges[b] = total;
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto snap = g.Snapshot();
      EdgeCount ne = snap->num_edges();
      auto it = std::find(prefix_edges.begin(), prefix_edges.end(), ne);
      ASSERT_NE(it, prefix_edges.end())
          << "snapshot num_edges " << ne << " matches no batch boundary";
      const auto& want = reference[it - prefix_edges.begin()];
      for (VertexId v = 0; v < n; ++v) {
        std::vector<VertexId> got = Dump(*snap, v);
        ASSERT_EQ(got, std::vector<VertexId>(want[v].begin(), want[v].end()))
            << "vertex " << v << " at boundary "
            << (it - prefix_edges.begin());
      }
      verified.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::thread r1(reader);
  std::thread r2(reader);
  for (const auto& batch : batches) {
    g.InsertBatch(batch);
    std::this_thread::yield();
  }
  // Single-core schedulers can starve the readers until the writer is done;
  // hold the final state until at least one pinned verification ran.
  for (int spin = 0;
       verified.load(std::memory_order_relaxed) == 0 && spin < 10000;
       ++spin) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  r1.join();
  r2.join();
  EXPECT_GT(verified.load(), 0u);

  // Quiesced final state equals the final reference state.
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(Dump(g, v),
              std::vector<VertexId>(sets[v].begin(), sets[v].end()));
  }
  EXPECT_TRUE(g.CheckInvariants());
}

// Distinct random edges per batch can collide across batches; make the
// prefix_edges identification robust by construction: the test above relies
// on strictly increasing prefix edge counts. Verify that holds for the
// seeds used (a collision would make two boundaries indistinguishable but
// the adjacency comparison still anchors the check).
TEST(MvccTest, StressSeedsYieldDistinguishableBoundaries) {
  const VertexId n = 96;
  std::vector<std::set<VertexId>> sets(n);
  EdgeCount prev = 0;
  bool strictly_increasing = true;
  for (size_t b = 0; b < 20; ++b) {
    for (const Edge& e : RandomEdges(500 + b, n, 250)) {
      sets[e.src].insert(e.dst);
    }
    EdgeCount total = 0;
    for (const auto& s : sets) {
      total += s.size();
    }
    strictly_increasing = strictly_increasing && total > prev;
    prev = total;
  }
  EXPECT_TRUE(strictly_increasing);
}

}  // namespace
}  // namespace lsg
