// Delta-varint compressed chunks of sorted vertex ids.
//
// Aspen and PaC-tree difference-encode the id chunks hanging off their search
// trees; that compression is why they beat LSGraph on memory (Table 3) while
// paying decode cost on every traversal (Fig. 13). This module provides the
// same encoding: the first id relative to a base, subsequent ids as positive
// deltas, all LEB128 varints.
#ifndef SRC_CTREE_COMPRESSED_CHUNK_H_
#define SRC_CTREE_COMPRESSED_CHUNK_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

inline void AppendVarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

// Encoded length of v in bytes (1..10), without materializing the bytes.
inline size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

// Trusted-input decoder: the caller guarantees the stream was produced by
// AppendVarint. The shift is bounded so even a corrupt stream cannot shift
// past the value width (formerly UB once a malformed run exceeded 5 bytes);
// excess continuation bytes are consumed and their payload discarded.
inline uint64_t ReadVarint(const uint8_t*& p) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    uint8_t b = *p++;
    if (shift < 64) {
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
    }
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

// Untrusted-input decoder for file/network bytes: advances *p and fills
// *out, returning false (with *p and *out unspecified but in-bounds) if the
// varint runs past `end` or encodes more than 64 bits. Never reads past
// `end` and never shifts out of range.
inline bool TryReadVarint(const uint8_t** p, const uint8_t* end,
                          uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  const uint8_t* q = *p;
  while (q < end) {
    uint8_t b = *q++;
    if (shift >= 64 || (shift == 63 && (b & 0x7e) != 0)) {
      return false;  // would overflow 64 bits
    }
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *p = q;
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;  // ran off the buffer mid-varint
}

// A sorted set of ids strictly greater than `base`, stored delta-compressed.
class CompressedChunk {
 public:
  CompressedChunk() = default;

  // Builds from sorted unique ids, all > base.
  static CompressedChunk Encode(std::span<const VertexId> sorted, VertexId base) {
    CompressedChunk c;
    c.count_ = sorted.size();
    VertexId prev = base;
    for (VertexId v : sorted) {
      assert(v > prev);
      AppendVarint(c.bytes_, v - prev);
      prev = v;
    }
    c.bytes_.shrink_to_fit();
    return c;
  }

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t byte_size() const { return bytes_.size(); }
  size_t memory_footprint() const {
    return bytes_.capacity() + sizeof(*this);
  }

  // Applies f(id) in ascending order.
  template <typename F>
  void Map(VertexId base, F&& f) const {
    const uint8_t* p = bytes_.data();
    VertexId v = base;
    for (size_t i = 0; i < count_; ++i) {
      v += ReadVarint(p);
      f(v);
    }
  }

  // Applies f(id) ascending while f returns true; false iff cut short.
  template <typename F>
  bool MapWhile(VertexId base, F&& f) const {
    const uint8_t* p = bytes_.data();
    VertexId v = base;
    for (size_t i = 0; i < count_; ++i) {
      v += ReadVarint(p);
      if (!f(v)) {
        return false;
      }
    }
    return true;
  }

  std::vector<VertexId> Decode(VertexId base) const {
    std::vector<VertexId> out;
    out.reserve(count_);
    Map(base, [&out](VertexId v) { out.push_back(v); });
    return out;
  }

  bool Contains(VertexId base, VertexId key) const {
    const uint8_t* p = bytes_.data();
    VertexId v = base;
    for (size_t i = 0; i < count_; ++i) {
      v += ReadVarint(p);
      if (v == key) {
        return true;
      }
      if (v > key) {
        return false;
      }
    }
    return false;
  }

 private:
  std::vector<uint8_t> bytes_;
  uint32_t count_ = 0;
};

}  // namespace lsg

#endif  // SRC_CTREE_COMPRESSED_CHUNK_H_
