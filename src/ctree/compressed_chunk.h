// Delta-varint compressed chunks of sorted vertex ids.
//
// Aspen and PaC-tree difference-encode the id chunks hanging off their search
// trees; that compression is why they beat LSGraph on memory (Table 3) while
// paying decode cost on every traversal (Fig. 13). This module provides the
// same encoding: the first id relative to a base, subsequent ids as positive
// deltas, all LEB128 varints.
#ifndef SRC_CTREE_COMPRESSED_CHUNK_H_
#define SRC_CTREE_COMPRESSED_CHUNK_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

inline void AppendVarint(std::vector<uint8_t>& out, uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

inline uint32_t ReadVarint(const uint8_t*& p) {
  uint32_t v = 0;
  int shift = 0;
  for (;;) {
    uint8_t b = *p++;
    v |= static_cast<uint32_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

// A sorted set of ids strictly greater than `base`, stored delta-compressed.
class CompressedChunk {
 public:
  CompressedChunk() = default;

  // Builds from sorted unique ids, all > base.
  static CompressedChunk Encode(std::span<const VertexId> sorted, VertexId base) {
    CompressedChunk c;
    c.count_ = sorted.size();
    VertexId prev = base;
    for (VertexId v : sorted) {
      assert(v > prev);
      AppendVarint(c.bytes_, v - prev);
      prev = v;
    }
    c.bytes_.shrink_to_fit();
    return c;
  }

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t byte_size() const { return bytes_.size(); }
  size_t memory_footprint() const {
    return bytes_.capacity() + sizeof(*this);
  }

  // Applies f(id) in ascending order.
  template <typename F>
  void Map(VertexId base, F&& f) const {
    const uint8_t* p = bytes_.data();
    VertexId v = base;
    for (size_t i = 0; i < count_; ++i) {
      v += ReadVarint(p);
      f(v);
    }
  }

  // Applies f(id) ascending while f returns true; false iff cut short.
  template <typename F>
  bool MapWhile(VertexId base, F&& f) const {
    const uint8_t* p = bytes_.data();
    VertexId v = base;
    for (size_t i = 0; i < count_; ++i) {
      v += ReadVarint(p);
      if (!f(v)) {
        return false;
      }
    }
    return true;
  }

  std::vector<VertexId> Decode(VertexId base) const {
    std::vector<VertexId> out;
    out.reserve(count_);
    Map(base, [&out](VertexId v) { out.push_back(v); });
    return out;
  }

  bool Contains(VertexId base, VertexId key) const {
    const uint8_t* p = bytes_.data();
    VertexId v = base;
    for (size_t i = 0; i < count_; ++i) {
      v += ReadVarint(p);
      if (v == key) {
        return true;
      }
      if (v > key) {
        return false;
      }
    }
    return false;
  }

 private:
  std::vector<uint8_t> bytes_;
  uint32_t count_ = 0;
};

}  // namespace lsg

#endif  // SRC_CTREE_COMPRESSED_CHUNK_H_
