#include "src/ctree/ctree.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace lsg {

namespace {

// Shared-structure overhead per node (shared_ptr control block).
constexpr size_t kControlBlockBytes = 32;

CompressedChunk EncodePrefix(std::span<const VertexId> sorted) {
  std::vector<VertexId> shifted(sorted.begin(), sorted.end());
  for (VertexId& v : shifted) {
    ++v;
  }
  return CompressedChunk::Encode(shifted, 0);
}

std::vector<VertexId> DecodePrefix(const CompressedChunk& prefix) {
  std::vector<VertexId> out = prefix.Decode(0);
  for (VertexId& v : out) {
    --v;
  }
  return out;
}

}  // namespace

CTree::CTree(uint32_t expected_chunk_size)
    : chunk_mask_(expected_chunk_size - 1) {
  assert(std::has_single_bit(expected_chunk_size));
}

uint64_t CTree::Hash(VertexId key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool CTree::IsHead(VertexId key) const {
  return (Hash(key) & chunk_mask_) == 0;
}

CTree::NodeRef CTree::MakeNode(VertexId head, NodeRef left, NodeRef right,
                               CompressedChunk tail) {
  return std::make_shared<const Node>(Node{head, Hash(head), std::move(left),
                                           std::move(right), std::move(tail)});
}

bool CTree::Contains(VertexId key) const {
  const Node* pred = nullptr;
  const Node* cur = root_.get();
  while (cur != nullptr) {
    if (key < cur->head) {
      cur = cur->left.get();
    } else if (key == cur->head) {
      return true;
    } else {
      pred = cur;
      cur = cur->right.get();
    }
  }
  if (pred != nullptr) {
    return pred->tail.Contains(pred->head, key);
  }
  return prefix_.Contains(0, key + 1);
}

CTree::NodeRef CTree::Join(const NodeRef& l, const NodeRef& r) {
  if (l == nullptr) {
    return r;
  }
  if (r == nullptr) {
    return l;
  }
  if (l->priority >= r->priority) {
    return MakeNode(l->head, l->left, Join(l->right, r), l->tail);
  }
  return MakeNode(r->head, Join(l, r->left), r->right, r->tail);
}

CTree::SplitResult CTree::Split(const NodeRef& t, VertexId k) {
  if (t == nullptr) {
    return {};
  }
  if (k < t->head) {
    SplitResult res = Split(t->left, k);
    res.right = MakeNode(t->head, res.right, t->right, t->tail);
    return res;
  }
  assert(k != t->head);
  SplitResult res = Split(t->right, k);
  if (res.left == nullptr) {
    // No head in (t->head, k): t is k's predecessor; cut its tail at k.
    std::vector<VertexId> ids = t->tail.Decode(t->head);
    auto cut = std::lower_bound(ids.begin(), ids.end(), k);
    if (cut != ids.end()) {
      res.spill.assign(cut, ids.end());
      ids.erase(cut, ids.end());
      res.left = MakeNode(t->head, t->left, nullptr,
                          CompressedChunk::Encode(ids, t->head));
      return res;
    }
  }
  res.left = MakeNode(t->head, t->left, res.left, t->tail);
  return res;
}

CTree::NodeRef CTree::RewriteTail(const NodeRef& t, VertexId key, bool insert,
                                  bool* changed) {
  // Precondition: the predecessor head of `key` exists in t.
  assert(t != nullptr);
  if (key < t->head) {
    return MakeNode(t->head, RewriteTail(t->left, key, insert, changed),
                    t->right, t->tail);
  }
  // Is the predecessor deeper in the right subtree?
  const Node* min_right = t->right.get();
  while (min_right != nullptr && min_right->left != nullptr) {
    min_right = min_right->left.get();
  }
  if (min_right != nullptr && min_right->head < key) {
    return MakeNode(t->head, t->left,
                    RewriteTail(t->right, key, insert, changed), t->tail);
  }
  // t is the predecessor: rebuild its tail.
  std::vector<VertexId> ids = t->tail.Decode(t->head);
  auto it = std::lower_bound(ids.begin(), ids.end(), key);
  if (insert) {
    if (it != ids.end() && *it == key) {
      *changed = false;
      return t;
    }
    ids.insert(it, key);
  } else {
    if (it == ids.end() || *it != key) {
      *changed = false;
      return t;
    }
    ids.erase(it);
  }
  *changed = true;
  return MakeNode(t->head, t->left, t->right,
                  CompressedChunk::Encode(ids, t->head));
}

bool CTree::Insert(VertexId key) {
  if (Contains(key)) {
    return false;
  }
  if (IsHead(key)) {
    SplitResult res = Split(root_, key);
    std::vector<VertexId> tail_ids = std::move(res.spill);
    if (res.left == nullptr && !prefix_.empty()) {
      // key lands below the first head: prefix ids above key become its tail.
      std::vector<VertexId> pre = DecodePrefix(prefix_);
      auto cut = std::lower_bound(pre.begin(), pre.end(), key);
      assert(tail_ids.empty());
      tail_ids.assign(cut, pre.end());
      pre.erase(cut, pre.end());
      prefix_ = EncodePrefix(pre);
    }
    NodeRef node = MakeNode(key, nullptr, nullptr,
                            CompressedChunk::Encode(tail_ids, key));
    root_ = Join(Join(res.left, node), res.right);
  } else {
    // Non-head: goes into the predecessor head's tail, or the prefix.
    const Node* pred = nullptr;
    for (const Node* cur = root_.get(); cur != nullptr;) {
      if (key < cur->head) {
        cur = cur->left.get();
      } else {
        pred = cur;
        cur = cur->right.get();
      }
    }
    if (pred == nullptr) {
      std::vector<VertexId> pre = DecodePrefix(prefix_);
      pre.insert(std::lower_bound(pre.begin(), pre.end(), key), key);
      prefix_ = EncodePrefix(pre);
    } else {
      bool changed = false;
      root_ = RewriteTail(root_, key, /*insert=*/true, &changed);
      assert(changed);
    }
  }
  ++size_;
  return true;
}

bool CTree::Delete(VertexId key) {
  if (!Contains(key)) {
    return false;
  }
  if (IsHead(key)) {
    // Remove the head node, then fold its orphaned tail into the predecessor
    // chunk (or the prefix when no predecessor head remains).
    std::vector<VertexId> orphan;
    struct Remover {
      VertexId key;
      std::vector<VertexId>* orphan;
      NodeRef operator()(const NodeRef& t) {
        assert(t != nullptr);
        if (key < t->head) {
          return MakeNode(t->head, (*this)(t->left), t->right, t->tail);
        }
        if (key > t->head) {
          return MakeNode(t->head, t->left, (*this)(t->right), t->tail);
        }
        *orphan = t->tail.Decode(t->head);
        return Join(t->left, t->right);
      }
    };
    root_ = Remover{key, &orphan}(root_);
    if (!orphan.empty()) {
      const Node* pred = nullptr;
      for (const Node* cur = root_.get(); cur != nullptr;) {
        if (key < cur->head) {
          cur = cur->left.get();
        } else {
          pred = cur;
          cur = cur->right.get();
        }
      }
      if (pred == nullptr) {
        std::vector<VertexId> pre = DecodePrefix(prefix_);
        pre.insert(pre.end(), orphan.begin(), orphan.end());
        prefix_ = EncodePrefix(pre);
      } else {
        // Merge orphan into pred's tail via one rewrite.
        std::vector<VertexId> merged = pred->tail.Decode(pred->head);
        merged.insert(merged.end(), orphan.begin(), orphan.end());
        std::sort(merged.begin(), merged.end());
        struct TailSetter {
          VertexId target;
          const std::vector<VertexId>* ids;
          NodeRef operator()(const NodeRef& t) {
            assert(t != nullptr);
            if (target < t->head) {
              return MakeNode(t->head, (*this)(t->left), t->right, t->tail);
            }
            if (target > t->head) {
              return MakeNode(t->head, t->left, (*this)(t->right), t->tail);
            }
            return MakeNode(t->head, t->left, t->right,
                            CompressedChunk::Encode(*ids, t->head));
          }
        };
        root_ = TailSetter{pred->head, &merged}(root_);
      }
    }
  } else {
    const Node* pred = nullptr;
    for (const Node* cur = root_.get(); cur != nullptr;) {
      if (key < cur->head) {
        cur = cur->left.get();
      } else {
        pred = cur;
        cur = cur->right.get();
      }
    }
    if (pred == nullptr) {
      std::vector<VertexId> pre = DecodePrefix(prefix_);
      pre.erase(std::find(pre.begin(), pre.end(), key));
      prefix_ = EncodePrefix(pre);
    } else {
      bool changed = false;
      root_ = RewriteTail(root_, key, /*insert=*/false, &changed);
      assert(changed);
    }
  }
  --size_;
  return true;
}

void CTree::BulkLoad(std::span<const VertexId> sorted_keys) {
  root_ = nullptr;
  prefix_ = CompressedChunk();
  size_ = sorted_keys.size();

  // Leading non-heads form the prefix.
  size_t i = 0;
  while (i < sorted_keys.size() && !IsHead(sorted_keys[i])) {
    ++i;
  }
  prefix_ = EncodePrefix(sorted_keys.subspan(0, i));

  // Build (head, tail) groups, then a cartesian tree on priorities. Nodes
  // are mutable during construction only.
  struct MutableNode {
    VertexId head;
    std::shared_ptr<Node> node;
  };
  std::vector<std::shared_ptr<Node>> spine;  // decreasing priority stack
  std::shared_ptr<Node> root;
  while (i < sorted_keys.size()) {
    VertexId head = sorted_keys[i++];
    size_t tail_begin = i;
    while (i < sorted_keys.size() && !IsHead(sorted_keys[i])) {
      ++i;
    }
    auto node = std::make_shared<Node>(
        Node{head, Hash(head), nullptr, nullptr,
             CompressedChunk::Encode(
                 sorted_keys.subspan(tail_begin, i - tail_begin), head)});
    std::shared_ptr<Node> last_popped;
    while (!spine.empty() && spine.back()->priority < node->priority) {
      last_popped = spine.back();
      spine.pop_back();
    }
    node->left = last_popped;
    if (!spine.empty()) {
      spine.back()->right = node;
    } else {
      root = node;
    }
    spine.push_back(node);
  }
  root_ = root;
}

size_t CTree::FootprintNode(const Node* n) {
  if (n == nullptr) {
    return 0;
  }
  return sizeof(Node) + kControlBlockBytes + n->tail.byte_size() +
         FootprintNode(n->left.get()) + FootprintNode(n->right.get());
}

size_t CTree::memory_footprint() const {
  return sizeof(*this) + prefix_.byte_size() + FootprintNode(root_.get());
}

bool CTree::CheckNode(const Node* n, uint64_t max_priority, VertexId lo,
                      VertexId hi, size_t* keys) {
  if (n == nullptr) {
    return true;
  }
  if (n->priority > max_priority || n->head < lo || n->head >= hi) {
    return false;
  }
  *keys += 1 + n->tail.count();
  // Tail ids must fall strictly between the head and its successor.
  VertexId succ = hi;
  if (n->right != nullptr) {
    const Node* m = n->right.get();
    while (m->left != nullptr) {
      m = m->left.get();
    }
    succ = m->head;
  }
  bool ok = true;
  VertexId prev = n->head;
  n->tail.Map(n->head, [&](VertexId v) {
    if (v <= prev || v >= succ) {
      ok = false;
    }
    prev = v;
  });
  return ok && CheckNode(n->left.get(), n->priority, lo, n->head, keys) &&
         CheckNode(n->right.get(), n->priority, n->head + 1, hi, keys);
}

bool CTree::CheckInvariants() const {
  size_t keys = prefix_.count();
  // Prefix ids must sit below the first head.
  if (root_ != nullptr && !prefix_.empty()) {
    const Node* m = root_.get();
    while (m->left != nullptr) {
      m = m->left.get();
    }
    VertexId first_head = m->head;
    bool ok = true;
    prefix_.Map(0, [&](VertexId shifted) {
      if (shifted - 1 >= first_head) {
        ok = false;
      }
    });
    if (!ok) {
      return false;
    }
  }
  if (!CheckNode(root_.get(), ~uint64_t{0}, 0, kInvalidVertex, &keys)) {
    return false;
  }
  return keys == size_;
}

}  // namespace lsg
