// C-tree: a purely-functional (path-copying) chunked search tree over vertex
// ids, reimplementing the structure underlying Aspen and PaC-tree (§6.1).
//
// Ids whose hash is 0 mod the expected chunk size are *heads*; heads form a
// treap (priority = hash), and each head carries a compressed chunk of the
// non-head ids between it and the next head. Ids below the first head live in
// a root-level prefix chunk. All updates path-copy, so every insert allocates
// O(log n) fresh nodes — the random-allocation, pointer-chasing behaviour the
// paper contrasts with LSGraph's arrays.
//
// The Aspen baseline uses a small expected chunk size (hash selection gives
// the "randomized chunk sizes" of §6.1); the PaC-tree baseline uses a larger
// one, approximating "arrays only at leaves" by making chunks dominate nodes.
//
// Value semantics: CTree is a cheap handle (shared_ptr root); copies share
// structure, and mutation replaces only the handle's path.
#ifndef SRC_CTREE_CTREE_H_
#define SRC_CTREE_CTREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/ctree/compressed_chunk.h"
#include "src/util/graph_types.h"

namespace lsg {

class CTree {
 public:
  // expected_chunk_size must be a power of two (head selection masks the
  // hash with it).
  explicit CTree(uint32_t expected_chunk_size = 16);

  bool Contains(VertexId key) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Functional update on this handle: returns true if membership changed.
  bool Insert(VertexId key);
  bool Delete(VertexId key);

  // Replaces contents from a sorted unique id list; O(n).
  void BulkLoad(std::span<const VertexId> sorted_keys);

  // Applies f(id) in ascending order.
  template <typename F>
  void Map(F&& f) const {
    // The prefix chunk stores id+1 relative to base 0 so that id 0 remains
    // encodable (chunks hold ids strictly above their base).
    prefix_.Map(0, [&f](VertexId shifted) { f(shifted - 1); });
    MapNode(root_.get(), f);
  }

  // Applies f(id) ascending while f returns true; false iff cut short.
  template <typename F>
  bool MapWhile(F&& f) const {
    if (!prefix_.MapWhile(0, [&f](VertexId shifted) { return f(shifted - 1); })) {
      return false;
    }
    return MapNodeWhile(root_.get(), f);
  }

  std::vector<VertexId> Decode() const {
    std::vector<VertexId> out;
    out.reserve(size_);
    Map([&out](VertexId v) { out.push_back(v); });
    return out;
  }

  size_t memory_footprint() const;

  // Tree structure checks for tests: heap order on priorities, BST order on
  // heads, chunk ranges nested between heads, size consistency.
  bool CheckInvariants() const;

 private:
  struct Node;
  using NodeRef = std::shared_ptr<const Node>;

  struct Node {
    VertexId head;
    uint64_t priority;
    NodeRef left;
    NodeRef right;
    CompressedChunk tail;  // ids in (head, successor-head)
  };

  bool IsHead(VertexId key) const;
  static uint64_t Hash(VertexId key);

  static NodeRef MakeNode(VertexId head, NodeRef left, NodeRef right,
                          CompressedChunk tail);
  static NodeRef Join(const NodeRef& l, const NodeRef& r);

  struct SplitResult {
    NodeRef left;
    NodeRef right;
    std::vector<VertexId> spill;  // tail ids >= k cut off the predecessor
  };
  static SplitResult Split(const NodeRef& t, VertexId k);

  // Path-copies down to the predecessor head of `key` and rebuilds its tail
  // with `key` inserted (insert=true) or removed. Returns the new subtree, or
  // nullptr in `*found` failure cases (see .cpp).
  static NodeRef RewriteTail(const NodeRef& t, VertexId key, bool insert,
                             bool* changed);

  template <typename F>
  static void MapNode(const Node* n, F& f) {
    if (n == nullptr) {
      return;
    }
    MapNode(n->left.get(), f);
    f(n->head);
    n->tail.Map(n->head, f);
    MapNode(n->right.get(), f);
  }

  template <typename F>
  static bool MapNodeWhile(const Node* n, F& f) {
    if (n == nullptr) {
      return true;
    }
    if (!MapNodeWhile(n->left.get(), f)) {
      return false;
    }
    if (!f(n->head)) {
      return false;
    }
    if (!n->tail.MapWhile(n->head, f)) {
      return false;
    }
    return MapNodeWhile(n->right.get(), f);
  }

  static size_t FootprintNode(const Node* n);
  static bool CheckNode(const Node* n, uint64_t max_priority, VertexId lo,
                        VertexId hi, size_t* keys);

  NodeRef root_;
  CompressedChunk prefix_;  // ids below the first head
  size_t size_ = 0;
  uint32_t chunk_mask_;
};

}  // namespace lsg

#endif  // SRC_CTREE_CTREE_H_
