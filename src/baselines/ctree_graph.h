// Aspen / PaC-tree baselines (paper §6.1).
//
// Both engines store each vertex's adjacency set in a purely-functional
// chunked search tree (src/ctree). They differ in chunking: Aspen hangs a
// small hash-randomized chunk off every node; PaC-tree concentrates ids into
// larger chunks so internal nodes are rare (its "arrays only at leaves"
// layout). AspenGraph / PacTreeGraph below are the two configurations.
//
// Updates path-copy per edge but touch only the source vertex's tree, so
// batches parallelize per vertex without locks — matching these systems'
// good update scaling (Fig. 17) and their pointer-chasing analytics
// (Fig. 13).
//
// Both systems are trees-of-trees: reaching a vertex's edge tree requires a
// search of the *vertex* tree. We reproduce that access pattern with a
// BST over vertex ids in Eytzinger (breadth-first) layout — every vertex
// access walks log |V| compare-and-branch steps over scattered nodes, the
// same dependent-load chain a pointer-based vertex tree costs.
#ifndef SRC_BASELINES_CTREE_GRAPH_H_
#define SRC_BASELINES_CTREE_GRAPH_H_

#include <atomic>
#include <span>
#include <vector>

#include "src/ctree/ctree.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

class CTreeGraph {
 public:
  CTreeGraph(VertexId num_vertices, uint32_t expected_chunk_size,
             ThreadPool* pool = nullptr);

  CTreeGraph(const CTreeGraph&) = delete;
  CTreeGraph& operator=(const CTreeGraph&) = delete;

  // Invoked on a non-empty engine this rebuilds in place: every existing
  // edge tree is cleared first, so vertices absent from the new list end
  // up empty.
  void BuildFromEdges(std::vector<Edge> edges);

  // Grows the vertex set by `count` ids; returns the first new id. The
  // Eytzinger vertex tree is laid out by size, so growth re-derives the
  // in-order id assignment and re-homes the existing edge trees. Not
  // concurrent with updates or analytics.
  VertexId AddVertices(VertexId count);

  size_t InsertBatch(std::span<const Edge> batch);
  size_t DeleteBatch(std::span<const Edge> batch);

  // Apply phase only, for callers that already ran PrepareBatch.
  size_t InsertPrepared(const PreparedBatch& pb);
  size_t DeletePrepared(const PreparedBatch& pb);

  // O(|V|) snapshot sharing all edge-tree structure with this graph (the
  // purely-functional trees make this cheap — Aspen's signature feature).
  // The snapshot is immutable-by-convention: updates to either side never
  // affect the other, because every mutation path-copies.
  CTreeGraph Snapshot() const { return CTreeGraph(*this, PrivateTag{}); }

  bool InsertEdge(VertexId src, VertexId dst);
  bool DeleteEdge(VertexId src, VertexId dst);
  bool HasEdge(VertexId src, VertexId dst) const {
    if (src >= num_vertices() || dst >= num_vertices()) {
      return false;
    }
    return FindTree(src).Contains(dst);
  }

  VertexId num_vertices() const { return static_cast<VertexId>(vtree_.size()); }
  EdgeCount num_edges() const { return num_edges_; }
  size_t degree(VertexId v) const { return FindTree(v).size(); }

  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    FindTree(v).Map(f);
  }

  // map_neighbors that stops once f returns false; false iff cut short.
  template <typename F>
  bool map_neighbors_while(VertexId v, F&& f) const {
    return FindTree(v).MapWhile(f);
  }

  // Out-of-range endpoints rejected (counted and skipped) by update paths;
  // see DESIGN.md "Endpoint validation".
  uint64_t oob_rejected() const {
    return oob_rejected_.load(std::memory_order_relaxed);
  }

  size_t memory_footprint() const;

  bool CheckInvariants() const;

 private:
  struct VNode {
    VertexId id;
    CTree tree;
  };

  // Snapshot constructor: copies the vertex array; edge trees share nodes.
  struct PrivateTag {};
  CTreeGraph(const CTreeGraph& o, PrivateTag)
      : chunk_size_(o.chunk_size_),
        vtree_(o.vtree_),
        num_edges_(o.num_edges_),
        pool_(o.pool_),
        oob_rejected_(o.oob_rejected_.load(std::memory_order_relaxed)) {}

  // Writes the sorted ids 0..size-1 into vtree_ via an in-order walk of the
  // implicit Eytzinger tree (ctor and AddVertices share this).
  void AssignIdsInOrder();

  ThreadPool& pool() const;

  // Vertex-tree search: walks the Eytzinger BST from the root.
  const CTree& FindTree(VertexId v) const { return vtree_[FindSlot(v)].tree; }
  CTree& FindTree(VertexId v) { return vtree_[FindSlot(v)].tree; }
  size_t FindSlot(VertexId v) const {
    size_t i = 0;
    for (;;) {
      const VNode& n = vtree_[i];
      if (v == n.id) {
        return i;
      }
      i = 2 * i + 1 + (v > n.id ? 1 : 0);
    }
  }

  uint32_t chunk_size_ = 0;
  std::vector<VNode> vtree_;  // BST over vertex ids, Eytzinger layout
  EdgeCount num_edges_ = 0;
  ThreadPool* pool_ = nullptr;
  std::atomic<uint64_t> oob_rejected_{0};
};

// Aspen: small randomized chunks at every node.
class AspenGraph : public CTreeGraph {
 public:
  explicit AspenGraph(VertexId num_vertices, ThreadPool* pool = nullptr)
      : CTreeGraph(num_vertices, /*expected_chunk_size=*/16, pool) {}
};

// PaC-tree: larger chunks; internal nodes rare.
class PacTreeGraph : public CTreeGraph {
 public:
  explicit PacTreeGraph(VertexId num_vertices, ThreadPool* pool = nullptr)
      : CTreeGraph(num_vertices, /*expected_chunk_size=*/64, pool) {}
};

}  // namespace lsg

#endif  // SRC_BASELINES_CTREE_GRAPH_H_
