// Terrace baseline (Pandey et al., SIGMOD '21; paper §2.3).
//
// Reimplements Terrace's hierarchical container: a cache-line vertex block
// with inline neighbors per vertex, one *shared* PMA holding the
// medium-degree tails of every vertex (keys packed as src<<32|dst, so the
// array is globally sorted and insertions move other vertices' data — the
// pathology Figs. 4/12/17 expose), and a per-vertex B-tree once a vertex's
// degree crosses the high-degree threshold.
//
// Parallel batches lock the shared PMA (Terrace's writers contend on the
// same array ranges), while B-tree vertices update lock-free under the
// one-vertex-one-thread discipline.
#ifndef SRC_BASELINES_TERRACE_GRAPH_H_
#define SRC_BASELINES_TERRACE_GRAPH_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/btree/btree_set.h"
#include "src/parallel/thread_pool.h"
#include "src/pma/pma.h"
#include "src/util/cache.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

struct TerraceOptions {
  // Degree above which a vertex's tail migrates from the PMA to a B-tree
  // (Terrace's "medium/large" cutoff).
  uint32_t high_degree_threshold = 1024;

  // Terrace runs its PMA at density (0.125, 0.25) over 32-bit elements — a
  // 4-8x space amplification (paper §3.2, Table 3). Our PMA packs
  // (src, dst) into 64-bit keys (twice the bytes per element), so these
  // defaults use ~2x the density to keep bytes-scanned-per-edge and total
  // footprint calibrated to the real system; the resulting T/L memory ratio
  // lands in the paper's 2-3x band.
  PmaOptions pma{.leaf_lower = 0.15,
                 .leaf_upper = 0.55,
                 .root_lower = 0.20,
                 .root_upper = 0.45};
};

class TerraceGraph {
 public:
  static constexpr size_t kInlineCap =
      (kCacheLineBytes - 2 * sizeof(uint32_t) - sizeof(void*)) /
      sizeof(VertexId);

  TerraceGraph(VertexId num_vertices, TerraceOptions options = {},
               ThreadPool* pool = nullptr);
  ~TerraceGraph();

  TerraceGraph(const TerraceGraph&) = delete;
  TerraceGraph& operator=(const TerraceGraph&) = delete;

  // Invoked on a non-empty engine this rebuilds in place: all existing
  // B-trees, PMA keys, and inline runs are released first.
  void BuildFromEdges(std::vector<Edge> edges);

  // Grows the vertex set by `count` ids; returns the first new id. Not
  // concurrent with updates or analytics.
  VertexId AddVertices(VertexId count) {
    VertexId first = num_vertices();
    blocks_.resize(blocks_.size() + count);
    offsets_dirty_.store(true, std::memory_order_release);
    return first;
  }

  size_t InsertBatch(std::span<const Edge> batch);
  size_t DeleteBatch(std::span<const Edge> batch);

  // Apply phase only, for callers that already ran PrepareBatch.
  size_t InsertPrepared(const PreparedBatch& pb);
  size_t DeletePrepared(const PreparedBatch& pb);

  bool InsertEdge(VertexId src, VertexId dst);
  bool DeleteEdge(VertexId src, VertexId dst);
  bool HasEdge(VertexId src, VertexId dst) const;

  VertexId num_vertices() const { return static_cast<VertexId>(blocks_.size()); }
  EdgeCount num_edges() const { return num_edges_; }
  size_t degree(VertexId v) const { return blocks_[v].degree; }

  // Out-of-range endpoints rejected (counted and skipped) by update paths;
  // see DESIGN.md "Endpoint validation".
  uint64_t oob_rejected() const {
    return oob_rejected_.load(std::memory_order_relaxed);
  }

  // Neighbor traversal uses Terrace's offset array into the PMA: O(1) range
  // location plus a contiguous scan (this locality is why Terrace beats the
  // tree engines on analytics, Fig. 3a). The offset array is rebuilt lazily
  // after updates, mirroring Terrace's post-batch offset maintenance.
  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    const VertexBlock& vb = blocks_[v];
    for (uint32_t i = 0; i < vb.inline_count; ++i) {
      f(vb.inline_edges[i]);
    }
    if (vb.btree != nullptr) {
      vb.btree->Map(f);
    } else if (vb.degree > vb.inline_count) {
      if (offsets_dirty_.load(std::memory_order_acquire)) {
        RebuildOffsets();
      }
      pma_.MapSlots(offsets_[v], offsets_[v + 1],
                    [&f](uint64_t key) { f(static_cast<VertexId>(key)); });
    }
  }

  // map_neighbors that stops once f returns false; false iff cut short.
  template <typename F>
  bool map_neighbors_while(VertexId v, F&& f) const {
    const VertexBlock& vb = blocks_[v];
    for (uint32_t i = 0; i < vb.inline_count; ++i) {
      if (!f(vb.inline_edges[i])) {
        return false;
      }
    }
    if (vb.btree != nullptr) {
      return vb.btree->MapWhile(f);
    }
    if (vb.degree > vb.inline_count) {
      if (offsets_dirty_.load(std::memory_order_acquire)) {
        RebuildOffsets();
      }
      return pma_.MapSlotsWhile(offsets_[v], offsets_[v + 1], [&f](uint64_t key) {
        return f(static_cast<VertexId>(key));
      });
    }
    return true;
  }

  size_t memory_footprint() const;

  // Shared-PMA instrumentation for the Fig. 4 breakdown benches.
  const Pma& pma() const { return pma_; }
  Pma& mutable_pma() { return pma_; }

  bool CheckInvariants() const;

 private:
  struct VertexBlock {
    uint32_t degree = 0;
    uint32_t inline_count = 0;
    VertexId inline_edges[kInlineCap];
    BTreeSet* btree = nullptr;  // owned; null while the tail lives in the PMA
  };
  static_assert(sizeof(VertexBlock) == kCacheLineBytes);

  static uint64_t PmaKey(VertexId src, VertexId dst) {
    return (uint64_t{src} << 32) | dst;
  }

  // Tail operations; `locked` distinguishes the batch path (PMA mutex held
  // by caller) from the serial path.
  bool InsertIntoVertex(VertexBlock& vb, VertexId src, VertexId dst);
  bool DeleteFromVertex(VertexBlock& vb, VertexId src, VertexId dst);
  void MigrateToBTree(VertexBlock& vb, VertexId src);

  // Recomputes the per-vertex slot offsets into the PMA.
  void RebuildOffsets() const;

  ThreadPool& pool() const;

  TerraceOptions options_;
  std::vector<VertexBlock> blocks_;
  Pma pma_;
  mutable std::mutex pma_mu_;  // serializes writers on the shared array
  EdgeCount num_edges_ = 0;
  ThreadPool* pool_ = nullptr;
  std::atomic<uint64_t> oob_rejected_{0};

  // Offset array: offsets_[v] is the first PMA slot holding vertex v's keys
  // (size num_vertices + 1). Lazily rebuilt when dirty.
  mutable std::vector<size_t> offsets_;
  mutable std::atomic<bool> offsets_dirty_{true};
  mutable std::mutex offsets_mu_;
};

}  // namespace lsg

#endif  // SRC_BASELINES_TERRACE_GRAPH_H_
