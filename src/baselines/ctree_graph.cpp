#include "src/baselines/ctree_graph.h"

#include <atomic>

#include "src/util/sort.h"

namespace lsg {

CTreeGraph::CTreeGraph(VertexId num_vertices, uint32_t expected_chunk_size,
                       ThreadPool* pool)
    : vtree_(num_vertices, VNode{0, CTree(expected_chunk_size)}),
      pool_(pool) {
  // In-order traversal of the implicit tree assigns sorted vertex ids, so
  // FindSlot's BST walk terminates at the right node.
  VertexId next = 0;
  // Iterative in-order over the Eytzinger layout.
  std::vector<size_t> stack;
  size_t i = 0;
  size_t n = vtree_.size();
  while (i < n || !stack.empty()) {
    while (i < n) {
      stack.push_back(i);
      i = 2 * i + 1;
    }
    i = stack.back();
    stack.pop_back();
    vtree_[i].id = next++;
    i = 2 * i + 2;
  }
}

ThreadPool& CTreeGraph::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::Global();
}

void CTreeGraph::BuildFromEdges(std::vector<Edge> edges) {
  PreparedBatch pb = PrepareBatch(std::move(edges), pool());
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t begin = pb.group_begin(g);
    size_t end = pb.group_end(g);
    std::vector<VertexId> ids;
    ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      ids.push_back(pb.edges[i].dst);
    }
    FindTree(pb.edges[begin].src).BulkLoad(ids);
  });
  num_edges_ = pb.edges.size();
}

size_t CTreeGraph::InsertBatch(std::span<const Edge> batch) {
  return InsertPrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t CTreeGraph::InsertPrepared(const PreparedBatch& pb) {
  std::atomic<size_t> added{0};
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t local = 0;
    CTree& tree = FindTree(pb.group_source(g));
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      local += tree.Insert(pb.edges[i].dst);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ += added.load(std::memory_order_relaxed);
  return added.load(std::memory_order_relaxed);
}

size_t CTreeGraph::DeleteBatch(std::span<const Edge> batch) {
  return DeletePrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t CTreeGraph::DeletePrepared(const PreparedBatch& pb) {
  std::atomic<size_t> removed{0};
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t local = 0;
    CTree& tree = FindTree(pb.group_source(g));
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      local += tree.Delete(pb.edges[i].dst);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ -= removed.load(std::memory_order_relaxed);
  return removed.load(std::memory_order_relaxed);
}

bool CTreeGraph::InsertEdge(VertexId src, VertexId dst) {
  if (FindTree(src).Insert(dst)) {
    ++num_edges_;
    return true;
  }
  return false;
}

bool CTreeGraph::DeleteEdge(VertexId src, VertexId dst) {
  if (FindTree(src).Delete(dst)) {
    --num_edges_;
    return true;
  }
  return false;
}

size_t CTreeGraph::memory_footprint() const {
  size_t total = vtree_.capacity() * sizeof(VNode);
  for (const VNode& n : vtree_) {
    total += n.tree.memory_footprint() - sizeof(CTree);
  }
  return total;
}

bool CTreeGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    // The BST walk must land on the node claiming this id.
    if (vtree_[FindSlot(v)].id != v) {
      return false;
    }
  }
  for (const VNode& n : vtree_) {
    if (!n.tree.CheckInvariants()) {
      return false;
    }
    total += n.tree.size();
  }
  return total == num_edges_;
}

}  // namespace lsg
