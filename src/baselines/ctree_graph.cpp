#include "src/baselines/ctree_graph.h"

#include <atomic>

#include "src/util/sort.h"

namespace lsg {

CTreeGraph::CTreeGraph(VertexId num_vertices, uint32_t expected_chunk_size,
                       ThreadPool* pool)
    : chunk_size_(expected_chunk_size),
      vtree_(num_vertices, VNode{0, CTree(expected_chunk_size)}),
      pool_(pool) {
  AssignIdsInOrder();
}

void CTreeGraph::AssignIdsInOrder() {
  // In-order traversal of the implicit tree assigns sorted vertex ids, so
  // FindSlot's BST walk terminates at the right node.
  VertexId next = 0;
  // Iterative in-order over the Eytzinger layout.
  std::vector<size_t> stack;
  size_t i = 0;
  size_t n = vtree_.size();
  while (i < n || !stack.empty()) {
    while (i < n) {
      stack.push_back(i);
      i = 2 * i + 1;
    }
    i = stack.back();
    stack.pop_back();
    vtree_[i].id = next++;
    i = 2 * i + 2;
  }
}

VertexId CTreeGraph::AddVertices(VertexId count) {
  const VertexId old_n = num_vertices();
  if (count == 0) {
    return old_n;
  }
  // Growing the Eytzinger array reshuffles which slot holds which id, so
  // park the edge trees by id, relabel, and re-home them.
  std::vector<CTree> by_id(old_n, CTree(chunk_size_));
  for (VNode& node : vtree_) {
    by_id[node.id] = std::move(node.tree);
  }
  vtree_.assign(old_n + count, VNode{0, CTree(chunk_size_)});
  AssignIdsInOrder();
  for (VNode& node : vtree_) {
    if (node.id < old_n) {
      node.tree = std::move(by_id[node.id]);
    }
  }
  return old_n;
}

ThreadPool& CTreeGraph::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::Global();
}

void CTreeGraph::BuildFromEdges(std::vector<Edge> edges) {
  // Rebuild-in-place: clear every existing edge tree first, so vertices
  // absent from the new list end up empty instead of keeping stale
  // adjacency.
  pool().ParallelFor(0, vtree_.size(),
                     [this](size_t i) { vtree_[i].tree.BulkLoad({}); });
  num_edges_ = 0;
  oob_rejected_.fetch_add(RemoveOutOfRangeEdges(&edges, num_vertices()),
                          std::memory_order_relaxed);
  PreparedBatch pb = PrepareBatch(std::move(edges), pool());
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t begin = pb.group_begin(g);
    size_t end = pb.group_end(g);
    std::vector<VertexId> ids;
    ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      ids.push_back(pb.edges[i].dst);
    }
    FindTree(pb.edges[begin].src).BulkLoad(ids);
  });
  num_edges_ = pb.edges.size();
}

size_t CTreeGraph::InsertBatch(std::span<const Edge> batch) {
  return InsertPrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t CTreeGraph::InsertPrepared(const PreparedBatch& pb) {
  std::atomic<size_t> added{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    CTree& tree = FindTree(src);
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      if (pb.edges[i].dst >= n) {
        ++oob;
        continue;
      }
      local += tree.Insert(pb.edges[i].dst);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ += added.load(std::memory_order_relaxed);
  return added.load(std::memory_order_relaxed);
}

size_t CTreeGraph::DeleteBatch(std::span<const Edge> batch) {
  return DeletePrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t CTreeGraph::DeletePrepared(const PreparedBatch& pb) {
  std::atomic<size_t> removed{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    CTree& tree = FindTree(src);
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      if (pb.edges[i].dst >= n) {
        ++oob;
        continue;
      }
      local += tree.Delete(pb.edges[i].dst);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ -= removed.load(std::memory_order_relaxed);
  return removed.load(std::memory_order_relaxed);
}

bool CTreeGraph::InsertEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (FindTree(src).Insert(dst)) {
    ++num_edges_;
    return true;
  }
  return false;
}

bool CTreeGraph::DeleteEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (FindTree(src).Delete(dst)) {
    --num_edges_;
    return true;
  }
  return false;
}

size_t CTreeGraph::memory_footprint() const {
  size_t total = vtree_.capacity() * sizeof(VNode);
  for (const VNode& n : vtree_) {
    total += n.tree.memory_footprint() - sizeof(CTree);
  }
  return total;
}

bool CTreeGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    // The BST walk must land on the node claiming this id.
    if (vtree_[FindSlot(v)].id != v) {
      return false;
    }
  }
  for (const VNode& n : vtree_) {
    if (!n.tree.CheckInvariants()) {
      return false;
    }
    total += n.tree.size();
  }
  return total == num_edges_;
}

}  // namespace lsg
