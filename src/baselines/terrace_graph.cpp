#include "src/baselines/terrace_graph.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "src/util/sort.h"

namespace lsg {

TerraceGraph::TerraceGraph(VertexId num_vertices, TerraceOptions options,
                           ThreadPool* pool)
    : options_(options),
      blocks_(num_vertices),
      pma_(options.pma),
      pool_(pool) {}

TerraceGraph::~TerraceGraph() {
  for (VertexBlock& vb : blocks_) {
    delete vb.btree;
  }
}

ThreadPool& TerraceGraph::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::Global();
}

void TerraceGraph::RebuildOffsets() const {
  std::lock_guard<std::mutex> lock(offsets_mu_);
  if (!offsets_dirty_.load(std::memory_order_acquire)) {
    return;  // another thread rebuilt while we waited
  }
  VertexId n = num_vertices();
  offsets_.assign(n + 1, 0);
  offsets_[n] = pma_.capacity();
  // One pass marks each vertex's first slot; a reverse pass fills vertices
  // with no PMA keys with their successor's offset.
  std::vector<size_t> first(n, ~size_t{0});
  for (size_t i = 0; i < pma_.capacity(); ++i) {
    uint64_t key = pma_.SlotAt(i);
    if (key == Pma::kEmpty) {
      continue;
    }
    VertexId src = static_cast<VertexId>(key >> 32);
    if (first[src] == ~size_t{0}) {
      first[src] = i;
    }
  }
  size_t next = pma_.capacity();
  for (VertexId v = n; v-- > 0;) {
    if (first[v] != ~size_t{0}) {
      next = first[v];
    }
    offsets_[v] = next;
  }
  offsets_dirty_.store(false, std::memory_order_release);
}

void TerraceGraph::BuildFromEdges(std::vector<Edge> edges) {
  // Rebuild-in-place: release every B-tree, reset the shared PMA, and clear
  // inline runs so vertices absent from the new edge list end up empty.
  for (VertexBlock& vb : blocks_) {
    delete vb.btree;
    vb = VertexBlock{};
  }
  pma_ = Pma(options_.pma);
  num_edges_ = 0;
  oob_rejected_.fetch_add(RemoveOutOfRangeEdges(&edges, num_vertices()),
                          std::memory_order_relaxed);
  PreparedBatch pb = PrepareBatch(std::move(edges), pool());
  const std::vector<Edge>& sorted = pb.edges;
  // Inline and B-tree parts first (parallel per vertex), PMA tails second
  // (serial; the PMA is one shared array).
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t begin = pb.group_begin(g);
    size_t end = pb.group_end(g);
    VertexBlock& vb = blocks_[sorted[begin].src];
    size_t deg = end - begin;
    size_t inl = std::min<size_t>(deg, kInlineCap);
    for (size_t i = 0; i < inl; ++i) {
      vb.inline_edges[i] = sorted[begin + i].dst;
    }
    vb.inline_count = static_cast<uint32_t>(inl);
    vb.degree = static_cast<uint32_t>(deg);
    if (deg - inl > options_.high_degree_threshold) {
      std::vector<VertexId> tail;
      tail.reserve(deg - inl);
      for (size_t i = begin + inl; i < end; ++i) {
        tail.push_back(sorted[i].dst);
      }
      vb.btree = new BTreeSet();
      vb.btree->BulkLoad(tail);
    }
  });
  for (size_t g = 0; g < pb.groups(); ++g) {
    VertexId v = pb.group_source(g);
    const VertexBlock& vb = blocks_[v];
    if (vb.btree != nullptr || vb.degree <= vb.inline_count) {
      continue;
    }
    for (size_t i = pb.group_begin(g) + vb.inline_count; i < pb.group_end(g);
         ++i) {
      pma_.Insert(PmaKey(v, sorted[i].dst));
    }
  }
  num_edges_ = sorted.size();
  offsets_dirty_.store(true, std::memory_order_release);
}

void TerraceGraph::MigrateToBTree(VertexBlock& vb, VertexId src) {
  std::vector<VertexId> tail;
  tail.reserve(vb.degree - vb.inline_count);
  pma_.MapRange(PmaKey(src, 0), PmaKey(src + 1, 0), [&tail](uint64_t key) {
    tail.push_back(static_cast<VertexId>(key));
  });
  for (VertexId dst : tail) {
    pma_.Delete(PmaKey(src, dst));
  }
  vb.btree = new BTreeSet();
  vb.btree->BulkLoad(tail);
}

bool TerraceGraph::InsertIntoVertex(VertexBlock& vb, VertexId src,
                                    VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    return false;
  }
  if (vb.inline_count < kInlineCap) {
    std::copy_backward(it, end, end + 1);
    *it = dst;
    ++vb.inline_count;
    ++vb.degree;
    return true;
  }
  if (dst > end[-1]) {
    // dst sorts after the inline run: tail insert, which may find it there.
    bool inserted = vb.btree != nullptr ? vb.btree->Insert(dst)
                                        : pma_.Insert(PmaKey(src, dst));
    if (!inserted) {
      return false;
    }
  } else {
    // dst displaces the largest inline id into the tail; the spilled id is
    // below every tail id, so it cannot be a duplicate there.
    VertexId spilled = end[-1];
    std::copy_backward(it, end - 1, end);
    *it = dst;
    bool inserted = vb.btree != nullptr ? vb.btree->Insert(spilled)
                                        : pma_.Insert(PmaKey(src, spilled));
    assert(inserted);
    (void)inserted;
  }
  if (vb.btree == nullptr &&
      vb.degree + 1 - vb.inline_count > options_.high_degree_threshold) {
    MigrateToBTree(vb, src);
  }
  ++vb.degree;
  return true;
}

bool TerraceGraph::DeleteFromVertex(VertexBlock& vb, VertexId src,
                                    VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    std::copy(it + 1, end, it);
    --vb.inline_count;
    --vb.degree;
    if (vb.degree > vb.inline_count) {
      // Backfill the inline run from the tail's minimum.
      VertexId min_tail;
      if (vb.btree != nullptr) {
        min_tail = vb.btree->First();
        vb.btree->Delete(min_tail);
      } else {
        min_tail = kInvalidVertex;
        pma_.MapRange(PmaKey(src, 0), PmaKey(src + 1, 0),
                      [&min_tail](uint64_t key) {
                        if (min_tail == kInvalidVertex) {
                          min_tail = static_cast<VertexId>(key);
                        }
                      });
        pma_.Delete(PmaKey(src, min_tail));
      }
      vb.inline_edges[vb.inline_count++] = min_tail;
    }
    return true;
  }
  bool removed = vb.btree != nullptr ? vb.btree->Delete(dst)
                                     : pma_.Delete(PmaKey(src, dst));
  if (!removed) {
    return false;
  }
  --vb.degree;
  return true;
}

bool TerraceGraph::InsertEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> lock(pma_mu_);
  if (InsertIntoVertex(blocks_[src], src, dst)) {
    ++num_edges_;
    offsets_dirty_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

bool TerraceGraph::DeleteEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> lock(pma_mu_);
  if (DeleteFromVertex(blocks_[src], src, dst)) {
    --num_edges_;
    offsets_dirty_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

bool TerraceGraph::HasEdge(VertexId src, VertexId dst) const {
  if (src >= num_vertices() || dst >= num_vertices()) {
    return false;
  }
  const VertexBlock& vb = blocks_[src];
  const VertexId* end = vb.inline_edges + vb.inline_count;
  if (std::binary_search(vb.inline_edges, end, dst)) {
    return true;
  }
  if (vb.btree != nullptr) {
    return vb.btree->Contains(dst);
  }
  return vb.degree > vb.inline_count && pma_.Contains(PmaKey(src, dst));
}

size_t TerraceGraph::InsertBatch(std::span<const Edge> batch) {
  return InsertPrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t TerraceGraph::InsertPrepared(const PreparedBatch& pb) {
  std::atomic<size_t> added{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    VertexBlock& vb = blocks_[src];
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      if (pb.edges[i].dst >= n) {
        ++oob;
        continue;
      }
      // Terrace's shared array forces all PMA-resident vertices through one
      // lock; B-tree vertices proceed independently.
      if (vb.btree != nullptr && vb.inline_count == kInlineCap &&
          pb.edges[i].dst > vb.inline_edges[kInlineCap - 1]) {
        if (vb.btree->Insert(pb.edges[i].dst)) {
          ++vb.degree;
          ++local;
        }
        continue;
      }
      std::lock_guard<std::mutex> lock(pma_mu_);
      local += InsertIntoVertex(vb, src, pb.edges[i].dst);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ += added.load(std::memory_order_relaxed);
  offsets_dirty_.store(true, std::memory_order_release);
  return added.load(std::memory_order_relaxed);
}

size_t TerraceGraph::DeleteBatch(std::span<const Edge> batch) {
  return DeletePrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t TerraceGraph::DeletePrepared(const PreparedBatch& pb) {
  std::atomic<size_t> removed{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    VertexBlock& vb = blocks_[src];
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      if (pb.edges[i].dst >= n) {
        ++oob;
        continue;
      }
      std::lock_guard<std::mutex> lock(pma_mu_);
      local += DeleteFromVertex(vb, src, pb.edges[i].dst);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ -= removed.load(std::memory_order_relaxed);
  offsets_dirty_.store(true, std::memory_order_release);
  return removed.load(std::memory_order_relaxed);
}

size_t TerraceGraph::memory_footprint() const {
  size_t total = blocks_.capacity() * sizeof(VertexBlock) +
                 pma_.memory_footprint();
  for (const VertexBlock& vb : blocks_) {
    if (vb.btree != nullptr) {
      total += vb.btree->memory_footprint();
    }
  }
  return total;
}

bool TerraceGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const VertexBlock& vb = blocks_[v];
    const VertexId* end = vb.inline_edges + vb.inline_count;
    if (!std::is_sorted(vb.inline_edges, end) ||
        std::adjacent_find(vb.inline_edges, end) != end) {
      return false;
    }
    size_t tail = vb.btree != nullptr
                      ? vb.btree->size()
                      : pma_.CountRange(PmaKey(v, 0), PmaKey(v + 1, 0));
    if (vb.degree != vb.inline_count + tail) {
      return false;
    }
    if (tail != 0 && vb.inline_count != kInlineCap) {
      return false;
    }
    if (vb.btree != nullptr && !vb.btree->CheckInvariants()) {
      return false;
    }
    total += vb.degree;
  }
  return total == num_edges_;
}

}  // namespace lsg
