// Sortledton baseline (Fuchs et al., VLDB '22; paper §6.1 and §7).
//
// Sortledton keeps each vertex's sorted neighborhood in a plain array while
// it is small and in an unrolled (block-based) skip list once it grows —
// "the array and the block-based skip list" of §7. The paper measured it
// well behind PaC-tree and dropped it from the main evaluation;
// bench_sortledton reproduces that comparison.
#ifndef SRC_BASELINES_SORTLEDTON_GRAPH_H_
#define SRC_BASELINES_SORTLEDTON_GRAPH_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/skiplist/block_skip_list.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

class SortledtonGraph {
 public:
  // Degree at which a neighborhood moves from a sorted vector to the skip
  // list (Sortledton's "small set" optimization).
  static constexpr size_t kSmallSetMax = 256;

  explicit SortledtonGraph(VertexId num_vertices, ThreadPool* pool = nullptr)
      : adj_(num_vertices), pool_(pool) {}

  SortledtonGraph(const SortledtonGraph&) = delete;
  SortledtonGraph& operator=(const SortledtonGraph&) = delete;

  // Invoked on a non-empty engine this rebuilds in place: every existing
  // neighborhood (vector or skip list) is released first.
  void BuildFromEdges(std::vector<Edge> edges);

  // Grows the vertex set by `count` ids; returns the first new id. Not
  // concurrent with updates or analytics.
  VertexId AddVertices(VertexId count) {
    VertexId first = num_vertices();
    adj_.resize(adj_.size() + count);
    return first;
  }

  size_t InsertBatch(std::span<const Edge> batch);
  size_t DeleteBatch(std::span<const Edge> batch);

  // Apply phase only, for callers that already ran PrepareBatch.
  size_t InsertPrepared(const PreparedBatch& pb);
  size_t DeletePrepared(const PreparedBatch& pb);

  bool InsertEdge(VertexId src, VertexId dst) {
    if (src >= num_vertices() || dst >= num_vertices()) {
      oob_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (InsertIntoVertex(adj_[src], dst)) {
      ++num_edges_;
      return true;
    }
    return false;
  }
  bool DeleteEdge(VertexId src, VertexId dst) {
    if (src >= num_vertices() || dst >= num_vertices()) {
      oob_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (DeleteFromVertex(adj_[src], dst)) {
      --num_edges_;
      return true;
    }
    return false;
  }
  bool HasEdge(VertexId src, VertexId dst) const;

  // Out-of-range endpoints rejected (counted and skipped) by update paths;
  // see DESIGN.md "Endpoint validation".
  uint64_t oob_rejected() const {
    return oob_rejected_.load(std::memory_order_relaxed);
  }

  VertexId num_vertices() const { return static_cast<VertexId>(adj_.size()); }
  EdgeCount num_edges() const { return num_edges_; }
  size_t degree(VertexId v) const {
    const Adjacency& a = adj_[v];
    return a.big != nullptr ? a.big->size() : a.small.size();
  }

  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    const Adjacency& a = adj_[v];
    if (a.big != nullptr) {
      a.big->Map(f);
    } else {
      for (VertexId u : a.small) {
        f(u);
      }
    }
  }

  // map_neighbors that stops once f returns false; false iff cut short.
  template <typename F>
  bool map_neighbors_while(VertexId v, F&& f) const {
    const Adjacency& a = adj_[v];
    if (a.big != nullptr) {
      return a.big->MapWhile(f);
    }
    for (VertexId u : a.small) {
      if (!f(u)) {
        return false;
      }
    }
    return true;
  }

  size_t memory_footprint() const;
  bool CheckInvariants() const;

 private:
  struct Adjacency {
    std::vector<VertexId> small;          // used while degree <= kSmallSetMax
    std::unique_ptr<BlockSkipList> big;   // used beyond
  };

  bool InsertIntoVertex(Adjacency& a, VertexId dst);
  bool DeleteFromVertex(Adjacency& a, VertexId dst);

  ThreadPool& pool() const {
    return pool_ != nullptr ? *pool_ : ThreadPool::Global();
  }

  std::vector<Adjacency> adj_;
  EdgeCount num_edges_ = 0;
  ThreadPool* pool_ = nullptr;
  std::atomic<uint64_t> oob_rejected_{0};
};

}  // namespace lsg

#endif  // SRC_BASELINES_SORTLEDTON_GRAPH_H_
