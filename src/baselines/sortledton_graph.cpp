#include "src/baselines/sortledton_graph.h"

#include <algorithm>
#include <atomic>

#include "src/util/sort.h"

namespace lsg {

namespace {

std::vector<size_t> GroupBySource(std::vector<Edge>& edges) {
  RadixSortEdges(edges);
  DedupSortedEdges(edges);
  std::vector<size_t> starts;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i == 0 || edges[i].src != edges[i - 1].src) {
      starts.push_back(i);
    }
  }
  starts.push_back(edges.size());
  return starts;
}

}  // namespace

bool SortledtonGraph::InsertIntoVertex(Adjacency& a, VertexId dst) {
  if (a.big != nullptr) {
    return a.big->Insert(dst);
  }
  auto it = std::lower_bound(a.small.begin(), a.small.end(), dst);
  if (it != a.small.end() && *it == dst) {
    return false;
  }
  a.small.insert(it, dst);
  if (a.small.size() > kSmallSetMax) {
    a.big = std::make_unique<BlockSkipList>();
    a.big->BulkLoad(a.small);
    a.small.clear();
    a.small.shrink_to_fit();
  }
  return true;
}

bool SortledtonGraph::DeleteFromVertex(Adjacency& a, VertexId dst) {
  if (a.big != nullptr) {
    return a.big->Delete(dst);  // no downgrade to the small form
  }
  auto it = std::lower_bound(a.small.begin(), a.small.end(), dst);
  if (it == a.small.end() || *it != dst) {
    return false;
  }
  a.small.erase(it);
  return true;
}

bool SortledtonGraph::HasEdge(VertexId src, VertexId dst) const {
  const Adjacency& a = adj_[src];
  if (a.big != nullptr) {
    return a.big->Contains(dst);
  }
  return std::binary_search(a.small.begin(), a.small.end(), dst);
}

void SortledtonGraph::BuildFromEdges(std::vector<Edge> edges) {
  std::vector<size_t> starts = GroupBySource(edges);
  size_t groups = starts.empty() ? 0 : starts.size() - 1;
  pool().ParallelFor(0, groups, [&](size_t g) {
    size_t begin = starts[g];
    size_t end = starts[g + 1];
    Adjacency& a = adj_[edges[begin].src];
    size_t deg = end - begin;
    std::vector<VertexId> ids;
    ids.reserve(deg);
    for (size_t i = begin; i < end; ++i) {
      ids.push_back(edges[i].dst);
    }
    if (deg > kSmallSetMax) {
      a.big = std::make_unique<BlockSkipList>();
      a.big->BulkLoad(ids);
    } else {
      a.small = std::move(ids);
    }
  });
  num_edges_ = edges.size();
}

size_t SortledtonGraph::InsertBatch(std::span<const Edge> batch) {
  std::vector<Edge> edges(batch.begin(), batch.end());
  std::vector<size_t> starts = GroupBySource(edges);
  size_t groups = starts.empty() ? 0 : starts.size() - 1;
  std::atomic<size_t> added{0};
  pool().ParallelFor(0, groups, [&](size_t g) {
    size_t local = 0;
    Adjacency& a = adj_[edges[starts[g]].src];
    for (size_t i = starts[g]; i < starts[g + 1]; ++i) {
      local += InsertIntoVertex(a, edges[i].dst);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ += added.load(std::memory_order_relaxed);
  return added.load(std::memory_order_relaxed);
}

size_t SortledtonGraph::DeleteBatch(std::span<const Edge> batch) {
  std::vector<Edge> edges(batch.begin(), batch.end());
  std::vector<size_t> starts = GroupBySource(edges);
  size_t groups = starts.empty() ? 0 : starts.size() - 1;
  std::atomic<size_t> removed{0};
  pool().ParallelFor(0, groups, [&](size_t g) {
    size_t local = 0;
    Adjacency& a = adj_[edges[starts[g]].src];
    for (size_t i = starts[g]; i < starts[g + 1]; ++i) {
      local += DeleteFromVertex(a, edges[i].dst);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ -= removed.load(std::memory_order_relaxed);
  return removed.load(std::memory_order_relaxed);
}

size_t SortledtonGraph::memory_footprint() const {
  size_t total = adj_.capacity() * sizeof(Adjacency);
  for (const Adjacency& a : adj_) {
    total += a.small.capacity() * sizeof(VertexId);
    if (a.big != nullptr) {
      total += a.big->memory_footprint();
    }
  }
  return total;
}

bool SortledtonGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (const Adjacency& a : adj_) {
    if (a.big != nullptr) {
      if (!a.big->CheckInvariants()) {
        return false;
      }
      total += a.big->size();
    } else {
      if (!std::is_sorted(a.small.begin(), a.small.end()) ||
          std::adjacent_find(a.small.begin(), a.small.end()) !=
              a.small.end()) {
        return false;
      }
      total += a.small.size();
    }
  }
  return total == num_edges_;
}

}  // namespace lsg
