#include "src/baselines/sortledton_graph.h"

#include <algorithm>
#include <atomic>

#include "src/util/sort.h"

namespace lsg {

bool SortledtonGraph::InsertIntoVertex(Adjacency& a, VertexId dst) {
  if (a.big != nullptr) {
    return a.big->Insert(dst);
  }
  auto it = std::lower_bound(a.small.begin(), a.small.end(), dst);
  if (it != a.small.end() && *it == dst) {
    return false;
  }
  a.small.insert(it, dst);
  if (a.small.size() > kSmallSetMax) {
    a.big = std::make_unique<BlockSkipList>();
    a.big->BulkLoad(a.small);
    a.small.clear();
    a.small.shrink_to_fit();
  }
  return true;
}

bool SortledtonGraph::DeleteFromVertex(Adjacency& a, VertexId dst) {
  if (a.big != nullptr) {
    return a.big->Delete(dst);  // no downgrade to the small form
  }
  auto it = std::lower_bound(a.small.begin(), a.small.end(), dst);
  if (it == a.small.end() || *it != dst) {
    return false;
  }
  a.small.erase(it);
  return true;
}

bool SortledtonGraph::HasEdge(VertexId src, VertexId dst) const {
  if (src >= num_vertices() || dst >= num_vertices()) {
    return false;
  }
  const Adjacency& a = adj_[src];
  if (a.big != nullptr) {
    return a.big->Contains(dst);
  }
  return std::binary_search(a.small.begin(), a.small.end(), dst);
}

void SortledtonGraph::BuildFromEdges(std::vector<Edge> edges) {
  // Rebuild-in-place: release every existing neighborhood first, so
  // vertices absent from the new list end up empty.
  pool().ParallelFor(0, adj_.size(), [this](size_t v) {
    adj_[v].small.clear();
    adj_[v].small.shrink_to_fit();
    adj_[v].big.reset();
  });
  num_edges_ = 0;
  oob_rejected_.fetch_add(RemoveOutOfRangeEdges(&edges, num_vertices()),
                          std::memory_order_relaxed);
  PreparedBatch pb = PrepareBatch(std::move(edges), pool());
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t begin = pb.group_begin(g);
    size_t end = pb.group_end(g);
    Adjacency& a = adj_[pb.edges[begin].src];
    size_t deg = end - begin;
    std::vector<VertexId> ids;
    ids.reserve(deg);
    for (size_t i = begin; i < end; ++i) {
      ids.push_back(pb.edges[i].dst);
    }
    if (deg > kSmallSetMax) {
      a.big = std::make_unique<BlockSkipList>();
      a.big->BulkLoad(ids);
    } else {
      a.small = std::move(ids);
    }
  });
  num_edges_ = pb.edges.size();
}

size_t SortledtonGraph::InsertBatch(std::span<const Edge> batch) {
  return InsertPrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t SortledtonGraph::InsertPrepared(const PreparedBatch& pb) {
  std::atomic<size_t> added{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    Adjacency& a = adj_[src];
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      if (pb.edges[i].dst >= n) {
        ++oob;
        continue;
      }
      local += InsertIntoVertex(a, pb.edges[i].dst);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ += added.load(std::memory_order_relaxed);
  return added.load(std::memory_order_relaxed);
}

size_t SortledtonGraph::DeleteBatch(std::span<const Edge> batch) {
  return DeletePrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t SortledtonGraph::DeletePrepared(const PreparedBatch& pb) {
  std::atomic<size_t> removed{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    Adjacency& a = adj_[src];
    for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
      if (pb.edges[i].dst >= n) {
        ++oob;
        continue;
      }
      local += DeleteFromVertex(a, pb.edges[i].dst);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ -= removed.load(std::memory_order_relaxed);
  return removed.load(std::memory_order_relaxed);
}

size_t SortledtonGraph::memory_footprint() const {
  size_t total = adj_.capacity() * sizeof(Adjacency);
  for (const Adjacency& a : adj_) {
    total += a.small.capacity() * sizeof(VertexId);
    if (a.big != nullptr) {
      total += a.big->memory_footprint();
    }
  }
  return total;
}

bool SortledtonGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (const Adjacency& a : adj_) {
    if (a.big != nullptr) {
      if (!a.big->CheckInvariants()) {
        return false;
      }
      total += a.big->size();
    } else {
      if (!std::is_sorted(a.small.begin(), a.small.end()) ||
          std::adjacent_find(a.small.begin(), a.small.end()) !=
              a.small.end()) {
        return false;
      }
      total += a.small.size();
    }
  }
  return total == num_edges_;
}

}  // namespace lsg
