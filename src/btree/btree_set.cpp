#include "src/btree/btree_set.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/util/cache.h"

namespace lsg {

BTreeSet::BTreeSet() = default;

BTreeSet::~BTreeSet() { FreeNode(root_); }

BTreeSet::BTreeSet(BTreeSet&& o) noexcept : root_(o.root_), size_(o.size_) {
  o.root_ = nullptr;
  o.size_ = 0;
}

BTreeSet& BTreeSet::operator=(BTreeSet&& o) noexcept {
  if (this != &o) {
    FreeNode(root_);
    root_ = o.root_;
    size_ = o.size_;
    o.root_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

BTreeSet::Node* BTreeSet::NewLeaf() {
  Node* n = static_cast<Node*>(AlignedAlloc(sizeof(Node)));
  n->is_leaf = true;
  n->leaf.count = 0;
  return n;
}

BTreeSet::Node* BTreeSet::NewInternal() {
  Node* n = static_cast<Node*>(AlignedAlloc(sizeof(Node)));
  n->is_leaf = false;
  n->internal.count = 0;
  return n;
}

void BTreeSet::FreeNode(Node* n) {
  if (n == nullptr) {
    return;
  }
  if (!n->is_leaf) {
    for (size_t i = 0; i < n->internal.count; ++i) {
      FreeNode(n->internal.children[i]);
    }
  }
  AlignedFree(n);
}

VertexId BTreeSet::First() const {
  const Node* n = root_;
  while (!n->is_leaf) {
    n = n->internal.children[0];
  }
  return n->leaf.keys[0];
}

bool BTreeSet::Contains(VertexId key) const {
  const Node* n = root_;
  while (n != nullptr && !n->is_leaf) {
    const Internal& in = n->internal;
    size_t i = std::upper_bound(in.seps, in.seps + in.count - 1, key) - in.seps;
    n = in.children[i];
  }
  if (n == nullptr) {
    return false;
  }
  const Leaf& leaf = n->leaf;
  const VertexId* end = leaf.keys + leaf.count;
  const VertexId* it = std::lower_bound(leaf.keys, end, key);
  return it != end && *it == key;
}

BTreeSet::InsertResult BTreeSet::InsertRec(Node* n, VertexId key) {
  if (n->is_leaf) {
    Leaf& leaf = n->leaf;
    VertexId* end = leaf.keys + leaf.count;
    VertexId* it = std::lower_bound(leaf.keys, end, key);
    if (it != end && *it == key) {
      return {};
    }
    if (leaf.count < kLeafCap) {
      std::copy_backward(it, end, end + 1);
      *it = key;
      ++leaf.count;
      return {.inserted = true};
    }
    // Split the full leaf, then insert into the proper half.
    Node* right = NewLeaf();
    size_t half = kLeafCap / 2;
    std::copy(leaf.keys + half, leaf.keys + kLeafCap, right->leaf.keys);
    right->leaf.count = static_cast<uint16_t>(kLeafCap - half);
    leaf.count = static_cast<uint16_t>(half);
    VertexId sep = right->leaf.keys[0];
    InsertResult sub = key < sep ? InsertRec(n, key) : InsertRec(right, key);
    assert(sub.inserted && sub.split_right == nullptr);
    (void)sub;
    return {.inserted = true, .split_right = right, .split_key = sep};
  }

  Internal& in = n->internal;
  size_t i = std::upper_bound(in.seps, in.seps + in.count - 1, key) - in.seps;
  InsertResult sub = InsertRec(in.children[i], key);
  if (sub.split_right == nullptr) {
    return sub;
  }
  if (in.count < kInternalCap) {
    std::copy_backward(in.seps + i, in.seps + in.count - 1, in.seps + in.count);
    std::copy_backward(in.children + i + 1, in.children + in.count,
                       in.children + in.count + 1);
    in.seps[i] = sub.split_key;
    in.children[i + 1] = sub.split_right;
    ++in.count;
    return {.inserted = sub.inserted};
  }
  // Split this internal node: move the upper half of children right and push
  // the middle separator up.
  Node* right = NewInternal();
  size_t half = kInternalCap / 2;
  VertexId up_key = in.seps[half - 1];
  right->internal.count = static_cast<uint16_t>(kInternalCap - half);
  std::copy(in.children + half, in.children + kInternalCap,
            right->internal.children);
  std::copy(in.seps + half, in.seps + kInternalCap - 1, right->internal.seps);
  in.count = static_cast<uint16_t>(half);
  // Now place the pending (split_key, split_right) into the proper half.
  Internal& target =
      sub.split_key < up_key ? in : right->internal;
  Internal& tgt = target;
  size_t j = std::upper_bound(tgt.seps, tgt.seps + tgt.count - 1,
                              sub.split_key) -
              tgt.seps;
  std::copy_backward(tgt.seps + j, tgt.seps + tgt.count - 1,
                     tgt.seps + tgt.count);
  std::copy_backward(tgt.children + j + 1, tgt.children + tgt.count,
                     tgt.children + tgt.count + 1);
  tgt.seps[j] = sub.split_key;
  tgt.children[j + 1] = sub.split_right;
  ++tgt.count;
  return {.inserted = sub.inserted, .split_right = right, .split_key = up_key};
}

bool BTreeSet::Insert(VertexId key) {
  if (root_ == nullptr) {
    root_ = NewLeaf();
  }
  InsertResult res = InsertRec(root_, key);
  if (res.split_right != nullptr) {
    Node* new_root = NewInternal();
    new_root->internal.count = 2;
    new_root->internal.seps[0] = res.split_key;
    new_root->internal.children[0] = root_;
    new_root->internal.children[1] = res.split_right;
    root_ = new_root;
  }
  if (res.inserted) {
    ++size_;
  }
  return res.inserted;
}

bool BTreeSet::DeleteRec(Node* n, VertexId key) {
  if (n->is_leaf) {
    Leaf& leaf = n->leaf;
    VertexId* end = leaf.keys + leaf.count;
    VertexId* it = std::lower_bound(leaf.keys, end, key);
    if (it == end || *it != key) {
      return false;
    }
    std::copy(it + 1, end, it);
    --leaf.count;
    return true;
  }
  Internal& in = n->internal;
  size_t i = std::upper_bound(in.seps, in.seps + in.count - 1, key) - in.seps;
  Node* child = in.children[i];
  if (!DeleteRec(child, key)) {
    return false;
  }
  // Drop children whose subtree became completely empty; internal nodes keep
  // at least one child so Map/Contains stay well-formed. A single-child
  // internal node can hide an empty leaf below it, so the test must look
  // through chains, not just at the immediate child's count (otherwise the
  // empty leaf stays reachable and First() would read a stale key).
  bool child_empty = SubtreeEmpty(child);
  if (child_empty && in.count > 1) {
    FreeNode(child);
    std::copy(in.children + i + 1, in.children + in.count, in.children + i);
    if (i < static_cast<size_t>(in.count - 1)) {
      std::copy(in.seps + i + 1, in.seps + in.count - 1, in.seps + i);
    } else if (i > 0) {
      // Removed the last child: its separator was seps[i-1].
      // Nothing to shift; just shrink.
    }
    --in.count;
  }
  return true;
}

// An empty subtree left behind by deletions is always a chain of single-child
// internal nodes ending in an empty leaf: multi-child nodes prune empty
// children eagerly, so a linear walk down the chain suffices.
bool BTreeSet::SubtreeEmpty(const Node* n) {
  while (!n->is_leaf) {
    if (n->internal.count != 1) {
      return n->internal.count == 0;
    }
    n = n->internal.children[0];
  }
  return n->leaf.count == 0;
}

bool BTreeSet::Delete(VertexId key) {
  if (root_ == nullptr) {
    return false;
  }
  if (!DeleteRec(root_, key)) {
    return false;
  }
  --size_;
  // Collapse trivial roots.
  while (root_ != nullptr && !root_->is_leaf && root_->internal.count == 1) {
    Node* child = root_->internal.children[0];
    root_->internal.count = 0;
    FreeNode(root_);
    root_ = child;
  }
  if (root_ != nullptr && root_->is_leaf && root_->leaf.count == 0) {
    FreeNode(root_);
    root_ = nullptr;
  }
  return true;
}

void BTreeSet::BulkLoad(std::span<const VertexId> sorted_keys) {
  FreeNode(root_);
  root_ = nullptr;
  size_ = 0;
  for (VertexId k : sorted_keys) {
    Insert(k);
  }
}

size_t BTreeSet::FootprintNode(const Node* n) {
  if (n == nullptr) {
    return 0;
  }
  size_t total = sizeof(Node);
  if (!n->is_leaf) {
    for (size_t i = 0; i < n->internal.count; ++i) {
      total += FootprintNode(n->internal.children[i]);
    }
  }
  return total;
}

size_t BTreeSet::memory_footprint() const { return FootprintNode(root_); }

bool BTreeSet::CheckNode(const Node* n, VertexId lo, VertexId hi, int depth,
                         int* leaf_depth, size_t* keys) {
  if (n == nullptr) {
    return true;
  }
  if (n->is_leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return false;
    }
    VertexId prev = lo;
    bool first = true;
    for (size_t i = 0; i < n->leaf.count; ++i) {
      VertexId k = n->leaf.keys[i];
      if (k < lo || k >= hi) {
        return false;
      }
      if (!first && k <= prev) {
        return false;
      }
      prev = k;
      first = false;
      ++*keys;
    }
    return true;
  }
  const Internal& in = n->internal;
  if (in.count == 0) {
    return false;
  }
  VertexId child_lo = lo;
  for (size_t i = 0; i < in.count; ++i) {
    VertexId child_hi = i + 1 < in.count ? in.seps[i] : hi;
    if (child_hi < child_lo) {
      return false;
    }
    if (!CheckNode(in.children[i], child_lo, child_hi, depth + 1, leaf_depth,
                   keys)) {
      return false;
    }
    child_lo = child_hi;
  }
  return true;
}

bool BTreeSet::CheckInvariants() const {
  int leaf_depth = -1;
  size_t keys = 0;
  if (!CheckNode(root_, 0, kInvalidVertex, 0, &leaf_depth, &keys)) {
    return false;
  }
  return keys == size_;
}

}  // namespace lsg
