// B+-tree ordered set of vertex ids.
//
// Terrace (paper §2.3) stores the adjacency tails of high-degree vertices in
// B-trees; this is that substrate. Node fan-out is sized in cache lines.
// Deletions remove keys from leaves and free leaves that become empty, but do
// not rebalance internal nodes — adjacency workloads are insert- and
// scan-dominated, and Terrace's published behaviour does not depend on
// delete-side rebalancing.
//
// Not thread-safe; one writer per tree (Terrace assigns a vertex to one
// thread, as does LSGraph).
#ifndef SRC_BTREE_BTREE_SET_H_
#define SRC_BTREE_BTREE_SET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

class BTreeSet {
 public:
  BTreeSet();
  ~BTreeSet();

  BTreeSet(const BTreeSet&) = delete;
  BTreeSet& operator=(const BTreeSet&) = delete;
  BTreeSet(BTreeSet&& o) noexcept;
  BTreeSet& operator=(BTreeSet&& o) noexcept;

  bool Insert(VertexId key);
  bool Delete(VertexId key);
  bool Contains(VertexId key) const;

  // Builds from a sorted, deduplicated key range; replaces current contents.
  void BulkLoad(std::span<const VertexId> sorted_keys);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Smallest key; requires !empty().
  VertexId First() const;

  // Applies f(key) in ascending order.
  template <typename F>
  void Map(F&& f) const {
    MapNode(root_, f);
  }

  // Applies f(key) ascending while f returns true; false iff cut short.
  template <typename F>
  bool MapWhile(F&& f) const {
    return MapNodeWhile(root_, f);
  }

  size_t memory_footprint() const;

  // Structural invariant check used by tests: sortedness, key count, depth
  // uniformity. Returns false on violation.
  bool CheckInvariants() const;

 private:
  // Fan-outs chosen so a leaf is 4 cache lines of ids and an internal node's
  // key array is one cache line.
  static constexpr size_t kLeafCap = 64;
  static constexpr size_t kInternalCap = 16;

  struct Node;

  struct Leaf {
    uint16_t count = 0;
    VertexId keys[kLeafCap];
  };

  struct Internal {
    uint16_t count = 0;  // number of children; count-1 separator keys
    VertexId seps[kInternalCap - 1];
    Node* children[kInternalCap];
  };

  struct Node {
    bool is_leaf;
    union {
      Leaf leaf;
      Internal internal;
    };
  };

  static Node* NewLeaf();
  static Node* NewInternal();
  static void FreeNode(Node* n);

  // Result of a recursive insert: whether a key was added, and, if the child
  // split, the new right sibling and its separator key.
  struct InsertResult {
    bool inserted = false;
    Node* split_right = nullptr;
    VertexId split_key = 0;
  };

  InsertResult InsertRec(Node* n, VertexId key);
  bool DeleteRec(Node* n, VertexId key);
  static bool SubtreeEmpty(const Node* n);

  template <typename F>
  static void MapNode(const Node* n, F& f) {
    if (n == nullptr) {
      return;
    }
    if (n->is_leaf) {
      for (size_t i = 0; i < n->leaf.count; ++i) {
        f(n->leaf.keys[i]);
      }
      return;
    }
    for (size_t i = 0; i < n->internal.count; ++i) {
      MapNode(n->internal.children[i], f);
    }
  }

  template <typename F>
  static bool MapNodeWhile(const Node* n, F& f) {
    if (n == nullptr) {
      return true;
    }
    if (n->is_leaf) {
      for (size_t i = 0; i < n->leaf.count; ++i) {
        if (!f(n->leaf.keys[i])) {
          return false;
        }
      }
      return true;
    }
    for (size_t i = 0; i < n->internal.count; ++i) {
      if (!MapNodeWhile(n->internal.children[i], f)) {
        return false;
      }
    }
    return true;
  }

  static size_t FootprintNode(const Node* n);
  static bool CheckNode(const Node* n, VertexId lo, VertexId hi, int depth,
                        int* leaf_depth, size_t* keys);

  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace lsg

#endif  // SRC_BTREE_BTREE_SET_H_
