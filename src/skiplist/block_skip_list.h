// Unrolled (block-based) skip list over vertex ids.
//
// This is Sortledton's adjacency substrate (Fuchs et al., VLDB '22), which
// the paper benchmarks against PaC-tree in §6.1 before excluding it from the
// main evaluation. Nodes hold sorted blocks of ids; towers of forward
// pointers give O(log n) search. Compared with LSGraph's RIA it pays pointer
// chasing on search and block splits on insert — the "high data searching
// and moving overhead" §7 ascribes to it.
//
// Not thread-safe; single writer per instance.
#ifndef SRC_SKIPLIST_BLOCK_SKIP_LIST_H_
#define SRC_SKIPLIST_BLOCK_SKIP_LIST_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/util/graph_types.h"

namespace lsg {

class BlockSkipList {
 public:
  BlockSkipList();
  ~BlockSkipList();

  BlockSkipList(const BlockSkipList&) = delete;
  BlockSkipList& operator=(const BlockSkipList&) = delete;
  BlockSkipList(BlockSkipList&& o) noexcept;
  BlockSkipList& operator=(BlockSkipList&& o) noexcept;

  bool Insert(VertexId key);
  bool Delete(VertexId key);
  bool Contains(VertexId key) const;

  // Replaces contents from sorted unique ids.
  void BulkLoad(std::span<const VertexId> sorted_ids);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Smallest id; requires !empty().
  VertexId First() const;

  // Applies f(id) in ascending order (walks the level-0 chain).
  template <typename F>
  void Map(F&& f) const {
    for (const Node* n = head_; n != nullptr; n = n->next[0]) {
      for (uint16_t i = 0; i < n->count; ++i) {
        f(n->keys[i]);
      }
    }
  }

  // Applies f(id) ascending while f returns true; false iff cut short.
  template <typename F>
  bool MapWhile(F&& f) const {
    for (const Node* n = head_; n != nullptr; n = n->next[0]) {
      for (uint16_t i = 0; i < n->count; ++i) {
        if (!f(n->keys[i])) {
          return false;
        }
      }
    }
    return true;
  }

  size_t memory_footprint() const;
  bool CheckInvariants() const;

 private:
  static constexpr size_t kBlockCap = 128;
  static constexpr int kMaxLevel = 8;

  struct Node {
    uint16_t count;
    uint8_t level;  // tower height, 1..kMaxLevel
    VertexId keys[kBlockCap];
    Node* next[kMaxLevel];
  };

  static Node* NewNode(int level);
  int RandomLevel();

  // Finds the node that should contain `key` (the last node whose first key
  // is <= key, or the head) and fills preds[l] = last node at level l whose
  // first key is <= key.
  Node* FindNode(VertexId key, Node** preds) const;

  Node* head_ = nullptr;  // first node; its first key is the list minimum
  size_t size_ = 0;
  uint64_t rng_state_;
};

}  // namespace lsg

#endif  // SRC_SKIPLIST_BLOCK_SKIP_LIST_H_
