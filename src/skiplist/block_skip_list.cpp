#include "src/skiplist/block_skip_list.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/util/cache.h"
#include "src/util/prng.h"

namespace lsg {

BlockSkipList::BlockSkipList() : rng_state_(0x5eed5eedULL) {
  head_ = NewNode(kMaxLevel);  // sentinel: count 0, full-height tower
}

BlockSkipList::~BlockSkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    AlignedFree(n);
    n = next;
  }
}

BlockSkipList::BlockSkipList(BlockSkipList&& o) noexcept
    : head_(o.head_), size_(o.size_), rng_state_(o.rng_state_) {
  o.head_ = nullptr;
  o.size_ = 0;
}

BlockSkipList& BlockSkipList::operator=(BlockSkipList&& o) noexcept {
  if (this != &o) {
    this->~BlockSkipList();
    head_ = o.head_;
    size_ = o.size_;
    rng_state_ = o.rng_state_;
    o.head_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

BlockSkipList::Node* BlockSkipList::NewNode(int level) {
  Node* n = static_cast<Node*>(AlignedAlloc(sizeof(Node)));
  n->count = 0;
  n->level = static_cast<uint8_t>(level);
  std::memset(n->next, 0, sizeof(n->next));
  return n;
}

int BlockSkipList::RandomLevel() {
  SplitMix64 rng(rng_state_);
  rng_state_ = rng.Next();
  uint64_t r = rng_state_;
  int level = 1;
  while (level < kMaxLevel && (r & 3) == 0) {
    ++level;
    r >>= 2;
  }
  return level;
}

BlockSkipList::Node* BlockSkipList::FindNode(VertexId key,
                                             Node** preds) const {
  Node* cur = head_;
  for (int l = kMaxLevel - 1; l >= 0; --l) {
    while (cur->next[l] != nullptr && cur->next[l]->keys[0] <= key) {
      cur = cur->next[l];
    }
    if (preds != nullptr) {
      preds[l] = cur;
    }
  }
  return cur == head_ ? head_->next[0] : cur;
}

bool BlockSkipList::Contains(VertexId key) const {
  if (head_ == nullptr) {
    return false;
  }
  const Node* n = FindNode(key, nullptr);
  if (n == nullptr) {
    return false;
  }
  const VertexId* end = n->keys + n->count;
  return std::binary_search(n->keys, end, key);
}

VertexId BlockSkipList::First() const {
  assert(head_->next[0] != nullptr);
  return head_->next[0]->keys[0];
}

bool BlockSkipList::Insert(VertexId key) {
  Node* preds[kMaxLevel];
  Node* target = FindNode(key, preds);
  if (target == nullptr) {
    // Empty list: first data node.
    Node* node = NewNode(RandomLevel());
    node->keys[0] = key;
    node->count = 1;
    for (int l = 0; l < node->level; ++l) {
      node->next[l] = nullptr;
      head_->next[l] = node;
    }
    ++size_;
    return true;
  }
  VertexId* end = target->keys + target->count;
  VertexId* it = std::lower_bound(target->keys, end, key);
  if (it != end && *it == key) {
    return false;
  }
  if (target->count == kBlockCap) {
    // Split: upper half moves to a fresh node linked right after target.
    Node* right = NewNode(RandomLevel());
    constexpr size_t kHalf = kBlockCap / 2;
    std::copy(target->keys + kHalf, target->keys + kBlockCap, right->keys);
    right->count = kBlockCap - kHalf;
    target->count = kHalf;
    for (int l = 0; l < right->level; ++l) {
      Node* pred = l < target->level ? target : preds[l];
      right->next[l] = pred->next[l];
      pred->next[l] = right;
    }
    // Re-aim at the half that owns the key.
    if (key >= right->keys[0]) {
      target = right;
    }
    end = target->keys + target->count;
    it = std::lower_bound(target->keys, end, key);
  }
  std::copy_backward(it, end, end + 1);
  *it = key;
  ++target->count;
  ++size_;
  return true;
}

bool BlockSkipList::Delete(VertexId key) {
  Node* preds[kMaxLevel];
  Node* target = FindNode(key, preds);
  if (target == nullptr) {
    return false;
  }
  VertexId* end = target->keys + target->count;
  VertexId* it = std::lower_bound(target->keys, end, key);
  if (it == end || *it != key) {
    return false;
  }
  std::copy(it + 1, end, it);
  --target->count;
  --size_;
  if (target->count == 0) {
    // Unlink: preds may point at `target` itself when key == first key;
    // recompute strict predecessors.
    Node* cur = head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      while (cur->next[l] != nullptr && cur->next[l] != target &&
             cur->next[l]->keys[0] < key) {
        cur = cur->next[l];
      }
      if (l < target->level && cur->next[l] == target) {
        cur->next[l] = target->next[l];
      }
    }
    AlignedFree(target);
  }
  return true;
}

void BlockSkipList::BulkLoad(std::span<const VertexId> sorted_ids) {
  // Reset to just the sentinel.
  Node* n = head_->next[0];
  while (n != nullptr) {
    Node* next = n->next[0];
    AlignedFree(n);
    n = next;
  }
  std::memset(head_->next, 0, sizeof(head_->next));
  size_ = sorted_ids.size();

  // Fill blocks at ~3/4 capacity, threading tower links as we go.
  constexpr size_t kFill = kBlockCap * 3 / 4;
  Node* last_at_level[kMaxLevel];
  for (int l = 0; l < kMaxLevel; ++l) {
    last_at_level[l] = head_;
  }
  size_t i = 0;
  while (i < sorted_ids.size()) {
    size_t take = std::min(kFill, sorted_ids.size() - i);
    Node* node = NewNode(RandomLevel());
    std::copy(sorted_ids.begin() + i, sorted_ids.begin() + i + take,
              node->keys);
    node->count = static_cast<uint16_t>(take);
    for (int l = 0; l < node->level; ++l) {
      last_at_level[l]->next[l] = node;
      last_at_level[l] = node;
    }
    i += take;
  }
}

size_t BlockSkipList::memory_footprint() const {
  size_t total = 0;
  for (const Node* n = head_; n != nullptr; n = n->next[0]) {
    total += sizeof(Node);
  }
  return total;
}

bool BlockSkipList::CheckInvariants() const {
  // Level-0 chain strictly ascending, blocks non-empty, count == size_.
  size_t count = 0;
  VertexId prev = 0;
  bool first = true;
  for (const Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
    if (n->count == 0 || n->count > kBlockCap) {
      return false;
    }
    for (uint16_t i = 0; i < n->count; ++i) {
      if (!first && n->keys[i] <= prev) {
        return false;
      }
      prev = n->keys[i];
      first = false;
      ++count;
    }
  }
  if (count != size_) {
    return false;
  }
  // Every tower level must be a subsequence of level 0.
  for (int l = 1; l < kMaxLevel; ++l) {
    const Node* lower = head_->next[0];
    for (const Node* n = head_->next[l]; n != nullptr; n = n->next[l]) {
      if (n->level <= l) {
        return false;
      }
      while (lower != nullptr && lower != n) {
        lower = lower->next[0];
      }
      if (lower == nullptr) {
        return false;  // level-l node missing from the base chain
      }
    }
  }
  return true;
}

}  // namespace lsg
