// Benchmark telemetry registry (machine-readable counterpart of the bench
// binaries' printf tables).
//
// Every measurement is one MetricRow in the uniform grid
//   {experiment, dataset, engine, scale, threads, batch_size, metric,
//    value, unit, params}
// so throughput/latency/memory numbers from all experiments diff against a
// committed baseline with one comparator (tools/bench_compare) instead of
// fourteen table parsers. MetricRegistry accumulates rows and serializes a
// BENCH_<experiment>.json document:
//
//   {
//     "schema_version": 1,
//     "experiment": "...",
//     "meta": { "git_sha": ..., "scale": ..., "hw_threads": ...,
//               "timestamp_utc": ..., "hostname": ...,
//               "omitted_nonfinite": ... },
//     "rows": [ { ...MetricRow... }, ... ]
//   }
//
// Rows with non-finite values (a sub-resolution timer read, a division by a
// zero denominator) are counted in meta.omitted_nonfinite and dropped rather
// than written: JSON cannot carry NaN, and a silent 0.0 would read as a
// catastrophic regression. ValidateBenchJson is the single schema authority,
// shared by the emitter's tests, tools/bench_compare --check, and the
// perfsmoke CTest harness.
#ifndef SRC_UTIL_METRICS_H_
#define SRC_UTIL_METRICS_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/core/options.h"
#include "src/util/json.h"

namespace lsg {

// One benchmark measurement. Empty strings / -1 mean "not applicable"
// (e.g. a memory-footprint row has no batch size); both are serialized so
// every row has an identical shape.
struct MetricRow {
  std::string dataset;     // e.g. "LJ"; "" if the metric is dataset-free
  std::string engine;      // e.g. "LSGraph"; "" if system-independent
  std::string metric;      // e.g. "insert_throughput"
  double value = 0.0;
  std::string unit;        // "edges/s", "s", "bytes", "count", "%", "x"
  int64_t batch_size = -1; // -1 = n/a
  int64_t threads = -1;    // -1 = n/a (fixed per-experiment pools)
  std::string params;      // free-form "k=v k=v" extras (e.g. "alpha=1.2")
};

// Units whose rows tools/bench_compare gates on (vs. informational units
// like "count", "%", "x" that contextualize but do not fail a comparison).
inline bool IsGatedUnit(const std::string& unit) {
  return unit == "s" || unit == "bytes" || unit.find("/s") != std::string::npos;
}

// Current commit, for telemetry metadata: LSG_GIT_SHA env override first
// (lets CI pin the value), then `git rev-parse HEAD` relative to the
// current working directory (the build tree lives inside the repo), else
// "unknown". Never fails.
inline std::string GitSha() {
  if (const char* env = std::getenv("LSG_GIT_SHA")) {
    return env;
  }
  std::string sha;
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (fgets(buf, sizeof(buf), p) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    pclose(p);
  }
#endif
  return sha.empty() ? "unknown" : sha;
}

// HDR-style log-linear latency histogram (the service layer's SLO
// instrument). Values are nanoseconds. Buckets are power-of-two octaves,
// each split into 2^kSubBits linear sub-buckets, so the relative
// quantization error is bounded by 2^-kSubBits (~3%) at every magnitude —
// a p999 of 2ms and a p50 of 800ns both resolve without per-sample storage.
// Recording is a single array increment; Record is NOT thread-safe (each
// driver thread owns a histogram and Merge folds them afterwards, keeping
// the record path store-free of atomics).
class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBits = 5;            // 32 sub-buckets/octave
  static constexpr uint32_t kSub = 1u << kSubBits;
  static constexpr uint32_t kNumBuckets = (64 - kSubBits) * kSub;

  void Record(uint64_t nanos) {
    ++buckets_[BucketOf(nanos)];
    ++count_;
    max_ = nanos > max_ ? nanos : max_;
    min_ = nanos < min_ ? nanos : min_;
  }

  void RecordSeconds(double seconds) {
    if (seconds < 0.0 || !std::isfinite(seconds)) {
      return;
    }
    Record(static_cast<uint64_t>(seconds * 1e9));
  }

  void Merge(const LatencyHistogram& other) {
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    max_ = other.max_ > max_ ? other.max_ : max_;
    min_ = other.min_ < min_ ? other.min_ : min_;
  }

  uint64_t count() const { return count_; }
  uint64_t max_nanos() const { return count_ == 0 ? 0 : max_; }
  uint64_t min_nanos() const { return count_ == 0 ? 0 : min_; }

  // Value at quantile p in [0, 1]: the lower bound of the bucket holding
  // the ceil(p * count)-th sample (0 when empty). Monotone in p.
  uint64_t PercentileNanos(double p) const {
    if (count_ == 0) {
      return 0;
    }
    p = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (target < 1) {
      target = 1;
    }
    uint64_t seen = 0;
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= target) {
        return BucketLowerBound(b);
      }
    }
    return max_;
  }

  double PercentileSeconds(double p) const {
    return static_cast<double>(PercentileNanos(p)) * 1e-9;
  }

  static uint32_t BucketOf(uint64_t v) {
    if (v < kSub) {
      return static_cast<uint32_t>(v);
    }
    uint32_t msb = 63 - static_cast<uint32_t>(std::countl_zero(v));
    uint32_t shift = msb - kSubBits;
    uint32_t sub = static_cast<uint32_t>(v >> shift) & (kSub - 1);
    return (shift + 1) * kSub + sub;
  }

  static uint64_t BucketLowerBound(uint32_t b) {
    if (b < kSub) {
      return b;
    }
    uint32_t shift = b / kSub - 1;
    uint64_t sub = b % kSub;
    return (uint64_t{kSub} + sub) << shift;
  }

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = ~uint64_t{0};
};

class MetricRegistry {
 public:
  // `scale` is the LSG_BENCH_SCALE tier the run used ("tiny"/"small"/"full").
  MetricRegistry(std::string experiment, std::string scale)
      : experiment_(std::move(experiment)), scale_(std::move(scale)) {}

  const std::string& experiment() const { return experiment_; }
  const std::string& scale() const { return scale_; }
  size_t num_rows() const { return rows_.size(); }
  size_t omitted_nonfinite() const { return omitted_nonfinite_; }
  const std::vector<MetricRow>& rows() const { return rows_; }

  // Appends a row; silently drops (and counts) non-finite values.
  void Add(MetricRow row) {
    if (!std::isfinite(row.value)) {
      ++omitted_nonfinite_;
      return;
    }
    rows_.push_back(std::move(row));
  }

  // Snapshots every CoreStats counter as one "count" row per field, so
  // behavioral shifts (conversion storms, early-exit loss) are visible in
  // the same diff as the throughput that they explain.
  void AddCoreStats(const std::string& dataset, const std::string& engine,
                    const CoreStats& stats, const std::string& params = "") {
    struct Counter {
      const char* name;
      uint64_t value;
    };
    const Counter counters[] = {
        {"ria_to_hitree_conversions", stats.ria_to_hitree_conversions.load()},
        {"ria_expansions", stats.ria_expansions.load()},
        {"lia_child_creations", stats.lia_child_creations.load()},
        {"hitree_to_ria_conversions", stats.hitree_to_ria_conversions.load()},
        {"ria_to_array_conversions", stats.ria_to_array_conversions.load()},
        {"ria_contractions", stats.ria_contractions.load()},
        {"pull_neighbors_decoded", stats.pull_neighbors_decoded.load()},
        {"pull_degree_scanned", stats.pull_degree_scanned.load()},
        {"pull_early_exits", stats.pull_early_exits.load()},
        {"edgemap_pull_rounds", stats.edgemap_pull_rounds.load()},
        {"edgemap_push_rounds", stats.edgemap_push_rounds.load()},
        {"bytes_resident", stats.bytes_resident.load()},
        {"neighbors_decoded", stats.neighbors_decoded.load()},
        {"cria_recompressions", stats.cria_recompressions.load()},
        {"snapshots_live", stats.snapshots_live.load()},
        {"cow_copies", stats.cow_copies.load()},
        {"deferred_frees", stats.deferred_frees.load()},
    };
    for (const Counter& c : counters) {
      Add({.dataset = dataset,
           .engine = engine,
           .metric = std::string("corestats.") + c.name,
           .value = static_cast<double>(c.value),
           .unit = "count",
           .params = params});
    }
  }

  // The full document as a JSON tree (rows in insertion order).
  JsonValue ToJson() const {
    JsonValue doc = JsonValue::Object();
    doc.Set("schema_version", JsonValue(int64_t{1}));
    doc.Set("experiment", JsonValue(experiment_));

    JsonValue meta = JsonValue::Object();
    meta.Set("git_sha", JsonValue(GitSha()));
    meta.Set("scale", JsonValue(scale_));
    meta.Set("hw_threads",
             JsonValue(static_cast<int64_t>(std::thread::hardware_concurrency())));
    char ts[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm tm_utc;
#if defined(_WIN32)
    gmtime_s(&tm_utc, &now);
#else
    gmtime_r(&now, &tm_utc);
#endif
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    meta.Set("timestamp_utc", JsonValue(std::string(ts)));
    char host[256] = {0};
#if defined(__unix__) || defined(__APPLE__)
    if (gethostname(host, sizeof(host) - 1) != 0) {
      host[0] = '\0';
    }
#endif
    if (host[0] == '\0') {
      std::snprintf(host, sizeof(host), "%s",
                    std::getenv("HOSTNAME") != nullptr
                        ? std::getenv("HOSTNAME")
                        : "unknown");
    }
    meta.Set("hostname", JsonValue(std::string(host)));
    meta.Set("omitted_nonfinite",
             JsonValue(static_cast<int64_t>(omitted_nonfinite_)));
    doc.Set("meta", std::move(meta));

    JsonValue rows = JsonValue::Array();
    for (const MetricRow& r : rows_) {
      JsonValue row = JsonValue::Object();
      row.Set("experiment", JsonValue(experiment_));
      row.Set("dataset", JsonValue(r.dataset));
      row.Set("engine", JsonValue(r.engine));
      row.Set("scale", JsonValue(scale_));
      row.Set("threads", JsonValue(r.threads));
      row.Set("batch_size", JsonValue(r.batch_size));
      row.Set("metric", JsonValue(r.metric));
      row.Set("value", JsonValue(r.value));
      row.Set("unit", JsonValue(r.unit));
      row.Set("params", JsonValue(r.params));
      rows.Append(std::move(row));
    }
    doc.Set("rows", std::move(rows));
    return doc;
  }

 private:
  std::string experiment_;
  std::string scale_;
  std::vector<MetricRow> rows_;
  size_t omitted_nonfinite_ = 0;
};

// Schema check for a parsed BENCH_*.json document. Returns true iff the
// document has the exact shape MetricRegistry::ToJson emits; on failure
// fills `*error` (if non-null) with the first violation.
inline bool ValidateBenchJson(const JsonValue& doc, std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  if (!doc.is_object()) {
    return fail("top level is not an object");
  }
  const JsonValue* ver = doc.Find("schema_version");
  if (ver == nullptr || !ver->is_number() || ver->AsInt() != 1) {
    return fail("schema_version missing or != 1");
  }
  const JsonValue* exp = doc.Find("experiment");
  if (exp == nullptr || !exp->is_string() || exp->AsString().empty()) {
    return fail("experiment missing or empty");
  }
  const JsonValue* meta = doc.Find("meta");
  if (meta == nullptr || !meta->is_object()) {
    return fail("meta missing");
  }
  for (const char* key : {"git_sha", "scale", "timestamp_utc", "hostname"}) {
    const JsonValue* v = meta->Find(key);
    if (v == nullptr || !v->is_string()) {
      return fail(std::string("meta.") + key + " missing or not a string");
    }
  }
  for (const char* key : {"hw_threads", "omitted_nonfinite"}) {
    const JsonValue* v = meta->Find(key);
    if (v == nullptr || !v->is_number()) {
      return fail(std::string("meta.") + key + " missing or not a number");
    }
  }
  const JsonValue* rows = doc.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return fail("rows missing or not an array");
  }
  size_t i = 0;
  for (const JsonValue& row : rows->items()) {
    std::string at = "rows[" + std::to_string(i++) + "].";
    if (!row.is_object()) {
      return fail(at + " is not an object");
    }
    for (const char* key :
         {"experiment", "dataset", "engine", "scale", "metric", "unit",
          "params"}) {
      const JsonValue* v = row.Find(key);
      if (v == nullptr || !v->is_string()) {
        return fail(at + key + " missing or not a string");
      }
    }
    for (const char* key : {"threads", "batch_size", "value"}) {
      const JsonValue* v = row.Find(key);
      if (v == nullptr || !v->is_number()) {
        return fail(at + key + " missing or not a number");
      }
    }
    if (row.Find("metric")->AsString().empty()) {
      return fail(at + "metric is empty");
    }
    if (!std::isfinite(row.Find("value")->AsDouble())) {
      return fail(at + "value is not finite");
    }
    if (row.Find("experiment")->AsString() != exp->AsString()) {
      return fail(at + "experiment disagrees with document experiment");
    }
  }
  return true;
}

}  // namespace lsg

#endif  // SRC_UTIL_METRICS_H_
