// Wall-clock timer used by benchmarks and by the engines' internal
// instrumentation counters (e.g. the PMA search/move breakdown of Fig. 4).
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>

namespace lsg {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulating stopwatch: sums disjoint timed intervals.
class Stopwatch {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_ += timer_.Seconds(); }
  double TotalSeconds() const { return total_; }
  void Clear() { total_ = 0.0; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace lsg

#endif  // SRC_UTIL_TIMER_H_
