// Shared primitive graph types used by every engine, generator, and kernel.
#ifndef SRC_UTIL_GRAPH_TYPES_H_
#define SRC_UTIL_GRAPH_TYPES_H_

#include <cstdint>
#include <tuple>

namespace lsg {

using VertexId = uint32_t;
using EdgeCount = uint64_t;

inline constexpr VertexId kInvalidVertex = ~VertexId{0};

struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst) <=> std::tie(b.src, b.dst);
  }
};

}  // namespace lsg

#endif  // SRC_UTIL_GRAPH_TYPES_H_
