// Shared primitive graph types used by every engine, generator, and kernel.
#ifndef SRC_UTIL_GRAPH_TYPES_H_
#define SRC_UTIL_GRAPH_TYPES_H_

#include <cstdint>
#include <tuple>
#include <vector>

namespace lsg {

using VertexId = uint32_t;
using EdgeCount = uint64_t;

inline constexpr VertexId kInvalidVertex = ~VertexId{0};

struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst) <=> std::tie(b.src, b.dst);
  }
};

// Drops edges naming a vertex >= n (the shared endpoint-validation policy:
// every engine counts and skips out-of-range edges instead of indexing past
// its vertex array). Returns how many edges were removed.
inline size_t RemoveOutOfRangeEdges(std::vector<Edge>* edges, VertexId n) {
  size_t before = edges->size();
  std::erase_if(*edges,
                [n](const Edge& e) { return e.src >= n || e.dst >= n; });
  return before - edges->size();
}

}  // namespace lsg

#endif  // SRC_UTIL_GRAPH_TYPES_H_
