// Bit-packed vectors.
//
// TypeVector packs the 2-bit LIA entry types (Unused/Edge/Block/Child) the
// paper attaches to every slot of a learned indexed array. AtomicBitset is
// the concurrent visited/frontier set used by the analytics kernels.
#ifndef SRC_UTIL_BITVECTOR_H_
#define SRC_UTIL_BITVECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsg {

// Entry types of a Learned Indexed Array (paper §3.2).
enum class SlotType : uint8_t {
  kUnused = 0,  // U: free slot
  kEdge = 1,    // E: holds one destination id
  kBlock = 2,   // B: part of a packed block rooted at the block start
  kChild = 3,   // C: block holds a pointer to a child node
};

// Densely packed 2-bit type tags, one per array slot.
class TypeVector {
 public:
  TypeVector() = default;
  explicit TypeVector(size_t n) : words_((n * 2 + 63) / 64, 0), size_(n) {}

  size_t size() const { return size_; }

  SlotType Get(size_t i) const {
    uint64_t w = words_[i / 32];
    return static_cast<SlotType>((w >> ((i % 32) * 2)) & 0x3);
  }

  void Set(size_t i, SlotType t) {
    uint64_t& w = words_[i / 32];
    size_t shift = (i % 32) * 2;
    w = (w & ~(uint64_t{0x3} << shift)) | (uint64_t(t) << shift);
  }

  // Sets [begin, end) to `t`.
  void SetRange(size_t begin, size_t end, SlotType t) {
    for (size_t i = begin; i < end; ++i) {
      Set(i, t);
    }
  }

  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

// Fixed-size bitset with atomic test-and-set, for parallel traversals.
class AtomicBitset {
 public:
  AtomicBitset() = default;
  explicit AtomicBitset(size_t n) : words_((n + 63) / 64), size_(n) {
    Clear();
  }

  size_t size() const { return size_; }

  void Clear() {
    for (auto& w : words_) {
      w.store(0, std::memory_order_relaxed);
    }
  }

  bool Get(size_t i) const {
    return (words_[i / 64].load(std::memory_order_relaxed) >> (i % 64)) & 1;
  }

  void Set(size_t i) {
    words_[i / 64].fetch_or(uint64_t{1} << (i % 64), std::memory_order_relaxed);
  }

  // Returns true iff this call flipped the bit from 0 to 1.
  bool TestAndSet(size_t i) {
    uint64_t mask = uint64_t{1} << (i % 64);
    uint64_t prev = words_[i / 64].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  // Word-granular access for O(n/64) scans (dense-frontier iteration).
  size_t num_words() const { return words_.size(); }
  uint64_t Word(size_t w) const {
    return words_[w].load(std::memory_order_relaxed);
  }

  // Sets every bit in [0, size()); bits beyond size() in the last word stay
  // zero so word-level population counts remain exact.
  void SetAll() {
    if (words_.empty()) {
      return;
    }
    for (size_t w = 0; w + 1 < words_.size(); ++w) {
      words_[w].store(~uint64_t{0}, std::memory_order_relaxed);
    }
    size_t rem = size_ % 64;
    uint64_t last = rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
    words_.back().store(last, std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<uint64_t>> words_;
  size_t size_ = 0;
};

}  // namespace lsg

#endif  // SRC_UTIL_BITVECTOR_H_
