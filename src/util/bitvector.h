// Bit-packed vectors.
//
// TypeVector packs the 2-bit LIA entry types (Unused/Edge/Block/Child) the
// paper attaches to every slot of a learned indexed array. AtomicBitset is
// the concurrent visited/frontier set used by the analytics kernels.
#ifndef SRC_UTIL_BITVECTOR_H_
#define SRC_UTIL_BITVECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/parallel/thread_pool.h"

namespace lsg {

// Entry types of a Learned Indexed Array (paper §3.2).
enum class SlotType : uint8_t {
  kUnused = 0,  // U: free slot
  kEdge = 1,    // E: holds one destination id
  kBlock = 2,   // B: part of a packed block rooted at the block start
  kChild = 3,   // C: block holds a pointer to a child node
};

// Densely packed 2-bit type tags, one per array slot.
class TypeVector {
 public:
  TypeVector() = default;
  explicit TypeVector(size_t n) : words_((n * 2 + 63) / 64, 0), size_(n) {}

  size_t size() const { return size_; }

  SlotType Get(size_t i) const {
    uint64_t w = words_[i / 32];
    return static_cast<SlotType>((w >> ((i % 32) * 2)) & 0x3);
  }

  void Set(size_t i, SlotType t) {
    uint64_t& w = words_[i / 32];
    size_t shift = (i % 32) * 2;
    w = (w & ~(uint64_t{0x3} << shift)) | (uint64_t(t) << shift);
  }

  // Sets [begin, end) to `t`, whole words at a time: partial head/tail words
  // are masked, interior words are stored outright with the 2-bit lane
  // pattern. HITree block (re)typing calls this on every split/merge/free,
  // so the old slot-at-a-time loop was 32x more word traffic than needed.
  void SetRange(size_t begin, size_t end, SlotType t) {
    if (begin >= end) {
      return;
    }
    // `t` replicated into all 32 2-bit lanes: 0x5555... is 01 in every lane.
    const uint64_t lanes = uint64_t(t) * 0x5555555555555555ull;
    const size_t first_word = begin / 32;
    const size_t last_word = (end - 1) / 32;
    // Mask covering slot offsets [lo, hi) of one word (hi <= 32).
    auto lane_mask = [](size_t lo, size_t hi) {
      uint64_t high = hi == 32 ? ~uint64_t{0} : (uint64_t{1} << (2 * hi)) - 1;
      uint64_t low = (uint64_t{1} << (2 * lo)) - 1;
      return high & ~low;
    };
    if (first_word == last_word) {
      uint64_t m = lane_mask(begin % 32, (end - 1) % 32 + 1);
      words_[first_word] = (words_[first_word] & ~m) | (lanes & m);
      return;
    }
    uint64_t head = lane_mask(begin % 32, 32);
    words_[first_word] = (words_[first_word] & ~head) | (lanes & head);
    for (size_t w = first_word + 1; w < last_word; ++w) {
      words_[w] = lanes;
    }
    uint64_t tail = lane_mask(0, (end - 1) % 32 + 1);
    words_[last_word] = (words_[last_word] & ~tail) | (lanes & tail);
  }

  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

// Fixed-size bitset with atomic test-and-set, for parallel traversals.
//
// Clear/SetAll rewrite the whole word array and are NOT atomic with respect
// to concurrent Set/TestAndSet — callers already owned that exclusion (both
// were plain store loops before), and every use site (frontier rebuild,
// per-round visited reset) runs them between parallel phases.
class AtomicBitset {
 public:
  AtomicBitset() = default;
  explicit AtomicBitset(size_t n) : words_((n + 63) / 64), size_(n) {
    Clear();
  }

  size_t size() const { return size_; }

  // Zeroes every word. The serial path is one memset (~word-store loop over
  // atomics defeats vectorization and ran serially every dense EdgeMap
  // round); pass a pool to split the fill for multi-GB bitsets.
  void Clear(ThreadPool* pool = nullptr) { FillBytes(0x00, pool); }

  bool Get(size_t i) const {
    return (words_[i / 64].load(std::memory_order_relaxed) >> (i % 64)) & 1;
  }

  void Set(size_t i) {
    words_[i / 64].fetch_or(uint64_t{1} << (i % 64), std::memory_order_relaxed);
  }

  // Returns true iff this call flipped the bit from 0 to 1.
  bool TestAndSet(size_t i) {
    uint64_t mask = uint64_t{1} << (i % 64);
    uint64_t prev = words_[i / 64].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  // Word-granular access for O(n/64) scans (dense-frontier iteration).
  size_t num_words() const { return words_.size(); }
  uint64_t Word(size_t w) const {
    return words_[w].load(std::memory_order_relaxed);
  }

  // Sets every bit in [0, size()); bits beyond size() in the last word stay
  // zero so word-level population counts remain exact.
  void SetAll(ThreadPool* pool = nullptr) {
    if (words_.empty()) {
      return;
    }
    FillBytes(0xFF, pool);
    size_t rem = size_ % 64;
    if (rem != 0) {
      words_.back().store((uint64_t{1} << rem) - 1,
                          std::memory_order_relaxed);
    }
  }

 private:
  // memset justification: std::atomic<uint64_t> is lock-free and
  // object-representation-identical to uint64_t here, so a byte fill is the
  // same machine effect as a loop of relaxed stores, minus the per-word
  // atomic-store codegen that blocks vectorization.
  static_assert(std::atomic<uint64_t>::is_always_lock_free &&
                    sizeof(std::atomic<uint64_t>) == sizeof(uint64_t),
                "AtomicBitset fill assumes plain-word atomic layout");

  void FillBytes(unsigned char byte, ThreadPool* pool) {
    const size_t nwords = words_.size();
    if (nwords == 0) {
      return;
    }
    std::atomic<uint64_t>* data = words_.data();
    auto fill = [data, byte](size_t lo, size_t hi) {
      std::memset(static_cast<void*>(data + lo), byte,
                  (hi - lo) * sizeof(uint64_t));
    };
    // Below ~8 MB a single memset saturates memory bandwidth anyway; only
    // split when a pool is supplied and the array is large enough to matter.
    constexpr size_t kParallelFillWords = (size_t{8} << 20) / sizeof(uint64_t);
    if (pool != nullptr && pool->num_threads() > 1 &&
        nwords >= kParallelFillWords) {
      pool->ParallelForChunked(
          0, nwords,
          [&fill](size_t lo, size_t hi, size_t /*tid*/) { fill(lo, hi); });
    } else {
      fill(0, nwords);
    }
  }

  std::vector<std::atomic<uint64_t>> words_;
  size_t size_ = 0;
};

}  // namespace lsg

#endif  // SRC_UTIL_BITVECTOR_H_
