// Sorting and batch-preparation utilities for edge batches.
//
// Batch ingestion (paper §5) sorts updates by (src, dst) before grouping them
// by source vertex. The serial LSD radix sort below is kept as the reference
// (and small-input) path; ParallelSortEdges / PrepareBatch implement the
// parallel two-level pipeline every engine routes batches through:
//
//   1. MSD partition on the high bits of the used key range — per-block
//      histograms + prefix-sum scatter (SampleSort-style), so each bucket
//      owns a contiguous, disjoint key range.
//   2. Per-bucket LSD passes over the remaining low bits (comparison sort
//      for small buckets), scheduled largest-bucket-first.
//   3. A fused finalization pass per bucket that deduplicates, detects
//      per-source group boundaries, and compacts into the output in one
//      scan — the two serial O(B) scans of the old pipeline are gone.
//
// Duplicates can never span MSD buckets (the bucket is a function of the
// full key), and the only cross-bucket coupling is whether a bucket's first
// source continues the previous bucket's last group; that is reconciled with
// one O(#buckets) scan between the count and write phases.
#ifndef SRC_UTIL_SORT_H_
#define SRC_UTIL_SORT_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"
#include "src/util/timer.h"

namespace lsg {

inline uint64_t EdgeKey(const Edge& e) {
  return (uint64_t{e.src} << 32) | e.dst;
}

namespace sort_internal {

// True iff a histogram counter of type CounterT can count `n` elements
// without wrapping. Production histograms use size_t (a std::vector can
// never exceed SIZE_MAX elements, so the guard is vacuously true there);
// the template stays so tests can exercise the overflow condition with a
// deliberately narrow counter at a synthetic small bound.
template <typename CounterT>
constexpr bool CountersCanHold(uint64_t n) {
  return n <= std::numeric_limits<CounterT>::max();
}

}  // namespace sort_internal

// LSD radix sort by (src, dst), 4 passes of 16 bits. Stable; sorts in place.
// Serial reference path; also used below the parallel-cutover threshold.
//
// Histogram and prefix-sum counters are size_t: with the former uint32_t
// counters, any batch of >= 2^32 edges silently wrapped the per-bucket
// counts, corrupting the prefix sums (and therefore the scatter) with no
// diagnostic. size_t counts anything a std::vector can hold.
inline void RadixSortEdges(std::vector<Edge>& edges) {
  constexpr int kBits = 16;
  constexpr size_t kBuckets = size_t{1} << kBits;
  static_assert(sort_internal::CountersCanHold<size_t>(
                    std::numeric_limits<uint32_t>::max()),
                "histogram counters must cover > 2^32-edge batches");
  if (edges.size() < 2048) {
    std::sort(edges.begin(), edges.end());
    return;
  }
  std::vector<Edge> tmp(edges.size());
  std::vector<size_t> count(kBuckets);
  Edge* from = edges.data();
  Edge* to = tmp.data();
  for (int pass = 0; pass < 4; ++pass) {
    int shift = pass * kBits;
    std::fill(count.begin(), count.end(), 0);
    for (size_t i = 0; i < edges.size(); ++i) {
      ++count[(EdgeKey(from[i]) >> shift) & (kBuckets - 1)];
    }
    size_t sum = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      size_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      to[count[(EdgeKey(from[i]) >> shift) & (kBuckets - 1)]++] = from[i];
    }
    std::swap(from, to);
  }
  // Four passes end with the data back in `edges` (even number of swaps).
}

// Removes adjacent duplicates from a sorted edge vector.
inline void DedupSortedEdges(std::vector<Edge>& edges) {
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

// Optional per-phase timing filled by PrepareBatch for the benchmark phase
// breakdown (sort = partition + per-bucket sort; group = fused dedup /
// boundary detection / compaction + apply-order construction).
struct PrepareStats {
  double sort_seconds = 0.0;
  double group_seconds = 0.0;
};

// A sorted, deduplicated batch with per-source group boundaries and a
// skew-aware apply order. starts.size() == groups + 1 (starts.back() ==
// edges.size()); order is a permutation of [0, groups) with groups arranged
// (approximately) largest-first so a hub group starts executing before the
// tail of small groups, instead of serializing after them.
struct PreparedBatch {
  std::vector<Edge> edges;
  std::vector<size_t> starts;
  std::vector<uint32_t> order;

  size_t groups() const { return starts.empty() ? 0 : starts.size() - 1; }
  size_t group_begin(size_t g) const { return starts[g]; }
  size_t group_end(size_t g) const { return starts[g + 1]; }
  VertexId group_source(size_t g) const { return edges[starts[g]].src; }
};

namespace sort_internal {

// Below this size the serial sort wins; must stay >= 2048 so the serial
// path's std::sort shortcut and the parallel path agree on small inputs.
inline constexpr size_t kParallelSortMin = size_t{1} << 14;
// MSD fan-out: 2^8 buckets over the top bits of the used key range.
inline constexpr int kMsdBits = 8;
// Buckets below this size use std::sort instead of LSD passes.
inline constexpr size_t kSmallBucket = 2048;

inline void SerialPrepare(std::vector<Edge>& edges, std::vector<size_t>* starts,
                          PrepareStats* stats) {
  Timer t;
  RadixSortEdges(edges);
  if (stats != nullptr) {
    stats->sort_seconds = t.Seconds();
    t.Reset();
  }
  DedupSortedEdges(edges);
  if (starts != nullptr) {
    starts->clear();
    for (size_t i = 0; i < edges.size(); ++i) {
      if (i == 0 || edges[i].src != edges[i - 1].src) {
        starts->push_back(i);
      }
    }
    starts->push_back(edges.size());
  }
  if (stats != nullptr) {
    stats->group_seconds = t.Seconds();
  }
}

// Sorts `edges` by (src, dst) and removes duplicates, using the two-level
// MSD/LSD parallel pipeline with dedup and group-boundary detection fused
// into the final compaction pass. If `starts` is non-null it receives the
// per-source group boundaries (the fused replacement for the old serial
// boundary scan). Output is byte-identical to RadixSortEdges +
// DedupSortedEdges regardless of thread count.
inline void ParallelPrepare(std::vector<Edge>& edges, ThreadPool& pool,
                            std::vector<size_t>* starts,
                            PrepareStats* stats = nullptr) {
  const size_t n = edges.size();
  if (n < kParallelSortMin || pool.num_threads() == 1) {
    SerialPrepare(edges, starts, stats);
    return;
  }
  const size_t nthreads = pool.num_threads();
  Timer phase_timer;

  // ---- Key-range reduction (parallel min/max over contiguous blocks). ----
  const size_t num_blocks = std::min(n, nthreads * 8);
  const size_t block_size = (n + num_blocks - 1) / num_blocks;
  auto block_range = [&](size_t b) {
    size_t lo = b * block_size;
    return std::pair<size_t, size_t>{lo, std::min(n, lo + block_size)};
  };
  std::vector<uint64_t> bmin(num_blocks, ~uint64_t{0});
  std::vector<uint64_t> bmax(num_blocks, 0);
  pool.ParallelFor(
      0, num_blocks,
      [&](size_t b) {
        auto [lo, hi] = block_range(b);
        uint64_t mn = ~uint64_t{0}, mx = 0;
        for (size_t i = lo; i < hi; ++i) {
          uint64_t k = EdgeKey(edges[i]);
          mn = std::min(mn, k);
          mx = std::max(mx, k);
        }
        bmin[b] = mn;
        bmax[b] = mx;
      },
      1);
  uint64_t min_key = ~uint64_t{0}, max_key = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    min_key = std::min(min_key, bmin[b]);
    max_key = std::max(max_key, bmax[b]);
  }
  if (min_key == max_key) {
    // Every edge is identical: dedup to one element, one group.
    edges.resize(1);
    if (starts != nullptr) {
      *starts = {0, 1};
    }
    if (stats != nullptr) {
      stats->sort_seconds = phase_timer.Seconds();
    }
    return;
  }

  // ---- MSD partition on the top kMsdBits of the *used* key range. ----
  // Subtracting min_key preserves order and makes the split adapt to the
  // batch (a single-hub batch with one src partitions on dst bits instead
  // of collapsing into one bucket).
  const uint64_t range = max_key - min_key;
  const int shift =
      std::max(0, static_cast<int>(std::bit_width(range)) - kMsdBits);
  const size_t num_buckets = static_cast<size_t>(range >> shift) + 1;
  auto bucket_of = [&](const Edge& e) {
    return static_cast<size_t>((EdgeKey(e) - min_key) >> shift);
  };

  // Per-block histograms; hist[b * num_buckets + k] becomes block b's write
  // cursor for bucket k after the prefix pass (stable scatter: blocks in
  // order, elements within a block in order).
  std::vector<size_t> hist(num_blocks * num_buckets, 0);
  pool.ParallelFor(
      0, num_blocks,
      [&](size_t b) {
        auto [lo, hi] = block_range(b);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          ++h[bucket_of(edges[i])];
        }
      },
      1);
  std::vector<size_t> bstart(num_buckets + 1);
  size_t sum = 0;
  for (size_t k = 0; k < num_buckets; ++k) {
    bstart[k] = sum;
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t c = hist[b * num_buckets + k];
      hist[b * num_buckets + k] = sum;
      sum += c;
    }
  }
  bstart[num_buckets] = n;

  std::vector<Edge> tmp(n);
  pool.ParallelFor(
      0, num_blocks,
      [&](size_t b) {
        auto [lo, hi] = block_range(b);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          tmp[h[bucket_of(edges[i])]++] = edges[i];
        }
      },
      1);

  // ---- Per-bucket sort of the remaining `shift` low bits. ----
  // Buckets are scheduled largest-first so one heavy bucket (skewed rMat
  // batches) starts immediately instead of landing last.
  std::vector<uint32_t> bucket_order(num_buckets);
  for (size_t k = 0; k < num_buckets; ++k) {
    bucket_order[k] = static_cast<uint32_t>(k);
  }
  std::sort(bucket_order.begin(), bucket_order.end(),
            [&](uint32_t a, uint32_t b) {
              return bstart[a + 1] - bstart[a] > bstart[b + 1] - bstart[b];
            });

  const int passes = (shift + 15) / 16;
  Edge* const a_buf = edges.data();  // original storage, free after scatter
  Edge* const b_buf = tmp.data();    // holds the MSD-partitioned data
  // LSD ping-pongs b_buf -> a_buf -> b_buf ...; all buckets share the same
  // pass count, so the sorted side has one global parity.
  Edge* const sorted = (passes % 2 == 0) ? b_buf : a_buf;
  Edge* const out = (passes % 2 == 0) ? a_buf : b_buf;

  // size_t counters for the same reason as RadixSortEdges: one skewed MSD
  // bucket can hold nearly the whole batch, so uint32_t would wrap at 2^32.
  std::vector<std::vector<size_t>> thread_counts(nthreads);
  pool.ParallelForChunked(
      0, num_buckets,
      [&](size_t lo_idx, size_t hi_idx, size_t tid) {
        for (size_t oi = lo_idx; oi < hi_idx; ++oi) {
          size_t k = bucket_order[oi];
          size_t lo = bstart[k], hi = bstart[k + 1];
          size_t m = hi - lo;
          if (m == 0) {
            continue;
          }
          if (m < kSmallBucket || passes == 0) {
            std::sort(b_buf + lo, b_buf + hi);
            if (sorted != b_buf) {
              std::copy(b_buf + lo, b_buf + hi, a_buf + lo);
            }
            continue;
          }
          std::vector<size_t>& count = thread_counts[tid];
          count.resize(size_t{1} << 16);
          Edge* from = b_buf;
          Edge* to = a_buf;
          for (int pass = 0; pass < passes; ++pass) {
            int s = pass * 16;
            std::fill(count.begin(), count.end(), 0);
            for (size_t i = lo; i < hi; ++i) {
              ++count[((EdgeKey(from[i]) - min_key) >> s) & 0xFFFF];
            }
            size_t c_sum = 0;
            for (size_t c = 0; c < count.size(); ++c) {
              size_t c_cur = count[c];
              count[c] = c_sum;
              c_sum += c_cur;
            }
            for (size_t i = lo; i < hi; ++i) {
              to[lo + count[((EdgeKey(from[i]) - min_key) >> s) & 0xFFFF]++] =
                  from[i];
            }
            std::swap(from, to);
          }
        }
      },
      1);
  if (stats != nullptr) {
    stats->sort_seconds = phase_timer.Seconds();
    phase_timer.Reset();
  }

  // ---- Fused dedup + group detection + compaction. ----
  // Count phase: per-bucket unique and group-start totals. Duplicates are
  // bucket-local by construction; only group continuation crosses buckets.
  std::vector<size_t> ucount(num_buckets, 0);
  std::vector<size_t> gcount(num_buckets, 0);
  const bool want_groups = starts != nullptr;
  pool.ParallelForChunked(
      0, num_buckets,
      [&](size_t lo_idx, size_t hi_idx, size_t /*tid*/) {
        for (size_t oi = lo_idx; oi < hi_idx; ++oi) {
          size_t k = bucket_order[oi];
          size_t lo = bstart[k], hi = bstart[k + 1];
          if (lo == hi) {
            continue;
          }
          size_t u = 1, g = 1;
          for (size_t i = lo + 1; i < hi; ++i) {
            if (sorted[i] != sorted[i - 1]) {
              ++u;
              g += sorted[i].src != sorted[i - 1].src;
            }
          }
          ucount[k] = u;
          if (want_groups) {
            gcount[k] = g;
          }
        }
      },
      1);

  // Cross-bucket reconciliation + prefix sums (O(num_buckets), <= 256).
  std::vector<size_t> ubase(num_buckets + 1, 0);
  std::vector<size_t> gbase(num_buckets + 1, 0);
  std::vector<uint8_t> first_is_group(num_buckets, 1);
  VertexId prev_src = kInvalidVertex;
  bool have_prev = false;
  size_t utotal = 0, gtotal = 0;
  for (size_t k = 0; k < num_buckets; ++k) {
    ubase[k] = utotal;
    gbase[k] = gtotal;
    if (bstart[k] == bstart[k + 1]) {
      continue;
    }
    if (want_groups && have_prev && sorted[bstart[k]].src == prev_src) {
      first_is_group[k] = 0;
      --gcount[k];
    }
    utotal += ucount[k];
    gtotal += gcount[k];
    prev_src = sorted[bstart[k + 1] - 1].src;
    have_prev = true;
  }
  ubase[num_buckets] = utotal;
  gbase[num_buckets] = gtotal;

  if (want_groups) {
    starts->assign(gtotal + 1, 0);
  }
  // Write phase: compact each bucket's unique run into `out` at its global
  // offset, emitting group starts in the same scan.
  pool.ParallelForChunked(
      0, num_buckets,
      [&](size_t lo_idx, size_t hi_idx, size_t /*tid*/) {
        for (size_t oi = lo_idx; oi < hi_idx; ++oi) {
          size_t k = bucket_order[oi];
          size_t lo = bstart[k], hi = bstart[k + 1];
          if (lo == hi) {
            continue;
          }
          size_t w = ubase[k];
          size_t gw = gbase[k];
          if (want_groups && first_is_group[k]) {
            (*starts)[gw++] = w;
          }
          out[w++] = sorted[lo];
          for (size_t i = lo + 1; i < hi; ++i) {
            if (sorted[i] == sorted[i - 1]) {
              continue;
            }
            if (want_groups && sorted[i].src != sorted[i - 1].src) {
              (*starts)[gw++] = w;
            }
            out[w++] = sorted[i];
          }
          assert(w == ubase[k] + ucount[k]);
        }
      },
      1);
  if (want_groups) {
    (*starts)[gtotal] = utotal;
  }
  if (out != edges.data()) {
    std::swap(edges, tmp);
  }
  edges.resize(utotal);
  if (stats != nullptr) {
    stats->group_seconds = phase_timer.Seconds();
  }
}

// Builds the largest-first apply order: a counting sort of group ids by
// descending size class (bit_width of the group size). Within a class sizes
// differ by < 2x, so the order is near-optimal for self-scheduling while
// costing one O(G) parallel pass instead of an O(G log G) sort.
inline void BuildLargestFirstOrder(const std::vector<size_t>& starts,
                                   ThreadPool& pool,
                                   std::vector<uint32_t>* order) {
  const size_t groups = starts.size() <= 1 ? 0 : starts.size() - 1;
  order->resize(groups);
  if (groups == 0) {
    return;
  }
  assert(groups < ~uint32_t{0});
  constexpr size_t kClasses = 64;  // bit_width(size) for size >= 1
  auto class_of = [&](size_t g) {
    // Descending: big sizes -> low class index.
    return kClasses - std::bit_width(starts[g + 1] - starts[g]);
  };
  const size_t nthreads = pool.num_threads();
  const size_t num_blocks = std::min(groups, nthreads * 8);
  const size_t block_size = (groups + num_blocks - 1) / num_blocks;
  std::vector<size_t> hist(num_blocks * kClasses, 0);
  pool.ParallelFor(
      0, num_blocks,
      [&](size_t b) {
        size_t lo = b * block_size, hi = std::min(groups, lo + block_size);
        size_t* h = hist.data() + b * kClasses;
        for (size_t g = lo; g < hi; ++g) {
          ++h[class_of(g)];
        }
      },
      1);
  size_t sum = 0;
  for (size_t c = 0; c < kClasses; ++c) {
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t cur = hist[b * kClasses + c];
      hist[b * kClasses + c] = sum;
      sum += cur;
    }
  }
  pool.ParallelFor(
      0, num_blocks,
      [&](size_t b) {
        size_t lo = b * block_size, hi = std::min(groups, lo + block_size);
        size_t* h = hist.data() + b * kClasses;
        for (size_t g = lo; g < hi; ++g) {
          (*order)[h[class_of(g)]++] = static_cast<uint32_t>(g);
        }
      },
      1);
}

}  // namespace sort_internal

// Parallel sort + dedup of an edge batch. Output is byte-identical to
// RadixSortEdges followed by DedupSortedEdges, for any thread count.
inline void ParallelSortEdges(std::vector<Edge>& edges, ThreadPool& pool) {
  sort_internal::ParallelPrepare(edges, pool, nullptr);
}

// Full ingestion front half shared by every engine: parallel sort, fused
// dedup + per-source grouping, and the largest-first apply order. This is
// the single replacement for the per-engine GroupBySource copies.
inline PreparedBatch PrepareBatch(std::vector<Edge> edges, ThreadPool& pool,
                                  PrepareStats* stats = nullptr) {
  PreparedBatch pb;
  pb.edges = std::move(edges);
  sort_internal::ParallelPrepare(pb.edges, pool, &pb.starts, stats);
  Timer t;
  sort_internal::BuildLargestFirstOrder(pb.starts, pool, &pb.order);
  if (stats != nullptr) {
    stats->group_seconds += t.Seconds();
  }
  return pb;
}

// Runs f(g) for every group of `pb`, scheduling groups largest-first with a
// small self-scheduling grain so a hub group cannot serialize the tail.
template <typename F>
void ForEachGroupLargestFirst(const PreparedBatch& pb, ThreadPool& pool,
                              F&& f) {
  size_t groups = pb.groups();
  size_t grain = std::max<size_t>(1, groups / (pool.num_threads() * 256));
  pool.ParallelForChunked(
      0, groups,
      [&](size_t lo, size_t hi, size_t /*tid*/) {
        for (size_t i = lo; i < hi; ++i) {
          f(pb.order[i]);
        }
      },
      grain);
}

}  // namespace lsg

#endif  // SRC_UTIL_SORT_H_
