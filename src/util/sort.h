// Sorting utilities for edge batches.
//
// Batch ingestion (paper §5) sorts updates by (src, dst) before grouping them
// by source vertex; an LSD radix sort on the packed 64-bit key is both faster
// and more predictable than comparison sort for the large batches Fig. 12
// sweeps.
#ifndef SRC_UTIL_SORT_H_
#define SRC_UTIL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

inline uint64_t EdgeKey(const Edge& e) {
  return (uint64_t{e.src} << 32) | e.dst;
}

// LSD radix sort by (src, dst), 4 passes of 16 bits. Stable; sorts in place.
inline void RadixSortEdges(std::vector<Edge>& edges) {
  constexpr int kBits = 16;
  constexpr size_t kBuckets = size_t{1} << kBits;
  if (edges.size() < 2048) {
    std::sort(edges.begin(), edges.end());
    return;
  }
  std::vector<Edge> tmp(edges.size());
  std::vector<uint32_t> count(kBuckets);
  Edge* from = edges.data();
  Edge* to = tmp.data();
  for (int pass = 0; pass < 4; ++pass) {
    int shift = pass * kBits;
    std::fill(count.begin(), count.end(), 0);
    for (size_t i = 0; i < edges.size(); ++i) {
      ++count[(EdgeKey(from[i]) >> shift) & (kBuckets - 1)];
    }
    uint32_t sum = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      uint32_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      to[count[(EdgeKey(from[i]) >> shift) & (kBuckets - 1)]++] = from[i];
    }
    std::swap(from, to);
  }
  // Four passes end with the data back in `edges` (even number of swaps).
}

// Removes adjacent duplicates from a sorted edge vector.
inline void DedupSortedEdges(std::vector<Edge>& edges) {
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace lsg

#endif  // SRC_UTIL_SORT_H_
