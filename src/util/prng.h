// Deterministic, fast pseudo-random number generation.
//
// Workload generators must be reproducible across runs and across thread
// counts, so every generator seeds one of these per logical chunk of work.
#ifndef SRC_UTIL_PRNG_H_
#define SRC_UTIL_PRNG_H_

#include <cstdint>

namespace lsg {

// splitmix64: tiny state, passes BigCrush when used to seed, and good enough
// on its own for workload synthesis.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

// Mixes a (seed, stream) pair into an independent-looking 64-bit seed, so
// parallel chunks can derive uncorrelated generators.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  SplitMix64 rng(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  rng.Next();
  return rng.Next();
}

}  // namespace lsg

#endif  // SRC_UTIL_PRNG_H_
