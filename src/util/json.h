// Minimal JSON value type, writer, and recursive-descent parser.
//
// Backing for the benchmark telemetry layer (src/util/metrics.h,
// tools/bench_compare): BENCH_<experiment>.json files are written and read
// with this, so the emitter and the comparator cannot drift apart. The
// subset implemented is exactly what JSON defines — objects, arrays,
// strings, finite numbers, booleans, null — with two deliberate choices:
// object keys keep insertion order (diffable output), and non-finite
// numbers are rejected at write time (JSON has no NaN/Inf; telemetry rows
// with unusable values are omitted upstream, see BenchReporter).
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lsg {

class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  JsonValue(int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}
  JsonValue(uint64_t u) : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // Array access.
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }

  // Object access; keys keep insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(std::string key, JsonValue v) {
    for (auto& [k, val] : members_) {
      if (k == key) {
        val = std::move(v);
        return;
      }
    }
    members_.emplace_back(std::move(key), std::move(v));
  }
  // Null if absent (distinguish with Has for genuinely-null members).
  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  bool Has(std::string_view key) const { return Find(key) != nullptr; }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

namespace json_internal {

inline void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline void AppendNumber(double d, std::string* out) {
  // %.17g round-trips any finite double; integers print without exponent so
  // counters stay human-readable. Non-finite values must be filtered by the
  // caller (JSON has no encoding for them).
  char buf[40];
  if (d == static_cast<int64_t>(d) && std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(d)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out->append(buf);
}

inline void WriteValue(const JsonValue& v, int indent, std::string* out) {
  const std::string pad(indent * 2, ' ');
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      break;
    case JsonValue::Type::kBool:
      out->append(v.AsBool() ? "true" : "false");
      break;
    case JsonValue::Type::kNumber:
      AppendNumber(v.AsDouble(), out);
      break;
    case JsonValue::Type::kString:
      AppendEscaped(v.AsString(), out);
      break;
    case JsonValue::Type::kArray: {
      if (v.items().empty()) {
        out->append("[]");
        break;
      }
      out->append("[\n");
      for (size_t i = 0; i < v.items().size(); ++i) {
        out->append(pad).append("  ");
        WriteValue(v.items()[i], indent + 1, out);
        out->append(i + 1 < v.items().size() ? ",\n" : "\n");
      }
      out->append(pad).push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      if (v.members().empty()) {
        out->append("{}");
        break;
      }
      out->append("{\n");
      for (size_t i = 0; i < v.members().size(); ++i) {
        out->append(pad).append("  ");
        AppendEscaped(v.members()[i].first, out);
        out->append(": ");
        WriteValue(v.members()[i].second, indent + 1, out);
        out->append(i + 1 < v.members().size() ? ",\n" : "\n");
      }
      out->append(pad).push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after top-level value");
    }
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      *out = JsonValue(std::move(s));
      return true;
    }
    if (ConsumeWord("true")) {
      *out = JsonValue(true);
      return true;
    }
    if (ConsumeWord("false")) {
      *out = JsonValue(false);
      return true;
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':' in object");
      }
      SkipSpace();
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->Set(std::move(key), std::move(v));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->Append(std::move(v));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    *out = JsonValue(d);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace json_internal

// Serializes with 2-space indentation and a trailing newline. Non-finite
// numbers must not appear in `v` (callers filter; see BenchReporter::Add).
inline std::string JsonWrite(const JsonValue& v) {
  std::string out;
  json_internal::WriteValue(v, 0, &out);
  out.push_back('\n');
  return out;
}

// Parses `text` into `*out`. Returns false and fills `*error` (if non-null)
// with a message + offset on malformed input.
inline bool JsonParse(std::string_view text, JsonValue* out,
                      std::string* error = nullptr) {
  return json_internal::Parser(text, error).Parse(out);
}

}  // namespace lsg

#endif  // SRC_UTIL_JSON_H_
