// Cache-geometry constants and cache-line-aligned allocation helpers.
//
// LSGraph's data layouts are specified in units of cache lines (the paper
// sizes vertex blocks, RIA/LIA blocks, and array starts to cache lines), so
// every module takes its geometry from here.
#ifndef SRC_UTIL_CACHE_H_
#define SRC_UTIL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace lsg {

// Fixed line size; x86 and most ARM server parts use 64 bytes. Keeping it a
// compile-time constant lets block sizes be compile-time constants too.
inline constexpr size_t kCacheLineBytes = 64;

// Number of T elements that fit in one cache line.
template <typename T>
inline constexpr size_t kPerCacheLine = kCacheLineBytes / sizeof(T);

// Allocates `n` bytes aligned to a cache-line boundary. Never returns null;
// allocation failure terminates (this engine is an in-memory store, there is
// no meaningful partial-failure recovery once we cannot hold the graph).
inline void* AlignedAlloc(size_t n) {
  if (n == 0) {
    n = kCacheLineBytes;
  }
  // aligned_alloc requires the size to be a multiple of the alignment.
  size_t rounded = (n + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  void* p = std::aligned_alloc(kCacheLineBytes, rounded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

inline void AlignedFree(void* p) { std::free(p); }

// Typed helper: allocates an aligned, uninitialized array of `n` elements.
template <typename T>
T* AllocateArray(size_t n) {
  static_assert(std::is_trivially_destructible_v<T> || true);
  return static_cast<T*>(AlignedAlloc(n * sizeof(T)));
}

// RAII owner for AlignedAlloc'd arrays of trivially-destructible T.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t n) : data_(AllocateArray<T>(n)), size_(n) {}
  ~AlignedBuffer() { AlignedFree(data_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      AlignedFree(data_);
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  bool empty() const { return size_ == 0; }

  void reset(size_t n) {
    AlignedFree(data_);
    data_ = n != 0 ? AllocateArray<T>(n) : nullptr;
    size_ = n;
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace lsg

#endif  // SRC_UTIL_CACHE_H_
