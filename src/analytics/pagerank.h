// Parallel PageRank (pull-based, fixed iteration count) over any engine.
//
// The evaluation graphs are symmetrized (§6.1), so a vertex's neighbor list
// doubles as its in-edge list and the pull formulation needs no transpose.
#ifndef SRC_ANALYTICS_PAGERANK_H_
#define SRC_ANALYTICS_PAGERANK_H_

#include <cstddef>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

struct PageRankOptions {
  double damping = 0.85;
  int iterations = 20;
};

template <typename G>
std::vector<double> PageRank(const G& g, ThreadPool& pool,
                             PageRankOptions options = {}) {
  VertexId n = g.num_vertices();
  if (n == 0) {
    return {};
  }
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> contrib(n, 0.0);
  std::vector<double> next(n, 0.0);
  // The iteration space is the implicit whole-universe frontier; kAll never
  // materializes an id array.
  VertexSubset all = VertexSubset::All(n);
  for (int iter = 0; iter < options.iterations; ++iter) {
    all.ForEach(pool, [&](VertexId v, size_t /*tid*/) {
      size_t deg = g.degree(v);
      contrib[v] = deg != 0 ? rank[v] / deg : 0.0;
    });
    all.ForEach(pool, [&](VertexId v, size_t /*tid*/) {
      double sum = 0.0;
      g.map_neighbors(v, [&sum, &contrib](VertexId u) { sum += contrib[u]; });
      next[v] = (1.0 - options.damping) / n + options.damping * sum;
    });
    rank.swap(next);
  }
  return rank;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_PAGERANK_H_
