// Parallel connected components by frontier-driven label propagation.
//
// Every vertex starts labeled with its own id; active vertices push their
// label to neighbors with an atomic min until no label changes. Correct on
// the symmetrized evaluation graphs (undirected connectivity).
#ifndef SRC_ANALYTICS_CC_H_
#define SRC_ANALYTICS_CC_H_

#include <atomic>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

template <typename G>
std::vector<VertexId> ConnectedComponents(const G& g, ThreadPool& pool,
                                          const EdgeMapOptions& options = {}) {
  VertexId n = g.num_vertices();
  std::vector<std::atomic<VertexId>> label(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v].store(v, std::memory_order_relaxed);
  }
  // A vertex may be re-lowered several times per round; the `queued` bitset
  // keeps it from entering the next frontier more than once. cond stays
  // `true`, so pull rounds scan full adjacencies — the label minimum needs
  // every frontier neighbor, not just the first.
  AtomicBitset queued(n);
  VertexSubset frontier = VertexSubset::All(n);
  while (!frontier.empty()) {
    queued.Clear(&pool);
    frontier = EdgeMap(
        g, frontier,
        [&label, &queued](VertexId u, VertexId v) {
          VertexId mine = label[u].load(std::memory_order_relaxed);
          VertexId theirs = label[v].load(std::memory_order_relaxed);
          bool lowered = false;
          while (mine < theirs) {
            if (label[v].compare_exchange_weak(theirs, mine,
                                               std::memory_order_relaxed)) {
              lowered = true;
              break;
            }
          }
          return lowered && queued.TestAndSet(v);
        },
        [](VertexId) { return true; }, pool, options);
  }
  std::vector<VertexId> result(n);
  for (VertexId v = 0; v < n; ++v) {
    result[v] = label[v].load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_CC_H_
