// Maximal independent set via deterministic local-minimum selection
// (Blelloch-Fineman-Shun style "rootset" rounds).
//
// Each round, every undecided vertex whose id is smaller than all of its
// undecided neighbors' ids joins the set; its neighbors leave. Terminates in
// O(log n) rounds w.h.p. on random orders; deterministic given vertex ids.
// Assumes a symmetrized graph.
#ifndef SRC_ANALYTICS_MIS_H_
#define SRC_ANALYTICS_MIS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

enum class MisState : uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

template <typename G>
std::vector<MisState> MaximalIndependentSet(const G& g, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  std::vector<std::atomic<uint8_t>> state(n);
  for (VertexId v = 0; v < n; ++v) {
    state[v].store(uint8_t(MisState::kUndecided), std::memory_order_relaxed);
  }
  std::atomic<size_t> undecided{n};
  while (undecided.load(std::memory_order_relaxed) > 0) {
    // Select local minima among undecided vertices.
    pool.ParallelFor(0, n, [&](size_t vi) {
      VertexId v = static_cast<VertexId>(vi);
      if (state[v].load(std::memory_order_relaxed) !=
          uint8_t(MisState::kUndecided)) {
        return;
      }
      bool is_min = true;
      g.map_neighbors(v, [&](VertexId u) {
        if (u < v && u != v &&
            state[u].load(std::memory_order_relaxed) !=
                uint8_t(MisState::kOut)) {
          is_min = false;
        }
      });
      if (is_min) {
        state[v].store(uint8_t(MisState::kIn), std::memory_order_relaxed);
      }
    });
    // Knock out neighbors of newly selected vertices, count progress.
    std::atomic<size_t> decided{0};
    pool.ParallelFor(0, n, [&](size_t vi) {
      VertexId v = static_cast<VertexId>(vi);
      if (state[v].load(std::memory_order_relaxed) !=
          uint8_t(MisState::kUndecided)) {
        return;
      }
      bool knocked_out = false;
      g.map_neighbors(v, [&](VertexId u) {
        if (u != v && state[u].load(std::memory_order_relaxed) ==
                          uint8_t(MisState::kIn)) {
          knocked_out = true;
        }
      });
      if (knocked_out) {
        state[v].store(uint8_t(MisState::kOut), std::memory_order_relaxed);
        decided.fetch_add(1, std::memory_order_relaxed);
      }
    });
    size_t selected = 0;
    for (VertexId v = 0; v < n; ++v) {
      // Newly selected this round were kUndecided at round start; count all
      // currently-in minus previous... simpler: recount undecided.
      selected += state[v].load(std::memory_order_relaxed) ==
                  uint8_t(MisState::kUndecided);
    }
    undecided.store(selected, std::memory_order_relaxed);
  }
  std::vector<MisState> result(n);
  for (VertexId v = 0; v < n; ++v) {
    result[v] = MisState(state[v].load(std::memory_order_relaxed));
  }
  return result;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_MIS_H_
