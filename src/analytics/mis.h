// Maximal independent set via deterministic local-minimum selection
// (Blelloch-Fineman-Shun style "rootset" rounds).
//
// Each round, every undecided vertex whose id is smaller than all of its
// undecided neighbors' ids joins the set; its neighbors leave. Terminates in
// O(log n) rounds w.h.p. on random orders; deterministic given vertex ids.
// Both per-round scans exploit early exit: adjacency lists are ascending, so
// the selection scan stops at the first neighbor >= v, and the knockout scan
// stops at the first selected neighbor. Assumes a symmetrized graph.
#ifndef SRC_ANALYTICS_MIS_H_
#define SRC_ANALYTICS_MIS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

enum class MisState : uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

template <typename G>
std::vector<MisState> MaximalIndependentSet(const G& g, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  std::vector<std::atomic<uint8_t>> state(n);
  for (VertexId v = 0; v < n; ++v) {
    state[v].store(uint8_t(MisState::kUndecided), std::memory_order_relaxed);
  }
  VertexSubset undecided = VertexSubset::All(n);
  while (!undecided.empty()) {
    // Select local minima among the undecided (every subset member is still
    // kUndecided at round start, and only v's own iteration writes v).
    undecided.ForEach(pool, [&](VertexId v, size_t /*tid*/) {
      bool is_min = true;
      g.map_neighbors_while(v, [&](VertexId u) {
        if (u >= v) {
          return false;  // ascending order: no smaller ids remain
        }
        if (state[u].load(std::memory_order_relaxed) !=
            uint8_t(MisState::kOut)) {
          is_min = false;
          return false;
        }
        return true;
      });
      if (is_min) {
        state[v].store(uint8_t(MisState::kIn), std::memory_order_relaxed);
      }
    });
    // Knock out neighbors of newly selected vertices.
    undecided.ForEach(pool, [&](VertexId v, size_t /*tid*/) {
      if (state[v].load(std::memory_order_relaxed) !=
          uint8_t(MisState::kUndecided)) {
        return;
      }
      bool knocked_out = false;
      g.map_neighbors_while(v, [&](VertexId u) {
        if (u != v && state[u].load(std::memory_order_relaxed) ==
                          uint8_t(MisState::kIn)) {
          knocked_out = true;
          return false;
        }
        return true;
      });
      if (knocked_out) {
        state[v].store(uint8_t(MisState::kOut), std::memory_order_relaxed);
      }
    });
    undecided = VertexMap(
        undecided,
        [&state](VertexId v) {
          return state[v].load(std::memory_order_relaxed) ==
                 uint8_t(MisState::kUndecided);
        },
        pool);
  }
  std::vector<MisState> result(n);
  for (VertexId v = 0; v < n; ++v) {
    result[v] = MisState(state[v].load(std::memory_order_relaxed));
  }
  return result;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_MIS_H_
