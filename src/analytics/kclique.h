// k-clique counting by ordered set intersection.
//
// The paper motivates ordered neighbors with Graph Pattern Mining: "with
// ordered neighbors, cutting-edge GPM systems can efficiently process set
// computations, which typically are the major performance bottleneck" (§1).
// This kernel is the canonical such workload: counting k-cliques by
// recursive intersection of sorted candidate sets over the degree-ordered
// DAG (Chiba–Nishizeki / kClist style). TC is the k=3 special case.
//
// Assumes a symmetrized simple graph (no self-loops among counted cliques).
#ifndef SRC_ANALYTICS_KCLIQUE_H_
#define SRC_ANALYTICS_KCLIQUE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

namespace clique_internal {

// result = a ∩ b, both sorted.
inline void IntersectInto(const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b,
                          std::vector<VertexId>* result) {
  result->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      result->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

// Counts cliques extending the current partial clique whose remaining
// candidate set is `cand`, needing `depth` more vertices.
inline uint64_t Extend(const std::vector<std::vector<VertexId>>& dag,
                       const std::vector<VertexId>& cand, int depth,
                       std::vector<std::vector<VertexId>>& scratch) {
  if (depth == 1) {
    return cand.size();
  }
  uint64_t count = 0;
  std::vector<VertexId>& next = scratch[depth - 2];
  for (VertexId u : cand) {
    IntersectInto(cand, dag[u], &next);
    count += Extend(dag, next, depth - 1, scratch);
  }
  return count;
}

}  // namespace clique_internal

// Counts k-cliques for k >= 1. k=1 counts vertices, k=2 edges, k=3
// triangles, and so on.
template <typename G>
uint64_t CountKCliques(const G& g, int k, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  if (k <= 0) {
    return 0;
  }
  if (k == 1) {
    return n;
  }
  // Build the degree-ordered DAG: keep edge u->v iff (deg(u), u) < (deg(v),
  // v). Every clique is counted once, from its minimal vertex in this total
  // order; candidate sets stay small on skewed graphs.
  std::vector<std::vector<VertexId>> dag(n);
  pool.ParallelFor(0, n, [&](size_t vi) {
    VertexId v = static_cast<VertexId>(vi);
    size_t dv = g.degree(v);
    g.map_neighbors(v, [&](VertexId u) {
      if (u == v) {
        return;  // self-loops join no clique
      }
      size_t du = g.degree(u);
      if (dv < du || (dv == du && v < u)) {
        dag[v].push_back(u);
      }
    });
    // map_neighbors ascends by id; re-sorting is unnecessary because the
    // filter preserves order.
  });

  std::atomic<uint64_t> total{0};
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi, size_t /*tid*/) {
    uint64_t local = 0;
    std::vector<std::vector<VertexId>> scratch(std::max(0, k - 2));
    for (size_t v = lo; v < hi; ++v) {
      local += clique_internal::Extend(dag, dag[v], k - 1, scratch);
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_KCLIQUE_H_
