// Single-source betweenness centrality (Brandes) over any engine.
//
// Level-synchronous: a BFS records per-level frontiers, path counts are
// pulled from the previous level, and dependencies accumulate backwards.
// Pulls use the neighbor list as the in-edge list, valid on the symmetrized
// evaluation graphs (§6.1).
#ifndef SRC_ANALYTICS_BC_H_
#define SRC_ANALYTICS_BC_H_

#include <atomic>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

template <typename G>
std::vector<double> BetweennessCentrality(const G& g, VertexId source,
                                          ThreadPool& pool,
                                          const EdgeMapOptions& options = {}) {
  VertexId n = g.num_vertices();
  std::vector<uint32_t> level(n, ~uint32_t{0});
  std::vector<double> sigma(n, 0.0);
  std::vector<std::vector<VertexId>> levels;

  level[source] = 0;
  sigma[source] = 1.0;
  std::vector<std::atomic<VertexId>> owner(n);
  for (VertexId v = 0; v < n; ++v) {
    owner[v].store(kInvalidVertex, std::memory_order_relaxed);
  }
  owner[source].store(source, std::memory_order_relaxed);

  VertexSubset frontier = VertexSubset::Single(n, source);
  levels.push_back(frontier.vertices(&pool));
  uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    frontier = EdgeMap(
        g, frontier,
        [&owner](VertexId u, VertexId v) {
          VertexId expected = kInvalidVertex;
          return owner[v].compare_exchange_strong(expected, u,
                                                  std::memory_order_relaxed);
        },
        [&owner](VertexId v) {
          return owner[v].load(std::memory_order_relaxed) == kInvalidVertex;
        },
        pool, options);
    if (frontier.empty()) {
      break;
    }
    uint32_t* level_data = level.data();
    frontier.ForEach(pool, [level_data, depth](VertexId v, size_t /*tid*/) {
      level_data[v] = depth;
    });
    // Pull path counts from the previous level.
    double* sigma_data = sigma.data();
    frontier.ForEach(pool, [&](VertexId v, size_t /*tid*/) {
      double sum = 0.0;
      g.map_neighbors(v, [&](VertexId u) {
        if (level[u] + 1 == level[v]) {
          sum += sigma[u];
        }
      });
      sigma_data[v] = sum;
    });
    levels.push_back(frontier.vertices(&pool));
  }

  // Backward dependency accumulation.
  std::vector<double> delta(n, 0.0);
  for (size_t d = levels.size(); d-- > 1;) {
    const std::vector<VertexId>& frontier_d = levels[d - 1];
    pool.ParallelFor(0, frontier_d.size(), [&](size_t i) {
      VertexId v = frontier_d[i];
      double sum = 0.0;
      g.map_neighbors(v, [&](VertexId w) {
        if (level[w] == level[v] + 1 && sigma[w] != 0.0) {
          sum += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      });
      delta[v] += sum;
    });
  }
  delta[source] = 0.0;
  return delta;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_BC_H_
