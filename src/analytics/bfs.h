// Parallel breadth-first search over any engine (paper §6.3).
//
// One EdgeMap entry point owns direction selection: with the default
// EdgeMapOptions the traversal is direction-optimized (Beamer-style push
// until the frontier's edge volume crosses the dense threshold, then pull
// with per-vertex early exit), which requires a symmetrized graph. Pass
// Direction::kPush for a push-only traversal on asymmetric graphs. Levels
// are identical either way; parents may differ within a level, as permitted.
#ifndef SRC_ANALYTICS_BFS_H_
#define SRC_ANALYTICS_BFS_H_

#include <atomic>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

struct BfsResult {
  std::vector<VertexId> parent;  // kInvalidVertex if unreached
  std::vector<uint32_t> level;   // ~0u if unreached
  size_t reached = 0;
};

template <typename G>
BfsResult Bfs(const G& g, VertexId source, ThreadPool& pool,
              const EdgeMapOptions& options = {}) {
  VertexId n = g.num_vertices();
  BfsResult result;
  result.parent.assign(n, kInvalidVertex);
  result.level.assign(n, ~uint32_t{0});
  std::vector<std::atomic<VertexId>> owner(n);
  for (VertexId v = 0; v < n; ++v) {
    owner[v].store(kInvalidVertex, std::memory_order_relaxed);
  }

  owner[source].store(source, std::memory_order_relaxed);
  result.parent[source] = source;
  result.level[source] = 0;
  result.reached = 1;
  VertexSubset frontier = VertexSubset::Single(n, source);
  uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    frontier = EdgeMap(
        g, frontier,
        [&owner](VertexId u, VertexId v) {
          VertexId expected = kInvalidVertex;
          return owner[v].compare_exchange_strong(expected, u,
                                                  std::memory_order_relaxed);
        },
        [&owner](VertexId v) {
          return owner[v].load(std::memory_order_relaxed) == kInvalidVertex;
        },
        pool, options);
    VertexId* parent = result.parent.data();
    uint32_t* level = result.level.data();
    frontier.ForEach(pool, [&owner, parent, level, depth](VertexId v,
                                                          size_t /*tid*/) {
      parent[v] = owner[v].load(std::memory_order_relaxed);
      level[v] = depth;
    });
    result.reached += frontier.size();
  }
  return result;
}

// Push-only BFS: never flips to the pull scan, so it stays correct on
// graphs that are not symmetrized.
template <typename G>
BfsResult BfsPush(const G& g, VertexId source, ThreadPool& pool) {
  EdgeMapOptions options;
  options.direction = Direction::kPush;
  return Bfs(g, source, pool, options);
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_BFS_H_
