// Parallel breadth-first search over any engine (paper §6.3).
#ifndef SRC_ANALYTICS_BFS_H_
#define SRC_ANALYTICS_BFS_H_

#include <atomic>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

struct BfsResult {
  std::vector<VertexId> parent;  // kInvalidVertex if unreached
  std::vector<uint32_t> level;   // ~0u if unreached
  size_t reached = 0;
};

template <typename G>
BfsResult Bfs(const G& g, VertexId source, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  BfsResult result;
  result.parent.assign(n, kInvalidVertex);
  result.level.assign(n, ~uint32_t{0});
  std::vector<std::atomic<VertexId>> owner(n);
  for (VertexId v = 0; v < n; ++v) {
    owner[v].store(kInvalidVertex, std::memory_order_relaxed);
  }

  owner[source].store(source, std::memory_order_relaxed);
  result.parent[source] = source;
  result.level[source] = 0;
  result.reached = 1;
  VertexSubset frontier = VertexSubset::Single(n, source);
  uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    frontier = EdgeMap(
        g, frontier,
        [&owner](VertexId u, VertexId v) {
          VertexId expected = kInvalidVertex;
          return owner[v].compare_exchange_strong(expected, u,
                                                  std::memory_order_relaxed);
        },
        [&owner](VertexId v) {
          return owner[v].load(std::memory_order_relaxed) == kInvalidVertex;
        },
        pool);
    for (VertexId v : frontier.vertices()) {
      result.parent[v] = owner[v].load(std::memory_order_relaxed);
      result.level[v] = depth;
    }
    result.reached += frontier.size();
  }
  return result;
}

// Direction-optimized BFS (Beamer-style): push while the frontier is small,
// pull when the frontier's edge volume passes a fraction of |E|. Requires a
// symmetrized graph (pull reads out-neighbors as in-neighbors). Produces the
// same levels as Bfs; parents may differ within a level, as permitted.
template <typename G>
BfsResult BfsDirOpt(const G& g, VertexId source, ThreadPool& pool,
                    double dense_threshold = 0.05) {
  VertexId n = g.num_vertices();
  BfsResult result;
  result.parent.assign(n, kInvalidVertex);
  result.level.assign(n, ~uint32_t{0});
  std::vector<std::atomic<VertexId>> owner(n);
  for (VertexId v = 0; v < n; ++v) {
    owner[v].store(kInvalidVertex, std::memory_order_relaxed);
  }
  owner[source].store(source, std::memory_order_relaxed);
  result.parent[source] = source;
  result.level[source] = 0;
  result.reached = 1;

  const double edge_budget = dense_threshold * (g.num_edges() + 1);
  VertexSubset frontier = VertexSubset::Single(n, source);
  AtomicBitset frontier_bits(n);
  uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    size_t frontier_edges = 0;
    for (VertexId v : frontier.vertices()) {
      frontier_edges += g.degree(v);
    }
    auto update = [&owner](VertexId u, VertexId v) {
      VertexId expected = kInvalidVertex;
      return owner[v].compare_exchange_strong(expected, u,
                                              std::memory_order_relaxed);
    };
    auto unvisited = [&owner](VertexId v) {
      return owner[v].load(std::memory_order_relaxed) == kInvalidVertex;
    };
    if (static_cast<double>(frontier_edges) >= edge_budget) {
      frontier_bits.Clear();
      for (VertexId v : frontier.vertices()) {
        frontier_bits.Set(v);
      }
      frontier = EdgeMapPull(g, frontier_bits, update, unvisited, pool);
    } else {
      frontier = EdgeMap(g, frontier, update, unvisited, pool);
    }
    for (VertexId v : frontier.vertices()) {
      result.parent[v] = owner[v].load(std::memory_order_relaxed);
      result.level[v] = depth;
    }
    result.reached += frontier.size();
  }
  return result;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_BFS_H_
