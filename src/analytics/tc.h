// Triangle counting by sorted-array intersection (paper §6.3).
//
// Following LSGraph's TC implementation, adjacency lists are first staged
// into flat arrays (one Traverse per vertex — the "Traversal" column of
// Table 2), then triangles are counted with ordered intersections. Each
// triangle {u < v < w} is counted exactly once at its smallest vertex.
#ifndef SRC_ANALYTICS_TC_H_
#define SRC_ANALYTICS_TC_H_

#include <atomic>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"
#include "src/util/timer.h"

namespace lsg {

struct TriangleCountResult {
  uint64_t triangles = 0;
  double traversal_seconds = 0.0;  // time spent staging edges into arrays
};

// Counts |a ∩ b| restricted to ids greater than `floor`.
inline uint64_t IntersectAbove(const std::vector<VertexId>& a,
                               const std::vector<VertexId>& b,
                               VertexId floor) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= floor) {
      ++i;
      continue;
    }
    if (b[j] <= floor) {
      ++j;
      continue;
    }
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// Direct-traversal variant: no array staging. Every intersection re-decodes
// the second endpoint's adjacency through the engine's own structures — the
// strategy the paper attributes to Terrace ("multiple intersection
// operations by traversing different data structures", §6.3). Kept for the
// Table 2 comparison; for LSGraph-style staging use TriangleCount below.
template <typename G>
TriangleCountResult TriangleCountDirect(const G& g, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  std::atomic<uint64_t> total{0};
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi, size_t /*tid*/) {
    uint64_t local = 0;
    std::vector<VertexId> nv;
    std::vector<VertexId> nu;
    for (size_t v = lo; v < hi; ++v) {
      nv.clear();
      g.map_neighbors(static_cast<VertexId>(v),
                      [&nv](VertexId u) { nv.push_back(u); });
      for (VertexId u : nv) {
        if (u <= v) {
          continue;
        }
        // Re-traverse u's adjacency for every pair (the repeated-traversal
        // cost structure-native TC pays on skewed graphs).
        nu.clear();
        g.map_neighbors(u, [&nu](VertexId w) { nu.push_back(w); });
        local += IntersectAbove(nv, nu, u);
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  TriangleCountResult result;
  result.triangles = total.load(std::memory_order_relaxed);
  return result;
}

template <typename G>
TriangleCountResult TriangleCount(const G& g, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  TriangleCountResult result;

  // Stage adjacency lists into arrays (cheap relative to the intersections;
  // Table 2 reports the ratio).
  Timer timer;
  std::vector<std::vector<VertexId>> adj(n);
  pool.ParallelFor(0, n, [&](size_t v) {
    adj[v].reserve(g.degree(static_cast<VertexId>(v)));
    g.map_neighbors(static_cast<VertexId>(v),
                    [&adj, v](VertexId u) { adj[v].push_back(u); });
  });
  result.traversal_seconds = timer.Seconds();

  std::atomic<uint64_t> total{0};
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi, size_t /*tid*/) {
    uint64_t local = 0;
    for (size_t v = lo; v < hi; ++v) {
      const std::vector<VertexId>& nv = adj[v];
      for (VertexId u : nv) {
        if (u <= v) {
          continue;  // count each triangle at its smallest vertex
        }
        local += IntersectAbove(nv, adj[u], u);
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  result.triangles = total.load(std::memory_order_relaxed);
  return result;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_TC_H_
