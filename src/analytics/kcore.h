// k-core decomposition by parallel peeling.
//
// Computes the coreness of every vertex: the largest k such that the vertex
// survives in the subgraph where all vertices have degree >= k. A standard
// Ligra-family kernel; exercises the engines' degree() and map_neighbors()
// under frontier-driven access like BFS but with many more rounds.
// Assumes a symmetrized graph.
#ifndef SRC_ANALYTICS_KCORE_H_
#define SRC_ANALYTICS_KCORE_H_

#include <atomic>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

template <typename G>
std::vector<uint32_t> KCoreDecomposition(const G& g, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  std::vector<std::atomic<uint32_t>> induced(n);
  std::vector<uint32_t> coreness(n, 0);
  AtomicBitset peeled(n);
  pool.ParallelFor(0, n, [&](size_t v) {
    induced[v].store(static_cast<uint32_t>(g.degree(static_cast<VertexId>(v))),
                     std::memory_order_relaxed);
  });

  size_t remaining = n;
  uint32_t k = 0;
  while (remaining > 0) {
    // Seed with every un-peeled vertex whose induced degree is <= k.
    VertexSubset frontier(n);
    for (VertexId v = 0; v < n; ++v) {
      if (!peeled.Get(v) && induced[v].load(std::memory_order_relaxed) <= k) {
        frontier.mutable_vertices().push_back(v);
      }
    }
    // Peel in waves: removing a vertex may drag neighbors under the bound.
    while (!frontier.empty()) {
      for (VertexId v : frontier.vertices()) {
        coreness[v] = k;
        peeled.Set(v);
      }
      remaining -= frontier.size();
      AtomicBitset queued(n);
      frontier = EdgeMap(
          g, frontier,
          [&induced, &peeled, &queued, k](VertexId, VertexId v) {
            if (peeled.Get(v)) {
              return false;
            }
            uint32_t before =
                induced[v].fetch_sub(1, std::memory_order_relaxed);
            return before - 1 <= k && queued.TestAndSet(v);
          },
          [](VertexId) { return true; }, pool);
      // A vertex can be queued and then peeled by an earlier wave entry in
      // the same round; filter.
      frontier = VertexMap(
          frontier, [&peeled](VertexId v) { return !peeled.Get(v); }, pool);
    }
    ++k;
  }
  return coreness;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_KCORE_H_
