// k-core decomposition by parallel peeling.
//
// Computes the coreness of every vertex: the largest k such that the vertex
// survives in the subgraph where all vertices have degree >= k. A standard
// Ligra-family kernel; exercises the engines' degree() and map_neighbors()
// under frontier-driven access like BFS but with many more rounds.
// Assumes a symmetrized graph.
#ifndef SRC_ANALYTICS_KCORE_H_
#define SRC_ANALYTICS_KCORE_H_

#include <atomic>
#include <vector>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

template <typename G>
std::vector<uint32_t> KCoreDecomposition(const G& g, ThreadPool& pool,
                                         const EdgeMapOptions& options = {}) {
  VertexId n = g.num_vertices();
  std::vector<std::atomic<uint32_t>> induced(n);
  std::vector<uint32_t> coreness(n, 0);
  AtomicBitset peeled(n);
  pool.ParallelFor(0, n, [&](size_t v) {
    induced[v].store(static_cast<uint32_t>(g.degree(static_cast<VertexId>(v))),
                     std::memory_order_relaxed);
  });

  auto not_peeled = [&peeled](VertexId v) { return !peeled.Get(v); };
  VertexSubset remaining = VertexSubset::All(n);
  uint32_t k = 0;
  while (!remaining.empty()) {
    // Seed with every un-peeled vertex whose induced degree is <= k.
    VertexSubset frontier = VertexMap(
        remaining,
        [&peeled, &induced, k](VertexId v) {
          return !peeled.Get(v) &&
                 induced[v].load(std::memory_order_relaxed) <= k;
        },
        pool);
    // Peel in waves: removing a vertex may drag neighbors under the bound.
    while (!frontier.empty()) {
      uint32_t* coreness_data = coreness.data();
      frontier.ForEach(pool, [coreness_data, &peeled, k](VertexId v,
                                                         size_t /*tid*/) {
        coreness_data[v] = k;
        peeled.Set(v);
      });
      AtomicBitset queued(n);
      frontier = EdgeMap(
          g, frontier,
          [&induced, &peeled, &queued, k](VertexId, VertexId v) {
            if (peeled.Get(v)) {
              return false;
            }
            uint32_t before =
                induced[v].fetch_sub(1, std::memory_order_relaxed);
            return before - 1 <= k && queued.TestAndSet(v);
          },
          not_peeled, pool, options);
      // A vertex can be queued and then peeled by an earlier wave entry in
      // the same round; filter.
      frontier = VertexMap(frontier, not_peeled, pool);
    }
    remaining = VertexMap(remaining, not_peeled, pool);
    ++k;
  }
  return coreness;
}

}  // namespace lsg

#endif  // SRC_ANALYTICS_KCORE_H_
