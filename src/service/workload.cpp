#include "src/service/workload.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include "src/util/prng.h"
#include "src/util/timer.h"

namespace lsg {

namespace {

// Open-loop pacing: op i is due at start + i/rate; never sleeps when
// behind schedule (overload surfaces as latency, not reduced rate).
void PaceTo(const Timer& wall, double rate, uint64_t i) {
  if (rate <= 0.0) {
    return;
  }
  const double due = static_cast<double>(i) / rate;
  while (wall.Seconds() < due) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

// Serial truncated BFS on the single-engine oracle, same set semantics as
// Router::KHop (distinct vertices within k hops, source included).
size_t OracleKHopReached(const LSGraph& g, VertexId source, uint32_t k) {
  if (source >= g.num_vertices()) {
    return 0;
  }
  std::vector<uint8_t> visited(g.num_vertices(), 0);
  visited[source] = 1;
  std::vector<VertexId> frontier{source};
  size_t reached = 1;
  for (uint32_t hop = 0; hop < k && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      g.map_neighbors(v, [&](VertexId u) {
        if (visited[u] == 0) {
          visited[u] = 1;
          next.push_back(u);
        }
      });
    }
    reached += next.size();
    frontier = std::move(next);
  }
  return reached;
}

struct ReaderStats {
  LatencyHistogram point_read;
  LatencyHistogram khop;
  uint64_t checksum = 0;
};

}  // namespace

std::string WorkloadSpec::Validate() const {
  if (ops == 0) {
    return "ops must be >= 1";
  }
  if (point_read_frac < 0.0 || update_frac < 0.0 ||
      point_read_frac + update_frac > 1.0) {
    return "point_read_frac/update_frac must be >= 0 and sum to <= 1";
  }
  if (update_batch_size == 0) {
    return "update_batch_size must be >= 1";
  }
  if (khop_depth > 32) {
    return "khop_depth must be <= 32";
  }
  if (reader_threads == 0 || reader_threads > 256) {
    return "reader_threads must be in [1, 256]";
  }
  if (target_qps < 0.0) {
    return "target_qps must be >= 0";
  }
  return "";
}

WorkloadResult RunWorkload(Router& router, const WorkloadSpec& spec) {
  WorkloadResult result;
  const VertexId n = router.graph().num_vertices();
  if (n == 0) {
    return result;
  }
  const uint64_t updates_total =
      std::min<uint64_t>(spec.ops,
                         static_cast<uint64_t>(
                             static_cast<double>(spec.ops) * spec.update_frac +
                             0.5));
  const uint64_t reads_total = spec.ops - updates_total;
  // Probability an individual reader op is a k-hop (vs a point read).
  const double read_share = 1.0 - spec.update_frac;
  const double khop_p =
      read_share > 0.0
          ? std::clamp((read_share - spec.point_read_frac) / read_share, 0.0,
                       1.0)
          : 0.0;

  std::vector<ReaderStats> reader_stats(spec.reader_threads);
  Timer wall;

  std::thread writer([&] {
    const double rate =
        spec.target_qps * static_cast<double>(updates_total) /
        static_cast<double>(spec.ops);
    for (uint64_t t = 0; t < updates_total; ++t) {
      const bool is_delete = (t % 4 == 3);
      // Deletes target the batch inserted three ops earlier (trials that
      // are == 3 mod 4 never generate inserts, so t - 3 always names one).
      std::vector<Edge> batch = BuildUpdateBatch(
          spec.updates, spec.update_batch_size, is_delete ? t - 3 : t);
      PaceTo(wall, rate, t);
      result.edges_submitted += batch.size();
      if (spec.keep_update_log) {
        result.update_log.emplace_back(
            is_delete ? ShardedGraph::UpdateKind::kDelete
                      : ShardedGraph::UpdateKind::kInsert,
            batch);
      }
      Timer op;
      const size_t applied = is_delete ? router.DeleteBatch(batch)
                                       : router.InsertBatch(batch);
      result.update.RecordSeconds(op.Seconds());
      result.edges_applied += applied;
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(spec.reader_threads);
  for (uint32_t r = 0; r < spec.reader_threads; ++r) {
    readers.emplace_back([&, r] {
      ReaderStats& stats = reader_stats[r];
      std::mt19937_64 rng(MixSeed(spec.seed, 0x5eed0000 + r));
      std::uniform_real_distribution<double> u01(0.0, 1.0);
      const uint64_t my_ops = reads_total / spec.reader_threads +
                              (r < reads_total % spec.reader_threads ? 1 : 0);
      const double rate = spec.target_qps * static_cast<double>(my_ops) /
                          static_cast<double>(spec.ops);
      for (uint64_t i = 0; i < my_ops; ++i) {
        PaceTo(wall, rate, i);
        const VertexId v = static_cast<VertexId>(rng() % n);
        if (u01(rng) < khop_p) {
          Timer op;
          Router::KHopResult kr = router.KHop(v, spec.khop_depth);
          stats.khop.RecordSeconds(op.Seconds());
          stats.checksum += kr.reached;
          continue;
        }
        switch (rng() % 3) {
          case 0: {
            const VertexId w = static_cast<VertexId>(rng() % n);
            Timer op;
            const bool has = router.HasEdge(v, w);
            stats.point_read.RecordSeconds(op.Seconds());
            stats.checksum += has ? 1 : 0;
            break;
          }
          case 1: {
            Timer op;
            const size_t d = router.Degree(v);
            stats.point_read.RecordSeconds(op.Seconds());
            stats.checksum += d;
            break;
          }
          default: {
            Timer op;
            const std::vector<VertexId> nb = router.Neighbors(v);
            stats.point_read.RecordSeconds(op.Seconds());
            stats.checksum += nb.size();
            break;
          }
        }
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) {
    t.join();
  }
  router.Flush();
  result.wall_seconds = wall.Seconds();
  result.ops_issued = spec.ops;
  for (ReaderStats& stats : reader_stats) {
    result.point_read.Merge(stats.point_read);
    result.khop.Merge(stats.khop);
    result.read_checksum += stats.checksum;
  }
  return result;
}

std::string VerifyAgainstOracle(
    Router& router, std::span<const Edge> base_edges,
    const std::vector<std::pair<ShardedGraph::UpdateKind, std::vector<Edge>>>&
        update_log,
    const Options& engine_options, uint64_t seed) {
  router.Flush();
  ShardedGraph& graph = router.graph();
  const VertexId n = graph.num_vertices();

  LSGraph oracle(n, engine_options);
  oracle.BuildFromEdges(std::vector<Edge>(base_edges.begin(),
                                          base_edges.end()));
  for (const auto& [kind, batch] : update_log) {
    if (kind == ShardedGraph::UpdateKind::kInsert) {
      oracle.InsertBatch(batch);
    } else {
      oracle.DeleteBatch(batch);
    }
  }

  if (graph.num_edges() != oracle.num_edges()) {
    return "num_edges mismatch: sharded=" + std::to_string(graph.num_edges()) +
           " oracle=" + std::to_string(oracle.num_edges());
  }
  for (VertexId v = 0; v < n; ++v) {
    if (router.Degree(v) != oracle.degree(v)) {
      return "degree mismatch at v=" + std::to_string(v) +
             ": sharded=" + std::to_string(router.Degree(v)) +
             " oracle=" + std::to_string(oracle.degree(v));
    }
  }
  const VertexId step = std::max<VertexId>(1, n / 4096);
  for (VertexId v = 0; v < n; v += step) {
    std::vector<VertexId> got = router.Neighbors(v);
    std::vector<VertexId> want;
    oracle.FillNeighbors(v, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      return "neighbor list mismatch at v=" + std::to_string(v);
    }
  }
  std::mt19937_64 rng(MixSeed(seed, 0x0bac1e));
  for (int i = 0; i < 512; ++i) {
    const VertexId src = static_cast<VertexId>(rng() % n);
    const VertexId dst = static_cast<VertexId>(rng() % n);
    if (router.HasEdge(src, dst) != oracle.HasEdge(src, dst)) {
      return "HasEdge mismatch at (" + std::to_string(src) + ", " +
             std::to_string(dst) + ")";
    }
  }
  for (int i = 0; i < 8; ++i) {
    const VertexId src = static_cast<VertexId>(rng() % n);
    const size_t got = router.KHop(src, 2).reached;
    const size_t want = OracleKHopReached(oracle, src, 2);
    if (got != want) {
      return "KHop(2) reach mismatch from " + std::to_string(src) +
             ": sharded=" + std::to_string(got) +
             " oracle=" + std::to_string(want);
    }
  }
  return "";
}

}  // namespace lsg
