// WorkloadDriver: replays a mixed serving workload against a Router at a
// target QPS and reports per-op-class latency distributions (DESIGN.md §13).
//
// Op classes and threading model:
//   - update batches: ONE writer thread issues every update (blocking
//     InsertBatch/DeleteBatch, so "update latency" is submit-to-visible:
//     enqueue + queue wait + apply + view refresh). A single writer keeps
//     the update sequence deterministic for the given seed, which is what
//     lets VerifyAgainstOracle replay the identical log into a fresh
//     single-engine graph and demand bit-for-bit equivalent state.
//   - point reads (HasEdge / Degree / Neighbors) and k-hop queries:
//     reader_threads threads issue them concurrently with the writer —
//     the reads-never-block-on-ingest property is exactly what the p99/p999
//     split between read classes and the update class exposes.
//
// Pacing: target_qps > 0 runs open-loop — each thread schedules op i at
// start + i/rate for its share of the rate and never sleeps when behind, so
// an overloaded server shows up as latency, not silently reduced load.
// target_qps == 0 is closed-loop (issue as fast as possible).
//
// Latencies are recorded into per-thread LatencyHistograms (no atomics on
// the hot path) and merged per class at the end.
#ifndef SRC_SERVICE_WORKLOAD_H_
#define SRC_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/gen/datasets.h"
#include "src/service/router.h"
#include "src/service/sharded_graph.h"
#include "src/util/metrics.h"

namespace lsg {

struct WorkloadSpec {
  // Total operations across all classes and threads.
  uint64_t ops = 10000;

  // Class mix: point reads + updates + k-hop (remainder) == 1.
  double point_read_frac = 0.60;
  double update_frac = 0.25;

  uint64_t update_batch_size = 1000;
  uint32_t khop_depth = 2;

  // Aggregate target rate across every thread; 0 = closed loop.
  double target_qps = 0.0;

  uint32_t reader_threads = 1;
  uint64_t seed = 1;

  // rMat parameters for generated update batches (scale should match the
  // served graph so updates hit resident vertices).
  DatasetSpec updates = TestDataset();

  // Record the (kind, batch) sequence for oracle replay. Costs memory
  // proportional to updates issued; turn off for long soak runs.
  bool keep_update_log = true;

  // "" when runnable, else the first violation.
  std::string Validate() const;
};

struct WorkloadResult {
  LatencyHistogram point_read;  // HasEdge / Degree / Neighbors
  LatencyHistogram update;      // blocking batch submit-to-visible
  LatencyHistogram khop;

  double wall_seconds = 0.0;
  uint64_t ops_issued = 0;
  uint64_t edges_submitted = 0;
  uint64_t edges_applied = 0;  // adds/removes the engines accepted
  uint64_t read_checksum = 0;  // defeats dead-read elimination; logged

  // The exact update sequence, in issue order (single writer = total
  // order), for VerifyAgainstOracle.
  std::vector<std::pair<ShardedGraph::UpdateKind, std::vector<Edge>>>
      update_log;

  double achieved_qps() const {
    return wall_seconds > 0 ? static_cast<double>(ops_issued) / wall_seconds
                            : 0.0;
  }
};

// Runs the workload to completion (all ops issued, ingest flushed).
WorkloadResult RunWorkload(Router& router, const WorkloadSpec& spec);

// Replays base_edges + update_log into a fresh single-engine LSGraph and
// compares it against the routed graph: total edge count, every vertex's
// degree, sorted neighbor lists, randomized HasEdge probes, and truncated
// k-hop reach counts from sampled sources. Returns "" on equivalence, else
// a human-readable description of the first divergence. Quiesces the
// service (Flush) first.
std::string VerifyAgainstOracle(
    Router& router, std::span<const Edge> base_edges,
    const std::vector<std::pair<ShardedGraph::UpdateKind, std::vector<Edge>>>&
        update_log,
    const Options& engine_options, uint64_t seed);

}  // namespace lsg

#endif  // SRC_SERVICE_WORKLOAD_H_
