// Vertex -> shard placement for the service layer (DESIGN.md §13).
//
// The engine layer stores adjacency; the service layer decides which engine
// instance owns which vertex. A ShardMap is that decision, pluggable so the
// placement ladder from SNIPPETS.md snippet 3 (hash -> range -> HDRF/Fennel
// style edge-cut placement) can be climbed without touching the router or
// the sharded graph: every policy reduces to a total function
// ShardOf: VertexId -> [0, num_shards), frozen before serving starts.
//
// Adjacency is source-partitioned: shard s owns every edge (u, v) with
// ShardOf(u) == s, so point reads and update groups for a vertex route to
// exactly one shard and batch apply never crosses shards. Edge-cut-aware
// policies (HDRF/Fennel) fit the same interface by observing the edge
// stream up front and emitting a per-vertex table (TableShardMap below;
// BuildFennelShardTable is the seed implementation).
#ifndef SRC_SERVICE_SHARD_MAP_H_
#define SRC_SERVICE_SHARD_MAP_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

class ShardMap {
 public:
  virtual ~ShardMap() = default;

  virtual uint32_t num_shards() const = 0;

  // Total, deterministic, and frozen once serving starts: the router, the
  // partitioned loader, and every test rely on two calls agreeing.
  virtual uint32_t ShardOf(VertexId v) const = 0;

  virtual std::string name() const = 0;
};

// Multiplicative (Fibonacci) hash then modulo: spreads the low-id hubs that
// dominate rMat/social graphs across shards instead of clustering them the
// way plain `v % shards` would under locality-correlated ids.
class HashShardMap final : public ShardMap {
 public:
  explicit HashShardMap(uint32_t num_shards) : num_shards_(num_shards) {}

  uint32_t num_shards() const override { return num_shards_; }

  uint32_t ShardOf(VertexId v) const override {
    uint64_t h = (static_cast<uint64_t>(v) + 1) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 32;
    return static_cast<uint32_t>(h % num_shards_);
  }

  std::string name() const override { return "hash"; }

 private:
  uint32_t num_shards_;
};

// Contiguous vertex ranges: shard i owns [i*ceil(n/S), ...). Keeps id
// locality within a shard (good for range scans / partitioned loading) at
// the cost of hub imbalance on skewed graphs.
class RangeShardMap final : public ShardMap {
 public:
  RangeShardMap(uint32_t num_shards, VertexId universe)
      : num_shards_(num_shards),
        per_shard_((universe + num_shards - 1) / num_shards) {}

  uint32_t num_shards() const override { return num_shards_; }

  uint32_t ShardOf(VertexId v) const override {
    uint32_t s = per_shard_ == 0 ? 0 : v / per_shard_;
    return s < num_shards_ ? s : num_shards_ - 1;
  }

  std::string name() const override { return "range"; }

 private:
  uint32_t num_shards_;
  VertexId per_shard_;
};

// Explicit per-vertex assignment — the drop-in point for edge-cut-aware
// placement: any HDRF/Fennel-style pass reduces to the table it emits.
// Vertices beyond the table (added after placement froze) fall back to the
// hash policy so the map stays total as the graph grows.
class TableShardMap final : public ShardMap {
 public:
  TableShardMap(uint32_t num_shards, std::vector<uint32_t> table,
                std::string name = "table")
      : num_shards_(num_shards),
        table_(std::move(table)),
        fallback_(num_shards),
        name_(std::move(name)) {}

  uint32_t num_shards() const override { return num_shards_; }

  uint32_t ShardOf(VertexId v) const override {
    if (v < table_.size()) {
      uint32_t s = table_[v];
      return s < num_shards_ ? s : fallback_.ShardOf(v);
    }
    return fallback_.ShardOf(v);
  }

  std::string name() const override { return name_; }

  const std::vector<uint32_t>& table() const { return table_; }

 private:
  uint32_t num_shards_;
  std::vector<uint32_t> table_;
  HashShardMap fallback_;
  std::string name_;
};

// One-pass Fennel-style greedy placement over an edge list: each vertex
// goes to the shard maximizing (neighbors already placed there) minus a
// load penalty gamma * (shard size / ideal size). Deterministic for a given
// edge order. This is the seed rung of the smarter-placement ladder — HDRF
// or multi-pass refinement slot in by producing the same table shape.
inline std::vector<uint32_t> BuildFennelShardTable(
    VertexId num_vertices, std::span<const Edge> edges, uint32_t num_shards,
    double gamma = 1.5) {
  std::vector<uint32_t> table(num_vertices, num_shards);  // num_shards = unplaced
  if (num_shards == 0) {
    return table;
  }
  // CSR offsets so each vertex's neighbors scan once (edges must be sorted
  // by src, the BuildDatasetEdges/PrepareBatch contract).
  std::vector<size_t> offset(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    if (e.src < num_vertices) {
      ++offset[e.src + 1];
    }
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    offset[v + 1] += offset[v];
  }
  std::vector<uint64_t> load(num_shards, 0);
  const double ideal =
      static_cast<double>(num_vertices) / static_cast<double>(num_shards);
  std::vector<double> score(num_shards);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      score[s] = -gamma * static_cast<double>(load[s]) / (ideal + 1.0);
    }
    for (size_t i = offset[v]; i < offset[v + 1]; ++i) {
      VertexId u = edges[i].dst;
      if (u < num_vertices && table[u] < num_shards) {
        score[table[u]] += 1.0;
      }
    }
    uint32_t best = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (score[s] > score[best]) {
        best = s;
      }
    }
    table[v] = best;
    ++load[best];
  }
  return table;
}

}  // namespace lsg

#endif  // SRC_SERVICE_SHARD_MAP_H_
