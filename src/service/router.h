// Router: the service layer's request front-end (DESIGN.md §13).
//
// Translates client operations into per-shard engine operations through the
// ShardMap, always against the shards' pinned read views, so every request
// class has the same contract:
//
//   - Point reads (HasEdge / Degree / Neighbors) touch exactly one shard —
//     source-partitioning puts vertex v's whole adjacency on ShardOf(v) —
//     and never block on ingest (they read the view, not the engine).
//   - k-hop queries run a truncated BFS by per-shard frontier exchange:
//     each round partitions the frontier by owner, expands every shard's
//     slice in parallel against that shard's view, deduplicates across
//     shards with one shared atomic visited bitmap, and swaps the union in
//     as the next frontier (the PR 3 hybrid VertexSubset is the carrier).
//     All views are pinned once per query, so a k-hop observes one batch
//     boundary per shard even while ingest proceeds underneath it.
//   - Update batches fan out to the per-shard ingest queues (blocking and
//     fire-and-forget flavors), preserving per-(src,dst) order.
#ifndef SRC_SERVICE_ROUTER_H_
#define SRC_SERVICE_ROUTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/service/sharded_graph.h"
#include "src/util/graph_types.h"

namespace lsg {

class Router {
 public:
  // The graph must outlive the router. Not owning: several routers (e.g.
  // per serving thread) can front one ShardedGraph.
  explicit Router(ShardedGraph& graph) : graph_(graph) {}

  // ---- Point reads (single shard, never block on ingest) ----

  bool HasEdge(VertexId src, VertexId dst) const;
  size_t Degree(VertexId v) const;
  std::vector<VertexId> Neighbors(VertexId v) const;

  // ---- k-hop (cross-shard frontier exchange) ----

  struct KHopResult {
    size_t reached = 0;        // distinct vertices within k hops, incl. source
    uint32_t hops = 0;         // rounds actually executed (< k if BFS dried up)
    size_t frontier_peak = 0;  // largest frontier seen (SLO telemetry)
  };
  KHopResult KHop(VertexId source, uint32_t k) const;

  // ---- Updates (fan out to the per-shard ingest pipelines) ----

  // Blocking: returns the number of edges actually added / removed once
  // every shard has applied its slice (and refreshed its view).
  size_t InsertBatch(std::span<const Edge> batch);
  size_t DeleteBatch(std::span<const Edge> batch);

  // Fire-and-forget: enqueue and return (blocks only on backpressure).
  void SubmitInsert(std::vector<Edge> batch);
  void SubmitDelete(std::vector<Edge> batch);

  void Flush() { graph_.Flush(); }

  ShardedGraph& graph() { return graph_; }
  const ShardedGraph& graph() const { return graph_; }

 private:
  ShardedGraph& graph_;
};

}  // namespace lsg

#endif  // SRC_SERVICE_ROUTER_H_
