#include "src/service/router.h"

#include <utility>

#include "src/core/edgemap.h"
#include "src/parallel/thread_pool.h"
#include "src/util/bitvector.h"

namespace lsg {

bool Router::HasEdge(VertexId src, VertexId dst) const {
  if (src >= graph_.num_vertices() || dst >= graph_.num_vertices()) {
    return false;
  }
  return graph_.ReadView(graph_.shard_map().ShardOf(src))->HasEdge(src, dst);
}

size_t Router::Degree(VertexId v) const {
  if (v >= graph_.num_vertices()) {
    return 0;
  }
  return graph_.ReadView(graph_.shard_map().ShardOf(v))->degree(v);
}

std::vector<VertexId> Router::Neighbors(VertexId v) const {
  std::vector<VertexId> out;
  if (v < graph_.num_vertices()) {
    graph_.ReadView(graph_.shard_map().ShardOf(v))->FillNeighbors(v, &out);
  }
  return out;
}

Router::KHopResult Router::KHop(VertexId source, uint32_t k) const {
  KHopResult result;
  const VertexId n = graph_.num_vertices();
  if (source >= n) {
    return result;
  }
  const uint32_t num_shards = graph_.num_shards();
  // Pin every shard's view once: the whole query reads one batch boundary
  // per shard no matter how many rounds it runs or what ingest does.
  std::vector<std::shared_ptr<const GraphSnapshot>> views(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    views[s] = graph_.ReadView(s);
  }
  ThreadPool& pool = graph_.service_pool();

  AtomicBitset visited(n);
  visited.Set(source);
  result.reached = 1;
  VertexSubset frontier = VertexSubset::Single(n, source);
  result.frontier_peak = 1;

  for (uint32_t hop = 0; hop < k && !frontier.empty(); ++hop) {
    // Partition the frontier by owning shard: each vertex's adjacency lives
    // entirely on ShardOf(v), so each slice expands against one view.
    std::vector<std::vector<VertexId>> mine(num_shards);
    for (VertexId v : frontier.vertices(&pool)) {
      mine[graph_.shard_map().ShardOf(v)].push_back(v);
    }
    // Expand all shards in parallel; the shared atomic visited bitmap
    // deduplicates across shards (TestAndSet admits each vertex once).
    std::vector<std::vector<VertexId>> discovered(num_shards);
    pool.ParallelFor(
        0, num_shards,
        [&](size_t s) {
          std::vector<VertexId>& out = discovered[s];
          for (VertexId v : mine[s]) {
            views[s]->map_neighbors(v, [&](VertexId u) {
              if (visited.TestAndSet(u)) {
                out.push_back(u);
              }
            });
          }
        },
        /*grain=*/1);
    size_t next_size = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      next_size += discovered[s].size();
    }
    std::vector<VertexId> next;
    next.reserve(next_size);
    for (uint32_t s = 0; s < num_shards; ++s) {
      next.insert(next.end(), discovered[s].begin(), discovered[s].end());
    }
    result.reached += next.size();
    result.frontier_peak = std::max(result.frontier_peak, next.size());
    ++result.hops;
    frontier = VertexSubset::FromVertices(n, std::move(next));
  }
  return result;
}

size_t Router::InsertBatch(std::span<const Edge> batch) {
  return graph_.SubmitAndWait(ShardedGraph::UpdateKind::kInsert,
                              std::vector<Edge>(batch.begin(), batch.end()));
}

size_t Router::DeleteBatch(std::span<const Edge> batch) {
  return graph_.SubmitAndWait(ShardedGraph::UpdateKind::kDelete,
                              std::vector<Edge>(batch.begin(), batch.end()));
}

void Router::SubmitInsert(std::vector<Edge> batch) {
  graph_.SubmitInsert(std::move(batch));
}

void Router::SubmitDelete(std::vector<Edge> batch) {
  graph_.SubmitDelete(std::move(batch));
}

}  // namespace lsg
