// ShardedGraph: the service layer's engine container (DESIGN.md §13).
//
// Owns N engine instances (the entire pre-existing library, unchanged,
// behind `GraphView`), each with
//   - a bounded ingest queue (backpressure: Submit blocks at queue_depth),
//   - one drainer thread that applies queued batches to the shard's engine,
//   - a worker slice of the thread budget: the injected budget of
//     engine_threads is striped max(1, budget / num_shards) per shard, so N
//     engines applying batches concurrently never oversubscribe the machine
//     the way N engines each defaulting to ThreadPool::Global()'s hardware
//     width would,
//   - a continuously refreshed read view: after every applied batch the
//     drainer pins a fresh `Snapshot()` (PR 6) and swaps it into the
//     shard's view slot. Readers copy the slot's shared_ptr (a pointer
//     swap-sized critical section, never the engine's writer gate), so
//     point reads and k-hop queries NEVER block on ingest — they read the
//     newest batch boundary, with staleness bounded by one in-flight batch.
//
// Adjacency is source-partitioned by a pluggable ShardMap: shard s holds
// every edge (u, v) with ShardOf(u) == s over the full (global) vertex id
// space, so engines need no id translation, per-(src,dst) update order is
// preserved by the per-shard FIFO, and the union of shard adjacencies is
// exactly the single-engine graph — the oracle equivalence bench_service
// and tests/service_test.cpp assert.
//
// Quiesced admin operations (BuildFromEdges/BuildFromLsgbin/AddVertices,
// CheckInvariants, destruction) must not run concurrently with reads or
// submits: they flush the queues and, for AddVertices, re-pin every view
// (the engine contract forbids snapshot reads racing vertex-array growth).
#ifndef SRC_SERVICE_SHARDED_GRAPH_H_
#define SRC_SERVICE_SHARDED_GRAPH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/lsgraph.h"
#include "src/core/options.h"
#include "src/service/shard_map.h"
#include "src/util/graph_types.h"

namespace lsg {

struct ServiceOptions {
  uint32_t num_shards = 4;

  // Pending batches a shard's queue holds before Submit blocks. Bounded so
  // a writer outpacing the drainers surfaces as submit-side latency (which
  // the workload driver measures) instead of unbounded memory growth.
  size_t queue_depth = 64;

  // Total engine-worker thread budget, striped across shards. 0 = the
  // injected pool's width (or hardware concurrency when pool is null).
  size_t engine_threads = 0;

  // Shared pool for service-side fan-out (cross-shard k-hop expansion,
  // partitioned builds). Null = ThreadPool::Global(). Per-shard engines do
  // NOT run on this pool — they get their stripe (see above).
  ThreadPool* pool = nullptr;

  // Per-shard engine configuration. stats/pool fields are managed by the
  // service (each shard gets its striped pool; counters stay per-engine and
  // are summed by AggregateStats).
  Options engine;

  // "" when usable, else the first violation (engine options included).
  std::string Validate() const {
    if (num_shards == 0 || num_shards > 4096) {
      return "num_shards must be in [1, 4096]";
    }
    if (queue_depth == 0 || queue_depth > (size_t{1} << 20)) {
      return "queue_depth must be in [1, 2^20]";
    }
    if (engine_threads > 4096) {
      return "engine_threads must be <= 4096";
    }
    return engine.Validate();
  }
};

class ShardedGraph {
 public:
  enum class UpdateKind : uint8_t { kInsert, kDelete };

  // Throws std::invalid_argument on invalid options or a shard_map whose
  // num_shards() disagrees with options.num_shards (null = HashShardMap).
  ShardedGraph(VertexId num_vertices, std::unique_ptr<ShardMap> shard_map,
               ServiceOptions options = {});
  ~ShardedGraph();

  ShardedGraph(const ShardedGraph&) = delete;
  ShardedGraph& operator=(const ShardedGraph&) = delete;

  uint32_t num_shards() const { return options_.num_shards; }
  const ShardMap& shard_map() const { return *shard_map_; }
  const ServiceOptions& options() const { return options_; }
  LSGraph& shard_engine(uint32_t s) { return *shards_[s]->engine; }
  const LSGraph& shard_engine(uint32_t s) const { return *shards_[s]->engine; }

  // ---- Quiesced admin operations (not concurrent with reads/submits) ----

  // Partitions the edge list by ShardOf(src) and bulk-builds every shard in
  // parallel on the service pool; refreshes all read views.
  void BuildFromEdges(std::vector<Edge> edges);

  // Partitioned parallel load: .lsgbin ranges decode on the service pool
  // and scatter per shard, then each shard bulk-builds its slice.
  void BuildFromLsgbin(const std::string& path);

  // Grows every shard's vertex universe (all shards share the global id
  // space). Flushes, releases the service's view pins, grows, re-pins.
  VertexId AddVertices(VertexId count);

  // ---- Ingest pipeline ----

  // Splits the batch per shard and enqueues; returns once enqueued (blocks
  // only on backpressure). Per-shard FIFO order = submission order.
  void SubmitInsert(std::vector<Edge> batch);
  void SubmitDelete(std::vector<Edge> batch);

  // Same, but waits for every shard to apply its slice; returns the number
  // of edges actually added/removed (summed over shards).
  size_t SubmitAndWait(UpdateKind kind, std::vector<Edge> batch);

  // Blocks until every queue is empty, every in-flight batch has applied,
  // and every read view reflects the last applied batch.
  void Flush();

  // ---- Read path (never blocks on ingest) ----

  // The shard's current pinned snapshot. Safe from any thread; holding the
  // returned handle keeps that version readable while later batches land.
  std::shared_ptr<const GraphSnapshot> ReadView(uint32_t s) const;

  VertexId num_vertices() const { return num_vertices_; }
  // Sum over shards. Exact when flushed; a racy-but-consistent-per-shard
  // sample during ingest.
  EdgeCount num_edges() const;
  uint64_t oob_rejected() const;

  // Sums every shard engine's counters into *out (Clear()ed first).
  void AggregateStats(CoreStats* out) const;

  // Deep check, quiesced: every engine's invariants plus the partition
  // invariant (no shard holds adjacency for a vertex it does not own).
  bool CheckInvariants() const;

  // ---- Test hooks ----

  // While paused, drainers finish their in-flight batch and then idle, so
  // queues fill deterministically (the backpressure test's lever).
  void PauseIngestForTest(bool paused);
  size_t PendingBatchesForTest(uint32_t s) const;

  // The shared fan-out pool (cross-shard k-hop expansion, partitioned
  // builds) — ServiceOptions::pool or ThreadPool::Global().
  ThreadPool& service_pool() const;

 private:
  // Submit-side completion: armed with the number of shard slices, each
  // drainer adds its applied count and decrements; Wait returns the total.
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
    size_t applied = 0;

    void Done(size_t n) {
      std::lock_guard<std::mutex> lk(mu);
      applied += n;
      if (--remaining == 0) {
        cv.notify_all();
      }
    }
    size_t Wait() {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [this] { return remaining == 0; });
      return applied;
    }
  };

  struct Task {
    UpdateKind kind;
    std::vector<Edge> edges;
    std::shared_ptr<Completion> done;  // null for fire-and-forget submits
  };

  struct Shard {
    // Destruction order (reverse of declaration): drainer joins first
    // (teardown sets stop), then the view pin releases, then the engine
    // (whose destructor drains the epoch reclaimer — safe only once the
    // pin is gone), then the worker-stripe pool.
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<LSGraph> engine;

    mutable std::mutex view_mu;
    std::shared_ptr<const GraphSnapshot> view;

    mutable std::mutex mu;
    std::condition_variable cv_work;   // drainer: queue non-empty / stop
    std::condition_variable cv_space;  // submitters: below queue_depth
    std::condition_variable cv_idle;   // Flush: empty and not applying
    std::deque<Task> queue;
    bool applying = false;
    bool stop = false;

    std::thread drainer;
  };

  void Submit(UpdateKind kind, std::vector<Edge> batch,
              std::shared_ptr<Completion> done);
  void DrainerLoop(uint32_t s);
  void RefreshView(uint32_t s);
  // Scatters edges into per-shard vectors by ShardOf(src).
  std::vector<std::vector<Edge>> PartitionBySrc(std::vector<Edge> edges) const;

  ServiceOptions options_;
  std::unique_ptr<ShardMap> shard_map_;
  VertexId num_vertices_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> paused_{false};
};

}  // namespace lsg

#endif  // SRC_SERVICE_SHARDED_GRAPH_H_
