#include "src/service/sharded_graph.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/gen/lsgbin.h"
#include "src/parallel/thread_pool.h"

namespace lsg {

ShardedGraph::ShardedGraph(VertexId num_vertices,
                           std::unique_ptr<ShardMap> shard_map,
                           ServiceOptions options)
    : options_(options), shard_map_(std::move(shard_map)),
      num_vertices_(num_vertices) {
  if (std::string err = options_.Validate(); !err.empty()) {
    throw std::invalid_argument("ShardedGraph: invalid ServiceOptions: " +
                                err);
  }
  if (shard_map_ == nullptr) {
    shard_map_ = std::make_unique<HashShardMap>(options_.num_shards);
  }
  if (shard_map_->num_shards() != options_.num_shards) {
    throw std::invalid_argument(
        "ShardedGraph: shard_map.num_shards() != options.num_shards");
  }

  // Stripe the engine-worker budget: with S shards each applying batches
  // concurrently, per-shard pools of budget/S workers keep the total at the
  // budget instead of S * hardware_concurrency (the oversubscription an
  // engine-per-shard naively built from defaults would create).
  size_t budget = options_.engine_threads;
  if (budget == 0) {
    budget = options_.pool != nullptr
                 ? options_.pool->num_threads()
                 : std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  size_t per_shard = std::max<size_t>(1, budget / options_.num_shards);

  shards_.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool = std::make_unique<ThreadPool>(per_shard);
    Options engine_options = options_.engine;
    engine_options.pool = shard->pool.get();
    shard->engine =
        std::make_unique<LSGraph>(num_vertices, engine_options, nullptr);
    shards_.push_back(std::move(shard));
  }
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    RefreshView(s);
    shards_[s]->drainer = std::thread([this, s] { DrainerLoop(s); });
  }
}

ShardedGraph::~ShardedGraph() {
  // Teardown ordering audit (DESIGN.md §13): (1) drain the queues so no
  // submitted work is lost, (2) stop and join the drainers, (3) release the
  // service's view pins, (4) destroy the engines — their destructors prune
  // version chains and drain the epoch reclaimer, which requires every pin
  // gone — and (5) destroy the worker pools (members of Shard, declared
  // before the engine). External ReadView handles must already be gone
  // (snapshots must not outlive their engine).
  paused_.store(false, std::memory_order_release);
  Flush();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lk(shard->mu);
      shard->stop = true;
    }
    shard->cv_work.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->drainer.joinable()) {
      shard->drainer.join();
    }
    std::lock_guard<std::mutex> lk(shard->view_mu);
    shard->view.reset();
  }
  // shards_ destruction releases engines then pools per member order.
}

ThreadPool& ShardedGraph::service_pool() const {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
}

std::vector<std::vector<Edge>> ShardedGraph::PartitionBySrc(
    std::vector<Edge> edges) const {
  std::vector<std::vector<Edge>> parts(options_.num_shards);
  // Size each part up front so the scatter pass never reallocates.
  std::vector<size_t> counts(options_.num_shards, 0);
  for (const Edge& e : edges) {
    ++counts[shard_map_->ShardOf(e.src)];
  }
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    parts[s].reserve(counts[s]);
  }
  for (const Edge& e : edges) {
    parts[shard_map_->ShardOf(e.src)].push_back(e);
  }
  return parts;
}

void ShardedGraph::BuildFromEdges(std::vector<Edge> edges) {
  Flush();
  std::vector<std::vector<Edge>> parts = PartitionBySrc(std::move(edges));
  // One shard per service-pool slot; each build then fans out on its own
  // worker stripe.
  service_pool().ParallelFor(
      0, options_.num_shards,
      [this, &parts](size_t s) {
        shards_[s]->engine->BuildFromEdges(std::move(parts[s]));
      },
      /*grain=*/1);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    RefreshView(s);
  }
}

void ShardedGraph::BuildFromLsgbin(const std::string& path) {
  Flush();
  std::vector<std::vector<Edge>> parts = LoadLsgbinPartitioned(
      path, options_.num_shards,
      [this](VertexId v) { return shard_map_->ShardOf(v); }, &service_pool());
  service_pool().ParallelFor(
      0, options_.num_shards,
      [this, &parts](size_t s) {
        shards_[s]->engine->BuildFromEdges(std::move(parts[s]));
      },
      /*grain=*/1);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    RefreshView(s);
  }
}

VertexId ShardedGraph::AddVertices(VertexId count) {
  Flush();
  // The engine contract forbids snapshot reads racing vertex-array growth,
  // so the service's own pins release first and re-pin after. Caller-held
  // ReadView handles stay pinned at their version (reading them *during*
  // the growth is what the quiesced-admin-op contract forbids).
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->view_mu);
    shard->view.reset();
  }
  VertexId first = num_vertices_;
  for (auto& shard : shards_) {
    VertexId got = shard->engine->AddVertices(count);
    (void)got;
  }
  num_vertices_ += count;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    RefreshView(s);
  }
  return first;
}

void ShardedGraph::Submit(UpdateKind kind, std::vector<Edge> batch,
                          std::shared_ptr<Completion> done) {
  std::vector<std::vector<Edge>> parts = PartitionBySrc(std::move(batch));
  if (done != nullptr) {
    // Arm before any enqueue: a drainer may finish a slice while later
    // slices are still being enqueued.
    std::lock_guard<std::mutex> lk(done->mu);
    done->remaining = options_.num_shards;
  }
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    Shard& shard = *shards_[s];
    Task task{kind, std::move(parts[s]), done};
    std::unique_lock<std::mutex> lk(shard.mu);
    shard.cv_space.wait(lk, [&shard, this] {
      return shard.queue.size() < options_.queue_depth;
    });
    shard.queue.push_back(std::move(task));
    lk.unlock();
    shard.cv_work.notify_one();
  }
}

void ShardedGraph::SubmitInsert(std::vector<Edge> batch) {
  Submit(UpdateKind::kInsert, std::move(batch), nullptr);
}

void ShardedGraph::SubmitDelete(std::vector<Edge> batch) {
  Submit(UpdateKind::kDelete, std::move(batch), nullptr);
}

size_t ShardedGraph::SubmitAndWait(UpdateKind kind, std::vector<Edge> batch) {
  auto done = std::make_shared<Completion>();
  Submit(kind, std::move(batch), done);
  return done->Wait();
}

void ShardedGraph::Flush() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lk(shard->mu);
    shard->cv_idle.wait(lk, [&shard] {
      return shard->queue.empty() && !shard->applying;
    });
  }
}

void ShardedGraph::DrainerLoop(uint32_t s) {
  Shard& shard = *shards_[s];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(shard.mu);
      shard.cv_work.wait(lk, [&shard, this] {
        return shard.stop ||
               (!shard.queue.empty() &&
                !paused_.load(std::memory_order_acquire));
      });
      if (shard.queue.empty()) {
        if (shard.stop) {
          return;
        }
        continue;
      }
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.applying = true;
    }
    shard.cv_space.notify_one();

    size_t applied = 0;
    if (!task.edges.empty()) {
      applied = task.kind == UpdateKind::kInsert
                    ? shard.engine->InsertBatch(task.edges)
                    : shard.engine->DeleteBatch(task.edges);
      // Pin the new batch boundary BEFORE reporting the batch applied or
      // idle, so Flush()/SubmitAndWait() returning implies reads see it.
      RefreshView(s);
    }
    if (task.done != nullptr) {
      task.done->Done(applied);
    }
    {
      std::lock_guard<std::mutex> lk(shard.mu);
      shard.applying = false;
    }
    shard.cv_idle.notify_all();
  }
}

void ShardedGraph::RefreshView(uint32_t s) {
  Shard& shard = *shards_[s];
  std::shared_ptr<const GraphSnapshot> fresh = shard.engine->Snapshot();
  std::shared_ptr<const GraphSnapshot> old;
  {
    std::lock_guard<std::mutex> lk(shard.view_mu);
    old = std::move(shard.view);
    shard.view = std::move(fresh);
  }
  // `old` releases outside the slot lock: dropping the last reference runs
  // the snapshot-release path (chain pruning under the engine's gate).
}

std::shared_ptr<const GraphSnapshot> ShardedGraph::ReadView(
    uint32_t s) const {
  const Shard& shard = *shards_[s];
  std::lock_guard<std::mutex> lk(shard.view_mu);
  return shard.view;
}

EdgeCount ShardedGraph::num_edges() const {
  EdgeCount total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine->num_edges();
  }
  return total;
}

uint64_t ShardedGraph::oob_rejected() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine->oob_rejected();
  }
  return total;
}

void ShardedGraph::AggregateStats(CoreStats* out) const {
  out->Clear();
  auto add = [](std::atomic<uint64_t>& dst, uint64_t v) {
    dst.fetch_add(v, std::memory_order_relaxed);
  };
  for (const auto& shard : shards_) {
    const CoreStats& s = shard->engine->stats();
    add(out->ria_to_hitree_conversions, s.ria_to_hitree_conversions.load());
    add(out->ria_expansions, s.ria_expansions.load());
    add(out->lia_child_creations, s.lia_child_creations.load());
    add(out->hitree_to_ria_conversions, s.hitree_to_ria_conversions.load());
    add(out->ria_to_array_conversions, s.ria_to_array_conversions.load());
    add(out->ria_contractions, s.ria_contractions.load());
    add(out->bytes_resident, s.bytes_resident.load());
    add(out->neighbors_decoded, s.neighbors_decoded.load());
    add(out->cria_recompressions, s.cria_recompressions.load());
    add(out->pull_neighbors_decoded, s.pull_neighbors_decoded.load());
    add(out->pull_degree_scanned, s.pull_degree_scanned.load());
    add(out->pull_early_exits, s.pull_early_exits.load());
    add(out->edgemap_pull_rounds, s.edgemap_pull_rounds.load());
    add(out->edgemap_push_rounds, s.edgemap_push_rounds.load());
    add(out->snapshots_live, s.snapshots_live.load());
    add(out->cow_copies, s.cow_copies.load());
    add(out->deferred_frees, s.deferred_frees.load());
  }
}

bool ShardedGraph::CheckInvariants() const {
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const LSGraph& g = *shards_[s]->engine;
    if (!g.CheckInvariants()) {
      return false;
    }
    // Partition invariant: a shard stores adjacency only for vertices the
    // map assigns to it.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.degree(v) != 0 && shard_map_->ShardOf(v) != s) {
        return false;
      }
    }
  }
  return true;
}

void ShardedGraph::PauseIngestForTest(bool paused) {
  paused_.store(paused, std::memory_order_release);
  if (!paused) {
    for (auto& shard : shards_) {
      shard->cv_work.notify_all();
    }
  }
}

size_t ShardedGraph::PendingBatchesForTest(uint32_t s) const {
  std::lock_guard<std::mutex> lk(shards_[s]->mu);
  return shards_[s]->queue.size();
}

}  // namespace lsg
