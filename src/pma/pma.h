// Packed Memory Array: an ordered gapped array with an implicit binary tree
// of density bounds (paper §2.2, Bender & Hu).
//
// This is the substrate that Terrace stores medium-degree edges in, the
// structure LSGraph's RIA is designed to replace, and the subject of the
// Fig. 4 breakdown (search time vs data-movement time). Keys are arbitrary
// uint64_t; the Terrace baseline packs (src << 32 | dst) so all edges live in
// one globally-sorted array, faithfully reproducing its long-distance data
// movement.
//
// Not thread-safe: callers serialize writers (Terrace's scaling collapse in
// Fig. 17 is modeled by its writers contending on one PMA lock).
#ifndef SRC_PMA_PMA_H_
#define SRC_PMA_PMA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsg {

struct PmaStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t elements_moved = 0;    // slots written during shifts/rebalances
  uint64_t rebalances = 0;
  uint64_t resizes = 0;
  uint64_t search_probes = 0;     // slot inspections during binary search
  double search_seconds = 0.0;
  double move_seconds = 0.0;

  void Clear() { *this = PmaStats{}; }
};

struct PmaOptions {
  // Density bounds at the leaves; interpolated toward (root_lower,
  // root_upper) at the root, per the classic PMA analysis. Terrace's
  // configuration in the paper corresponds to low densities (0.125, 0.25).
  double leaf_lower = 0.10;
  double leaf_upper = 0.90;
  double root_lower = 0.25;
  double root_upper = 0.75;
  size_t initial_capacity = 64;
  // When true, Insert/Delete time their search and movement phases
  // separately (Fig. 4b); costs one steady_clock read pair per phase.
  bool timing = false;
};

class Pma {
 public:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  explicit Pma(PmaOptions options = {});

  // Inserts key; returns false if already present. key must not be kEmpty.
  bool Insert(uint64_t key);

  // Removes key; returns false if absent.
  bool Delete(uint64_t key);

  bool Contains(uint64_t key) const;

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  bool empty() const { return size_ == 0; }

  // Applies f(key) to every key in [lo, hi) in ascending order.
  template <typename F>
  void MapRange(uint64_t lo, uint64_t hi, F&& f) const {
    size_t i = LowerBound(lo);
    for (; i < slots_.size(); ++i) {
      uint64_t k = slots_[i];
      if (k == kEmpty) {
        continue;
      }
      if (k >= hi) {
        return;
      }
      f(k);
    }
  }

  // Applies f(key) to every key in ascending order.
  template <typename F>
  void MapAll(F&& f) const {
    for (uint64_t k : slots_) {
      if (k != kEmpty) {
        f(k);
      }
    }
  }

  // Applies f(key) to every occupied slot in slot-index range [lo, hi).
  // Used with an external offset array for O(1) range location.
  template <typename F>
  void MapSlots(size_t lo, size_t hi, F&& f) const {
    for (size_t i = lo; i < hi; ++i) {
      if (slots_[i] != kEmpty) {
        f(slots_[i]);
      }
    }
  }

  // MapSlots that stops as soon as f returns false; false iff cut short.
  template <typename F>
  bool MapSlotsWhile(size_t lo, size_t hi, F&& f) const {
    for (size_t i = lo; i < hi; ++i) {
      if (slots_[i] != kEmpty && !f(slots_[i])) {
        return false;
      }
    }
    return true;
  }

  // Raw slot access for offset-array construction (kEmpty = gap).
  uint64_t SlotAt(size_t i) const { return slots_[i]; }

  // Number of keys in [lo, hi).
  size_t CountRange(uint64_t lo, uint64_t hi) const;

  const PmaStats& stats() const { return stats_; }
  PmaStats& mutable_stats() { return stats_; }

  size_t memory_footprint() const { return slots_.capacity() * sizeof(uint64_t); }

  // Index of the first slot whose key is >= key (empty slots skipped
  // logically). Exposed for tests.
  size_t LowerBound(uint64_t key) const;

 private:
  size_t segment_size() const { return segment_size_; }
  size_t num_segments() const { return slots_.size() / segment_size_; }
  int tree_height() const;

  // Density bounds for a window `depth` levels above the leaves.
  double UpperDensity(int depth) const;
  double LowerDensity(int depth) const;

  size_t CountOccupied(size_t begin, size_t end) const;

  // Evenly redistributes the occupied keys of [begin, end), optionally
  // inserting `extra` at its sorted position (extra == kEmpty means none).
  void Redistribute(size_t begin, size_t end, uint64_t extra);

  void Grow();
  void Shrink();
  void RecomputeGeometry();

  // Inserts key into leaf segment [seg_begin, seg_begin + segment_size_)
  // by shifting within the segment. Requires a free slot in the segment.
  void InsertIntoSegment(size_t seg_begin, size_t pos, uint64_t key);

  std::vector<uint64_t> slots_;
  size_t size_ = 0;
  size_t segment_size_ = 8;
  PmaOptions options_;
  PmaStats stats_;
};

}  // namespace lsg

#endif  // SRC_PMA_PMA_H_
