#include "src/pma/pma.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "src/util/timer.h"

namespace lsg {

namespace {

size_t NextPow2(size_t x) { return std::bit_ceil(x); }

}  // namespace

Pma::Pma(PmaOptions options) : options_(options) {
  size_t cap = NextPow2(std::max<size_t>(options_.initial_capacity, 8));
  options_.initial_capacity = cap;
  slots_.assign(cap, kEmpty);
  RecomputeGeometry();
}

void Pma::RecomputeGeometry() {
  size_t cap = slots_.size();
  // Segment size Θ(log N), rounded to a power of two so windows nest.
  size_t log = static_cast<size_t>(std::bit_width(cap));
  segment_size_ = std::min(cap, NextPow2(std::max<size_t>(log, 4)));
}

int Pma::tree_height() const {
  return static_cast<int>(std::bit_width(num_segments()) - 1);
}

double Pma::UpperDensity(int depth) const {
  int h = tree_height();
  if (h == 0) {
    return options_.leaf_upper;
  }
  double t = static_cast<double>(depth) / h;
  return options_.leaf_upper + (options_.root_upper - options_.leaf_upper) * t;
}

double Pma::LowerDensity(int depth) const {
  int h = tree_height();
  if (h == 0) {
    return options_.leaf_lower;
  }
  double t = static_cast<double>(depth) / h;
  return options_.leaf_lower + (options_.root_lower - options_.leaf_lower) * t;
}

size_t Pma::LowerBound(uint64_t key) const {
  // Binary search over a gapped array: an empty probe is resolved by
  // scanning left to the nearest occupied slot. This is exactly the
  // dependent-probe, poor-spatial-locality search pattern of paper §2.3.
  auto& stats = const_cast<PmaStats&>(stats_);
  size_t lo = 0;
  size_t hi = slots_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    size_t m = mid;
    ++stats.search_probes;
    while (m > lo && slots_[m] == kEmpty) {
      --m;
      ++stats.search_probes;
    }
    if (slots_[m] == kEmpty) {
      lo = mid + 1;  // [lo, mid] entirely empty
    } else if (slots_[m] < key) {
      lo = mid + 1;
    } else {
      hi = m;
    }
  }
  return lo;
}

bool Pma::Contains(uint64_t key) const {
  size_t i = LowerBound(key);
  while (i < slots_.size() && slots_[i] == kEmpty) {
    ++i;
  }
  return i < slots_.size() && slots_[i] == key;
}

size_t Pma::CountRange(uint64_t lo, uint64_t hi) const {
  size_t count = 0;
  MapRange(lo, hi, [&count](uint64_t) { ++count; });
  return count;
}

size_t Pma::CountOccupied(size_t begin, size_t end) const {
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    count += slots_[i] != kEmpty;
  }
  return count;
}

void Pma::InsertIntoSegment(size_t seg_begin, size_t pos, uint64_t key) {
  // Gather, insert in order, rewrite left-packed. Keys never leave their
  // segment, so global order across segments is preserved.
  size_t seg_end = seg_begin + segment_size_;
  uint64_t buf[128];
  size_t n = 0;
  for (size_t i = seg_begin; i < seg_end; ++i) {
    if (slots_[i] != kEmpty) {
      buf[n++] = slots_[i];
    }
  }
  uint64_t* ins = std::lower_bound(buf, buf + n, key);
  std::copy_backward(ins, buf + n, buf + n + 1);
  *ins = key;
  ++n;
  assert(n <= segment_size_);
  for (size_t i = 0; i < n; ++i) {
    slots_[seg_begin + i] = buf[i];
  }
  for (size_t i = seg_begin + n; i < seg_end; ++i) {
    slots_[i] = kEmpty;
  }
  stats_.elements_moved += n;
}

void Pma::Redistribute(size_t begin, size_t end, uint64_t extra) {
  std::vector<uint64_t> buf;
  buf.reserve(end - begin + 1);
  for (size_t i = begin; i < end; ++i) {
    if (slots_[i] != kEmpty) {
      buf.push_back(slots_[i]);
    }
  }
  if (extra != kEmpty) {
    buf.insert(std::lower_bound(buf.begin(), buf.end(), extra), extra);
  }
  size_t range = end - begin;
  size_t m = buf.size();
  assert(m <= range);
  std::fill(slots_.begin() + begin, slots_.begin() + end, kEmpty);
  for (size_t i = 0; i < m; ++i) {
    slots_[begin + i * range / m] = buf[i];
  }
  stats_.elements_moved += m;
  ++stats_.rebalances;
}

void Pma::Grow() {
  slots_.resize(slots_.size() * 2, kEmpty);
  RecomputeGeometry();
  ++stats_.resizes;
}

void Pma::Shrink() {
  size_t newcap = slots_.size() / 2;
  if (newcap < options_.initial_capacity) {
    return;
  }
  std::vector<uint64_t> buf;
  buf.reserve(size_);
  for (uint64_t k : slots_) {
    if (k != kEmpty) {
      buf.push_back(k);
    }
  }
  assert(buf.size() <= newcap);
  slots_.assign(newcap, kEmpty);
  RecomputeGeometry();
  size_t m = buf.size();
  for (size_t i = 0; i < m; ++i) {
    slots_[i * newcap / m] = buf[i];
  }
  stats_.elements_moved += m;
  ++stats_.resizes;
}

bool Pma::Insert(uint64_t key) {
  assert(key != kEmpty);
  Timer timer;
  size_t pos = LowerBound(key);
  size_t probe = pos;
  while (probe < slots_.size() && slots_[probe] == kEmpty) {
    ++probe;
  }
  if (options_.timing) {
    stats_.search_seconds += timer.Seconds();
    timer.Reset();
  }
  if (probe < slots_.size() && slots_[probe] == key) {
    return false;
  }

  size_t wbegin = pos / segment_size_ * segment_size_;
  if (wbegin == slots_.size()) {
    wbegin -= segment_size_;  // insert-at-end lands in the last segment
  }
  size_t wsize = segment_size_;
  int depth = 0;
  for (;;) {
    size_t occ = CountOccupied(wbegin, wbegin + wsize);
    if (static_cast<double>(occ + 1) <= UpperDensity(depth) * wsize) {
      if (depth == 0) {
        InsertIntoSegment(wbegin, pos, key);
      } else {
        Redistribute(wbegin, wbegin + wsize, key);
      }
      break;
    }
    if (wsize == slots_.size()) {
      Grow();
      Redistribute(0, slots_.size(), key);
      break;
    }
    ++depth;
    wsize *= 2;
    wbegin = wbegin / wsize * wsize;
  }
  ++size_;
  ++stats_.inserts;
  if (options_.timing) {
    stats_.move_seconds += timer.Seconds();
  }
  return true;
}

bool Pma::Delete(uint64_t key) {
  Timer timer;
  size_t pos = LowerBound(key);
  while (pos < slots_.size() && slots_[pos] == kEmpty) {
    ++pos;
  }
  if (options_.timing) {
    stats_.search_seconds += timer.Seconds();
    timer.Reset();
  }
  if (pos == slots_.size() || slots_[pos] != key) {
    return false;
  }
  slots_[pos] = kEmpty;
  --size_;
  ++stats_.deletes;

  size_t wbegin = pos / segment_size_ * segment_size_;
  size_t wsize = segment_size_;
  int depth = 0;
  for (;;) {
    size_t occ = CountOccupied(wbegin, wbegin + wsize);
    if (static_cast<double>(occ) >= LowerDensity(depth) * wsize) {
      if (depth > 0) {
        Redistribute(wbegin, wbegin + wsize, kEmpty);
      }
      break;
    }
    if (wsize == slots_.size()) {
      if (slots_.size() > options_.initial_capacity &&
          size_ * 2 <= slots_.size()) {
        Shrink();
      }
      break;
    }
    ++depth;
    wsize *= 2;
    wbegin = wbegin / wsize * wsize;
  }
  if (options_.timing) {
    stats_.move_seconds += timer.Seconds();
  }
  return true;
}

}  // namespace lsg
