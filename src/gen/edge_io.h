// Edge-list file I/O: plain text ("src dst" per line, '#' comments, the SNAP
// convention) and a packed little-endian binary format for fast reload.
#ifndef SRC_GEN_EDGE_IO_H_
#define SRC_GEN_EDGE_IO_H_

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

inline void WriteEdgesText(const std::string& path,
                           const std::vector<Edge>& edges) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  for (const Edge& e : edges) {
    std::fprintf(f, "%u %u\n", e.src, e.dst);
  }
  std::fclose(f);
}

inline std::vector<Edge> ReadEdgesText(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for read: " + path);
  }
  std::vector<Edge> edges;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') {
      continue;
    }
    unsigned long src = 0;
    unsigned long dst = 0;
    if (std::sscanf(line, "%lu %lu", &src, &dst) == 2) {
      edges.push_back(Edge{static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    }
  }
  std::fclose(f);
  return edges;
}

inline void WriteEdgesBinary(const std::string& path,
                             const std::vector<Edge>& edges) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  uint64_t count = edges.size();
  std::fwrite(&count, sizeof(count), 1, f);
  if (count != 0) {
    std::fwrite(edges.data(), sizeof(Edge), count, f);
  }
  std::fclose(f);
}

inline std::vector<Edge> ReadEdgesBinary(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for read: " + path);
  }
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) {
    std::fclose(f);
    throw std::runtime_error("truncated header: " + path);
  }
  std::vector<Edge> edges(count);
  if (count != 0 && std::fread(edges.data(), sizeof(Edge), count, f) != count) {
    std::fclose(f);
    throw std::runtime_error("truncated body: " + path);
  }
  std::fclose(f);
  return edges;
}

}  // namespace lsg

#endif  // SRC_GEN_EDGE_IO_H_
