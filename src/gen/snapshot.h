// Engine-agnostic snapshot helpers: dump any engine's edges (for
// serialization, cross-engine migration, or CSR freezing) and reload them.
#ifndef SRC_GEN_SNAPSHOT_H_
#define SRC_GEN_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/gen/csr.h"
#include "src/gen/edge_io.h"
#include "src/util/graph_types.h"

namespace lsg {

// Extracts the full edge list of any engine, sorted by (src, dst).
template <typename G>
std::vector<Edge> DumpEdges(const G& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    g.map_neighbors(v, [&edges, v](VertexId u) {
      edges.push_back(Edge{v, u});
    });
  }
  return edges;
}

// Freezes a streaming engine into a static CSR snapshot (for read-only
// analytics phases or archival).
template <typename G>
Csr FreezeToCsr(const G& g) {
  return Csr::FromEdges(g.num_vertices(), DumpEdges(g));
}

// Persists any engine's current snapshot to the packed binary edge format.
template <typename G>
void SaveSnapshot(const G& g, const std::string& path) {
  WriteEdgesBinary(path, DumpEdges(g));
}

// Loads a snapshot into a freshly-built engine of type G (must expose a
// (VertexId) constructor and BuildFromEdges). Engines are intentionally
// non-movable, hence the unique_ptr.
template <typename G>
std::unique_ptr<G> LoadSnapshot(const std::string& path,
                                VertexId num_vertices) {
  auto g = std::make_unique<G>(num_vertices);
  g->BuildFromEdges(ReadEdgesBinary(path));
  return g;
}

}  // namespace lsg

#endif  // SRC_GEN_SNAPSHOT_H_
