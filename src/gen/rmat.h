// Recursive-matrix (R-MAT) edge generator.
//
// The paper synthesizes both its RM dataset and every update batch with the
// rMat generator at a=0.5, b=c=0.1, d=0.3 (§6.1); this is the same recursive
// quadrant-descent construction. Deterministic in (seed, index), so batches
// are reproducible and parallel generation needs no coordination.
#ifndef SRC_GEN_RMAT_H_
#define SRC_GEN_RMAT_H_

#include <cstdint>
#include <vector>

#include "src/util/graph_types.h"
#include "src/util/prng.h"

namespace lsg {

struct RmatParams {
  int scale = 20;  // 2^scale vertices
  double a = 0.5;
  double b = 0.1;
  double c = 0.1;
  // d = 1 - a - b - c
};

class RmatGenerator {
 public:
  RmatGenerator(RmatParams params, uint64_t seed)
      : params_(params), seed_(seed) {}

  VertexId num_vertices() const { return VertexId{1} << params_.scale; }

  // The i-th edge of the stream; stable under re-invocation.
  Edge EdgeAt(uint64_t i) const {
    SplitMix64 rng(MixSeed(seed_, i));
    VertexId src = 0;
    VertexId dst = 0;
    double ab = params_.a + params_.b;
    double abc = ab + params_.c;
    for (int bit = params_.scale - 1; bit >= 0; --bit) {
      double r = rng.NextDouble();
      if (r < params_.a) {
        // top-left: neither bit set
      } else if (r < ab) {
        dst |= VertexId{1} << bit;
      } else if (r < abc) {
        src |= VertexId{1} << bit;
      } else {
        src |= VertexId{1} << bit;
        dst |= VertexId{1} << bit;
      }
    }
    return Edge{src, dst};
  }

  // Generates edges [first, first + count) of the stream.
  std::vector<Edge> Generate(uint64_t first, uint64_t count) const {
    std::vector<Edge> edges;
    edges.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      edges.push_back(EdgeAt(first + i));
    }
    return edges;
  }

 private:
  RmatParams params_;
  uint64_t seed_;
};

// Uniform Erdos-Renyi-style edge stream over 2^scale vertices, used by tests
// as a low-skew contrast to rMat.
class UniformGenerator {
 public:
  UniformGenerator(int scale, uint64_t seed) : scale_(scale), seed_(seed) {}

  VertexId num_vertices() const { return VertexId{1} << scale_; }

  Edge EdgeAt(uint64_t i) const {
    SplitMix64 rng(MixSeed(seed_, i));
    VertexId mask = (VertexId{1} << scale_) - 1;
    return Edge{static_cast<VertexId>(rng.Next() & mask),
                static_cast<VertexId>(rng.Next() & mask)};
  }

  std::vector<Edge> Generate(uint64_t first, uint64_t count) const {
    std::vector<Edge> edges;
    edges.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      edges.push_back(EdgeAt(first + i));
    }
    return edges;
  }

 private:
  int scale_;
  uint64_t seed_;
};

}  // namespace lsg

#endif  // SRC_GEN_RMAT_H_
