// .lsgbin: a compressed CSR-style binary graph container with per-range
// offsets, built for parallel loading (ROADMAP item 3; ParaGrapher's
// selective-loading WebGraph API is the external model, PAPERS.md).
//
// Layout (all fixed-width fields little-endian uint64):
//
//   header    magic, num_vertices, num_edges, num_ranges
//   ranges    (num_ranges + 1) x {first_vertex, edge_offset, byte_offset}
//   payload   per vertex: varint degree, then (degree > 0) varint first
//             neighbor followed by degree-1 varint deltas (strictly
//             ascending, so every delta is >= 1)
//
// The range table carves the vertex space into contiguous, edge-balanced
// spans; entry i names its first vertex, its first edge's rank, and its
// payload byte start, with a sentinel entry (num_vertices, num_edges,
// payload_size) closing the last span. A loader thread seeks straight to
// its range's bytes and decodes independently — no scan-to-find-my-offset
// pass — which is what makes the 1->8 thread speedup near-linear.
//
// The payload is decoded with the bounds-checked TryReadVarint (file bytes
// are untrusted input): truncation, continuation runs past a range end, a
// 64-bit overflow, or an id outside [0, num_vertices) all fail loading with
// a descriptive error instead of UB.
#ifndef SRC_GEN_LSGBIN_H_
#define SRC_GEN_LSGBIN_H_

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ctree/compressed_chunk.h"
#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

namespace lsgbin_internal {

// The magic spelled out from the characters so the constant can't rot.
inline uint64_t Magic() {
  const char tag[8] = {'L', 'S', 'G', 'B', 'I', 'N', '0', '1'};
  uint64_t m = 0;
  std::memcpy(&m, tag, sizeof(m));
  return m;
}

struct RangeEntry {
  uint64_t first_vertex;
  uint64_t edge_offset;
  uint64_t byte_offset;  // relative to payload start
};

inline void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  uint8_t buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  out.insert(out.end(), buf, buf + sizeof(buf));
}

}  // namespace lsgbin_internal

struct LoadedGraph {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;  // CSR order: sorted by (src, dst), unique
};

// Serializes a graph to `path`. `sorted_edges` must be sorted by (src, dst)
// and duplicate-free, with every endpoint < num_vertices (the PrepareBatch /
// BuildDatasetEdges output contract). num_ranges == 0 picks an edge-count
// based default; it is clamped so every range holds at least one vertex.
// Returns the number of bytes written.
inline size_t WriteLsgbin(const std::string& path, VertexId num_vertices,
                          std::span<const Edge> sorted_edges,
                          size_t num_ranges = 0) {
  using lsgbin_internal::AppendU64;
  using lsgbin_internal::RangeEntry;
  const size_t m = sorted_edges.size();
  if (num_ranges == 0) {
    num_ranges = std::clamp<size_t>(m / 32768, 1, 1024);
  }
  num_ranges = std::clamp<size_t>(num_ranges, 1, std::max<size_t>(1, num_vertices));

  // Encode the payload vertex by vertex, recording range cut points at
  // vertex boundaries once a range has accumulated its share of edges.
  std::vector<uint8_t> payload;
  payload.reserve(m * 2 + num_vertices);
  std::vector<RangeEntry> ranges;
  ranges.reserve(num_ranges + 1);
  const uint64_t edges_per_range = (m + num_ranges - 1) / std::max<size_t>(1, num_ranges);
  size_t e = 0;  // next edge to encode
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (ranges.empty() ||
        (ranges.size() < num_ranges &&
         e >= ranges.size() * std::max<uint64_t>(1, edges_per_range))) {
      ranges.push_back({v, e, payload.size()});
    }
    size_t begin = e;
    while (e < m && sorted_edges[e].src == v) {
      ++e;
    }
    assert(e == m || sorted_edges[e].src > v);
    size_t deg = e - begin;
    AppendVarint(payload, deg);
    if (deg != 0) {
      AppendVarint(payload, sorted_edges[begin].dst);
      for (size_t i = begin + 1; i < e; ++i) {
        assert(sorted_edges[i].dst > sorted_edges[i - 1].dst);
        AppendVarint(payload, sorted_edges[i].dst - sorted_edges[i - 1].dst);
      }
    }
  }
  if (e != m) {
    throw std::runtime_error("edges reference vertices >= num_vertices");
  }
  if (ranges.empty()) {
    ranges.push_back({0, 0, 0});  // num_vertices == 0
  }
  ranges.push_back({num_vertices, m, payload.size()});  // sentinel

  std::vector<uint8_t> head;
  head.reserve(4 * 8 + ranges.size() * sizeof(RangeEntry));
  AppendU64(head, lsgbin_internal::Magic());
  AppendU64(head, num_vertices);
  AppendU64(head, m);
  AppendU64(head, ranges.size() - 1);
  for (const RangeEntry& r : ranges) {
    AppendU64(head, r.first_vertex);
    AppendU64(head, r.edge_offset);
    AppendU64(head, r.byte_offset);
  }

  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  bool ok = std::fwrite(head.data(), 1, head.size(), f) == head.size();
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    throw std::runtime_error("short write: " + path);
  }
  return head.size() + payload.size();
}

namespace lsgbin_internal {

// RAII mmap of a whole file, read-only.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
      throw std::runtime_error("cannot open: " + path);
    }
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      throw std::runtime_error("cannot stat: " + path);
    }
    size_ = static_cast<size_t>(st.st_size);
    if (size_ != 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
      if (p == MAP_FAILED) {
        ::close(fd_);
        throw std::runtime_error("mmap failed: " + path + ": " +
                                 std::strerror(errno));
      }
      data_ = static_cast<const uint8_t*>(p);
    }
  }

  ~MappedFile() {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  int fd_ = -1;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace lsgbin_internal

// Loads a .lsgbin file, decoding ranges in parallel on `pool` (the global
// pool when null). Throws std::runtime_error on any malformed input; never
// reads out of bounds.
inline LoadedGraph LoadLsgbin(const std::string& path,
                              ThreadPool* pool = nullptr) {
  using lsgbin_internal::LoadU64;
  using lsgbin_internal::MappedFile;
  MappedFile file(path);
  constexpr size_t kHeaderBytes = 4 * 8;
  if (file.size() < kHeaderBytes) {
    throw std::runtime_error("truncated header: " + path);
  }
  const uint8_t* base = file.data();
  if (LoadU64(base) != lsgbin_internal::Magic()) {
    throw std::runtime_error("bad magic: " + path);
  }
  const uint64_t num_vertices = LoadU64(base + 8);
  const uint64_t num_edges = LoadU64(base + 16);
  const uint64_t num_ranges = LoadU64(base + 24);
  if (num_vertices > kInvalidVertex || num_ranges > num_vertices + 1 ||
      num_ranges == 0) {
    throw std::runtime_error("corrupt header: " + path);
  }
  const size_t table_bytes = (num_ranges + 1) * 3 * 8;
  if (file.size() < kHeaderBytes + table_bytes) {
    throw std::runtime_error("truncated range table: " + path);
  }
  const uint8_t* payload = base + kHeaderBytes + table_bytes;
  const size_t payload_bytes = file.size() - kHeaderBytes - table_bytes;
  // Bound the header counts by what the payload could possibly encode
  // (every vertex costs at least its one-byte degree varint, every edge at
  // least a one-byte delta) BEFORE sizing any allocation from them. A
  // crafted header can otherwise request a multi-exabyte edges.resize()
  // while still matching its own range-table sentinel.
  if (num_vertices > payload_bytes || num_edges > payload_bytes) {
    throw std::runtime_error("header counts exceed file size: " + path);
  }

  auto range = [&](size_t i) {
    const uint8_t* p = base + kHeaderBytes + i * 3 * 8;
    return lsgbin_internal::RangeEntry{LoadU64(p), LoadU64(p + 8),
                                       LoadU64(p + 16)};
  };
  // Sentinel + monotonicity checks up front so the decode loop can trust
  // the offsets as slice bounds.
  auto sentinel = range(num_ranges);
  if (sentinel.first_vertex != num_vertices || sentinel.edge_offset != num_edges ||
      sentinel.byte_offset != payload_bytes) {
    throw std::runtime_error(payload_bytes < sentinel.byte_offset
                                 ? "truncated payload: " + path
                                 : "corrupt range table: " + path);
  }
  for (size_t i = 0; i < num_ranges; ++i) {
    auto cur = range(i);
    auto next = range(i + 1);
    if (cur.first_vertex > next.first_vertex ||
        cur.edge_offset > next.edge_offset ||
        cur.byte_offset > next.byte_offset ||
        (i == 0 && (cur.first_vertex != 0 || cur.edge_offset != 0 ||
                    cur.byte_offset != 0))) {
      throw std::runtime_error("corrupt range table: " + path);
    }
  }

  LoadedGraph out;
  out.num_vertices = static_cast<VertexId>(num_vertices);
  out.edges.resize(num_edges);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  // One error slot per range: threads never contend, the first failure (in
  // range order) is reported after the join.
  std::vector<std::string> errors(num_ranges);
  std::atomic<bool> failed{false};
  p.ParallelFor(
      0, num_ranges,
      [&](size_t i) {
        auto cur = range(i);
        auto next = range(i + 1);
        const uint8_t* q = payload + cur.byte_offset;
        const uint8_t* end = payload + next.byte_offset;
        Edge* e = out.edges.data() + cur.edge_offset;
        Edge* e_end = out.edges.data() + next.edge_offset;
        for (uint64_t v = cur.first_vertex; v < next.first_vertex; ++v) {
          uint64_t deg = 0;
          uint64_t prev = 0;
          if (!TryReadVarint(&q, end, &deg) ||
              deg > static_cast<uint64_t>(e_end - e)) {
            errors[i] = "truncated payload (range " + std::to_string(i) + ")";
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          for (uint64_t k = 0; k < deg; ++k) {
            uint64_t delta = 0;
            if (!TryReadVarint(&q, end, &delta)) {
              errors[i] = "truncated payload (range " + std::to_string(i) + ")";
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            uint64_t dst = k == 0 ? delta : prev + delta;
            if (dst >= num_vertices || (k != 0 && delta == 0)) {
              errors[i] = "neighbor id out of range (range " +
                          std::to_string(i) + ")";
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            *e++ = Edge{static_cast<VertexId>(v), static_cast<VertexId>(dst)};
            prev = dst;
          }
        }
        if (e != e_end || q != end) {
          errors[i] = "range contents disagree with range table (range " +
                      std::to_string(i) + ")";
          failed.store(true, std::memory_order_relaxed);
        }
      },
      /*grain=*/1);
  if (failed.load(std::memory_order_relaxed)) {
    for (const std::string& err : errors) {
      if (!err.empty()) {
        throw std::runtime_error(err + ": " + path);
      }
    }
  }
  return out;
}

// Partitioned parallel load for the sharded service layer: decodes the file
// with the bounds-checked parallel loader above, then scatters every edge to
// part_of(src) — two deterministic parallel passes (count per span/part,
// prefix, place), so each part's edge list keeps CSR (src, dst) order and
// the concatenation of all parts is exactly LoadLsgbin's output. part_of
// must be total over [0, num_vertices) and return values < num_parts
// (a ShardMap::ShardOf is the intended argument).
template <typename PartF>
std::vector<std::vector<Edge>> LoadLsgbinPartitioned(const std::string& path,
                                                     uint32_t num_parts,
                                                     PartF&& part_of,
                                                     ThreadPool* pool = nullptr) {
  LoadedGraph g = LoadLsgbin(path, pool);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  std::vector<std::vector<Edge>> parts(num_parts);
  if (num_parts == 0 || g.edges.empty()) {
    return parts;
  }
  // Fixed contiguous spans (not pool self-scheduling) so the counting and
  // placement passes agree on which span owns which edges.
  const size_t nspans = std::min<size_t>(
      g.edges.size(), std::max<size_t>(1, p.num_threads() * 4));
  const size_t span_len = (g.edges.size() + nspans - 1) / nspans;
  std::vector<std::vector<size_t>> counts(nspans,
                                          std::vector<size_t>(num_parts, 0));
  p.ParallelFor(
      0, nspans,
      [&](size_t sp) {
        size_t lo = sp * span_len;
        size_t hi = std::min(lo + span_len, g.edges.size());
        std::vector<size_t>& c = counts[sp];
        for (size_t i = lo; i < hi; ++i) {
          ++c[part_of(g.edges[i].src)];
        }
      },
      /*grain=*/1);
  // offsets[sp][pt] = where span sp's part-pt run starts in parts[pt].
  std::vector<size_t> totals(num_parts, 0);
  std::vector<std::vector<size_t>> offsets(nspans,
                                           std::vector<size_t>(num_parts, 0));
  for (size_t sp = 0; sp < nspans; ++sp) {
    for (uint32_t pt = 0; pt < num_parts; ++pt) {
      offsets[sp][pt] = totals[pt];
      totals[pt] += counts[sp][pt];
    }
  }
  for (uint32_t pt = 0; pt < num_parts; ++pt) {
    parts[pt].resize(totals[pt]);
  }
  p.ParallelFor(
      0, nspans,
      [&](size_t sp) {
        size_t lo = sp * span_len;
        size_t hi = std::min(lo + span_len, g.edges.size());
        std::vector<size_t> cursor = offsets[sp];
        for (size_t i = lo; i < hi; ++i) {
          uint32_t pt = part_of(g.edges[i].src);
          parts[pt][cursor[pt]++] = g.edges[i];
        }
      },
      /*grain=*/1);
  return parts;
}

}  // namespace lsg

#endif  // SRC_GEN_LSGBIN_H_
