// Static Compressed Sparse Row snapshot (paper Fig. 1a).
//
// Used as the oracle representation in tests (engines must agree with a CSR
// built from the same edge list) and as the static-baseline substrate for
// analytics validation.
#ifndef SRC_GEN_CSR_H_
#define SRC_GEN_CSR_H_

#include <cassert>
#include <span>
#include <vector>

#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

class Csr {
 public:
  Csr() = default;

  // Builds from an edge list; sorts and deduplicates internally.
  static Csr FromEdges(VertexId num_vertices, std::vector<Edge> edges) {
    RadixSortEdges(edges);
    DedupSortedEdges(edges);
    Csr csr;
    csr.offsets_.assign(num_vertices + 1, 0);
    csr.targets_.reserve(edges.size());
    for (const Edge& e : edges) {
      assert(e.src < num_vertices && e.dst < num_vertices);
      ++csr.offsets_[e.src + 1];
      csr.targets_.push_back(e.dst);
    }
    for (VertexId v = 0; v < num_vertices; ++v) {
      csr.offsets_[v + 1] += csr.offsets_[v];
    }
    return csr;
  }

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeCount num_edges() const { return targets_.size(); }

  size_t degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v], degree(v)};
  }

  // Applies f(u) to every out-neighbor u of v.
  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    for (VertexId u : neighbors(v)) {
      f(u);
    }
  }

  size_t memory_footprint() const {
    return offsets_.capacity() * sizeof(EdgeCount) +
           targets_.capacity() * sizeof(VertexId);
  }

 private:
  std::vector<EdgeCount> offsets_;
  std::vector<VertexId> targets_;
};

}  // namespace lsg

#endif  // SRC_GEN_CSR_H_
