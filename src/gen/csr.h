// Static Compressed Sparse Row snapshot (paper Fig. 1a).
//
// Used as the oracle representation in tests (engines must agree with a CSR
// built from the same edge list) and as the static-baseline substrate for
// analytics validation.
#ifndef SRC_GEN_CSR_H_
#define SRC_GEN_CSR_H_

#include <cassert>
#include <span>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

class Csr {
 public:
  Csr() = default;

  // Builds from an edge list; sorts and deduplicates internally via the
  // shared parallel ingestion pipeline (group boundaries give each vertex's
  // degree without a counting pass).
  static Csr FromEdges(VertexId num_vertices, std::vector<Edge> edges,
                       ThreadPool* pool = nullptr) {
    ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
    PreparedBatch pb = PrepareBatch(std::move(edges), p);
    Csr csr;
    csr.offsets_.assign(num_vertices + 1, 0);
    p.ParallelFor(0, pb.groups(), [&](size_t g) {
      VertexId src = pb.group_source(g);
      assert(src < num_vertices);
      csr.offsets_[src + 1] = pb.group_end(g) - pb.group_begin(g);
    });
    for (VertexId v = 0; v < num_vertices; ++v) {
      csr.offsets_[v + 1] += csr.offsets_[v];
    }
    csr.targets_.resize(pb.edges.size());
    p.ParallelForChunked(0, pb.edges.size(),
                         [&](size_t lo, size_t hi, size_t /*tid*/) {
                           for (size_t i = lo; i < hi; ++i) {
                             assert(pb.edges[i].dst < num_vertices);
                             csr.targets_[i] = pb.edges[i].dst;
                           }
                         });
    return csr;
  }

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeCount num_edges() const { return targets_.size(); }

  size_t degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v], degree(v)};
  }

  // Applies f(u) to every out-neighbor u of v.
  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    for (VertexId u : neighbors(v)) {
      f(u);
    }
  }

  // map_neighbors that stops once f returns false; false iff cut short.
  template <typename F>
  bool map_neighbors_while(VertexId v, F&& f) const {
    for (VertexId u : neighbors(v)) {
      if (!f(u)) {
        return false;
      }
    }
    return true;
  }

  size_t memory_footprint() const {
    return offsets_.capacity() * sizeof(EdgeCount) +
           targets_.capacity() * sizeof(VertexId);
  }

 private:
  std::vector<EdgeCount> offsets_;
  std::vector<VertexId> targets_;
};

}  // namespace lsg

#endif  // SRC_GEN_CSR_H_
