// Temporal-stream generator.
//
// Stands in for the real temporal graphs of Table 4 (mathoverflow,
// askubuntu, superuser, wiki-talk). Those streams are bursty, heavy on
// repeat interactions, and arrive unsorted; this generator reproduces those
// properties: preferential attachment over a growing active set, repeat
// probability, and per-batch shuffling.
#ifndef SRC_GEN_TEMPORAL_H_
#define SRC_GEN_TEMPORAL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/graph_types.h"
#include "src/util/prng.h"

namespace lsg {

struct TemporalSpec {
  std::string name;
  VertexId num_vertices;
  uint64_t num_events;
  double repeat_prob = 0.35;  // chance an event repeats a recent edge
  uint64_t seed = 1;
};

// Scaled proxies for Table 4 (vertex/event counts shrunk ~8x).
inline std::vector<TemporalSpec> TemporalDatasets() {
  return {
      {"MO", 3'100, 63'000, 0.40, 101},
      {"AU", 20'000, 120'000, 0.30, 102},
      {"SU", 24'000, 180'000, 0.30, 103},
      {"WT", 142'000, 980'000, 0.35, 104},
  };
}

// Generates the full event stream in arrival order. Events are edges; the
// same edge may recur, and sources are drawn with preferential attachment
// (probability proportional to prior activity), matching question/answer
// interaction graphs.
inline std::vector<Edge> GenerateTemporalStream(const TemporalSpec& spec) {
  SplitMix64 rng(spec.seed);
  std::vector<Edge> events;
  events.reserve(spec.num_events);
  // `hubs` grows as events touch vertices; sampling from it approximates
  // degree-proportional choice.
  std::vector<VertexId> hubs;
  hubs.reserve(spec.num_events);
  for (uint64_t i = 0; i < spec.num_events; ++i) {
    if (!events.empty() && rng.NextDouble() < spec.repeat_prob) {
      // Repeat a recent interaction (possibly reversed).
      const Edge& past = events[events.size() - 1 - rng.NextBounded(std::min<uint64_t>(events.size(), 64))];
      events.push_back(rng.NextDouble() < 0.5 ? past : Edge{past.dst, past.src});
    } else {
      VertexId src = (!hubs.empty() && rng.NextDouble() < 0.6)
                         ? hubs[rng.NextBounded(hubs.size())]
                         : static_cast<VertexId>(rng.NextBounded(spec.num_vertices));
      VertexId dst = (!hubs.empty() && rng.NextDouble() < 0.3)
                         ? hubs[rng.NextBounded(hubs.size())]
                         : static_cast<VertexId>(rng.NextBounded(spec.num_vertices));
      if (src == dst) {
        dst = (dst + 1) % spec.num_vertices;
      }
      events.push_back(Edge{src, dst});
      hubs.push_back(src);
    }
  }
  return events;
}

// Splits a stream into a base prefix and streamed suffix. The paper's
// protocol (§6.5) treats the final 10% of each dataset as streamed additions.
struct TemporalSplit {
  std::vector<Edge> base;
  std::vector<Edge> stream;
};

inline TemporalSplit SplitTemporalStream(std::vector<Edge> events,
                                         double stream_fraction = 0.10) {
  TemporalSplit split;
  size_t cut = static_cast<size_t>(events.size() * (1.0 - stream_fraction));
  split.base.assign(events.begin(), events.begin() + cut);
  split.stream.assign(events.begin() + cut, events.end());
  return split;
}

}  // namespace lsg

#endif  // SRC_GEN_TEMPORAL_H_
