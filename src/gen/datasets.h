// Named dataset proxies.
//
// The paper evaluates on LJ/OR/TW/FR (downloaded social graphs) plus the
// synthetic RM. Without network access we stand in rMat-generated proxies
// whose vertex counts are scaled to laptop memory and whose average degrees
// match Table 1, preserving the power-law skew that drives LSGraph's
// degree-differentiated representation (see DESIGN.md §3).
#ifndef SRC_GEN_DATASETS_H_
#define SRC_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "src/gen/rmat.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

struct DatasetSpec {
  std::string name;
  int scale;            // 2^scale vertices
  double avg_degree;    // directed average degree before symmetrization
  uint64_t seed;
};

// Scaled-down proxies for Table 1. Average degrees follow the paper;
// vertex counts are shrunk ~64x to fit a small machine while keeping the
// relative size ordering (LJ < OR < RM < TW < FR).
inline std::vector<DatasetSpec> PaperDatasets() {
  return {
      {"LJ", 16, 17.7, 11},
      {"OR", 15, 76.2, 22},
      {"RM", 17, 130.9 / 4, 33},  // RM degree trimmed: it dominates runtime
      {"TW", 18, 39.1 / 2, 44},
      {"FR", 19, 28.9 / 2, 55},
  };
}

// A tiny spec for unit/integration tests.
inline DatasetSpec TestDataset() { return {"TEST", 10, 8.0, 7}; }

// Generates the base edge list of a dataset: rMat stream, deduplicated,
// self-loops removed, symmetrized (the paper evaluates symmetrized graphs).
inline std::vector<Edge> BuildDatasetEdges(const DatasetSpec& spec,
                                           bool symmetrize = true) {
  RmatGenerator gen({spec.scale, 0.5, 0.1, 0.1}, spec.seed);
  uint64_t target = static_cast<uint64_t>(spec.avg_degree * gen.num_vertices());
  std::vector<Edge> edges = gen.Generate(0, target);
  std::vector<Edge> cleaned;
  cleaned.reserve(symmetrize ? edges.size() * 2 : edges.size());
  for (const Edge& e : edges) {
    if (e.src == e.dst) {
      continue;
    }
    cleaned.push_back(e);
    if (symmetrize) {
      cleaned.push_back(Edge{e.dst, e.src});
    }
  }
  RadixSortEdges(cleaned);
  DedupSortedEdges(cleaned);
  return cleaned;
}

// Generates an update batch disjoint from the base stream by offsetting into
// the generator sequence, mirroring the paper's insert-then-delete protocol
// (§6.2: batches come from the same rMat parameters as RM).
inline std::vector<Edge> BuildUpdateBatch(const DatasetSpec& spec,
                                          uint64_t batch_size, uint64_t trial) {
  RmatGenerator gen({spec.scale, 0.5, 0.1, 0.1},
                    MixSeed(spec.seed, 0xbeef + trial));
  return gen.Generate(0, batch_size);
}

}  // namespace lsg

#endif  // SRC_GEN_DATASETS_H_
