// Redundant Indexed Array (paper §3.1).
//
// A RIA stores a sorted id set in a gapped array carved into cache-line
// blocks, plus a compact redundant index holding the first id of every
// block. Searches read the index (contiguous, cache-friendly) to pick a
// block, then search inside one block: two cache-line transfers instead of a
// dependent binary-search chain. Inserts move data only inside a block, or —
// on a full block — cascade one id at a time toward the nearest block with a
// gap, bounded to log2(num_blocks) blocks (§3.2's regulated horizontal
// movement); past the bound the array is rebuilt with α amplification.
//
// Unlike a PMA there are no per-block density bounds and no empty blocks:
// LSGraph serializes writers per vertex, so gaps exist purely to absorb
// inserts (§3.1).
//
// Not thread-safe; single writer per instance.
#ifndef SRC_CORE_RIA_H_
#define SRC_CORE_RIA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/options.h"
#include "src/util/graph_types.h"

namespace lsg {

struct RiaStats {
  uint64_t elements_moved = 0;  // ids rewritten or relocated by shifts/cascades
  uint64_t expansions = 0;      // α-rebuilds triggered by the movement bound
  uint64_t cascades = 0;        // inserts that spilled past their home block
  uint64_t contractions = 0;    // delete-side rebuilds that released slots
};

class Ria {
 public:
  explicit Ria(const Options& options);

  // Rebuilds from sorted unique ids, spreading them evenly over
  // ceil(n * alpha) slots of whole blocks (Algorithm 1, RIA branch).
  void BulkLoad(std::span<const VertexId> sorted_ids);

  enum class InsertResult {
    kInserted,
    kDuplicate,
    // The id's home block is full and no gap exists within the movement
    // bound; the caller decides between α-expansion and conversion to a
    // HITree (Algorithm 2 lines 10-12).
    kNeedExpand,
  };

  // Inserts without ever growing the array.
  InsertResult TryInsert(VertexId id);

  // TryInsert + α-expansion on kNeedExpand.
  bool Insert(VertexId id);
  bool Delete(VertexId id);
  bool Contains(VertexId id) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }
  size_t num_blocks() const { return counts_.size(); }

  // Smallest id; requires !empty().
  VertexId First() const { return index_[0]; }

  // Applies f(id) in ascending order.
  template <typename F>
  void Map(F&& f) const {
    for (size_t b = 0; b < counts_.size(); ++b) {
      const VertexId* block = slots_.data() + b * block_size_;
      for (size_t i = 0; i < counts_[b]; ++i) {
        f(block[i]);
      }
    }
  }

  // Applies f(id) in ascending order while f returns true. Returns false iff
  // f requested a stop (the traversal was cut short).
  template <typename F>
  bool MapWhile(F&& f) const {
    for (size_t b = 0; b < counts_.size(); ++b) {
      const VertexId* block = slots_.data() + b * block_size_;
      for (size_t i = 0; i < counts_[b]; ++i) {
        if (!f(block[i])) {
          return false;
        }
      }
    }
    return true;
  }

  std::vector<VertexId> Decode() const {
    std::vector<VertexId> out;
    out.reserve(size_);
    Map([&out](VertexId v) { out.push_back(v); });
    return out;
  }

  size_t memory_footprint() const;
  size_t index_bytes() const;  // redundant index + occupancy overhead

  const RiaStats& stats() const { return stats_; }

  // Invariants: per-block sortedness and packing, index redundancy
  // (index[b] == first id of block b), no empty block, size consistency.
  bool CheckInvariants() const;

 private:
  size_t block_size_;
  double alpha_;
  CoreStats* core_stats_;  // optional engine-wide counters; may be null

  // Block b occupies slots_[b*block_size_, b*block_size_+counts_[b]).
  std::vector<VertexId> slots_;
  std::vector<VertexId> index_;    // first id of each block (redundant copy)
  std::vector<uint16_t> counts_;   // ids resident in each block
  size_t size_ = 0;
  RiaStats stats_;

  // Index of the block whose range contains `id`.
  size_t FindBlock(VertexId id) const;
  // Max blocks a cascade may traverse before expanding.
  size_t MovementBound() const;

  bool InsertIntoBlock(size_t b, VertexId id);
  // Cascades one id per hop from block `from` toward free block `to`
  // (to > from: rightward; to < from: leftward), then inserts id into its
  // home block. Updates the index along the way.
  void CascadeRight(size_t from, size_t to, VertexId id);
  void CascadeLeft(size_t from, size_t to, VertexId id);

  void ExpandAndInsert(VertexId id);

  // Delete-side hysteresis: once the slot array exceeds twice the α target
  // (plus one block of slack), rebuild at ceil(size * α) slots and release
  // the excess vector capacity.
  void MaybeContract();

  // shrink_to_fit once a vector's capacity is more than double its size, so
  // contractions actually return memory instead of parking it in capacity.
  void ReleaseExcessCapacity();
};

}  // namespace lsg

#endif  // SRC_CORE_RIA_H_
