// Ligra-style frontier primitives (paper §5 "Interface", §6.3).
//
// LSGraph exposes analytics through EdgeMap/VertexMap over the engines'
// Traverse operation. Everything here is templated on the engine type G,
// which must satisfy GraphView (src/core/engine_concept.h) — the analytics
// kernels in src/analytics/ are therefore shared verbatim by LSGraph and all
// baselines, so benchmark deltas isolate the data structures.
//
// EdgeMap is direction-optimizing (Beamer et al.): a sparse frontier pushes
// along its out-edges; a frontier covering a large fraction of the edges
// flips to a pull scan over all destinations, which needs no atomics and —
// via map_neighbors_while — stops decoding a vertex's adjacency the moment
// cond(v) turns false. See DESIGN.md "Frontier runtime".
#ifndef SRC_CORE_EDGEMAP_H_
#define SRC_CORE_EDGEMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/options.h"
#include "src/parallel/thread_pool.h"
#include "src/util/bitvector.h"
#include "src/util/graph_types.h"

namespace lsg {

namespace edgemap_internal {

// Concatenates per-thread output partitions into `out`: prefix offsets,
// then each partition copied in parallel into its slice of the pre-sized
// result (replacing the old serial append loop).
inline void ConcatParts(const std::vector<std::vector<VertexId>>& parts,
                        std::vector<VertexId>* out, ThreadPool& pool) {
  size_t nparts = parts.size();
  std::vector<size_t> offsets(nparts + 1, 0);
  for (size_t t = 0; t < nparts; ++t) {
    offsets[t + 1] = offsets[t] + parts[t].size();
  }
  out->resize(offsets[nparts]);
  VertexId* dst = out->data();
  pool.ParallelFor(
      0, nparts,
      [&](size_t t) { std::copy(parts[t].begin(), parts[t].end(), dst + offsets[t]); },
      1);
}

// Cache-line padded per-thread accumulator.
struct alignas(64) PerThreadSum {
  uint64_t value = 0;
};

}  // namespace edgemap_internal

// A set of active vertices, held in whichever representation the producer
// emitted — a sparse id list (push output), a dense bitmap (pull output), or
// the implicit whole-universe set kAll, which never materializes anything.
// The other representation is derived lazily on demand (O(|S|) sparse→dense,
// O(n/64 + |S|) dense→sparse) and cached; the derived sparse order is
// unspecified. Move-only; ids within a subset are unique.
//
// Lazy materialization and the EdgeSum cache mutate shared state, so
// concurrent use of one subset from multiple threads must go through the
// parallel members (ForEach/EdgeSum) or pre-materialize first.
class VertexSubset {
 public:
  // Empty subset over [0, universe).
  explicit VertexSubset(VertexId universe) : universe_(universe) {}

  VertexSubset(VertexSubset&&) = default;
  VertexSubset& operator=(VertexSubset&&) = default;

  static VertexSubset Single(VertexId universe, VertexId v) {
    VertexSubset s(universe);
    s.vertices_.push_back(v);
    s.size_ = 1;
    return s;
  }

  // The whole vertex set, O(1): no id array, no bitmap. EdgeMap, ForEach,
  // and EdgeSum all special-case it; a representation is materialized only
  // if vertices()/bits() is explicitly asked for.
  static VertexSubset All(VertexId universe) {
    VertexSubset s(universe);
    s.rep_ = Rep::kAll;
    s.size_ = universe;
    s.sparse_valid_ = false;
    return s;
  }

  // Takes ownership of a list of unique ids (any order).
  static VertexSubset FromVertices(VertexId universe,
                                   std::vector<VertexId> vertices) {
    VertexSubset s(universe);
    s.size_ = vertices.size();
    s.vertices_ = std::move(vertices);
    return s;
  }

  // Takes ownership of a bitmap sized to the universe; `count` must equal
  // its population count.
  static VertexSubset FromBitset(VertexId universe, AtomicBitset bits,
                                 size_t count) {
    VertexSubset s(universe);
    s.rep_ = Rep::kDense;
    s.size_ = count;
    s.bits_ = std::move(bits);
    s.sparse_valid_ = false;
    s.dense_valid_ = true;
    return s;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  VertexId universe() const { return universe_; }
  bool is_all() const { return rep_ == Rep::kAll; }

  // Whether each representation currently exists (observability for tests;
  // kAll starts with neither).
  bool sparse_materialized() const { return sparse_valid_; }
  bool dense_materialized() const { return dense_valid_; }

  // The sparse id list, materializing it if absent (order unspecified unless
  // this subset was built sparse).
  const std::vector<VertexId>& vertices(ThreadPool* pool = nullptr) const {
    if (!sparse_valid_) {
      MaterializeSparse(pool != nullptr ? *pool : ThreadPool::Global());
    }
    return vertices_;
  }

  // The dense bitmap, materializing it if absent.
  const AtomicBitset& bits(ThreadPool* pool = nullptr) const {
    if (!dense_valid_) {
      MaterializeDense(pool != nullptr ? *pool : ThreadPool::Global());
    }
    return bits_;
  }

  // Applies f(v, tid) to every member, in parallel, without changing the
  // representation: kAll iterates [0, universe), dense walks bitmap words.
  template <typename F>
  void ForEach(ThreadPool& pool, F&& f) const {
    if (rep_ == Rep::kAll) {
      pool.ParallelForChunked(0, universe_,
                              [&f](size_t lo, size_t hi, size_t tid) {
                                for (size_t v = lo; v < hi; ++v) {
                                  f(static_cast<VertexId>(v), tid);
                                }
                              });
      return;
    }
    if (sparse_valid_) {
      const VertexId* ids = vertices_.data();
      pool.ParallelForChunked(0, vertices_.size(),
                              [&f, ids](size_t lo, size_t hi, size_t tid) {
                                for (size_t i = lo; i < hi; ++i) {
                                  f(ids[i], tid);
                                }
                              });
      return;
    }
    pool.ParallelForChunked(
        0, bits_.num_words(), [&f, this](size_t lo, size_t hi, size_t tid) {
          for (size_t w = lo; w < hi; ++w) {
            uint64_t word = bits_.Word(w);
            while (word != 0) {
              int b = std::countr_zero(word);
              word &= word - 1;
              f(static_cast<VertexId>(w * 64 + b), tid);
            }
          }
        });
  }

  // Sum of members' degrees, computed in parallel O(|S|/P) and cached.
  // kAll answers from g.num_edges() without touching per-vertex degrees.
  // The cache binds this subset to the first graph it is summed against.
  template <typename G>
  uint64_t EdgeSum(const G& g, ThreadPool& pool) const {
    if (edge_sum_valid_) {
      return edge_sum_;
    }
    if (rep_ == Rep::kAll) {
      edge_sum_ = g.num_edges();
    } else {
      std::vector<edgemap_internal::PerThreadSum> sums(pool.num_threads());
      ForEach(pool, [&g, &sums](VertexId v, size_t tid) {
        sums[tid].value += g.degree(v);
      });
      uint64_t total = 0;
      for (const auto& s : sums) {
        total += s.value;
      }
      edge_sum_ = total;
    }
    edge_sum_valid_ = true;
    return edge_sum_;
  }

 private:
  enum class Rep : uint8_t { kSparse, kDense, kAll };

  void MaterializeSparse(ThreadPool& pool) const {
    if (rep_ == Rep::kAll) {
      vertices_.resize(universe_);
      VertexId* out = vertices_.data();
      pool.ParallelForChunked(0, universe_,
                              [out](size_t lo, size_t hi, size_t /*tid*/) {
                                for (size_t v = lo; v < hi; ++v) {
                                  out[v] = static_cast<VertexId>(v);
                                }
                              });
    } else {
      std::vector<std::vector<VertexId>> parts(pool.num_threads());
      ForEach(pool, [&parts](VertexId v, size_t tid) {
        parts[tid].push_back(v);
      });
      edgemap_internal::ConcatParts(parts, &vertices_, pool);
    }
    sparse_valid_ = true;
  }

  void MaterializeDense(ThreadPool& pool) const {
    bits_ = AtomicBitset(universe_);
    if (rep_ == Rep::kAll) {
      bits_.SetAll(&pool);
    } else {
      ForEach(pool, [this](VertexId v, size_t /*tid*/) { bits_.Set(v); });
    }
    dense_valid_ = true;
  }

  VertexId universe_;
  Rep rep_ = Rep::kSparse;
  size_t size_ = 0;

  // Representations; at least one is valid unless rep_ == kAll (which needs
  // neither). Mutable: vertices()/bits()/EdgeSum are caches, not state.
  mutable std::vector<VertexId> vertices_;
  mutable AtomicBitset bits_;
  mutable bool sparse_valid_ = true;
  mutable bool dense_valid_ = false;
  mutable uint64_t edge_sum_ = 0;
  mutable bool edge_sum_valid_ = false;
};

// Traversal direction for one EdgeMap round.
enum class Direction : uint8_t {
  kAuto,  // Beamer heuristic on the frontier's cached edge sum
  kPush,  // sparse: iterate the frontier's out-edges
  kPull,  // dense: scan every destination's in-edges with early exit
};

struct EdgeMapOptions {
  Direction direction = Direction::kAuto;

  // kAuto flips to pull when frontier_edges + frontier_size >=
  // dense_threshold * (num_edges + num_vertices + 1). Beamer's classic
  // constant is 1/20 of the edge total; 0.0 forces pull through the kAuto
  // path (every frontier satisfies the inequality).
  double dense_threshold = 0.05;

  // Optional sink for pull-scan early-exit counters and per-direction round
  // counts; may be null.
  CoreStats* stats = nullptr;
};

namespace edgemap_internal {

// Push direction: for each frontier vertex u, visit out-neighbors v with
// cond(v) true and apply update(u, v); v joins the output when update
// returns true (update must guarantee exactly-once success itself, e.g. via
// compare-and-swap, or the output would hold duplicates).
template <typename G, typename UpdateF, typename CondF>
VertexSubset PushPass(const G& g, const VertexSubset& frontier, UpdateF& update,
                      CondF& cond, ThreadPool& pool, CoreStats* stats) {
  std::vector<std::vector<VertexId>> next(pool.num_threads());
  frontier.ForEach(pool, [&](VertexId u, size_t tid) {
    std::vector<VertexId>& out = next[tid];
    g.map_neighbors(u, [&](VertexId v) {
      if (cond(v) && update(u, v)) {
        out.push_back(v);
      }
    });
  });
  std::vector<VertexId> ids;
  ConcatParts(next, &ids, pool);
  if (stats != nullptr) {
    stats->edgemap_push_rounds.fetch_add(1, std::memory_order_relaxed);
  }
  return VertexSubset::FromVertices(frontier.universe(), std::move(ids));
}

// Pull direction (Ligra's dense mode). For every vertex v with cond(v),
// scans v's neighbors u and applies update(u, v) for each u in the frontier.
// The scan terminates early when cond(v) turns false — Ligra's break — which
// map_neighbors_while pushes down into the adjacency structures, so a BFS
// that claims v stops decoding v's remaining neighbors (including any
// compressed or indexed tail) immediately. Updates that never flip cond
// (e.g. CC's label minimum) get the full scan they need for correctness.
// Correct on symmetrized graphs, where out-neighbors are in-neighbors. No
// atomics on v's state: only v's owner thread writes it.
template <typename G, typename InFrontierF, typename UpdateF, typename CondF>
VertexSubset PullPass(const G& g, InFrontierF in_frontier, UpdateF& update,
                      CondF& cond, ThreadPool& pool, CoreStats* stats) {
  VertexId n = g.num_vertices();
  AtomicBitset out(n);
  struct alignas(64) Tally {
    uint64_t added = 0;
    uint64_t decoded = 0;
    uint64_t degree = 0;
    uint64_t early = 0;
  };
  std::vector<Tally> tallies(pool.num_threads());
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi, size_t tid) {
    Tally& t = tallies[tid];
    for (size_t vi = lo; vi < hi; ++vi) {
      VertexId v = static_cast<VertexId>(vi);
      if (!cond(v)) {
        continue;
      }
      size_t deg = g.degree(v);
      if (deg == 0) {
        continue;
      }
      t.degree += deg;
      bool added = false;
      bool full = g.map_neighbors_while(v, [&](VertexId u) {
        ++t.decoded;
        if (in_frontier(u) && update(u, v) && !added) {
          added = true;
          out.Set(v);
        }
        return cond(v);
      });
      if (!full) {
        ++t.early;
      }
      if (added) {
        ++t.added;
      }
    }
  });
  size_t count = 0;
  uint64_t decoded = 0;
  uint64_t degree = 0;
  uint64_t early = 0;
  for (const Tally& t : tallies) {
    count += t.added;
    decoded += t.decoded;
    degree += t.degree;
    early += t.early;
  }
  if (stats != nullptr) {
    stats->pull_neighbors_decoded.fetch_add(decoded, std::memory_order_relaxed);
    stats->pull_degree_scanned.fetch_add(degree, std::memory_order_relaxed);
    stats->pull_early_exits.fetch_add(early, std::memory_order_relaxed);
    stats->edgemap_pull_rounds.fetch_add(1, std::memory_order_relaxed);
  }
  return VertexSubset::FromBitset(n, std::move(out), count);
}

}  // namespace edgemap_internal

// Applies update(u, v) over every edge (u, v) with u in `frontier` and
// cond(v) true; returns the set of vertices for which update succeeded.
// Direction selection (push vs pull) is owned here: kAuto compares the
// frontier's cached parallel edge sum against dense_threshold — Beamer's
// direction-optimization heuristic — so no kernel carries its own dual-mode
// loop. Pull mode additionally requires cond to be monotone within a round
// (once false for v, it stays false), which every CAS-style kernel satisfies.
template <typename G, typename UpdateF, typename CondF>
VertexSubset EdgeMap(const G& g, const VertexSubset& frontier, UpdateF update,
                     CondF cond, ThreadPool& pool,
                     const EdgeMapOptions& options = {}) {
  if (frontier.empty()) {
    return VertexSubset(frontier.universe());
  }
  Direction dir = options.direction;
  if (dir == Direction::kAuto) {
    uint64_t work = frontier.EdgeSum(g, pool) + frontier.size();
    double total = static_cast<double>(g.num_edges()) +
                   static_cast<double>(g.num_vertices()) + 1.0;
    dir = static_cast<double>(work) >= options.dense_threshold * total
              ? Direction::kPull
              : Direction::kPush;
  }
  if (dir == Direction::kPull) {
    if (frontier.is_all()) {
      return edgemap_internal::PullPass(
          g, [](VertexId) { return true; }, update, cond, pool, options.stats);
    }
    const AtomicBitset& in = frontier.bits(&pool);
    return edgemap_internal::PullPass(
        g, [&in](VertexId u) { return in.Get(u); }, update, cond, pool,
        options.stats);
  }
  return edgemap_internal::PushPass(g, frontier, update, cond, pool,
                                    options.stats);
}

// Applies f(v) to every vertex in the frontier, keeping those for which f
// returns true.
template <typename F>
VertexSubset VertexMap(const VertexSubset& frontier, F&& f, ThreadPool& pool) {
  std::vector<std::vector<VertexId>> kept(pool.num_threads());
  frontier.ForEach(pool, [&](VertexId v, size_t tid) {
    if (f(v)) {
      kept[tid].push_back(v);
    }
  });
  std::vector<VertexId> ids;
  edgemap_internal::ConcatParts(kept, &ids, pool);
  return VertexSubset::FromVertices(frontier.universe(), std::move(ids));
}

}  // namespace lsg

#endif  // SRC_CORE_EDGEMAP_H_
