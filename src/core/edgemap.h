// Ligra-style frontier primitives (paper §5 "Interface").
//
// LSGraph exposes analytics through EdgeMap/VertexMap over the engines'
// Traverse operation. Everything here is templated on the engine type G,
// which must provide num_vertices(), degree(v), and map_neighbors(v, f) —
// the analytics kernels in src/analytics/ are therefore shared verbatim by
// LSGraph and all three baselines, so benchmark deltas isolate the data
// structures.
#ifndef SRC_CORE_EDGEMAP_H_
#define SRC_CORE_EDGEMAP_H_

#include <cstddef>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/bitvector.h"
#include "src/util/graph_types.h"

namespace lsg {

// A set of active vertices. Always carries the sparse list; EdgeMap decides
// how to iterate.
class VertexSubset {
 public:
  explicit VertexSubset(VertexId universe) : universe_(universe) {}

  static VertexSubset Single(VertexId universe, VertexId v) {
    VertexSubset s(universe);
    s.vertices_.push_back(v);
    return s;
  }

  // Dense frontier over the whole vertex set. Built in parallel: this runs
  // before every dense traversal, and a serial O(V) push_back loop shows up
  // at the front of each of them.
  static VertexSubset All(VertexId universe, ThreadPool* pool = nullptr) {
    VertexSubset s(universe);
    s.vertices_.resize(universe);
    VertexId* out = s.vertices_.data();
    ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
    p.ParallelForChunked(0, universe,
                         [out](size_t lo, size_t hi, size_t /*tid*/) {
                           for (size_t v = lo; v < hi; ++v) {
                             out[v] = static_cast<VertexId>(v);
                           }
                         });
    return s;
  }

  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }
  VertexId universe() const { return universe_; }

  const std::vector<VertexId>& vertices() const { return vertices_; }
  std::vector<VertexId>& mutable_vertices() { return vertices_; }

 private:
  VertexId universe_;
  std::vector<VertexId> vertices_;
};

namespace edgemap_internal {

// Concatenates per-thread output partitions into `out`: prefix offsets,
// then each partition copied in parallel into its slice of the pre-sized
// result (replacing the old serial append loop).
inline void ConcatParts(const std::vector<std::vector<VertexId>>& parts,
                        std::vector<VertexId>* out, ThreadPool& pool) {
  size_t nparts = parts.size();
  std::vector<size_t> offsets(nparts + 1, 0);
  for (size_t t = 0; t < nparts; ++t) {
    offsets[t + 1] = offsets[t] + parts[t].size();
  }
  out->resize(offsets[nparts]);
  VertexId* dst = out->data();
  pool.ParallelFor(
      0, nparts,
      [&](size_t t) { std::copy(parts[t].begin(), parts[t].end(), dst + offsets[t]); },
      1);
}

}  // namespace edgemap_internal

// Applies update(u, v) over every edge (u, v) with u in `frontier` and
// cond(v) true. A vertex v enters the returned frontier at most once, when
// update returns true (update must guarantee exactly-once success itself,
// e.g. via compare-and-swap).
template <typename G, typename UpdateF, typename CondF>
VertexSubset EdgeMap(const G& g, const VertexSubset& frontier, UpdateF update,
                     CondF cond, ThreadPool& pool) {
  size_t nthreads = pool.num_threads();
  std::vector<std::vector<VertexId>> next(nthreads);
  pool.ParallelForChunked(
      0, frontier.size(),
      [&](size_t lo, size_t hi, size_t tid) {
        std::vector<VertexId>& out = next[tid];
        for (size_t i = lo; i < hi; ++i) {
          VertexId u = frontier.vertices()[i];
          g.map_neighbors(u, [&](VertexId v) {
            if (cond(v) && update(u, v)) {
              out.push_back(v);
            }
          });
        }
      });
  VertexSubset result(frontier.universe());
  edgemap_internal::ConcatParts(next, &result.mutable_vertices(), pool);
  return result;
}

// Pull-direction EdgeMap (Ligra's dense mode). For every vertex v with
// cond(v), scans v's neighbors u and applies update(u, v) for each u in the
// frontier, stopping the *additions* (not the scan) after the first success.
// Correct on symmetrized graphs, where out-neighbors are in-neighbors.
// Profitable when the frontier covers a large fraction of the edges: the
// scan is sequential per vertex, and no atomics are needed because only v's
// owner thread writes v's state.
template <typename G, typename UpdateF, typename CondF>
VertexSubset EdgeMapPull(const G& g, const AtomicBitset& in_frontier,
                         UpdateF update, CondF cond, ThreadPool& pool) {
  VertexId n = g.num_vertices();
  size_t nthreads = pool.num_threads();
  std::vector<std::vector<VertexId>> next(nthreads);
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi, size_t tid) {
    for (size_t vi = lo; vi < hi; ++vi) {
      VertexId v = static_cast<VertexId>(vi);
      if (!cond(v)) {
        continue;
      }
      bool added = false;
      g.map_neighbors(v, [&](VertexId u) {
        if (!added && in_frontier.Get(u) && update(u, v)) {
          next[tid].push_back(v);
          added = true;
        }
      });
    }
  });
  VertexSubset result(n);
  edgemap_internal::ConcatParts(next, &result.mutable_vertices(), pool);
  return result;
}

// Applies f(v) to every vertex in the frontier, keeping those for which f
// returns true.
template <typename F>
VertexSubset VertexMap(const VertexSubset& frontier, F&& f, ThreadPool& pool) {
  size_t nthreads = pool.num_threads();
  std::vector<std::vector<VertexId>> kept(nthreads);
  pool.ParallelForChunked(0, frontier.size(),
                          [&](size_t lo, size_t hi, size_t tid) {
                            for (size_t i = lo; i < hi; ++i) {
                              VertexId v = frontier.vertices()[i];
                              if (f(v)) {
                                kept[tid].push_back(v);
                              }
                            }
                          });
  VertexSubset result(frontier.universe());
  edgemap_internal::ConcatParts(kept, &result.mutable_vertices(), pool);
  return result;
}

}  // namespace lsg

#endif  // SRC_CORE_EDGEMAP_H_
