// LSGraph: the locality-centric streaming graph engine (paper §4, §5).
//
// Per-vertex layout (Fig. 9): one cache line of vertex block holds the
// degree, up to L inline neighbors (the smallest ids), and a pointer to the
// overflow tail. The tail is a HiNode whose representation follows the
// vertex's degree: plain array (<= L+A), RIA (<= L+M), HITree (> L+M).
// Invariant: every inline id < every tail id, so traversal is a sorted scan
// of the inline run followed by the tail's Traverse.
//
// Batch updates sort by (src, dst), group per source vertex, and hand each
// group to one thread (§5): no locks, no cross-vertex movement.
//
// Snapshot isolation (DESIGN.md §12): Snapshot() pins the current version
// and returns an immutable, refcounted GraphView handle that analytics can
// traverse while later update batches land. While any snapshot is pinned,
// writers go copy-on-write: each mutated vertex's pre-image (its 64-byte
// block plus one reference to its tail) is pushed onto a per-vertex version
// chain, the new state is built aside and published with a per-vertex
// sequence number, and replaced structures are freed through the epoch
// reclaimer only after every reader that could hold them has unpinned.
// With no snapshots pinned, every update path is the original in-place
// code. AddVertices and engine destruction must not race snapshot reads
// (release every snapshot first); everything else may.
#ifndef SRC_CORE_LSGRAPH_H_
#define SRC_CORE_LSGRAPH_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "src/core/hitree.h"
#include "src/core/options.h"
#include "src/parallel/epoch.h"
#include "src/parallel/thread_pool.h"
#include "src/util/cache.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

class GraphSnapshot;

class LSGraph {
 public:
  // One cache line: degree + inline count + L inline ids + tail pointer.
  static constexpr size_t kInlineCap =
      (kCacheLineBytes - 2 * sizeof(uint32_t) - sizeof(void*)) /
      sizeof(VertexId);  // L = 12 with 64-byte lines and 4-byte ids

  LSGraph(VertexId num_vertices, Options options = {},
          ThreadPool* pool = nullptr);
  ~LSGraph();

  LSGraph(const LSGraph&) = delete;
  LSGraph& operator=(const LSGraph&) = delete;

  // Bulk (re)construction from an arbitrary edge list (sorted +
  // deduplicated internally); parallel across vertices. Invoked on a
  // non-empty engine it first releases every existing adjacency, so the
  // result is exactly the given edge list — vertices absent from it end up
  // empty. Pinned snapshots keep observing the pre-build state.
  void BuildFromEdges(std::vector<Edge> edges);

  // Grows the vertex set by `count` ids (streaming graphs add vertices as
  // well as edges); new vertices start with empty adjacency. Returns the
  // first new id. Not concurrent with updates, analytics, or snapshot
  // reads (the per-vertex arrays reallocate).
  VertexId AddVertices(VertexId count);

  // Batched streaming updates (§5): parallel sort + fused dedup/grouping
  // (PrepareBatch), then one vertex group per thread, largest group first.
  // Returns the number of edges actually added / removed.
  size_t InsertBatch(std::span<const Edge> batch);
  size_t DeleteBatch(std::span<const Edge> batch);

  // Apply phase only, for callers that already ran PrepareBatch (the
  // benchmark phase breakdown times prepare and apply separately).
  size_t InsertPrepared(const PreparedBatch& pb);
  size_t DeletePrepared(const PreparedBatch& pb);

  // Single-edge operations (serial).
  bool InsertEdge(VertexId src, VertexId dst);
  bool DeleteEdge(VertexId src, VertexId dst);
  bool HasEdge(VertexId src, VertexId dst) const;

  // Pins the graph at the current version and returns an immutable view of
  // it. Acquiring waits for any in-flight update batch (snapshots land on
  // batch boundaries); the handle itself is safe to read from any number
  // of threads while later updates run. The pin is released when the last
  // shared_ptr drops; every snapshot must be released before the engine is
  // destroyed or AddVertices/graph teardown runs.
  std::shared_ptr<const GraphSnapshot> Snapshot() const;

  VertexId num_vertices() const { return static_cast<VertexId>(blocks_.size()); }
  EdgeCount num_edges() const {
    return num_edges_.load(std::memory_order_relaxed);
  }
  size_t degree(VertexId v) const { return blocks_[v].degree; }

  // Edges naming a vertex >= num_vertices() are rejected (counted and
  // skipped) by every update path; HasEdge on them reports false. See
  // DESIGN.md "Endpoint validation".
  uint64_t oob_rejected() const {
    return oob_rejected_.load(std::memory_order_relaxed);
  }

  // Applies f(u) to every neighbor u of v in ascending order.
  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    const VertexBlock& vb = blocks_[v];
    for (uint32_t i = 0; i < vb.inline_count; ++i) {
      f(vb.inline_edges[i]);
    }
    if (vb.tail != nullptr) {
      vb.tail->Map(f);
    }
  }

  // Applies f(u) to v's neighbors, ascending, while f returns true. Returns
  // false iff the scan was cut short (used by pull-mode EdgeMap, §6.3).
  template <typename F>
  bool map_neighbors_while(VertexId v, F&& f) const {
    const VertexBlock& vb = blocks_[v];
    for (uint32_t i = 0; i < vb.inline_count; ++i) {
      if (!f(vb.inline_edges[i])) {
        return false;
      }
    }
    if (vb.tail != nullptr) {
      return vb.tail->MapWhile(f);
    }
    return true;
  }

  // Appends v's neighbors, ascending, to out (the array staging used by the
  // TC kernel, §6.3).
  void FillNeighbors(VertexId v, std::vector<VertexId>* out) const {
    out->reserve(out->size() + degree(v));
    map_neighbors(v, [out](VertexId u) { out->push_back(u); });
  }

  size_t memory_footprint() const;
  // RIA index arrays + LIA models/types: Table 3's index overhead.
  size_t index_bytes() const;

  // Bytes held by adjacency tails only (no vertex blocks): the part of the
  // footprint the compressed leaf mode actually changes, and the numerator
  // of the bytes/edge telemetry. Denominator: tail_edges(), the edges
  // resident in tails (inline ids are raw in both modes).
  size_t adjacency_bytes() const;
  EdgeCount tail_edges() const;

  const CoreStats& stats() const { return stats_; }
  CoreStats& mutable_stats() { return stats_; }
  const Options& options() const { return options_; }

  // Deep structural check across every vertex (tests only; O(E)).
  bool CheckInvariants() const;

 private:
  friend class GraphSnapshot;

  struct VertexBlock {
    uint32_t degree = 0;
    uint32_t inline_count = 0;
    VertexId inline_edges[kInlineCap];
    HiNode* tail = nullptr;  // owned (one ref); raw to keep the block one line
  };
  static_assert(sizeof(VertexBlock) == kCacheLineBytes);

  // Frozen pre-image of one vertex: the block state that was live when the
  // version stamped `vseq` was replaced. Immutable once published; `tail`
  // holds one reference. Chains are newest-first; `older` is atomic only so
  // pruning can relink while readers walk concurrently.
  struct VertexVersion {
    uint64_t vseq = 0;
    uint32_t degree = 0;
    uint32_t inline_count = 0;
    VertexId inline_edges[kInlineCap];
    HiNode* tail = nullptr;
    std::atomic<VertexVersion*> older{nullptr};
  };

  // Copyable atomic cells so the per-vertex arrays can still resize
  // (AddVertices is documented non-concurrent with snapshot reads).
  struct SeqCell {
    std::atomic<uint64_t> v{0};
    SeqCell() = default;
    SeqCell(const SeqCell& o) : v(o.v.load(std::memory_order_relaxed)) {}
    SeqCell& operator=(const SeqCell& o) {
      v.store(o.v.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
      return *this;
    }
  };
  struct ChainCell {
    std::atomic<VertexVersion*> head{nullptr};
    ChainCell() = default;
    ChainCell(const ChainCell& o)
        : head(o.head.load(std::memory_order_relaxed)) {}
    ChainCell& operator=(const ChainCell& o) {
      head.store(o.head.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      return *this;
    }
  };

  // Per-mutation-unit snapshot of the writer's obligations, captured once
  // under the writer gate and shared read-only by the batch workers.
  struct MutationCtx {
    uint64_t w = 0;              // version this unit publishes
    uint64_t newest_pinned = 0;  // newest pinned snapshot (valid iff cow)
    bool cow = false;            // any snapshot pinned at unit start?
  };

  bool InsertIntoVertex(VertexBlock& vb, VertexId dst);
  bool DeleteFromVertex(VertexBlock& vb, VertexId dst);

  // Grouped-batch recompress path (compressed mode): instead of paying one
  // block decode + re-encode per edge, a large group merges against the
  // whole adjacency in one decode / set-merge / rebuild. Below this group
  // size the per-edge path wins (one touched block vs a full re-encode).
  static constexpr size_t kGroupMergeMin = 16;
  // Merges the sorted unique dsts of pb group g into vb; returns edges
  // added, accumulating out-of-range dsts into *oob.
  size_t MergeGroupIntoVertex(VertexBlock& vb, const PreparedBatch& pb,
                              size_t g, size_t* oob);
  size_t DeleteGroupFromVertex(VertexBlock& vb, const PreparedBatch& pb,
                               size_t g, size_t* oob);
  // Re-lays vb out as exactly `ids` (sorted unique): smallest kInlineCap
  // inline, rest bulk-loaded into the tail (reused if present).
  void RebuildVertex(VertexBlock& vb, std::span<const VertexId> ids);

  // Invariant: a non-null tail is never empty. Releasing the HiNode the
  // moment it drains frees its arrays/index instead of retaining the
  // largest representation the vertex ever reached. (Unref, not delete:
  // a pre-image chain node may still share the structure.)
  static void FreeTailIfDrained(VertexBlock& vb) {
    if (vb.tail != nullptr && vb.tail->size() == 0) {
      vb.tail->Unref();
      vb.tail = nullptr;
    }
  }

  // --- MVCC internals (all require the writer gate unless noted) ---

  // Captures the writer's obligations for one mutation unit (a batch or a
  // single-edge op) and assigns its version.
  MutationCtx BeginUnit();
  // Starts a copy-on-write mutation of v: returns a private working copy
  // whose tail is a COW clone of the live one. Safe from batch workers
  // (each vertex is owned by one worker).
  VertexBlock CowBegin(VertexId v) const;
  // Publishes the privately mutated `work` as v's new state: preserves the
  // pre-image on the version chain if a pinned snapshot can still see it
  // (else epoch-retires the replaced tail), stamps the version, and stores
  // the block fields atomically so concurrent readers never tear.
  void CowPublish(VertexId v, const VertexBlock& work, const MutationCtx& mv);
  // Tracks v as owning a version chain, for pruning. Thread-safe.
  void RecordChained(VertexId v);
  // Retires every chain node no pinned snapshot can reach. Requires the
  // writer gate (runs at batch boundaries, snapshot release, destruction).
  void PruneChains();
  // Cleanup at the end of a gated mutation unit: prune unreachable chain
  // nodes and give the epoch reclaimer a chance to advance. No-op (and
  // lock-free) when the engine has never gone copy-on-write.
  void EndUnit(const MutationCtx& mv);
  void RetireTail(HiNode* tail);
  void ReleaseSnapshotVersion(uint64_t version) const;

  size_t InsertPreparedLocked(const PreparedBatch& pb);
  size_t DeletePreparedLocked(const PreparedBatch& pb);

  // Snapshot read path (no gate; epoch-guarded). Stages v's live neighbor
  // run into *out via tear-proof atomic field reads, then validates that
  // the version did not move; false means the caller must fall back to the
  // pre-image chain.
  bool StageLive(VertexId v, uint64_t s1, std::vector<VertexId>* out) const;
  size_t SnapshotDegree(uint64_t snap, VertexId v) const;
  bool SnapshotHasEdge(uint64_t snap, VertexId src, VertexId dst) const;
  // Finds the newest pre-image of v visible at `snap`; null means v was
  // empty (or unborn) at that version.
  const VertexVersion* FindVersion(uint64_t snap, VertexId v) const;
  // Thread-local staging buffer, moved out/in so nested snapshot reads on
  // one thread each get their own.
  static std::vector<VertexId> TakeScratch();
  static void ReturnScratch(std::vector<VertexId> scratch);

  template <typename F>
  void SnapshotMapNeighbors(uint64_t snap, VertexId v, F&& f) const {
    EpochManager::Guard guard;
    uint64_t s1 = vseq_[v].v.load(std::memory_order_acquire);
    if (s1 <= snap) {
      std::vector<VertexId> scratch = TakeScratch();
      bool ok = StageLive(v, s1, &scratch);
      if (ok) {
        for (VertexId u : scratch) {
          f(u);
        }
      }
      ReturnScratch(std::move(scratch));
      if (ok) {
        return;
      }
      // The vertex changed under the read; its pre-image is now preserved.
    }
    const VertexVersion* node = FindVersion(snap, v);
    if (node == nullptr) {
      return;
    }
    for (uint32_t i = 0; i < node->inline_count; ++i) {
      f(node->inline_edges[i]);
    }
    if (node->tail != nullptr) {
      node->tail->Map(f);
    }
  }

  template <typename F>
  bool SnapshotMapNeighborsWhile(uint64_t snap, VertexId v, F&& f) const {
    EpochManager::Guard guard;
    uint64_t s1 = vseq_[v].v.load(std::memory_order_acquire);
    if (s1 <= snap) {
      // Stage-then-consume: early exit saves callback work, not decode
      // work, on the live path; pre-image paths stream below.
      std::vector<VertexId> scratch = TakeScratch();
      bool ok = StageLive(v, s1, &scratch);
      bool cont = true;
      if (ok) {
        for (VertexId u : scratch) {
          if (!f(u)) {
            cont = false;
            break;
          }
        }
      }
      ReturnScratch(std::move(scratch));
      if (ok) {
        return cont;
      }
    }
    const VertexVersion* node = FindVersion(snap, v);
    if (node == nullptr) {
      return true;
    }
    for (uint32_t i = 0; i < node->inline_count; ++i) {
      if (!f(node->inline_edges[i])) {
        return false;
      }
    }
    if (node->tail != nullptr) {
      return node->tail->MapWhile(f);
    }
    return true;
  }

  ThreadPool& pool() const;

  Options options_;
  std::vector<VertexBlock> blocks_;
  std::atomic<EdgeCount> num_edges_{0};
  ThreadPool* pool_ = nullptr;
  // Mutable: the snapshot gauge moves on the const acquire/release path.
  mutable CoreStats stats_;
  // Atomic: batch apply rejects from one thread per vertex group.
  std::atomic<uint64_t> oob_rejected_{0};

  // MVCC state. writer_mu_ is the writer gate: every mutation unit and
  // every snapshot acquire holds it, so snapshots pin batch boundaries.
  mutable std::mutex writer_mu_;
  uint64_t version_ = 0;  // last published version; writer gate only
  mutable std::mutex snap_mu_;
  mutable std::multiset<uint64_t> pinned_;  // versions of live snapshots
  mutable std::vector<SeqCell> vseq_;       // version of v's last mutation
  mutable std::vector<ChainCell> chains_;   // newest-first pre-image chains
  std::mutex chained_mu_;
  std::vector<VertexId> chained_;  // vertices with a non-empty chain
};

// An immutable, refcounted view of one LSGraph version. Satisfies the
// GraphView concept, so EdgeMap and every analytics kernel run against it
// unchanged while update batches land on the live graph. Obtained from
// LSGraph::Snapshot(); the pin releases when the last shared_ptr drops.
// Handles must not outlive their engine.
class GraphSnapshot {
 public:
  ~GraphSnapshot() { g_->ReleaseSnapshotVersion(version_); }

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  // The version pinned, for telemetry and tests.
  uint64_t version() const { return version_; }

  VertexId num_vertices() const { return num_vertices_; }
  EdgeCount num_edges() const { return num_edges_; }

  size_t degree(VertexId v) const {
    return v < num_vertices_ ? g_->SnapshotDegree(version_, v) : 0;
  }

  bool HasEdge(VertexId src, VertexId dst) const {
    return src < num_vertices_ && dst < num_vertices_ &&
           g_->SnapshotHasEdge(version_, src, dst);
  }

  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    if (v < num_vertices_) {
      g_->SnapshotMapNeighbors(version_, v, f);
    }
  }

  template <typename F>
  bool map_neighbors_while(VertexId v, F&& f) const {
    if (v < num_vertices_) {
      return g_->SnapshotMapNeighborsWhile(version_, v, f);
    }
    return true;
  }

  void FillNeighbors(VertexId v, std::vector<VertexId>* out) const {
    out->reserve(out->size() + degree(v));
    map_neighbors(v, [out](VertexId u) { out->push_back(u); });
  }

 private:
  friend class LSGraph;
  GraphSnapshot(const LSGraph* g, uint64_t version, VertexId num_vertices,
                EdgeCount num_edges)
      : g_(g),
        version_(version),
        num_vertices_(num_vertices),
        num_edges_(num_edges) {}

  const LSGraph* g_;
  uint64_t version_;
  VertexId num_vertices_;
  EdgeCount num_edges_;
};

}  // namespace lsg

#endif  // SRC_CORE_LSGRAPH_H_
