// LSGraph: the locality-centric streaming graph engine (paper §4, §5).
//
// Per-vertex layout (Fig. 9): one cache line of vertex block holds the
// degree, up to L inline neighbors (the smallest ids), and a pointer to the
// overflow tail. The tail is a HiNode whose representation follows the
// vertex's degree: plain array (<= L+A), RIA (<= L+M), HITree (> L+M).
// Invariant: every inline id < every tail id, so traversal is a sorted scan
// of the inline run followed by the tail's Traverse.
//
// Batch updates sort by (src, dst), group per source vertex, and hand each
// group to one thread (§5): no locks, no cross-vertex movement.
#ifndef SRC_CORE_LSGRAPH_H_
#define SRC_CORE_LSGRAPH_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "src/core/hitree.h"
#include "src/core/options.h"
#include "src/parallel/thread_pool.h"
#include "src/util/cache.h"
#include "src/util/graph_types.h"
#include "src/util/sort.h"

namespace lsg {

class LSGraph {
 public:
  // One cache line: degree + inline count + L inline ids + tail pointer.
  static constexpr size_t kInlineCap =
      (kCacheLineBytes - 2 * sizeof(uint32_t) - sizeof(void*)) /
      sizeof(VertexId);  // L = 12 with 64-byte lines and 4-byte ids

  LSGraph(VertexId num_vertices, Options options = {},
          ThreadPool* pool = nullptr);
  ~LSGraph();

  LSGraph(const LSGraph&) = delete;
  LSGraph& operator=(const LSGraph&) = delete;

  // Bulk (re)construction from an arbitrary edge list (sorted +
  // deduplicated internally); parallel across vertices. Invoked on a
  // non-empty engine it first releases every existing adjacency, so the
  // result is exactly the given edge list — vertices absent from it end up
  // empty.
  void BuildFromEdges(std::vector<Edge> edges);

  // Grows the vertex set by `count` ids (streaming graphs add vertices as
  // well as edges); new vertices start with empty adjacency. Returns the
  // first new id. Not concurrent with updates or analytics.
  VertexId AddVertices(VertexId count) {
    VertexId first = num_vertices();
    blocks_.resize(blocks_.size() + count);
    return first;
  }

  // Batched streaming updates (§5): parallel sort + fused dedup/grouping
  // (PrepareBatch), then one vertex group per thread, largest group first.
  // Returns the number of edges actually added / removed.
  size_t InsertBatch(std::span<const Edge> batch);
  size_t DeleteBatch(std::span<const Edge> batch);

  // Apply phase only, for callers that already ran PrepareBatch (the
  // benchmark phase breakdown times prepare and apply separately).
  size_t InsertPrepared(const PreparedBatch& pb);
  size_t DeletePrepared(const PreparedBatch& pb);

  // Single-edge operations (serial).
  bool InsertEdge(VertexId src, VertexId dst);
  bool DeleteEdge(VertexId src, VertexId dst);
  bool HasEdge(VertexId src, VertexId dst) const;

  VertexId num_vertices() const { return static_cast<VertexId>(blocks_.size()); }
  EdgeCount num_edges() const { return num_edges_; }
  size_t degree(VertexId v) const { return blocks_[v].degree; }

  // Edges naming a vertex >= num_vertices() are rejected (counted and
  // skipped) by every update path; HasEdge on them reports false. See
  // DESIGN.md "Endpoint validation".
  uint64_t oob_rejected() const {
    return oob_rejected_.load(std::memory_order_relaxed);
  }

  // Applies f(u) to every neighbor u of v in ascending order.
  template <typename F>
  void map_neighbors(VertexId v, F&& f) const {
    const VertexBlock& vb = blocks_[v];
    for (uint32_t i = 0; i < vb.inline_count; ++i) {
      f(vb.inline_edges[i]);
    }
    if (vb.tail != nullptr) {
      vb.tail->Map(f);
    }
  }

  // Applies f(u) to v's neighbors, ascending, while f returns true. Returns
  // false iff the scan was cut short (used by pull-mode EdgeMap, §6.3).
  template <typename F>
  bool map_neighbors_while(VertexId v, F&& f) const {
    const VertexBlock& vb = blocks_[v];
    for (uint32_t i = 0; i < vb.inline_count; ++i) {
      if (!f(vb.inline_edges[i])) {
        return false;
      }
    }
    if (vb.tail != nullptr) {
      return vb.tail->MapWhile(f);
    }
    return true;
  }

  // Appends v's neighbors, ascending, to out (the array staging used by the
  // TC kernel, §6.3).
  void FillNeighbors(VertexId v, std::vector<VertexId>* out) const {
    out->reserve(out->size() + degree(v));
    map_neighbors(v, [out](VertexId u) { out->push_back(u); });
  }

  size_t memory_footprint() const;
  // RIA index arrays + LIA models/types: Table 3's index overhead.
  size_t index_bytes() const;

  // Bytes held by adjacency tails only (no vertex blocks): the part of the
  // footprint the compressed leaf mode actually changes, and the numerator
  // of the bytes/edge telemetry. Denominator: tail_edges(), the edges
  // resident in tails (inline ids are raw in both modes).
  size_t adjacency_bytes() const;
  EdgeCount tail_edges() const;

  const CoreStats& stats() const { return stats_; }
  CoreStats& mutable_stats() { return stats_; }
  const Options& options() const { return options_; }

  // Deep structural check across every vertex (tests only; O(E)).
  bool CheckInvariants() const;

 private:
  struct VertexBlock {
    uint32_t degree = 0;
    uint32_t inline_count = 0;
    VertexId inline_edges[kInlineCap];
    HiNode* tail = nullptr;  // owned; raw to keep the block one cache line
  };
  static_assert(sizeof(VertexBlock) == kCacheLineBytes);

  bool InsertIntoVertex(VertexBlock& vb, VertexId dst);
  bool DeleteFromVertex(VertexBlock& vb, VertexId dst);

  // Grouped-batch recompress path (compressed mode): instead of paying one
  // block decode + re-encode per edge, a large group merges against the
  // whole adjacency in one decode / set-merge / rebuild. Below this group
  // size the per-edge path wins (one touched block vs a full re-encode).
  static constexpr size_t kGroupMergeMin = 16;
  // Merges the sorted unique dsts of pb group g into vb; returns edges
  // added, accumulating out-of-range dsts into *oob.
  size_t MergeGroupIntoVertex(VertexBlock& vb, const PreparedBatch& pb,
                              size_t g, size_t* oob);
  size_t DeleteGroupFromVertex(VertexBlock& vb, const PreparedBatch& pb,
                               size_t g, size_t* oob);
  // Re-lays vb out as exactly `ids` (sorted unique): smallest kInlineCap
  // inline, rest bulk-loaded into the tail (reused if present).
  void RebuildVertex(VertexBlock& vb, std::span<const VertexId> ids);

  // Invariant: a non-null tail is never empty. Deleting the HiNode the
  // moment it drains releases its arrays/index instead of retaining the
  // largest representation the vertex ever reached.
  static void FreeTailIfDrained(VertexBlock& vb) {
    if (vb.tail != nullptr && vb.tail->size() == 0) {
      delete vb.tail;
      vb.tail = nullptr;
    }
  }

  ThreadPool& pool() const;

  Options options_;
  std::vector<VertexBlock> blocks_;
  EdgeCount num_edges_ = 0;
  ThreadPool* pool_ = nullptr;
  CoreStats stats_;
  // Atomic: batch apply rejects from one thread per vertex group.
  std::atomic<uint64_t> oob_rejected_{0};
};

}  // namespace lsg

#endif  // SRC_CORE_LSGRAPH_H_
