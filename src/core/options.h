// Tunables of the LSGraph representation (paper §5 "Graph Data").
#ifndef SRC_CORE_OPTIONS_H_
#define SRC_CORE_OPTIONS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/cache.h"
#include "src/util/graph_types.h"

namespace lsg {

class ThreadPool;

// Engine-wide update counters, shared by all structures of one graph.
// Atomic because batch updates run one vertex per thread.
struct CoreStats {
  std::atomic<uint64_t> ria_to_hitree_conversions{0};  // §6.2's RIA→HITree count
  std::atomic<uint64_t> ria_expansions{0};
  std::atomic<uint64_t> lia_child_creations{0};        // vertical movements

  // Downward conversions, the delete-path mirror of §6.2's upward ones:
  // a HITree root that shrinks below M/2 re-bulkloads flat, a RIA that
  // shrinks below A/2 becomes a plain array, and a RIA whose occupancy
  // falls well below 1/α rebuilds at the α target and releases capacity.
  std::atomic<uint64_t> hitree_to_ria_conversions{0};
  std::atomic<uint64_t> ria_to_array_conversions{0};
  std::atomic<uint64_t> ria_contractions{0};

  // Compressed-leaf (CRIA) instrumentation. bytes_resident is a gauge: the
  // live footprint of every compressed adjacency structure wired to these
  // stats (each structure adds its footprint deltas as it grows/shrinks and
  // subtracts itself on destruction). neighbors_decoded counts ids
  // materialized from delta-varint payloads — by traversal, point lookups,
  // and update-path block decodes alike — so the locality-vs-decode
  // tradeoff is visible next to the timings it explains.
  // cria_recompressions counts re-encodes wider than one block (windowed
  // redistributions, slack rebuilds, grouped-batch merges).
  std::atomic<uint64_t> bytes_resident{0};
  std::atomic<uint64_t> neighbors_decoded{0};
  std::atomic<uint64_t> cria_recompressions{0};

  // Pull-mode EdgeMap instrumentation (§6.3): how much of the scanned
  // vertices' adjacency was actually decoded before cond(v) ended each
  // scan, and how often EdgeMap ran in each direction. Engine-agnostic —
  // populated by the runtime via EdgeMapOptions::stats, not by the engines.
  std::atomic<uint64_t> pull_neighbors_decoded{0};
  std::atomic<uint64_t> pull_degree_scanned{0};
  std::atomic<uint64_t> pull_early_exits{0};
  std::atomic<uint64_t> edgemap_pull_rounds{0};
  std::atomic<uint64_t> edgemap_push_rounds{0};

  // MVCC snapshot instrumentation (DESIGN.md §12). snapshots_live is a
  // gauge of currently pinned Snapshot() handles. cow_copies counts
  // HiNode-level copy-on-write clones taken because a pinned snapshot could
  // still observe the node. deferred_frees counts retired structures handed
  // to the epoch reclaimer instead of freed inline.
  std::atomic<uint64_t> snapshots_live{0};
  std::atomic<uint64_t> cow_copies{0};
  std::atomic<uint64_t> deferred_frees{0};

  void Clear() {
    ria_to_hitree_conversions = 0;
    ria_expansions = 0;
    lia_child_creations = 0;
    hitree_to_ria_conversions = 0;
    ria_to_array_conversions = 0;
    ria_contractions = 0;
    bytes_resident = 0;
    neighbors_decoded = 0;
    cria_recompressions = 0;
    pull_neighbors_decoded = 0;
    pull_degree_scanned = 0;
    pull_early_exits = 0;
    edgemap_pull_rounds = 0;
    edgemap_push_rounds = 0;
    snapshots_live = 0;
    cow_copies = 0;
    deferred_frees = 0;
  }
};

struct Options {
  // Space amplification factor α: gapped arrays are allocated at
  // (element count * alpha). Default 1.2 (§6.5 trades update speed against
  // analytics locality and memory).
  double alpha = 1.2;

  // Threshold M: adjacency tails up to M ids use a RIA; above M they use a
  // HITree rooted at a LIA. Default 4096 = 2^12 (§6.5).
  uint32_t m_threshold = 4096;

  // Threshold A: tails up to A ids use a plain sorted array (no index).
  // The paper sets A to two cache lines of ids (§5).
  uint32_t a_threshold = 2 * kPerCacheLine<VertexId>;

  // Block size BKS for RIA and LIA, in ids; one cache line (§5).
  uint32_t block_size = kPerCacheLine<VertexId>;

  // Compressed leaf mode: adjacency tails store delta-varint payloads in
  // CRIA blocks (and, above M, in HITrees whose leaves are CRIAs) instead
  // of raw 4-byte ids. Trades decode work on every scan for ~2-3x fewer
  // resident adjacency bytes; analytics results are identical either way.
  bool compress_leaves = false;

  // CRIA block capacity in bytes. Two cache lines by default: the anchor
  // index plus at most two line transfers per point lookup (the RIA's
  // locality argument), with per-block overhead amortized over the denser
  // delta-varint payload.
  uint32_t cria_block_bytes = 2 * kCacheLineBytes;

  // Optional engine-wide counters; may be null.
  CoreStats* stats = nullptr;

  // Worker pool the engine runs its parallel phases on. Null means the
  // process-wide ThreadPool::Global(). Injecting the pool here (rather than
  // only via the engine constructor) lets factories that see just an
  // Options — and the service layer, which stripes one thread budget across
  // many engine instances — pick the pool without a constructor change per
  // engine. The constructor's explicit pool argument, when non-null, wins.
  ThreadPool* pool = nullptr;

  // Returns "" when the configuration is usable, else a one-line
  // description of the first violation. Engines call this on construction
  // and refuse to start (std::invalid_argument) instead of failing deep
  // inside a conversion or re-encode path hours into an ingest.
  std::string Validate() const {
    if (!(alpha >= 1.0) || alpha > 64.0) {
      return "alpha must be in [1, 64] (space amplification factor)";
    }
    // No upper bound on M: ~0u is a legitimate setting meaning "never
    // convert a RIA to a HITree" (the ablation benchmarks rely on it).
    if (m_threshold == 0) {
      return "m_threshold must be >= 1";
    }
    if (a_threshold == 0 || a_threshold > m_threshold) {
      return "a_threshold must be in [1, m_threshold]";
    }
    if (block_size == 0 || block_size > m_threshold) {
      return "block_size must be in [1, m_threshold]";
    }
    if (compress_leaves) {
      // A CRIA block stores a varint run after its raw 4-byte anchor; below
      // 16 bytes the per-block metadata outweighs the payload, and the
      // block-offset fields inside Cria are 16-bit, so 65534 is the hard
      // structural ceiling (previously an assert deep in cria.cpp).
      if (cria_block_bytes < 16 || cria_block_bytes > 65534) {
        return "cria_block_bytes must be in [16, 65534]";
      }
    }
    return "";
  }
};

}  // namespace lsg

#endif  // SRC_CORE_OPTIONS_H_
