// Tunables of the LSGraph representation (paper §5 "Graph Data").
#ifndef SRC_CORE_OPTIONS_H_
#define SRC_CORE_OPTIONS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/util/cache.h"
#include "src/util/graph_types.h"

namespace lsg {

// Engine-wide update counters, shared by all structures of one graph.
// Atomic because batch updates run one vertex per thread.
struct CoreStats {
  std::atomic<uint64_t> ria_to_hitree_conversions{0};  // §6.2's RIA→HITree count
  std::atomic<uint64_t> ria_expansions{0};
  std::atomic<uint64_t> lia_child_creations{0};        // vertical movements

  // Downward conversions, the delete-path mirror of §6.2's upward ones:
  // a HITree root that shrinks below M/2 re-bulkloads flat, a RIA that
  // shrinks below A/2 becomes a plain array, and a RIA whose occupancy
  // falls well below 1/α rebuilds at the α target and releases capacity.
  std::atomic<uint64_t> hitree_to_ria_conversions{0};
  std::atomic<uint64_t> ria_to_array_conversions{0};
  std::atomic<uint64_t> ria_contractions{0};

  // Compressed-leaf (CRIA) instrumentation. bytes_resident is a gauge: the
  // live footprint of every compressed adjacency structure wired to these
  // stats (each structure adds its footprint deltas as it grows/shrinks and
  // subtracts itself on destruction). neighbors_decoded counts ids
  // materialized from delta-varint payloads — by traversal, point lookups,
  // and update-path block decodes alike — so the locality-vs-decode
  // tradeoff is visible next to the timings it explains.
  // cria_recompressions counts re-encodes wider than one block (windowed
  // redistributions, slack rebuilds, grouped-batch merges).
  std::atomic<uint64_t> bytes_resident{0};
  std::atomic<uint64_t> neighbors_decoded{0};
  std::atomic<uint64_t> cria_recompressions{0};

  // Pull-mode EdgeMap instrumentation (§6.3): how much of the scanned
  // vertices' adjacency was actually decoded before cond(v) ended each
  // scan, and how often EdgeMap ran in each direction. Engine-agnostic —
  // populated by the runtime via EdgeMapOptions::stats, not by the engines.
  std::atomic<uint64_t> pull_neighbors_decoded{0};
  std::atomic<uint64_t> pull_degree_scanned{0};
  std::atomic<uint64_t> pull_early_exits{0};
  std::atomic<uint64_t> edgemap_pull_rounds{0};
  std::atomic<uint64_t> edgemap_push_rounds{0};

  // MVCC snapshot instrumentation (DESIGN.md §12). snapshots_live is a
  // gauge of currently pinned Snapshot() handles. cow_copies counts
  // HiNode-level copy-on-write clones taken because a pinned snapshot could
  // still observe the node. deferred_frees counts retired structures handed
  // to the epoch reclaimer instead of freed inline.
  std::atomic<uint64_t> snapshots_live{0};
  std::atomic<uint64_t> cow_copies{0};
  std::atomic<uint64_t> deferred_frees{0};

  void Clear() {
    ria_to_hitree_conversions = 0;
    ria_expansions = 0;
    lia_child_creations = 0;
    hitree_to_ria_conversions = 0;
    ria_to_array_conversions = 0;
    ria_contractions = 0;
    bytes_resident = 0;
    neighbors_decoded = 0;
    cria_recompressions = 0;
    pull_neighbors_decoded = 0;
    pull_degree_scanned = 0;
    pull_early_exits = 0;
    edgemap_pull_rounds = 0;
    edgemap_push_rounds = 0;
    snapshots_live = 0;
    cow_copies = 0;
    deferred_frees = 0;
  }
};

struct Options {
  // Space amplification factor α: gapped arrays are allocated at
  // (element count * alpha). Default 1.2 (§6.5 trades update speed against
  // analytics locality and memory).
  double alpha = 1.2;

  // Threshold M: adjacency tails up to M ids use a RIA; above M they use a
  // HITree rooted at a LIA. Default 4096 = 2^12 (§6.5).
  uint32_t m_threshold = 4096;

  // Threshold A: tails up to A ids use a plain sorted array (no index).
  // The paper sets A to two cache lines of ids (§5).
  uint32_t a_threshold = 2 * kPerCacheLine<VertexId>;

  // Block size BKS for RIA and LIA, in ids; one cache line (§5).
  uint32_t block_size = kPerCacheLine<VertexId>;

  // Compressed leaf mode: adjacency tails store delta-varint payloads in
  // CRIA blocks (and, above M, in HITrees whose leaves are CRIAs) instead
  // of raw 4-byte ids. Trades decode work on every scan for ~2-3x fewer
  // resident adjacency bytes; analytics results are identical either way.
  bool compress_leaves = false;

  // CRIA block capacity in bytes. Two cache lines by default: the anchor
  // index plus at most two line transfers per point lookup (the RIA's
  // locality argument), with per-block overhead amortized over the denser
  // delta-varint payload.
  uint32_t cria_block_bytes = 2 * kCacheLineBytes;

  // Optional engine-wide counters; may be null.
  CoreStats* stats = nullptr;
};

}  // namespace lsg

#endif  // SRC_CORE_OPTIONS_H_
