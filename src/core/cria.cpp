#include "src/core/cria.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define LSG_CRIA_BMI2_DECODER 1
#endif

namespace lsg {

namespace {

#ifdef LSG_CRIA_BMI2_DECODER

// Cursor for one block's in-flight decode inside DecodePairFast.
struct DecodeCursor {
  const uint8_t* p;   // next payload byte
  VertexId* o;        // next output slot
  VertexId* oend;     // one past the last real output slot
  VertexId v;         // running prefix sum
};

// Per-stop-mask decode plan: for each of the 256 possible "varint ends
// here" bit patterns of an 8-byte window, the bit-slice positions of up to
// 8 varint values inside the pext-gathered payload word, pre-multiplied by
// 7 so the decode loop does no arithmetic on them. One L1 load replaces a
// popcount + pdep/tzcnt dependency chain — the window's critical path
// drops by ~5 cycles, which is the difference between ~2.5 and ~1.7 ns/id
// on delta-heavy scans. Eight slots (not four) so a window of 1-byte
// deltas — the common case inside hub adjacency runs, where most edges
// live — drains in a single step.
//
// Slots past the varints actually present get a zero-length slice (their
// bzhi masks everything away), so the decode needs no validity masking.
struct WindowPlan {
  uint8_t s[7];          // bit shift of varints 1..7 (varint 0 is at 0)
  uint8_t l[8];          // bit lengths; 0 for absent slots
  uint8_t take_advance;  // take << 4 | bytes consumed
};
static_assert(sizeof(WindowPlan) == 16);

constexpr std::array<WindowPlan, 256> BuildWindowPlans() {
  std::array<WindowPlan, 256> plans{};
  for (int m = 0; m < 256; ++m) {
    // e[k]: one past the end byte of varint k; absent slots collapse to
    // zero-length slices at the last real boundary.
    uint8_t e[8];
    int cnt = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if ((m >> bit) & 1) {
        e[cnt++] = static_cast<uint8_t>(bit + 1);
      }
    }
    for (int k = cnt; k < 8; ++k) {
      e[k] = cnt == 0 ? 0 : e[cnt - 1];
    }
    WindowPlan& plan = plans[m];
    for (int k = 0; k < 7; ++k) {
      plan.s[k] = static_cast<uint8_t>(7 * e[k]);
    }
    plan.l[0] = static_cast<uint8_t>(7 * e[0]);
    for (int k = 1; k < 8; ++k) {
      plan.l[k] = static_cast<uint8_t>(7 * (e[k] - e[k - 1]));
    }
    plan.take_advance =
        static_cast<uint8_t>(cnt << 4 | (cnt == 0 ? 0 : e[cnt - 1]));
  }
  return plans;
}

constexpr std::array<WindowPlan, 256> kWindowPlans = BuildWindowPlans();

// Decodes all varints wholly inside one 8-byte window (1 to 8 of them).
// The caller checks the output bound; a window call always makes progress
// on valid input.
//
// pext gathers the low 7 bits of all 8 bytes into one 56-bit word (LEB128
// stores the least-significant group first, so varint k's value is a
// contiguous bit-slice of it), and pext of the inverted continuation bits
// yields one "stop" bit per varint end. The stop mask indexes kWindowPlans
// for the slice positions — no serial pointer advance per varint, which is
// what bounds the byte-at-a-time decoders. Always writes 8 slots (the
// caller's buffer has kDecodeSlackIds of slack); advances o by the number
// of varints actually present.
__attribute__((target("bmi,bmi2"), always_inline)) inline void
DecodeWindow(DecodeCursor& c) {
  uint64_t w;
  std::memcpy(&w, c.p, sizeof(w));
  uint64_t x = _pext_u64(w, 0x7f7f7f7f7f7f7f7fULL);
  uint32_t stops =
      static_cast<uint32_t>(_pext_u64(~w, 0x8080808080808080ULL)) & 0xff;
  if (stops == 0) [[unlikely]] {
    // A varint spanning the whole window: >= 8 bytes, i.e. a delta >= 2^56.
    // Deltas are 32-bit so this cannot come from our encoder; decode one
    // varint generically so corrupt input still terminates.
    const uint8_t* q = c.p;
    c.v += static_cast<uint32_t>(ReadVarint(q));
    *c.o++ = c.v;
    c.p = q;
    return;
  }
  const WindowPlan& plan = kWindowPlans[stops];
  // bzhi with an index >= 32 returns the source unchanged, which is exactly
  // right for a 5-byte varint whose value still fits 32 bits; absent slots
  // have zero-length slices and decode to 0, keeping the prefix sum exact.
  VertexId v = c.v;
  v += _bzhi_u32(static_cast<uint32_t>(x), plan.l[0]);
  c.o[0] = v;
  v += _bzhi_u32(static_cast<uint32_t>(x >> plan.s[0]), plan.l[1]);
  c.o[1] = v;
  v += _bzhi_u32(static_cast<uint32_t>(x >> plan.s[1]), plan.l[2]);
  c.o[2] = v;
  v += _bzhi_u32(static_cast<uint32_t>(x >> plan.s[2]), plan.l[3]);
  c.o[3] = v;
  v += _bzhi_u32(static_cast<uint32_t>(x >> plan.s[3]), plan.l[4]);
  c.o[4] = v;
  v += _bzhi_u32(static_cast<uint32_t>(x >> plan.s[4]), plan.l[5]);
  c.o[5] = v;
  v += _bzhi_u32(static_cast<uint32_t>(x >> plan.s[5]), plan.l[6]);
  c.o[6] = v;
  v += _bzhi_u32(static_cast<uint32_t>(x >> plan.s[6]), plan.l[7]);
  c.o[7] = v;
  c.v = v;
  c.o += plan.take_advance >> 4;
  c.p += plan.take_advance & 0xf;
}

__attribute__((target("bmi,bmi2"))) void DecodePairBmi2(
    const uint8_t* pa, uint16_t ca, VertexId va, VertexId* bufa,
    const uint8_t* pb, uint16_t cb, VertexId vb, VertexId* bufb) {
  bufa[0] = va;
  bufb[0] = vb;
  DecodeCursor a{pa, bufa + 1, bufa + ca, va};
  DecodeCursor b{pb, bufb + 1, bufb + cb, vb};
  while (a.o < a.oend && b.o < b.oend) {
    DecodeWindow(a);
    DecodeWindow(b);
  }
  while (a.o < a.oend) {
    DecodeWindow(a);
  }
  while (b.o < b.oend) {
    DecodeWindow(b);
  }
}

__attribute__((target("bmi,bmi2"))) void DecodeQuadBmi2(
    const uint8_t* const* p, const uint16_t* count, const VertexId* anchor,
    VertexId* const* buf) {
  DecodeCursor cur[4];
  for (int k = 0; k < 4; ++k) {
    buf[k][0] = anchor[k];
    cur[k] = DecodeCursor{p[k], buf[k] + 1, buf[k] + count[k], anchor[k]};
  }
  while (cur[0].o < cur[0].oend && cur[1].o < cur[1].oend &&
         cur[2].o < cur[2].oend && cur[3].o < cur[3].oend) {
    DecodeWindow(cur[0]);
    DecodeWindow(cur[1]);
    DecodeWindow(cur[2]);
    DecodeWindow(cur[3]);
  }
  // Blocks are near-uniformly packed, so these drains are short.
  for (int k = 0; k < 4; ++k) {
    while (cur[k].o < cur[k].oend) {
      DecodeWindow(cur[k]);
    }
  }
}

#endif  // LSG_CRIA_BMI2_DECODER

}  // namespace

bool Cria::FusedDecodeAvailable() {
#ifdef LSG_CRIA_BMI2_DECODER
  static const bool available =
      __builtin_cpu_supports("bmi") && __builtin_cpu_supports("bmi2") &&
      __builtin_cpu_supports("popcnt");
  return available;
#else
  return false;
#endif
}

void Cria::DecodePairFast(const uint8_t* pa, uint16_t ca, VertexId va,
                          VertexId* bufa, const uint8_t* pb, uint16_t cb,
                          VertexId vb, VertexId* bufb) {
#ifdef LSG_CRIA_BMI2_DECODER
  DecodePairBmi2(pa, ca, va, bufa, pb, cb, vb, bufb);
#else
  (void)pa; (void)ca; (void)va; (void)bufa;
  (void)pb; (void)cb; (void)vb; (void)bufb;
#endif
}

void Cria::DecodeQuadFast(const uint8_t* const* p, const uint16_t* count,
                          const VertexId* anchor, VertexId* const* buf) {
#ifdef LSG_CRIA_BMI2_DECODER
  DecodeQuadBmi2(p, count, anchor, buf);
#else
  (void)p; (void)count; (void)anchor; (void)buf;
#endif
}

Cria::Cria(const Options& options)
    : core_stats_(options.stats),
      block_bytes_(static_cast<uint16_t>(options.cria_block_bytes)),
      alpha_(static_cast<float>(options.alpha)) {
  // BlockMeta fields are uint16: a block's id count is bounded by its
  // payload bytes + 1 (every delta is at least one byte), so one bound
  // covers both.
  assert(options.cria_block_bytes >= 8 && options.cria_block_bytes <= 0xfffe);
  assert(alpha_ >= 1.0f);
}

Cria::Cria(const Cria& other)
    : data_(other.data_),
      core_stats_(other.core_stats_),
      num_blocks_(other.num_blocks_),
      size_(other.size_),
      used_total_(other.used_total_),
      stats_(other.stats_),
      block_bytes_(other.block_bytes_),
      alpha_(other.alpha_) {
  // resident_reported_ stays 0 until here: the clone is new residency, on
  // top of (not instead of) the original's.
  UpdateResidentGauge();
}

Cria::~Cria() {
  if (core_stats_ != nullptr && resident_reported_ != 0) {
    core_stats_->bytes_resident.fetch_sub(resident_reported_,
                                          std::memory_order_relaxed);
  }
}

void Cria::BulkLoad(std::span<const VertexId> sorted_ids) {
  size_ = static_cast<uint32_t>(sorted_ids.size());
  used_total_ = 0;
  if (size_ == 0) {
    num_blocks_ = 0;
    data_.clear();
    ReleaseExcessCapacity();
    UpdateResidentGauge();
    return;
  }
  // Greedy packing to a payload target of block_bytes / alpha: the same
  // slack policy as the raw RIA's slot amplification, in bytes.
  size_t fill_target = std::max<size_t>(
      1, static_cast<size_t>(static_cast<float>(block_bytes_) / alpha_));
  size_t n = size_;
  std::vector<BlockMeta> metas;
  size_t i = 0;
  while (i < n) {
    size_t payload = 0;
    size_t j = i + 1;
    while (j < n) {
      size_t len = VarintLength(sorted_ids[j] - sorted_ids[j - 1]);
      if (payload + len > fill_target) {
        break;
      }
      payload += len;
      ++j;
    }
    metas.push_back(
        {static_cast<uint16_t>(j - i), static_cast<uint16_t>(payload)});
    used_total_ += static_cast<uint32_t>(payload);
    i = j;
  }
  num_blocks_ = static_cast<uint32_t>(metas.size());
  // Full-capacity blocks except the trailing one, which gets exactly its
  // payload: a small set (the common adjacency tail) pays for its bytes,
  // not for a whole block of slack. WriteBlock grows it on demand. The
  // kDecodePad slack keeps FastDelta's word loads in-bounds.
  data_.assign(payload_offset() + (num_blocks_ - 1) * block_bytes_ +
                   metas.back().used + kDecodePad,
               0);
  size_t src = 0;
  for (size_t b = 0; b < num_blocks_; ++b) {
    set_anchor(b, sorted_ids[src]);
    set_meta(b, metas[b]);
    uint8_t* q = block_data(b);
    const uint8_t* start = q;
    for (uint16_t k = 1; k < metas[b].count; ++k) {
      uint64_t delta = sorted_ids[src + k] - sorted_ids[src + k - 1];
      while (delta >= 0x80) {
        *q++ = static_cast<uint8_t>(delta) | 0x80;
        delta >>= 7;
      }
      *q++ = static_cast<uint8_t>(delta);
    }
    assert(static_cast<size_t>(q - start) == metas[b].used);
    (void)start;
    src += metas[b].count;
  }
  assert(src == n);
  ReleaseExcessCapacity();
  UpdateResidentGauge();
}

void Cria::ReleaseExcessCapacity() {
  if (data_.capacity() > 2 * data_.size()) {
    data_.shrink_to_fit();
  }
}

void Cria::UpdateResidentGauge() {
  if (core_stats_ == nullptr) {
    return;
  }
  uint32_t now = static_cast<uint32_t>(memory_footprint());
  if (now >= resident_reported_) {
    core_stats_->bytes_resident.fetch_add(now - resident_reported_,
                                          std::memory_order_relaxed);
  } else {
    core_stats_->bytes_resident.fetch_sub(resident_reported_ - now,
                                          std::memory_order_relaxed);
  }
  resident_reported_ = now;
}

size_t Cria::FindBlock(VertexId id) const {
  // upper_bound over the anchors, then step back one block.
  size_t lo = 0;
  size_t hi = num_blocks_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (id < anchor(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

size_t Cria::MovementBound() const {
  return std::max<size_t>(
      1, std::bit_width(static_cast<size_t>(num_blocks_)) - 1);
}

void Cria::DecodeBlock(size_t b, std::vector<VertexId>* out) const {
  const uint8_t* p = block_data(b);
  uint16_t count = meta(b).count;
  VertexId v = anchor(b);
  out->push_back(v);
  for (uint16_t i = 1; i < count; ++i) {
    v += FastDelta(p);
    out->push_back(v);
  }
}

size_t Cria::PayloadBytes(std::span<const VertexId> ids) {
  size_t total = 0;
  for (size_t i = 1; i < ids.size(); ++i) {
    total += VarintLength(ids[i] - ids[i - 1]);
  }
  return total;
}

void Cria::WriteBlock(size_t b, std::span<const VertexId> ids) {
  assert(!ids.empty());
  size_t payload = PayloadBytes(ids);
  assert(payload <= block_bytes_);
  // Only the trailing block can be allocated short (BulkLoad trims it).
  if (payload_offset() + b * block_bytes_ + payload + kDecodePad >
      data_.size()) {
    assert(b + 1 == num_blocks_);
    data_.resize(payload_offset() + b * block_bytes_ + payload + kDecodePad,
                 0);
  }
  uint8_t* p = block_data(b);
  uint8_t* q = p;
  for (size_t i = 1; i < ids.size(); ++i) {
    uint64_t delta = ids[i] - ids[i - 1];
    while (delta >= 0x80) {
      *q++ = static_cast<uint8_t>(delta) | 0x80;
      delta >>= 7;
    }
    *q++ = static_cast<uint8_t>(delta);
  }
  assert(static_cast<size_t>(q - p) == payload);
  used_total_ += static_cast<uint32_t>(payload) - meta(b).used;
  set_meta(b, {static_cast<uint16_t>(ids.size()),
               static_cast<uint16_t>(payload)});
  set_anchor(b, ids[0]);
  ++stats_.blocks_reencoded;
}

bool Cria::TryRedistribute(size_t b, const std::vector<VertexId>& block_ids) {
  size_t nb = num_blocks_;
  if (nb < 2) {
    return false;
  }
  size_t bound = MovementBound();
  std::vector<VertexId> window;
  for (size_t d = 1; d <= bound; ++d) {
    size_t lo = b >= d ? b - d : 0;
    size_t hi = std::min(b + d, nb - 1);
    size_t nblk = hi - lo + 1;
    if (nblk < 2) {
      continue;
    }
    window.clear();
    size_t decoded = 0;
    for (size_t k = lo; k <= hi; ++k) {
      if (k == b) {
        window.insert(window.end(), block_ids.begin(), block_ids.end());
      } else {
        DecodeBlock(k, &window);
        decoded += meta(k).count;
      }
    }
    NoteDecoded(decoded);
    // Even count split: block k of the window takes ceil/floor of the ids.
    // Every block stays non-empty (window holds >= nblk ids: each source
    // block held >= 1). Commit iff every segment's payload fits.
    size_t total = window.size();
    size_t base = total / nblk;
    size_t rem = total % nblk;
    assert(base >= 1);
    bool fits = true;
    size_t off = 0;
    for (size_t k = 0; k < nblk && fits; ++k) {
      size_t take = base + (k < rem ? 1 : 0);
      fits = PayloadBytes(std::span(window.data() + off, take)) <= block_bytes_;
      off += take;
    }
    if (!fits) {
      continue;
    }
    off = 0;
    for (size_t k = lo; k <= hi; ++k) {
      size_t take = base + (k - lo < rem ? 1 : 0);
      WriteBlock(k, std::span(window.data() + off, take));
      off += take;
    }
    ++stats_.redistributions;
    NoteRecompressed();
    return true;
  }
  return false;
}

Cria::InsertResult Cria::TryInsert(VertexId id) {
  if (num_blocks_ == 0) {
    VertexId one[1] = {id};
    BulkLoad(one);
    return InsertResult::kInserted;
  }
  size_t b = FindBlock(id);
  std::vector<VertexId> ids;
  ids.reserve(meta(b).count + 1);
  DecodeBlock(b, &ids);
  NoteDecoded(ids.size());
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) {
    return InsertResult::kDuplicate;
  }
  ids.insert(it, id);
  if (PayloadBytes(ids) <= block_bytes_) {
    WriteBlock(b, ids);
    ++size_;
    return InsertResult::kInserted;
  }
  if (TryRedistribute(b, ids)) {
    ++size_;
    return InsertResult::kInserted;
  }
  return InsertResult::kNeedExpand;
}

bool Cria::Insert(VertexId id) {
  switch (TryInsert(id)) {
    case InsertResult::kInserted:
      return true;
    case InsertResult::kDuplicate:
      return false;
    case InsertResult::kNeedExpand: {
      std::vector<VertexId> ids = Decode();
      ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
      BulkLoad(ids);  // re-derives size_
      ++stats_.rebuilds;
      NoteRecompressed();
      return true;
    }
  }
  return false;
}

bool Cria::Contains(VertexId id) const {
  if (num_blocks_ == 0) {
    return false;
  }
  size_t b = FindBlock(id);
  VertexId v = anchor(b);
  if (id < v) {
    return false;  // below the first anchor (only possible for b == 0)
  }
  if (id == v) {
    NoteDecoded(1);
    return true;
  }
  const uint8_t* p = block_data(b);
  uint16_t count = meta(b).count;
  size_t decoded = 1;
  for (uint16_t i = 1; i < count; ++i) {
    v += FastDelta(p);
    ++decoded;
    if (v >= id) {
      NoteDecoded(decoded);
      return v == id;
    }
  }
  NoteDecoded(decoded);
  return false;
}

bool Cria::Delete(VertexId id) {
  if (num_blocks_ == 0) {
    return false;
  }
  size_t b = FindBlock(id);
  std::vector<VertexId> ids;
  ids.reserve(meta(b).count);
  DecodeBlock(b, &ids);
  NoteDecoded(ids.size());
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) {
    return false;
  }
  ids.erase(it);
  if (ids.empty()) {
    // No empty blocks allowed (the anchor would dangle): rebuild without
    // the drained block. Blocks are gathered in order, so the result stays
    // sorted.
    std::vector<VertexId> rest;
    rest.reserve(size_ - 1);
    for (size_t k = 0; k < num_blocks_; ++k) {
      if (k != b) {
        DecodeBlock(k, &rest);
      }
    }
    BulkLoad(rest);
    ++stats_.rebuilds;
    NoteRecompressed();
    return true;
  }
  // Removing an id merges two deltas into one (or drops the first delta
  // when the anchor goes): the payload never grows, so the write fits.
  WriteBlock(b, ids);
  --size_;
  MaybeContract();
  return true;
}

size_t Cria::MergeInsert(std::span<const VertexId> sorted_ids) {
  if (sorted_ids.empty()) {
    return 0;
  }
  std::vector<VertexId> cur = Decode();
  std::vector<VertexId> merged;
  merged.reserve(cur.size() + sorted_ids.size());
  std::set_union(cur.begin(), cur.end(), sorted_ids.begin(), sorted_ids.end(),
                 std::back_inserter(merged));
  size_t added = merged.size() - cur.size();
  if (added != 0) {
    BulkLoad(merged);
    ++stats_.rebuilds;
    NoteRecompressed();
  }
  return added;
}

size_t Cria::MergeDelete(std::span<const VertexId> sorted_ids) {
  if (sorted_ids.empty() || size_ == 0) {
    return 0;
  }
  std::vector<VertexId> cur = Decode();
  std::vector<VertexId> rest;
  rest.reserve(cur.size());
  std::set_difference(cur.begin(), cur.end(), sorted_ids.begin(),
                      sorted_ids.end(), std::back_inserter(rest));
  size_t removed = cur.size() - rest.size();
  if (removed != 0) {
    BulkLoad(rest);
    ++stats_.rebuilds;
    NoteRecompressed();
  }
  return removed;
}

void Cria::MaybeContract() {
  // Hysteresis at twice the slack target (plus one block) so a rebuild is
  // never immediately undone. The repack estimate charges each current
  // block's payload plus a rejoin delta for its anchor (packed blocks
  // re-include deltas the per-block anchors currently elide).
  size_t payload_alloc = data_.size() - payload_offset() - kDecodePad;
  if (payload_alloc <= block_bytes_) {
    return;
  }
  double est_payload = static_cast<double>(used_total_) +
                       5.0 * static_cast<double>(num_blocks_);
  if (static_cast<double>(payload_alloc) <=
      2.0 * alpha_ * est_payload + block_bytes_) {
    return;
  }
  BulkLoad(Decode());
  ++stats_.contractions;
  NoteRecompressed();
  if (core_stats_ != nullptr) {
    core_stats_->ria_contractions.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t Cria::memory_footprint() const {
  return sizeof(*this) + data_.capacity();
}

size_t Cria::index_bytes() const {
  return payload_offset();  // anchors + occupancy metadata
}

bool Cria::CheckInvariants() const {
  if (num_blocks_ == 0) {
    return data_.empty() && size_ == 0 && used_total_ == 0;
  }
  // The trailing block may be allocated anywhere between its payload and
  // full block capacity (plus the decode pad); every other block is
  // full-capacity by layout.
  size_t min_bytes = payload_offset() + (num_blocks_ - 1) * block_bytes_ +
                     meta(num_blocks_ - 1).used + kDecodePad;
  size_t max_bytes = payload_offset() + num_blocks_ * block_bytes_ + kDecodePad;
  if (data_.size() < min_bytes || data_.size() > max_bytes) {
    return false;
  }
  size_t total = 0;
  size_t total_used = 0;
  VertexId prev = 0;
  bool first = true;
  for (size_t b = 0; b < num_blocks_; ++b) {
    BlockMeta m = meta(b);
    if (m.count == 0 || m.used > block_bytes_) {
      return false;
    }
    const uint8_t* p = block_data(b);
    const uint8_t* start = p;
    VertexId v = anchor(b);
    for (uint16_t i = 0; i < m.count; ++i) {
      if (i != 0) {
        uint64_t delta = ReadVarint(p);
        if (delta == 0) {
          return false;  // duplicates are not representable
        }
        v += static_cast<VertexId>(delta);
      }
      if (!first && v <= prev) {
        return false;
      }
      prev = v;
      first = false;
      ++total;
    }
    if (static_cast<size_t>(p - start) != m.used) {
      return false;
    }
    total_used += m.used;
  }
  return total == size_ && total_used == used_total_;
}

}  // namespace lsg
