// Compressed Redundant Indexed Array ("CRIA"): the compressed leaf mode of
// LSGraph's RIA/HITree adjacency (ROADMAP item 3).
//
// Layout mirrors the RIA: the sorted id set is carved into fixed-capacity
// byte blocks with a redundant index holding the first id ("anchor") of
// every block — but inside a block the ids after the anchor are stored as
// delta-varints instead of raw 4-byte words (the encoding Aspen/PaC-tree
// use, src/ctree/compressed_chunk.h). The raw anchors double as
// block-sparse skip entries: a point lookup binary-searches the contiguous
// index and decodes at most one block, never the whole run. Traversal
// decodes while scanning — Map/MapWhile stream ids straight to the caller,
// so EdgeMap and every analytics kernel run against compressed leaves
// unchanged.
//
// Everything lives in ONE allocation. A Cria is instantiated per adjacency
// tail, so fixed overhead is paid per vertex; three separate vectors
// (anchors, occupancy, payload) would triple the allocator traffic and add
// ~100 bytes of vector headers per tail — enough to erase the varint
// savings on medium-degree graphs. Instead `data_` packs
//
//   [ anchors: nb x 4B | meta: nb x {u16 count, u16 used} | payload blocks ]
//
// with block b's payload at payload_offset() + b * block_bytes_. The
// trailing block is allocated only up to its payload (WriteBlock grows it
// on demand), so a one-block set pays for its bytes, not a whole block of
// slack. The block count only changes inside BulkLoad, which rebuilds the
// whole layout; in-place updates never shift the section offsets.
//
// Updates re-encode only the touched block. A block whose payload outgrows
// its byte capacity first redistributes its ids over a window of adjacent
// blocks (the RIA's regulated horizontal movement, applied to bytes),
// bounded to log2(num_blocks) blocks per side; past the bound the caller
// rebuilds with slack (alpha acts as the byte fill-ratio target, exactly as
// it pads raw RIA slots). Deletes can only shrink a payload; an emptied
// block or gross under-occupancy triggers a contraction rebuild that
// releases memory.
//
// Not thread-safe; single writer per instance. Concurrent read-only
// traversal (Map/MapWhile/Contains) is safe, matching RIA.
#ifndef SRC_CORE_CRIA_H_
#define SRC_CORE_CRIA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/core/options.h"
#include "src/ctree/compressed_chunk.h"
#include "src/util/graph_types.h"

namespace lsg {

struct CriaStats {
  uint32_t blocks_reencoded = 0;   // single-block decode+re-encode writes
  uint32_t redistributions = 0;    // window repacks (horizontal movement)
  uint32_t rebuilds = 0;           // full re-bulkloads (expansion / merge)
  uint32_t contractions = 0;       // delete-side rebuilds releasing slots
};

class Cria {
 public:
  explicit Cria(const Options& options);
  ~Cria();

  // COW clone for MVCC snapshots (DESIGN.md §12): deep-copies the single
  // [anchors|meta|payload] allocation so the clone never aliases the live
  // bytes — a later recompaction/redistribution of the original cannot
  // invalidate a pinned snapshot's scan — and reports its own footprint
  // into the resident gauge.
  Cria(const Cria& other);
  Cria& operator=(const Cria&) = delete;

  // Rebuilds from sorted unique ids. Blocks are packed to a payload target
  // of block_bytes / alpha, leaving byte slack to absorb inserts.
  void BulkLoad(std::span<const VertexId> sorted_ids);

  enum class InsertResult {
    kInserted,
    kDuplicate,
    // The id's home block is byte-full and no window within the movement
    // bound can absorb the repack; the caller decides between a slack
    // rebuild and conversion to a HITree (the RIA ladder, Algorithm 2).
    kNeedExpand,
  };

  // Inserts without ever growing the byte array: block-local re-encode
  // first, then windowed redistribution within the movement bound.
  InsertResult TryInsert(VertexId id);

  // TryInsert + slack rebuild on kNeedExpand.
  bool Insert(VertexId id);
  bool Delete(VertexId id);
  bool Contains(VertexId id) const;

  // Bulk merge of a sorted unique id run into the set (the grouped-batch
  // recompress path): one decode, one set-union, one re-encode. Returns the
  // number of ids actually added.
  size_t MergeInsert(std::span<const VertexId> sorted_ids);
  // Bulk subtraction; returns the number of ids actually removed.
  size_t MergeDelete(std::span<const VertexId> sorted_ids);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_blocks() const { return num_blocks_; }
  // Encoded payload bytes in use (excludes anchors, slack, and metadata).
  size_t payload_bytes() const { return used_total_; }

  // Smallest id; requires !empty().
  VertexId First() const { return anchor(0); }

  // Applies f(id) in ascending order, decoding while scanning.
  //
  // Blocks decode independently (each starts from its own raw anchor), but
  // within a block every delta depends on the previous one — a serial
  // decode is latency-bound on that chain. Map therefore fuses pairs of
  // blocks, advancing both chains in one loop so their latencies overlap,
  // decoding into stack buffers and draining them in block order so the
  // caller still sees strictly ascending ids. On BMI2 CPUs the pair decode
  // additionally processes 8 payload bytes (up to 4 deltas) per window via
  // pext/pdep (DecodePairFast, cria.cpp); elsewhere it falls back to the
  // byte-serial FastDelta pair loop. Two chains in flight roughly covers
  // the decode latency; beyond two the register pressure eats the gain.
  template <typename F>
  void Map(F&& f) const {
    size_t b = 0;
    if (block_bytes_ <= kMaxFusedBlockBytes && num_blocks_ > 1) {
      VertexId bufa[kMaxFusedBlockBytes + 1 + kDecodeSlackIds];
      VertexId bufb[kMaxFusedBlockBytes + 1 + kDecodeSlackIds];
      const bool fast = FusedDecodeAvailable();
      if (fast && num_blocks_ >= 4) {
        VertexId bufc[kMaxFusedBlockBytes + 1 + kDecodeSlackIds];
        VertexId bufd[kMaxFusedBlockBytes + 1 + kDecodeSlackIds];
        VertexId* const bufs[4] = {bufa, bufb, bufc, bufd};
        for (; b + 3 < num_blocks_; b += 4) {
          const uint8_t* ptrs[4];
          uint16_t counts[4];
          VertexId anchors[4];
          for (size_t k = 0; k < 4; ++k) {
            ptrs[k] = block_data(b + k);
            counts[k] = meta(b + k).count;
            anchors[k] = anchor(b + k);
          }
          DecodeQuadFast(ptrs, counts, anchors, bufs);
          for (size_t k = 0; k < 4; ++k) {
            for (uint16_t t = 0; t < counts[k]; ++t) {
              f(bufs[k][t]);
            }
          }
        }
      }
      for (; b + 1 < num_blocks_; b += 2) {
        uint16_t ca = meta(b).count;
        uint16_t cb = meta(b + 1).count;
        if (fast) {
          DecodePairFast(block_data(b), ca, anchor(b), bufa,
                         block_data(b + 1), cb, anchor(b + 1), bufb);
        } else {
          const uint8_t* pa = block_data(b);
          const uint8_t* pb = block_data(b + 1);
          VertexId va = anchor(b);
          VertexId vb = anchor(b + 1);
          uint16_t m = ca < cb ? ca : cb;
          bufa[0] = va;
          bufb[0] = vb;
          uint16_t i = 1;
          for (; i < m; ++i) {
            va += FastDelta(pa);
            bufa[i] = va;
            vb += FastDelta(pb);
            bufb[i] = vb;
          }
          for (uint16_t t = i; t < ca; ++t) {
            va += FastDelta(pa);
            bufa[t] = va;
          }
          for (uint16_t t = i; t < cb; ++t) {
            vb += FastDelta(pb);
            bufb[t] = vb;
          }
        }
        for (uint16_t t = 0; t < ca; ++t) {
          f(bufa[t]);
        }
        for (uint16_t t = 0; t < cb; ++t) {
          f(bufb[t]);
        }
      }
    }
    for (; b < num_blocks_; ++b) {
      const uint8_t* p = block_data(b);
      uint16_t count = meta(b).count;
      VertexId v = anchor(b);
      f(v);
      for (uint16_t i = 1; i < count; ++i) {
        v += FastDelta(p);
        f(v);
      }
    }
    NoteDecoded(size_);
  }

  // Applies f(id) in ascending order while f returns true. Returns false
  // iff f requested a stop. Only the ids actually decoded are counted.
  template <typename F>
  bool MapWhile(F&& f) const {
    size_t decoded = 0;
    for (size_t b = 0; b < num_blocks_; ++b) {
      const uint8_t* p = block_data(b);
      uint16_t count = meta(b).count;
      VertexId v = anchor(b);
      ++decoded;
      if (!f(v)) {
        NoteDecoded(decoded);
        return false;
      }
      for (uint16_t i = 1; i < count; ++i) {
        v += FastDelta(p);
        ++decoded;
        if (!f(v)) {
          NoteDecoded(decoded);
          return false;
        }
      }
    }
    NoteDecoded(decoded);
    return true;
  }

  std::vector<VertexId> Decode() const {
    std::vector<VertexId> out;
    out.reserve(size_);
    Map([&out](VertexId v) { out.push_back(v); });
    return out;
  }

  size_t memory_footprint() const;
  size_t index_bytes() const;  // anchors + occupancy metadata

  const CriaStats& stats() const { return stats_; }

  // Invariants: per-block ascending decode whose byte length matches the
  // occupancy record, anchor redundancy, no empty block, size consistency.
  bool CheckInvariants() const;

 private:
  // Per-block occupancy: ids resident (incl. the anchor) and payload bytes
  // in use. Both fit uint16 because the payload is capped at block_bytes_
  // <= 0xfffe and every delta takes at least one byte.
  struct BlockMeta {
    uint16_t count;
    uint16_t used;
  };
  static_assert(sizeof(BlockMeta) == 4);

  // data_ is over-allocated by this many bytes past the last payload byte
  // so the decoders' unaligned word loads (4B in FastDelta, 8B in the BMI2
  // window decoder) are always in-bounds.
  static constexpr size_t kDecodePad = 7;

  // Largest block size Map's fused-pair decode will stack-buffer (a block
  // holds at most block_bytes_ + 1 ids: one anchor plus >=1-byte deltas).
  // Oversized configurations fall back to the plain per-block loop.
  static constexpr size_t kMaxFusedBlockBytes = 1024;
  // The BMI2 window decoder may overshoot its output end by up to 7 ids
  // (it always writes 8 slots per window); buffers carry that much slack.
  static constexpr size_t kDecodeSlackIds = 7;

  // True on CPUs with BMI1/BMI2 (pext/pdep/bzhi); decided once at startup.
  static bool FusedDecodeAvailable();
  // Decodes two blocks into bufa/bufb (anchor included), interleaving the
  // two delta chains window-by-window so their latencies overlap. Each
  // buffer needs count + kDecodeSlackIds capacity. Only callable when
  // FusedDecodeAvailable().
  static void DecodePairFast(const uint8_t* pa, uint16_t ca, VertexId va,
                             VertexId* bufa, const uint8_t* pb, uint16_t cb,
                             VertexId vb, VertexId* bufb);
  // Four-block variant of DecodePairFast: p/count/anchor/buf are arrays of
  // 4. Used for long runs (hub vertices) where four chains in flight hide
  // more of the window latency.
  static void DecodeQuadFast(const uint8_t* const* p, const uint16_t* count,
                             const VertexId* anchor, VertexId* const* buf);

  // Branchless decode of one delta from a padded stream (>= 4 readable
  // bytes at p). The generic ReadVarint loop mispredicts constantly on the
  // mixed 1-3 byte deltas real graphs produce — a word load plus masked
  // merges runs ~3x faster and keeps scan-heavy kernels (PageRank) near
  // raw-mode speed. Varints of 5+ bytes (delta >= 2^28) fall back to the
  // generic decoder; the branch is essentially never taken.
  static uint32_t FastDelta(const uint8_t*& p) {
    uint32_t w;
    std::memcpy(&w, p, sizeof(w));
    uint32_t use1 = (w >> 7) & 1;
    uint32_t use2 = use1 & (w >> 15);
    uint32_t use3 = use2 & (w >> 23);
    use2 &= 1;
    use3 &= 1;
    if (use3 & (w >> 31)) [[unlikely]] {
      return static_cast<uint32_t>(ReadVarint(p));
    }
    uint32_t v = (w & 0x7f) | ((((w >> 8) & 0x7f) << 7) & (0u - use1)) |
                 ((((w >> 16) & 0x7f) << 14) & (0u - use2)) |
                 ((((w >> 24) & 0x7f) << 21) & (0u - use3));
    p += 1 + use1 + use2 + use3;
    return v;
  }

  // Section offsets inside data_ (see the layout comment up top).
  size_t meta_offset() const { return num_blocks_ * sizeof(VertexId); }
  size_t payload_offset() const {
    return num_blocks_ * (sizeof(VertexId) + sizeof(BlockMeta));
  }

  VertexId anchor(size_t b) const {
    VertexId v;
    std::memcpy(&v, data_.data() + b * sizeof(VertexId), sizeof(v));
    return v;
  }
  void set_anchor(size_t b, VertexId v) {
    std::memcpy(data_.data() + b * sizeof(VertexId), &v, sizeof(v));
  }
  BlockMeta meta(size_t b) const {
    BlockMeta m;
    std::memcpy(&m, data_.data() + meta_offset() + b * sizeof(BlockMeta),
                sizeof(m));
    return m;
  }
  void set_meta(size_t b, BlockMeta m) {
    std::memcpy(data_.data() + meta_offset() + b * sizeof(BlockMeta), &m,
                sizeof(m));
  }
  const uint8_t* block_data(size_t b) const {
    return data_.data() + payload_offset() + b * block_bytes_;
  }
  uint8_t* block_data(size_t b) {
    return data_.data() + payload_offset() + b * block_bytes_;
  }

  // Index of the block whose range contains `id`.
  size_t FindBlock(VertexId id) const;
  // Max blocks (per side) a redistribution window may span before the
  // structure expands — the RIA movement bound.
  size_t MovementBound() const;

  // Appends block b's ids to *out, ascending.
  void DecodeBlock(size_t b, std::vector<VertexId>* out) const;
  // Payload bytes ids would occupy as one block (deltas of ids[1..]).
  static size_t PayloadBytes(std::span<const VertexId> ids);
  // Re-encodes block b as `ids` (non-empty, payload must fit block_bytes_).
  void WriteBlock(size_t b, std::span<const VertexId> ids);

  // Repacks a window of blocks around b so the merged run (block b's ids
  // replaced by `block_ids`) fits; false if no window within the bound can.
  bool TryRedistribute(size_t b, const std::vector<VertexId>& block_ids);

  // Delete-side hysteresis: rebuild once allocated bytes exceed twice the
  // slack target for the resident payload, releasing vector capacity.
  void MaybeContract();
  void ReleaseExcessCapacity();

  // Pushes the current footprint into CoreStats::bytes_resident (a gauge:
  // the delta against the last reported value is added/subtracted).
  void UpdateResidentGauge();

  void NoteDecoded(size_t n) const {
    if (core_stats_ != nullptr && n != 0) {
      core_stats_->neighbors_decoded.fetch_add(n, std::memory_order_relaxed);
    }
  }
  void NoteRecompressed() {
    if (core_stats_ != nullptr) {
      core_stats_->cria_recompressions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<uint8_t> data_;
  CoreStats* core_stats_;         // optional engine-wide counters; may be null
  uint32_t num_blocks_ = 0;
  uint32_t size_ = 0;
  uint32_t used_total_ = 0;       // sum of meta(*).used
  uint32_t resident_reported_ = 0;  // last footprint pushed into the gauge
  CriaStats stats_;
  uint16_t block_bytes_;
  float alpha_;
};

}  // namespace lsg

#endif  // SRC_CORE_CRIA_H_
