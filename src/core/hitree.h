// HITree: the Hybrid Indexed Tree (paper §3.2, Algorithms 1 & 2), plus the
// adjacency-tail polymorphism of §4.1.
//
// HiNode is one adjacency tail. Its representation adapts to its size:
//   - sorted array        (size <= A; no index, two cache lines)
//   - RIA                 (size <= M; redundant block index)
//   - LIA-rooted HITree   (size >  M; learned index, children are HiNodes)
// Upgrades happen in place: an array that outgrows A becomes a RIA; a RIA
// whose bounded horizontal movement fails re-bulkloads, and if it has grown
// past M that re-bulkload produces a LIA root (the "RIA to HITree changes"
// counted in §6.2).
//
// Lia is a learned indexed array: a gapped slot array positioned by a linear
// model, a 2-bit type per slot (Unused / Edge / Block / Child), and child
// HiNodes reached through Child blocks. Position conflicts first move data
// horizontally within one cache-line block (B entries); only when a block
// overflows is a child created (vertical movement), which is what bounds the
// movement distance of high-degree vertices.
//
// Not thread-safe; single writer per instance (one vertex per thread, §5).
// For MVCC snapshots (DESIGN.md §12) HiNodes carry an intrusive refcount:
// a pinned snapshot shares subtrees with the live version, and a writer
// descending into a shared node clones it first (copy-on-write), so every
// node a snapshot can reach stays immutable until its last reference drops.
#ifndef SRC_CORE_HITREE_H_
#define SRC_CORE_HITREE_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "src/core/cria.h"
#include "src/core/options.h"
#include "src/core/ria.h"
#include "src/util/bitvector.h"
#include "src/util/graph_types.h"

namespace lsg {

class HiNode;

// Learned Indexed Array (internal node of a HITree).
class Lia {
 public:
  // Bulk-loads from sorted unique ids (Algorithm 1, LIA branch).
  Lia(const Options& options, std::span<const VertexId> sorted_ids);
  ~Lia();

  Lia(const Lia&) = delete;
  Lia& operator=(const Lia&) = delete;

  bool Insert(VertexId id);
  bool Delete(VertexId id);
  bool Contains(VertexId id) const;

  size_t size() const { return size_; }

  // Smallest id; requires size() > 0.
  VertexId First() const;

  // Applies f(id) in ascending order (the Traverse operation).
  template <typename F>
  void Map(F&& f) const;

  // Early-exit Traverse: applies f(id) ascending while f returns true.
  // Returns false iff the traversal was cut short.
  template <typename F>
  bool MapWhile(F&& f) const;

  size_t memory_footprint() const;
  // Model + type bits + child index overhead (Table 3's I/L accounting).
  size_t index_bytes() const;

  bool CheckInvariants() const;

 private:
  size_t Predict(VertexId id) const;
  size_t BlockOf(size_t pos) const { return pos / options_.block_size; }

  friend class HiNode;
  // Shallow-copy clone for COW: scalar state and slot arrays are copied,
  // children are shared by bumping their refcounts (the writer re-clones a
  // shared child if and when it descends into it).
  Lia(const Lia& other, std::nullptr_t share_children_tag);

  // Gathers the data ids resident in block b (E and B slots), ascending.
  void GatherBlock(size_t b, std::vector<VertexId>* out) const;
  // Returns children_[idx], cloning it first if it is shared with a pinned
  // snapshot, so the caller may mutate the result.
  HiNode* MutableChild(uint32_t idx);
  // Places `child` in a children_ slot (reusing a detached one if any) and
  // returns its index. Takes ownership of the reference.
  uint32_t AllocChild(HiNode* child);
  // Rewrites block b as a packed run of `ids` (B entries) — requires
  // ids.size() <= block_size — or as a child pointer when larger.
  void StoreBlock(size_t b, std::span<const VertexId> ids);
  void MakeChild(size_t b, std::span<const VertexId> ids);
  // Clears every block sharing child index `child` back to Unused.
  void DetachChild(size_t b, uint32_t child);

  Options options_;
  std::vector<VertexId> slots_;
  TypeVector types_;
  double slope_ = 0.0;
  double intercept_ = 0.0;
  // Raw refcounted pointers (Ref/Unref), not unique_ptr: COW clones of this
  // Lia share children with the original until a writer descends into one.
  std::vector<HiNode*> children_;
  // Indices of children_ slots vacated by DetachChild, reused by AllocChild
  // so delete/insert churn cannot grow children_ without bound.
  std::vector<uint32_t> free_children_;
  size_t size_ = 0;
};

// One adjacency tail with size-adaptive representation.
class HiNode {
 public:
  // kCria is the compressed leaf (Options::compress_leaves): it replaces
  // both kArray and kRia below M, and serves as the leaf representation of
  // Lia children, which inherit the option.
  enum class Kind { kArray, kRia, kLia, kCria };

  explicit HiNode(const Options& options);
  ~HiNode();

  HiNode(const HiNode&) = delete;
  HiNode& operator=(const HiNode&) = delete;

  // Intrusive refcount for MVCC sharing. A fresh node starts at one
  // reference; Unref deletes at zero. Shared() means a snapshot (or a
  // pre-image chain) still holds the node, so it must not be mutated in
  // place — clone it first.
  void Ref() const { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() const {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }
  bool Shared() const { return refs_.load(std::memory_order_acquire) > 1; }

  // Copy-on-write clone: scalar state and leaf payloads are deep-copied
  // (including the Cria's single [anchors|meta|payload] allocation, so the
  // clone never aliases the live bytes); a Lia's children are shared by
  // refcount. Counts into CoreStats::cow_copies.
  HiNode* CloneShallow() const;

  // Rebuilds from sorted unique ids, choosing the representation by size.
  // `force_flat` pins the node to RIA even above M (used to break model
  // degeneracy during recursive bulk loads).
  void BulkLoad(std::span<const VertexId> sorted_ids, bool force_flat = false);

  bool Insert(VertexId id);
  bool Delete(VertexId id);
  bool Contains(VertexId id) const;

  size_t size() const;
  Kind kind() const { return kind_; }

  // Smallest id; requires size() > 0.
  VertexId First() const;

  template <typename F>
  void Map(F&& f) const {
    switch (kind_) {
      case Kind::kArray:
        for (VertexId v : array_) {
          f(v);
        }
        break;
      case Kind::kRia:
        ria_->Map(f);
        break;
      case Kind::kLia:
        lia_->Map(f);
        break;
      case Kind::kCria:
        cria_->Map(f);
        break;
    }
  }

  // Early-exit Traverse: applies f(id) ascending while f returns true.
  // Returns false iff the traversal was cut short.
  template <typename F>
  bool MapWhile(F&& f) const {
    switch (kind_) {
      case Kind::kArray:
        for (VertexId v : array_) {
          if (!f(v)) {
            return false;
          }
        }
        return true;
      case Kind::kRia:
        return ria_->MapWhile(f);
      case Kind::kLia:
        return lia_->MapWhile(f);
      case Kind::kCria:
        return cria_->MapWhile(f);
    }
    return true;
  }

  std::vector<VertexId> Decode() const {
    std::vector<VertexId> out;
    out.reserve(size());
    Map([&out](VertexId v) { out.push_back(v); });
    return out;
  }

  size_t memory_footprint() const;
  size_t index_bytes() const;
  bool CheckInvariants() const;

 private:
  // Downward conversions (the delete-path mirror of the upgrade ladder):
  // re-bulkloads once the node shrinks past half the upgrade threshold, so
  // a delete-heavy stream releases index structures instead of pinning the
  // largest representation the vertex ever reached. The half-threshold
  // hysteresis keeps an insert/delete flutter at a boundary from thrashing.
  void MaybeDowngrade();

  Options options_;
  Kind kind_ = Kind::kArray;
  std::vector<VertexId> array_;
  std::unique_ptr<Ria> ria_;
  std::unique_ptr<Lia> lia_;
  std::unique_ptr<Cria> cria_;
  mutable std::atomic<uint32_t> refs_{1};
};

template <typename F>
void Lia::Map(F&& f) const {
  size_t bks = options_.block_size;
  uint32_t prev_child = ~uint32_t{0};
  for (size_t ba = 0; ba < slots_.size(); ba += bks) {
    if (types_.Get(ba) == SlotType::kChild) {
      uint32_t child = slots_[ba];
      if (child != prev_child) {
        children_[child]->Map(f);
        prev_child = child;
      }
      continue;
    }
    prev_child = ~uint32_t{0};
    for (size_t i = ba; i < ba + bks; ++i) {
      SlotType t = types_.Get(i);
      if (t == SlotType::kEdge || t == SlotType::kBlock) {
        f(slots_[i]);
      }
    }
  }
}

template <typename F>
bool Lia::MapWhile(F&& f) const {
  size_t bks = options_.block_size;
  uint32_t prev_child = ~uint32_t{0};
  for (size_t ba = 0; ba < slots_.size(); ba += bks) {
    if (types_.Get(ba) == SlotType::kChild) {
      uint32_t child = slots_[ba];
      if (child != prev_child) {
        if (!children_[child]->MapWhile(f)) {
          return false;
        }
        prev_child = child;
      }
      continue;
    }
    prev_child = ~uint32_t{0};
    for (size_t i = ba; i < ba + bks; ++i) {
      SlotType t = types_.Get(i);
      if ((t == SlotType::kEdge || t == SlotType::kBlock) && !f(slots_[i])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace lsg

#endif  // SRC_CORE_HITREE_H_
