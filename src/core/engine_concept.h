// The streaming-engine concept: the interface every graph engine in this
// repository implements, and the contract the analytics kernels and the
// benchmark harness compile against. Centralizing it as a C++20 concept
// turns "duck typing" into a checked API.
#ifndef SRC_CORE_ENGINE_CONCEPT_H_
#define SRC_CORE_ENGINE_CONCEPT_H_

#include <concepts>
#include <span>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

// Read side: what analytics kernels need. map_neighbors_while is the
// early-exit traversal pull-mode EdgeMap is built on: the mapper returns
// bool (true = keep going), and the call reports false iff cut short.
template <typename G>
concept GraphView = requires(const G& g, VertexId v) {
  { g.num_vertices() } -> std::convertible_to<VertexId>;
  { g.num_edges() } -> std::convertible_to<EdgeCount>;
  { g.degree(v) } -> std::convertible_to<size_t>;
  { g.HasEdge(v, v) } -> std::convertible_to<bool>;
  g.map_neighbors(v, [](VertexId) {});
  { g.map_neighbors_while(v, [](VertexId) { return true; }) } ->
      std::convertible_to<bool>;
};

// Full streaming engine: GraphView plus batched and single-edge updates and
// memory accounting.
template <typename G>
concept StreamingEngine =
    GraphView<G> && requires(G& g, std::span<const Edge> batch,
                             std::vector<Edge> edges, VertexId v) {
      g.BuildFromEdges(edges);
      { g.InsertBatch(batch) } -> std::convertible_to<size_t>;
      { g.DeleteBatch(batch) } -> std::convertible_to<size_t>;
      { g.InsertEdge(v, v) } -> std::convertible_to<bool>;
      { g.DeleteEdge(v, v) } -> std::convertible_to<bool>;
      { static_cast<const G&>(g).memory_footprint() } ->
          std::convertible_to<size_t>;
      { static_cast<const G&>(g).CheckInvariants() } ->
          std::convertible_to<bool>;
    };

}  // namespace lsg

#endif  // SRC_CORE_ENGINE_CONCEPT_H_
