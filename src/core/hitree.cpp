#include "src/core/hitree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lsg {

namespace {

// Least-squares fit of key -> position over the loaded ids. Positions are
// spread across the allocated slot range so gaps interleave the data.
void FitLinearModel(std::span<const VertexId> ids, size_t arr_size,
                    double* slope, double* intercept) {
  size_t n = ids.size();
  if (n < 2) {
    *slope = 0.0;
    *intercept = arr_size / 2.0;
    return;
  }
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += ids[i];
    mean_y += (i + 0.5) * arr_size / n;
  }
  mean_x /= n;
  mean_y /= n;
  double cov = 0.0;
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = ids[i] - mean_x;
    double dy = (i + 0.5) * arr_size / n - mean_y;
    cov += dx * dy;
    var += dx * dx;
  }
  if (var == 0.0) {
    *slope = 0.0;
    *intercept = mean_y;
    return;
  }
  *slope = cov / var;  // >= 0 because ids ascend with position
  *intercept = mean_y - *slope * mean_x;
}

}  // namespace

// ---------------------------------------------------------------- Lia ----

Lia::Lia(const Options& options, std::span<const VertexId> sorted_ids)
    : options_(options) {
  size_t n = sorted_ids.size();
  size_t bks = options_.block_size;
  size_t arr = std::max<size_t>(
      bks, (static_cast<size_t>(n * options_.alpha) + bks - 1) / bks * bks);
  slots_.assign(arr, 0);
  types_ = TypeVector(arr);
  FitLinearModel(sorted_ids, arr, &slope_, &intercept_);
  size_ = n;

  // Group the ids by predicted block (Algorithm 1 lines 10-20); predictions
  // are monotone, so groups are contiguous runs.
  struct Group {
    size_t block;
    size_t begin;
    size_t end;  // exclusive
    bool unique_positions;
  };
  std::vector<Group> child_groups;
  size_t i = 0;
  while (i < n) {
    size_t pos = Predict(sorted_ids[i]);
    size_t b = BlockOf(pos);
    size_t j = i;
    size_t prev_pos = ~size_t{0};
    bool unique = true;
    while (j < n) {
      size_t pj = Predict(sorted_ids[j]);
      if (BlockOf(pj) != b) {
        break;
      }
      if (pj == prev_pos) {
        unique = false;
      }
      prev_pos = pj;
      ++j;
    }
    size_t count = j - i;
    if (unique && count <= bks) {
      for (size_t k = i; k < j; ++k) {
        size_t p = Predict(sorted_ids[k]);
        slots_[p] = sorted_ids[k];
        types_.Set(p, SlotType::kEdge);
      }
    } else if (count <= bks) {
      StoreBlock(b, sorted_ids.subspan(i, count));
    } else {
      child_groups.push_back({b, i, j, false});
    }
    i = j;
  }

  // MergeAdjacentChildren (Algorithm 1 line 21): runs of consecutive child
  // blocks share one child node to cut random pointer hops.
  for (size_t g = 0; g < child_groups.size();) {
    size_t h = g;
    while (h + 1 < child_groups.size() &&
           child_groups[h + 1].block == child_groups[h].block + 1) {
      ++h;
    }
    size_t begin = child_groups[g].begin;
    size_t end = child_groups[h].end;
    HiNode* child = new HiNode(options_);
    child->BulkLoad(sorted_ids.subspan(begin, end - begin),
                    /*force_flat=*/end - begin == n);
    uint32_t idx = AllocChild(child);
    for (size_t gg = g; gg <= h; ++gg) {
      size_t ba = child_groups[gg].block * bks;
      types_.SetRange(ba, ba + bks, SlotType::kChild);
      for (size_t s = ba; s < ba + bks; ++s) {
        slots_[s] = idx;
      }
    }
    g = h + 1;
  }
}

Lia::~Lia() {
  for (HiNode* c : children_) {
    if (c != nullptr) {
      c->Unref();
    }
  }
}

Lia::Lia(const Lia& other, std::nullptr_t)
    : options_(other.options_),
      slots_(other.slots_),
      types_(other.types_),
      slope_(other.slope_),
      intercept_(other.intercept_),
      children_(other.children_),
      free_children_(other.free_children_),
      size_(other.size_) {
  for (HiNode* c : children_) {
    if (c != nullptr) {
      c->Ref();  // shared until a writer descends into it
    }
  }
}

HiNode* Lia::MutableChild(uint32_t idx) {
  HiNode* c = children_[idx];
  if (c->Shared()) {
    // A pinned snapshot (via a pre-image chain) still reaches this child;
    // mutate a private clone instead.
    HiNode* copy = c->CloneShallow();
    children_[idx] = copy;
    c->Unref();
    return copy;
  }
  return c;
}

size_t Lia::Predict(VertexId id) const {
  double p = slope_ * id + intercept_;
  if (p < 0.0) {
    return 0;
  }
  size_t pos = static_cast<size_t>(p);
  return pos >= slots_.size() ? slots_.size() - 1 : pos;
}

void Lia::GatherBlock(size_t b, std::vector<VertexId>* out) const {
  size_t ba = b * options_.block_size;
  for (size_t s = ba; s < ba + options_.block_size; ++s) {
    SlotType t = types_.Get(s);
    if (t == SlotType::kEdge || t == SlotType::kBlock) {
      out->push_back(slots_[s]);
    }
  }
}

void Lia::StoreBlock(size_t b, std::span<const VertexId> ids) {
  size_t ba = b * options_.block_size;
  size_t bks = options_.block_size;
  assert(ids.size() <= bks);
  for (size_t k = 0; k < ids.size(); ++k) {
    slots_[ba + k] = ids[k];
    types_.Set(ba + k, SlotType::kBlock);
  }
  types_.SetRange(ba + ids.size(), ba + bks, SlotType::kUnused);
}

uint32_t Lia::AllocChild(HiNode* child) {
  if (!free_children_.empty()) {
    uint32_t idx = free_children_.back();
    free_children_.pop_back();
    children_[idx] = child;
    return idx;
  }
  uint32_t idx = static_cast<uint32_t>(children_.size());
  children_.push_back(child);
  return idx;
}

void Lia::MakeChild(size_t b, std::span<const VertexId> ids) {
  size_t ba = b * options_.block_size;
  size_t bks = options_.block_size;
  HiNode* child = new HiNode(options_);
  child->BulkLoad(ids);
  uint32_t idx = AllocChild(child);
  types_.SetRange(ba, ba + bks, SlotType::kChild);
  for (size_t s = ba; s < ba + bks; ++s) {
    slots_[s] = idx;
  }
  if (options_.stats != nullptr) {
    options_.stats->lia_child_creations.fetch_add(1, std::memory_order_relaxed);
  }
}

void Lia::DetachChild(size_t b, uint32_t child) {
  size_t bks = options_.block_size;
  // The child may be shared by a run of adjacent blocks; clear them all.
  size_t lo = b;
  while (lo > 0 && types_.Get((lo - 1) * bks) == SlotType::kChild &&
         slots_[(lo - 1) * bks] == child) {
    --lo;
  }
  size_t hi = b;
  while ((hi + 1) * bks < slots_.size() &&
         types_.Get((hi + 1) * bks) == SlotType::kChild &&
         slots_[(hi + 1) * bks] == child) {
    ++hi;
  }
  for (size_t bb = lo; bb <= hi; ++bb) {
    types_.SetRange(bb * bks, (bb + 1) * bks, SlotType::kUnused);
  }
  children_[child]->Unref();
  children_[child] = nullptr;
  // Recycle the slot: without this, churn that repeatedly drains and
  // refills a block grows children_ by one dead entry per cycle.
  free_children_.push_back(child);
}

bool Lia::Insert(VertexId id) {
  size_t pos = Predict(id);
  size_t b = BlockOf(pos);
  size_t ba = b * options_.block_size;
  if (types_.Get(ba) == SlotType::kChild) {
    uint32_t child = slots_[ba];
    if (!MutableChild(child)->Insert(id)) {
      return false;
    }
    ++size_;
    return true;
  }
  // Gather the block's resident ids; detect duplicates and packed (B) mode.
  std::vector<VertexId> ids;
  GatherBlock(b, &ids);
  if (std::binary_search(ids.begin(), ids.end(), id)) {
    return false;
  }
  bool packed = types_.Get(ba) == SlotType::kBlock;
  if (types_.Get(pos) == SlotType::kUnused && !packed) {
    // Case 1 (Fig. 10): free predicted slot in a position-addressed block.
    slots_[pos] = id;
    types_.Set(pos, SlotType::kEdge);
    ++size_;
    return true;
  }
  // Case 2/3: conflict. Merge within the block, else go vertical.
  ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
  if (ids.size() <= options_.block_size) {
    // Clear old layout before repacking (E entries may sit anywhere).
    types_.SetRange(ba, ba + options_.block_size, SlotType::kUnused);
    StoreBlock(b, ids);
  } else {
    MakeChild(b, ids);
  }
  ++size_;
  return true;
}

bool Lia::Delete(VertexId id) {
  size_t pos = Predict(id);
  size_t b = BlockOf(pos);
  size_t ba = b * options_.block_size;
  size_t bks = options_.block_size;
  if (types_.Get(ba) == SlotType::kChild) {
    uint32_t child = slots_[ba];
    if (!MutableChild(child)->Delete(id)) {
      return false;
    }
    --size_;
    if (children_[child]->size() == 0) {
      DetachChild(b, child);
    }
    return true;
  }
  for (size_t s = ba; s < ba + bks; ++s) {
    SlotType t = types_.Get(s);
    if (t == SlotType::kEdge && slots_[s] == id) {
      types_.Set(s, SlotType::kUnused);
      --size_;
      return true;
    }
    if (t == SlotType::kBlock && slots_[s] == id) {
      std::vector<VertexId> ids;
      GatherBlock(b, &ids);
      ids.erase(std::find(ids.begin(), ids.end(), id));
      types_.SetRange(ba, ba + bks, SlotType::kUnused);
      StoreBlock(b, ids);
      --size_;
      return true;
    }
  }
  return false;
}

VertexId Lia::First() const {
  assert(size_ > 0);
  size_t bks = options_.block_size;
  for (size_t ba = 0; ba < slots_.size(); ba += bks) {
    if (types_.Get(ba) == SlotType::kChild) {
      return children_[slots_[ba]]->First();
    }
    for (size_t s = ba; s < ba + bks; ++s) {
      SlotType t = types_.Get(s);
      if (t == SlotType::kEdge || t == SlotType::kBlock) {
        return slots_[s];
      }
    }
  }
  return kInvalidVertex;
}

bool Lia::Contains(VertexId id) const {
  size_t b = BlockOf(Predict(id));
  size_t ba = b * options_.block_size;
  if (types_.Get(ba) == SlotType::kChild) {
    return children_[slots_[ba]]->Contains(id);
  }
  for (size_t s = ba; s < ba + options_.block_size; ++s) {
    SlotType t = types_.Get(s);
    if ((t == SlotType::kEdge || t == SlotType::kBlock) && slots_[s] == id) {
      return true;
    }
  }
  return false;
}

size_t Lia::memory_footprint() const {
  size_t total = sizeof(*this) + slots_.capacity() * sizeof(VertexId) +
                 types_.MemoryBytes() +
                 children_.capacity() * sizeof(children_[0]) +
                 free_children_.capacity() * sizeof(uint32_t);
  for (const auto& c : children_) {
    if (c != nullptr) {
      total += c->memory_footprint();
    }
  }
  return total;
}

size_t Lia::index_bytes() const {
  // The learned index proper: the model and the slot-type metadata.
  size_t total = 2 * sizeof(double) + types_.MemoryBytes() +
                 children_.capacity() * sizeof(children_[0]) +
                 free_children_.capacity() * sizeof(uint32_t);
  for (const auto& c : children_) {
    if (c != nullptr) {
      total += c->index_bytes();
    }
  }
  return total;
}

bool Lia::CheckInvariants() const {
  // In-order traversal must be strictly increasing and match size_.
  bool ok = true;
  bool first = true;
  VertexId prev = 0;
  size_t count = 0;
  Map([&](VertexId v) {
    if (!first && v <= prev) {
      ok = false;
    }
    prev = v;
    first = false;
    ++count;
  });
  if (!ok || count != size_) {
    return false;
  }
  // Child blocks must be uniformly typed and point at live children.
  size_t bks = options_.block_size;
  for (size_t ba = 0; ba < slots_.size(); ba += bks) {
    if (types_.Get(ba) != SlotType::kChild) {
      continue;
    }
    uint32_t idx = slots_[ba];
    if (idx >= children_.size() || children_[idx] == nullptr ||
        children_[idx]->size() == 0) {
      return false;
    }
    for (size_t s = ba; s < ba + bks; ++s) {
      if (types_.Get(s) != SlotType::kChild || slots_[s] != idx) {
        return false;
      }
    }
    if (!children_[idx]->CheckInvariants()) {
      return false;
    }
  }
  // Every detached slot must be on the free list exactly once, and every
  // free-list entry must name a detached slot.
  size_t null_children = 0;
  for (const auto& c : children_) {
    null_children += c == nullptr;
  }
  if (null_children != free_children_.size()) {
    return false;
  }
  for (uint32_t idx : free_children_) {
    if (idx >= children_.size() || children_[idx] != nullptr) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------- HiNode ----

HiNode::HiNode(const Options& options) : options_(options) {}

HiNode::~HiNode() = default;

HiNode* HiNode::CloneShallow() const {
  HiNode* n = new HiNode(options_);
  n->kind_ = kind_;
  n->array_ = array_;
  if (ria_ != nullptr) {
    n->ria_ = std::make_unique<Ria>(*ria_);
  }
  if (lia_ != nullptr) {
    n->lia_ = std::unique_ptr<Lia>(new Lia(*lia_, nullptr));
  }
  if (cria_ != nullptr) {
    n->cria_ = std::make_unique<Cria>(*cria_);
  }
  if (options_.stats != nullptr) {
    options_.stats->cow_copies.fetch_add(1, std::memory_order_relaxed);
  }
  return n;
}

void HiNode::BulkLoad(std::span<const VertexId> sorted_ids, bool force_flat) {
  array_.clear();
  ria_.reset();
  lia_.reset();
  cria_.reset();
  if (options_.compress_leaves) {
    // Compressed mode collapses the array/RIA rungs into one: a CRIA's
    // anchor index already is the RIA block index, and below A its single
    // block degenerates to the plain-array case.
    if (sorted_ids.size() <= options_.m_threshold || force_flat) {
      kind_ = Kind::kCria;
      cria_ = std::make_unique<Cria>(options_);
      cria_->BulkLoad(sorted_ids);
    } else {
      kind_ = Kind::kLia;
      lia_ = std::make_unique<Lia>(options_, sorted_ids);
    }
    return;
  }
  if (sorted_ids.size() <= options_.a_threshold) {
    kind_ = Kind::kArray;
    array_.assign(sorted_ids.begin(), sorted_ids.end());
  } else if (sorted_ids.size() <= options_.m_threshold || force_flat) {
    kind_ = Kind::kRia;
    ria_ = std::make_unique<Ria>(options_);
    ria_->BulkLoad(sorted_ids);
  } else {
    kind_ = Kind::kLia;
    lia_ = std::make_unique<Lia>(options_, sorted_ids);
  }
}

size_t HiNode::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kRia:
      return ria_->size();
    case Kind::kLia:
      return lia_->size();
    case Kind::kCria:
      return cria_->size();
  }
  return 0;
}

VertexId HiNode::First() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.front();
    case Kind::kRia:
      return ria_->First();
    case Kind::kLia:
      return lia_->First();
    case Kind::kCria:
      return cria_->First();
  }
  return kInvalidVertex;
}

bool HiNode::Insert(VertexId id) {
  switch (kind_) {
    case Kind::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), id);
      if (it != array_.end() && *it == id) {
        return false;
      }
      array_.insert(it, id);
      if (array_.size() > options_.a_threshold) {
        // Upgrade to RIA. BulkLoad starts by clearing array_, so a span
        // over array_ itself would read destroyed elements — hand it the
        // ids through a local buffer instead.
        std::vector<VertexId> ids = std::move(array_);
        BulkLoad(ids);
      }
      return true;
    }
    case Kind::kRia: {
      switch (ria_->TryInsert(id)) {
        case Ria::InsertResult::kInserted:
          return true;
        case Ria::InsertResult::kDuplicate:
          return false;
        case Ria::InsertResult::kNeedExpand: {
          // Bounded movement failed: rebuild with α amplification; a tail
          // that has outgrown M becomes a HITree here (§6.2's conversions).
          std::vector<VertexId> ids = ria_->Decode();
          ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
          if (options_.stats != nullptr) {
            if (ids.size() > options_.m_threshold) {
              options_.stats->ria_to_hitree_conversions.fetch_add(
                  1, std::memory_order_relaxed);
            } else {
              options_.stats->ria_expansions.fetch_add(
                  1, std::memory_order_relaxed);
            }
          }
          BulkLoad(ids);
          return true;
        }
      }
      return false;
    }
    case Kind::kLia:
      return lia_->Insert(id);
    case Kind::kCria: {
      switch (cria_->TryInsert(id)) {
        case Cria::InsertResult::kInserted:
          return true;
        case Cria::InsertResult::kDuplicate:
          return false;
        case Cria::InsertResult::kNeedExpand: {
          // Same ladder as the RIA rung: rebuild with byte slack, and a
          // tail past M becomes a HITree (whose leaves stay compressed).
          std::vector<VertexId> ids = cria_->Decode();
          ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
          if (options_.stats != nullptr) {
            if (ids.size() > options_.m_threshold) {
              options_.stats->ria_to_hitree_conversions.fetch_add(
                  1, std::memory_order_relaxed);
            } else {
              options_.stats->ria_expansions.fetch_add(
                  1, std::memory_order_relaxed);
            }
          }
          BulkLoad(ids);
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

bool HiNode::Delete(VertexId id) {
  switch (kind_) {
    case Kind::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), id);
      if (it == array_.end() || *it != id) {
        return false;
      }
      array_.erase(it);
      return true;
    }
    case Kind::kRia:
      if (!ria_->Delete(id)) {
        return false;
      }
      MaybeDowngrade();
      return true;
    case Kind::kLia:
      if (!lia_->Delete(id)) {
        return false;
      }
      MaybeDowngrade();
      return true;
    case Kind::kCria:
      // CRIA is already the smallest compressed rung; its own MaybeContract
      // handles under-occupancy, so there is nothing to downgrade to.
      return cria_->Delete(id);
  }
  return false;
}

void HiNode::MaybeDowngrade() {
  bool shrink = (kind_ == Kind::kLia && size() <= options_.m_threshold / 2) ||
                (kind_ == Kind::kRia && size() <= options_.a_threshold / 2);
  if (!shrink) {
    return;
  }
  Kind old_kind = kind_;
  std::vector<VertexId> ids = Decode();
  BulkLoad(ids);
  if (options_.stats != nullptr) {
    if (old_kind == Kind::kLia && kind_ != Kind::kLia) {
      options_.stats->hitree_to_ria_conversions.fetch_add(
          1, std::memory_order_relaxed);
    }
    if (old_kind != Kind::kArray && kind_ == Kind::kArray) {
      options_.stats->ria_to_array_conversions.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
}

bool HiNode::Contains(VertexId id) const {
  switch (kind_) {
    case Kind::kArray:
      return std::binary_search(array_.begin(), array_.end(), id);
    case Kind::kRia:
      return ria_->Contains(id);
    case Kind::kLia:
      return lia_->Contains(id);
    case Kind::kCria:
      return cria_->Contains(id);
  }
  return false;
}

size_t HiNode::memory_footprint() const {
  size_t total = sizeof(*this) + array_.capacity() * sizeof(VertexId);
  if (ria_ != nullptr) {
    total += ria_->memory_footprint();
  }
  if (lia_ != nullptr) {
    total += lia_->memory_footprint();
  }
  if (cria_ != nullptr) {
    total += cria_->memory_footprint();
  }
  return total;
}

size_t HiNode::index_bytes() const {
  switch (kind_) {
    case Kind::kArray:
      return 0;
    case Kind::kRia:
      return ria_->index_bytes();
    case Kind::kLia:
      return lia_->index_bytes();
    case Kind::kCria:
      return cria_->index_bytes();
  }
  return 0;
}

bool HiNode::CheckInvariants() const {
  switch (kind_) {
    case Kind::kArray:
      return std::is_sorted(array_.begin(), array_.end()) &&
             std::adjacent_find(array_.begin(), array_.end()) == array_.end();
    case Kind::kRia:
      return ria_->CheckInvariants();
    case Kind::kLia:
      return lia_->CheckInvariants();
    case Kind::kCria:
      return cria_->CheckInvariants();
  }
  return false;
}

}  // namespace lsg
