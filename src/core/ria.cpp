#include "src/core/ria.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace lsg {

Ria::Ria(const Options& options)
    : block_size_(options.block_size),
      alpha_(options.alpha),
      core_stats_(options.stats) {
  assert(block_size_ >= 2 && block_size_ <= 0xffff);
  assert(alpha_ > 1.0 && alpha_ < block_size_ / 2.0);
}

void Ria::BulkLoad(std::span<const VertexId> sorted_ids) {
  size_ = sorted_ids.size();
  if (size_ == 0) {
    slots_.clear();
    index_.clear();
    counts_.clear();
    ReleaseExcessCapacity();
    return;
  }
  size_t want_slots = static_cast<size_t>(size_ * alpha_) + 1;
  size_t nb = (want_slots + block_size_ - 1) / block_size_;
  slots_.assign(nb * block_size_, 0);
  index_.assign(nb, 0);
  counts_.assign(nb, 0);
  ReleaseExcessCapacity();
  size_t base = size_ / nb;
  size_t rem = size_ % nb;
  assert(base >= 1);
  size_t src = 0;
  for (size_t b = 0; b < nb; ++b) {
    size_t take = base + (b < rem ? 1 : 0);
    for (size_t i = 0; i < take; ++i) {
      slots_[b * block_size_ + i] = sorted_ids[src++];
    }
    counts_[b] = static_cast<uint16_t>(take);
    index_[b] = slots_[b * block_size_];
  }
  assert(src == size_);
}

void Ria::ReleaseExcessCapacity() {
  if (slots_.capacity() > 2 * slots_.size()) {
    slots_.shrink_to_fit();
  }
  if (index_.capacity() > 2 * index_.size()) {
    index_.shrink_to_fit();
  }
  if (counts_.capacity() > 2 * counts_.size()) {
    counts_.shrink_to_fit();
  }
}

size_t Ria::FindBlock(VertexId id) const {
  // The redundant index is small and contiguous: one binary search touching
  // O(1) cache lines replaces the PMA's dependent probe chain.
  size_t b = std::upper_bound(index_.begin(), index_.end(), id) - index_.begin();
  return b == 0 ? 0 : b - 1;
}

size_t Ria::MovementBound() const {
  return std::max<size_t>(1, std::bit_width(counts_.size()) - 1);
}

bool Ria::InsertIntoBlock(size_t b, VertexId id) {
  VertexId* block = slots_.data() + b * block_size_;
  uint16_t n = counts_[b];
  VertexId* end = block + n;
  VertexId* it = std::lower_bound(block, end, id);
  if (it != end && *it == id) {
    return false;  // duplicate; no change
  }
  assert(n < block_size_);
  std::copy_backward(it, end, end + 1);
  *it = id;
  ++counts_[b];
  index_[b] = block[0];
  stats_.elements_moved += end - it + 1;
  return true;
}

void Ria::CascadeRight(size_t from, size_t to, VertexId id) {
  // Push one id across each block boundary from `from` toward the free
  // block `to`; every hop keeps blocks sorted because the pushed id is the
  // largest of its source block and below the next block's first id.
  VertexId* home = slots_.data() + from * block_size_;
  VertexId push;
  if (id > home[counts_[from] - 1]) {
    push = id;
  } else {
    push = home[counts_[from] - 1];
    --counts_[from];
    bool ok = InsertIntoBlock(from, id);
    assert(ok);
    (void)ok;
  }
  for (size_t k = from + 1; k <= to; ++k) {
    VertexId* block = slots_.data() + k * block_size_;
    uint16_t n = counts_[k];
    if (k < to) {
      // Full block: its last id moves on; `push` becomes its new first.
      assert(n == block_size_);
      VertexId next_push = block[n - 1];
      std::copy_backward(block, block + n - 1, block + n);
      block[0] = push;
      index_[k] = push;
      stats_.elements_moved += n;
      push = next_push;
    } else {
      std::copy_backward(block, block + n, block + n + 1);
      block[0] = push;
      ++counts_[k];
      index_[k] = push;
      stats_.elements_moved += n + 1;
    }
  }
  ++stats_.cascades;
}

void Ria::CascadeLeft(size_t from, size_t to, VertexId id) {
  VertexId* home = slots_.data() + from * block_size_;
  // Evict the home block's first id (it is <= id because FindBlock picked
  // this block), insert id, and push the evictee leftward.
  VertexId push = home[0];
  // counts_[from] - 1 ids shift down one slot and the evicted first id
  // leaves the block: counts_[from] relocations total. Count before the
  // decrement — the old post-decrement add dropped the evictee.
  stats_.elements_moved += counts_[from];
  std::copy(home + 1, home + counts_[from], home);
  --counts_[from];
  bool ok = InsertIntoBlock(from, id);
  assert(ok);
  (void)ok;
  for (size_t k = from; k-- > to;) {
    VertexId* block = slots_.data() + k * block_size_;
    uint16_t n = counts_[k];
    if (k > to) {
      // Full block: its first id moves on; `push` is appended.
      assert(n == block_size_);
      VertexId next_push = block[0];
      std::copy(block + 1, block + n, block);
      block[n - 1] = push;
      index_[k] = block[0];
      stats_.elements_moved += n;
      push = next_push;
    } else {
      block[n] = push;
      ++counts_[k];
      stats_.elements_moved += 1;
    }
  }
  ++stats_.cascades;
}

void Ria::ExpandAndInsert(VertexId id) {
  std::vector<VertexId> ids = Decode();
  ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
  BulkLoad(ids);
  ++stats_.expansions;
}

Ria::InsertResult Ria::TryInsert(VertexId id) {
  if (counts_.empty()) {
    VertexId one[1] = {id};
    BulkLoad(one);
    return InsertResult::kInserted;
  }
  size_t b = FindBlock(id);
  if (counts_[b] < block_size_) {
    if (!InsertIntoBlock(b, id)) {
      return InsertResult::kDuplicate;
    }
    ++size_;
    return InsertResult::kInserted;
  }
  // Duplicate check before any movement.
  {
    const VertexId* block = slots_.data() + b * block_size_;
    if (std::binary_search(block, block + counts_[b], id)) {
      return InsertResult::kDuplicate;
    }
  }
  size_t bound = MovementBound();
  for (size_t d = 1; d <= bound; ++d) {
    if (b + d < counts_.size() && counts_[b + d] < block_size_) {
      CascadeRight(b, b + d, id);
      ++size_;
      return InsertResult::kInserted;
    }
    if (d <= b && counts_[b - d] < block_size_) {
      CascadeLeft(b, b - d, id);
      ++size_;
      return InsertResult::kInserted;
    }
  }
  return InsertResult::kNeedExpand;
}

bool Ria::Insert(VertexId id) {
  switch (TryInsert(id)) {
    case InsertResult::kInserted:
      return true;
    case InsertResult::kDuplicate:
      return false;
    case InsertResult::kNeedExpand:
      ExpandAndInsert(id);  // BulkLoad inside re-derives size_
      return true;
  }
  return false;
}

bool Ria::Contains(VertexId id) const {
  if (counts_.empty()) {
    return false;
  }
  size_t b = FindBlock(id);
  const VertexId* block = slots_.data() + b * block_size_;
  return std::binary_search(block, block + counts_[b], id);
}

bool Ria::Delete(VertexId id) {
  if (counts_.empty()) {
    return false;
  }
  size_t b = FindBlock(id);
  VertexId* block = slots_.data() + b * block_size_;
  VertexId* end = block + counts_[b];
  VertexId* it = std::lower_bound(block, end, id);
  if (it == end || *it != id) {
    return false;
  }
  std::copy(it + 1, end, it);
  --counts_[b];
  --size_;
  stats_.elements_moved += end - it - 1;
  if (counts_[b] == 0) {
    // No empty blocks allowed (the index entry would dangle): rebuild.
    BulkLoad(Decode());
  } else {
    index_[b] = block[0];
    MaybeContract();
  }
  return true;
}

void Ria::MaybeContract() {
  // Hysteresis at twice the α target (plus one block of slack) so a rebuild
  // is never immediately undone by the next few inserts.
  if (slots_.size() <= block_size_ ||
      static_cast<double>(slots_.size()) <=
          2.0 * alpha_ * static_cast<double>(size_) + block_size_) {
    return;
  }
  BulkLoad(Decode());
  ++stats_.contractions;
  if (core_stats_ != nullptr) {
    core_stats_->ria_contractions.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t Ria::memory_footprint() const {
  // sizeof(*this) keeps the accounting consistent with Lia and Cria, which
  // both charge their object headers: footprints are compared across leaf
  // kinds (bench memory studies, compressed-vs-raw ratios).
  return sizeof(*this) + slots_.capacity() * sizeof(VertexId) + index_bytes();
}

size_t Ria::index_bytes() const {
  return index_.capacity() * sizeof(VertexId) +
         counts_.capacity() * sizeof(uint16_t);
}

bool Ria::CheckInvariants() const {
  if (counts_.size() != index_.size() ||
      slots_.size() != counts_.size() * block_size_) {
    return false;
  }
  size_t total = 0;
  VertexId prev = 0;
  bool first = true;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0 || counts_[b] > block_size_) {
      return false;
    }
    const VertexId* block = slots_.data() + b * block_size_;
    if (index_[b] != block[0]) {
      return false;
    }
    for (size_t i = 0; i < counts_[b]; ++i) {
      if (!first && block[i] <= prev) {
        return false;
      }
      prev = block[i];
      first = false;
      ++total;
    }
  }
  return total == size_;
}

}  // namespace lsg
