#include "src/core/lsgraph.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "src/util/sort.h"

namespace lsg {

LSGraph::LSGraph(VertexId num_vertices, Options options, ThreadPool* pool)
    : options_(options), blocks_(num_vertices), pool_(pool) {
  // Wire every structure this engine creates to its shared counters.
  options_.stats = &stats_;
}

LSGraph::~LSGraph() {
  for (VertexBlock& vb : blocks_) {
    delete vb.tail;
  }
}

ThreadPool& LSGraph::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::Global();
}

void LSGraph::BuildFromEdges(std::vector<Edge> edges) {
  // Rebuild-in-place: release every existing tail and clear the inline runs
  // first. Overwriting vb.tail without this leaked the old HiNode, and
  // vertices absent from the new edge list kept their stale adjacency.
  pool().ParallelFor(0, blocks_.size(), [this](size_t v) {
    delete blocks_[v].tail;
    blocks_[v] = VertexBlock{};
  });
  num_edges_ = 0;
  oob_rejected_.fetch_add(RemoveOutOfRangeEdges(&edges, num_vertices()),
                          std::memory_order_relaxed);
  PreparedBatch pb = PrepareBatch(std::move(edges), pool());
  const std::vector<Edge>& sorted = pb.edges;
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t begin = pb.group_begin(g);
    size_t end = pb.group_end(g);
    VertexId v = sorted[begin].src;
    VertexBlock& vb = blocks_[v];
    size_t deg = end - begin;
    size_t inl = std::min<size_t>(deg, kInlineCap);
    for (size_t i = 0; i < inl; ++i) {
      vb.inline_edges[i] = sorted[begin + i].dst;
    }
    vb.inline_count = static_cast<uint32_t>(inl);
    vb.degree = static_cast<uint32_t>(deg);
    if (deg > inl) {
      std::vector<VertexId> tail_ids;
      tail_ids.reserve(deg - inl);
      for (size_t i = begin + inl; i < end; ++i) {
        tail_ids.push_back(sorted[i].dst);
      }
      vb.tail = new HiNode(options_);
      vb.tail->BulkLoad(tail_ids);
    }
  });
  num_edges_ = sorted.size();
}

bool LSGraph::InsertIntoVertex(VertexBlock& vb, VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    return false;
  }
  if (vb.inline_count < kInlineCap) {
    // Invariant: tail non-empty implies the inline run is full, so there is
    // no tail to check against here.
    std::copy_backward(it, end, end + 1);
    *it = dst;
    ++vb.inline_count;
    ++vb.degree;
    return true;
  }
  if (dst > end[-1]) {
    // dst sorts after the inline run: it goes straight to the tail, which
    // may already contain it.
    if (vb.tail == nullptr) {
      vb.tail = new HiNode(options_);
    }
    if (!vb.tail->Insert(dst)) {
      return false;
    }
    ++vb.degree;
    return true;
  }
  // dst belongs inline; the current largest inline id spills to the tail.
  // The spilled id cannot be a tail duplicate (all tail ids exceed it).
  VertexId spilled = end[-1];
  std::copy_backward(it, end - 1, end);
  *it = dst;
  if (vb.tail == nullptr) {
    vb.tail = new HiNode(options_);
  }
  bool inserted = vb.tail->Insert(spilled);
  assert(inserted);
  (void)inserted;
  ++vb.degree;
  return true;
}

bool LSGraph::DeleteFromVertex(VertexBlock& vb, VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    std::copy(it + 1, end, it);
    --vb.inline_count;
    --vb.degree;
    if (vb.tail != nullptr) {
      // Backfill from the tail to keep the inline run full (and the
      // inline-max < tail-min invariant trivially true).
      VertexId min_tail = vb.tail->First();
      vb.tail->Delete(min_tail);
      vb.inline_edges[vb.inline_count++] = min_tail;
      FreeTailIfDrained(vb);
    }
    return true;
  }
  if (vb.tail == nullptr || !vb.tail->Delete(dst)) {
    return false;
  }
  --vb.degree;
  FreeTailIfDrained(vb);
  return true;
}

void LSGraph::RebuildVertex(VertexBlock& vb, std::span<const VertexId> ids) {
  size_t inl = std::min<size_t>(ids.size(), kInlineCap);
  for (size_t i = 0; i < inl; ++i) {
    vb.inline_edges[i] = ids[i];
  }
  vb.inline_count = static_cast<uint32_t>(inl);
  vb.degree = static_cast<uint32_t>(ids.size());
  if (ids.size() > inl) {
    if (vb.tail == nullptr) {
      vb.tail = new HiNode(options_);
    }
    vb.tail->BulkLoad(ids.subspan(inl));
  } else if (vb.tail != nullptr) {
    delete vb.tail;
    vb.tail = nullptr;
  }
}

size_t LSGraph::MergeGroupIntoVertex(VertexBlock& vb, const PreparedBatch& pb,
                                     size_t g, size_t* oob) {
  const VertexId n = num_vertices();
  std::vector<VertexId> incoming;
  incoming.reserve(pb.group_end(g) - pb.group_begin(g));
  for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
    VertexId dst = pb.edges[i].dst;
    if (dst >= n) {
      ++*oob;
    } else {
      incoming.push_back(dst);  // sorted unique: PrepareBatch deduped
    }
  }
  if (incoming.empty()) {
    return 0;
  }
  std::vector<VertexId> cur;
  cur.reserve(vb.degree);
  for (uint32_t i = 0; i < vb.inline_count; ++i) {
    cur.push_back(vb.inline_edges[i]);
  }
  if (vb.tail != nullptr) {
    vb.tail->Map([&cur](VertexId v) { cur.push_back(v); });
  }
  std::vector<VertexId> merged;
  merged.reserve(cur.size() + incoming.size());
  std::set_union(cur.begin(), cur.end(), incoming.begin(), incoming.end(),
                 std::back_inserter(merged));
  size_t added = merged.size() - cur.size();
  if (added == 0) {
    return 0;
  }
  bool had_tail = vb.tail != nullptr;
  RebuildVertex(vb, merged);
  if (had_tail) {
    stats_.cria_recompressions.fetch_add(1, std::memory_order_relaxed);
  }
  return added;
}

size_t LSGraph::DeleteGroupFromVertex(VertexBlock& vb, const PreparedBatch& pb,
                                      size_t g, size_t* oob) {
  const VertexId n = num_vertices();
  std::vector<VertexId> outgoing;
  outgoing.reserve(pb.group_end(g) - pb.group_begin(g));
  for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
    VertexId dst = pb.edges[i].dst;
    if (dst >= n) {
      ++*oob;
    } else {
      outgoing.push_back(dst);
    }
  }
  if (outgoing.empty() || vb.degree == 0) {
    return 0;
  }
  std::vector<VertexId> cur;
  cur.reserve(vb.degree);
  for (uint32_t i = 0; i < vb.inline_count; ++i) {
    cur.push_back(vb.inline_edges[i]);
  }
  if (vb.tail != nullptr) {
    vb.tail->Map([&cur](VertexId v) { cur.push_back(v); });
  }
  std::vector<VertexId> rest;
  rest.reserve(cur.size());
  std::set_difference(cur.begin(), cur.end(), outgoing.begin(), outgoing.end(),
                      std::back_inserter(rest));
  size_t removed = cur.size() - rest.size();
  if (removed == 0) {
    return 0;
  }
  bool had_tail = vb.tail != nullptr;
  RebuildVertex(vb, rest);
  if (had_tail) {
    stats_.cria_recompressions.fetch_add(1, std::memory_order_relaxed);
  }
  return removed;
}

bool LSGraph::InsertEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (InsertIntoVertex(blocks_[src], dst)) {
    ++num_edges_;
    return true;
  }
  return false;
}

bool LSGraph::DeleteEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (DeleteFromVertex(blocks_[src], dst)) {
    --num_edges_;
    return true;
  }
  return false;
}

bool LSGraph::HasEdge(VertexId src, VertexId dst) const {
  if (src >= num_vertices() || dst >= num_vertices()) {
    return false;
  }
  const VertexBlock& vb = blocks_[src];
  const VertexId* end = vb.inline_edges + vb.inline_count;
  if (std::binary_search(vb.inline_edges, end, dst)) {
    return true;
  }
  return vb.tail != nullptr && vb.tail->Contains(dst);
}

size_t LSGraph::InsertBatch(std::span<const Edge> batch) {
  return InsertPrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t LSGraph::InsertPrepared(const PreparedBatch& pb) {
  std::atomic<size_t> added{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    VertexBlock& vb = blocks_[src];
    if (options_.compress_leaves &&
        pb.group_end(g) - pb.group_begin(g) >= kGroupMergeMin) {
      // Recompress the whole run once instead of re-encoding a block per
      // edge: decode, set-union, rebuild.
      local = MergeGroupIntoVertex(vb, pb, g, &oob);
    } else {
      for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
        VertexId dst = pb.edges[i].dst;
        if (dst >= n) {
          ++oob;
          continue;
        }
        local += InsertIntoVertex(vb, dst);
      }
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ += added.load(std::memory_order_relaxed);
  return added.load(std::memory_order_relaxed);
}

size_t LSGraph::DeleteBatch(std::span<const Edge> batch) {
  return DeletePrepared(
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool()));
}

size_t LSGraph::DeletePrepared(const PreparedBatch& pb) {
  std::atomic<size_t> removed{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    VertexBlock& vb = blocks_[src];
    if (options_.compress_leaves &&
        pb.group_end(g) - pb.group_begin(g) >= kGroupMergeMin) {
      local = DeleteGroupFromVertex(vb, pb, g, &oob);
    } else {
      for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
        VertexId dst = pb.edges[i].dst;
        if (dst >= n) {
          ++oob;
          continue;
        }
        local += DeleteFromVertex(vb, dst);
      }
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ -= removed.load(std::memory_order_relaxed);
  return removed.load(std::memory_order_relaxed);
}

size_t LSGraph::memory_footprint() const {
  size_t total = blocks_.capacity() * sizeof(VertexBlock);
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->memory_footprint();
    }
  }
  return total;
}

size_t LSGraph::index_bytes() const {
  size_t total = 0;
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->index_bytes();
    }
  }
  return total;
}

size_t LSGraph::adjacency_bytes() const {
  size_t total = 0;
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->memory_footprint();
    }
  }
  return total;
}

EdgeCount LSGraph::tail_edges() const {
  EdgeCount total = 0;
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->size();
    }
  }
  return total;
}

bool LSGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const VertexBlock& vb = blocks_[v];
    const VertexId* end = vb.inline_edges + vb.inline_count;
    if (!std::is_sorted(vb.inline_edges, end) ||
        std::adjacent_find(vb.inline_edges, end) != end) {
      return false;
    }
    size_t tail_size = vb.tail != nullptr ? vb.tail->size() : 0;
    if (vb.tail != nullptr && tail_size == 0) {
      return false;  // drained tails must be freed, not retained
    }
    if (vb.degree != vb.inline_count + tail_size) {
      return false;
    }
    if (tail_size != 0) {
      if (vb.inline_count != kInlineCap) {
        return false;  // tail may only exist once the inline run is full
      }
      if (vb.tail->First() <= end[-1]) {
        return false;
      }
      if (!vb.tail->CheckInvariants()) {
        return false;
      }
    }
    total += vb.degree;
  }
  return total == num_edges_;
}

}  // namespace lsg
