#include "src/core/lsgraph.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "src/util/sort.h"

namespace lsg {

LSGraph::LSGraph(VertexId num_vertices, Options options, ThreadPool* pool)
    : options_(options), blocks_(num_vertices), pool_(pool) {
  // Wire every structure this engine creates to its shared counters.
  options_.stats = &stats_;
}

LSGraph::~LSGraph() {
  for (VertexBlock& vb : blocks_) {
    delete vb.tail;
  }
}

ThreadPool& LSGraph::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::Global();
}

void LSGraph::BuildFromEdges(std::vector<Edge> edges) {
  RadixSortEdges(edges);
  DedupSortedEdges(edges);
  // Group boundaries: starts[i] is the first edge of the i-th vertex group.
  std::vector<size_t> starts;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i == 0 || edges[i].src != edges[i - 1].src) {
      starts.push_back(i);
    }
  }
  starts.push_back(edges.size());
  size_t groups = starts.empty() ? 0 : starts.size() - 1;
  pool().ParallelFor(0, groups, [&](size_t g) {
    size_t begin = starts[g];
    size_t end = starts[g + 1];
    VertexId v = edges[begin].src;
    VertexBlock& vb = blocks_[v];
    size_t deg = end - begin;
    size_t inl = std::min<size_t>(deg, kInlineCap);
    for (size_t i = 0; i < inl; ++i) {
      vb.inline_edges[i] = edges[begin + i].dst;
    }
    vb.inline_count = static_cast<uint32_t>(inl);
    vb.degree = static_cast<uint32_t>(deg);
    if (deg > inl) {
      std::vector<VertexId> tail_ids;
      tail_ids.reserve(deg - inl);
      for (size_t i = begin + inl; i < end; ++i) {
        tail_ids.push_back(edges[i].dst);
      }
      vb.tail = new HiNode(options_);
      vb.tail->BulkLoad(tail_ids);
    }
  });
  num_edges_ = edges.size();
}

bool LSGraph::InsertIntoVertex(VertexBlock& vb, VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    return false;
  }
  if (vb.inline_count < kInlineCap) {
    // Invariant: tail non-empty implies the inline run is full, so there is
    // no tail to check against here.
    std::copy_backward(it, end, end + 1);
    *it = dst;
    ++vb.inline_count;
    ++vb.degree;
    return true;
  }
  if (dst > end[-1]) {
    // dst sorts after the inline run: it goes straight to the tail, which
    // may already contain it.
    if (vb.tail == nullptr) {
      vb.tail = new HiNode(options_);
    }
    if (!vb.tail->Insert(dst)) {
      return false;
    }
    ++vb.degree;
    return true;
  }
  // dst belongs inline; the current largest inline id spills to the tail.
  // The spilled id cannot be a tail duplicate (all tail ids exceed it).
  VertexId spilled = end[-1];
  std::copy_backward(it, end - 1, end);
  *it = dst;
  if (vb.tail == nullptr) {
    vb.tail = new HiNode(options_);
  }
  bool inserted = vb.tail->Insert(spilled);
  assert(inserted);
  (void)inserted;
  ++vb.degree;
  return true;
}

bool LSGraph::DeleteFromVertex(VertexBlock& vb, VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    std::copy(it + 1, end, it);
    --vb.inline_count;
    --vb.degree;
    if (vb.tail != nullptr && vb.tail->size() != 0) {
      // Backfill from the tail to keep the inline run full (and the
      // inline-max < tail-min invariant trivially true).
      VertexId min_tail = vb.tail->First();
      vb.tail->Delete(min_tail);
      vb.inline_edges[vb.inline_count++] = min_tail;
    }
    return true;
  }
  if (vb.tail == nullptr || !vb.tail->Delete(dst)) {
    return false;
  }
  --vb.degree;
  return true;
}

bool LSGraph::InsertEdge(VertexId src, VertexId dst) {
  if (InsertIntoVertex(blocks_[src], dst)) {
    ++num_edges_;
    return true;
  }
  return false;
}

bool LSGraph::DeleteEdge(VertexId src, VertexId dst) {
  if (DeleteFromVertex(blocks_[src], dst)) {
    --num_edges_;
    return true;
  }
  return false;
}

bool LSGraph::HasEdge(VertexId src, VertexId dst) const {
  const VertexBlock& vb = blocks_[src];
  const VertexId* end = vb.inline_edges + vb.inline_count;
  if (std::binary_search(vb.inline_edges, end, dst)) {
    return true;
  }
  return vb.tail != nullptr && vb.tail->Contains(dst);
}

namespace {

// Sorts a batch and returns per-source-vertex group boundaries.
std::vector<size_t> GroupBySource(std::vector<Edge>& batch) {
  RadixSortEdges(batch);
  DedupSortedEdges(batch);
  std::vector<size_t> starts;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (i == 0 || batch[i].src != batch[i - 1].src) {
      starts.push_back(i);
    }
  }
  starts.push_back(batch.size());
  return starts;
}

}  // namespace

size_t LSGraph::InsertBatch(std::span<const Edge> batch) {
  std::vector<Edge> edges(batch.begin(), batch.end());
  std::vector<size_t> starts = GroupBySource(edges);
  size_t groups = starts.empty() ? 0 : starts.size() - 1;
  std::atomic<size_t> added{0};
  pool().ParallelFor(0, groups, [&](size_t g) {
    size_t local = 0;
    VertexBlock& vb = blocks_[edges[starts[g]].src];
    for (size_t i = starts[g]; i < starts[g + 1]; ++i) {
      local += InsertIntoVertex(vb, edges[i].dst);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ += added.load(std::memory_order_relaxed);
  return added.load(std::memory_order_relaxed);
}

size_t LSGraph::DeleteBatch(std::span<const Edge> batch) {
  std::vector<Edge> edges(batch.begin(), batch.end());
  std::vector<size_t> starts = GroupBySource(edges);
  size_t groups = starts.empty() ? 0 : starts.size() - 1;
  std::atomic<size_t> removed{0};
  pool().ParallelFor(0, groups, [&](size_t g) {
    size_t local = 0;
    VertexBlock& vb = blocks_[edges[starts[g]].src];
    for (size_t i = starts[g]; i < starts[g + 1]; ++i) {
      local += DeleteFromVertex(vb, edges[i].dst);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_ -= removed.load(std::memory_order_relaxed);
  return removed.load(std::memory_order_relaxed);
}

size_t LSGraph::memory_footprint() const {
  size_t total = blocks_.capacity() * sizeof(VertexBlock);
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->memory_footprint();
    }
  }
  return total;
}

size_t LSGraph::index_bytes() const {
  size_t total = 0;
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->index_bytes();
    }
  }
  return total;
}

bool LSGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const VertexBlock& vb = blocks_[v];
    const VertexId* end = vb.inline_edges + vb.inline_count;
    if (!std::is_sorted(vb.inline_edges, end) ||
        std::adjacent_find(vb.inline_edges, end) != end) {
      return false;
    }
    size_t tail_size = vb.tail != nullptr ? vb.tail->size() : 0;
    if (vb.degree != vb.inline_count + tail_size) {
      return false;
    }
    if (tail_size != 0) {
      if (vb.inline_count != kInlineCap) {
        return false;  // tail may only exist once the inline run is full
      }
      if (vb.tail->First() <= end[-1]) {
        return false;
      }
      if (!vb.tail->CheckInvariants()) {
        return false;
      }
    }
    total += vb.degree;
  }
  return total == num_edges_;
}

}  // namespace lsg
