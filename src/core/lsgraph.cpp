#include "src/core/lsgraph.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/util/sort.h"

namespace lsg {

namespace {
// Staging buffers for the snapshot read path, pooled per thread. Taken by
// move so a nested snapshot read (a kernel reading one snapshot inside a
// callback reading another) gets its own buffer instead of aliasing.
thread_local std::vector<std::vector<VertexId>> scratch_pool;  // NOLINT
}  // namespace

LSGraph::LSGraph(VertexId num_vertices, Options options, ThreadPool* pool)
    : options_(options),
      blocks_(num_vertices),
      pool_(pool != nullptr ? pool : options.pool),
      vseq_(num_vertices),
      chains_(num_vertices) {
  // Reject unusable tunables at the door instead of deep inside a
  // conversion path (Options::Validate documents every bound).
  if (std::string err = options_.Validate(); !err.empty()) {
    throw std::invalid_argument("LSGraph: invalid Options: " + err);
  }
  // Wire every structure this engine creates to its shared counters.
  options_.stats = &stats_;
}

LSGraph::~LSGraph() {
  // Contract: every snapshot was released before destruction, so no pins
  // remain and pruning retires every chain node. Drain then runs the
  // deferred frees (no readers can be inside an epoch guard for this
  // engine any more), and the live tails drop their last reference.
  assert(stats_.snapshots_live.load(std::memory_order_relaxed) == 0);
  PruneChains();
  EpochManager::Global().Drain();
  for (VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      vb.tail->Unref();
    }
  }
}

ThreadPool& LSGraph::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::Global();
}

VertexId LSGraph::AddVertices(VertexId count) {
  std::lock_guard<std::mutex> gate(writer_mu_);
  VertexId first = num_vertices();
  blocks_.resize(blocks_.size() + count);
  vseq_.resize(blocks_.size());
  chains_.resize(blocks_.size());
  return first;
}

void LSGraph::BuildFromEdges(std::vector<Edge> edges) {
  std::lock_guard<std::mutex> gate(writer_mu_);
  const MutationCtx mv = BeginUnit();
  if (!mv.cow) {
    // Rebuild-in-place: release every existing tail and clear the inline
    // runs first. Overwriting vb.tail without this leaked the old HiNode,
    // and vertices absent from the new edge list kept their stale
    // adjacency.
    pool().ParallelFor(0, blocks_.size(), [this](size_t v) {
      if (blocks_[v].tail != nullptr) {
        blocks_[v].tail->Unref();
      }
      blocks_[v] = VertexBlock{};
    });
  } else {
    // Snapshots are pinned: publish the clear as a versioned mutation so
    // each vertex's pre-image lands on its chain. Vertices that were
    // already empty (and chainless) publish without preserving anything.
    pool().ParallelFor(0, blocks_.size(), [this, &mv](size_t v) {
      VertexBlock empty{};
      CowPublish(static_cast<VertexId>(v), empty, mv);
    });
  }
  num_edges_.store(0, std::memory_order_relaxed);
  oob_rejected_.fetch_add(RemoveOutOfRangeEdges(&edges, num_vertices()),
                          std::memory_order_relaxed);
  PreparedBatch pb = PrepareBatch(std::move(edges), pool());
  const std::vector<Edge>& sorted = pb.edges;
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    size_t begin = pb.group_begin(g);
    size_t end = pb.group_end(g);
    VertexId v = sorted[begin].src;
    size_t deg = end - begin;
    size_t inl = std::min<size_t>(deg, kInlineCap);
    VertexBlock work{};
    VertexBlock& vb = mv.cow ? work : blocks_[v];
    for (size_t i = 0; i < inl; ++i) {
      vb.inline_edges[i] = sorted[begin + i].dst;
    }
    vb.inline_count = static_cast<uint32_t>(inl);
    vb.degree = static_cast<uint32_t>(deg);
    if (deg > inl) {
      std::vector<VertexId> tail_ids;
      tail_ids.reserve(deg - inl);
      for (size_t i = begin + inl; i < end; ++i) {
        tail_ids.push_back(sorted[i].dst);
      }
      vb.tail = new HiNode(options_);
      vb.tail->BulkLoad(tail_ids);
    }
    if (mv.cow) {
      // The phase-1 clear already stamped version w and preserved the real
      // pre-image, so this second publish replaces empty state: nothing
      // further is preserved or retired.
      CowPublish(v, work, mv);
    }
  });
  num_edges_.store(sorted.size(), std::memory_order_relaxed);
  EndUnit(mv);
}

bool LSGraph::InsertIntoVertex(VertexBlock& vb, VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    return false;
  }
  if (vb.inline_count < kInlineCap) {
    // Invariant: tail non-empty implies the inline run is full, so there is
    // no tail to check against here.
    std::copy_backward(it, end, end + 1);
    *it = dst;
    ++vb.inline_count;
    ++vb.degree;
    return true;
  }
  if (dst > end[-1]) {
    // dst sorts after the inline run: it goes straight to the tail, which
    // may already contain it.
    if (vb.tail == nullptr) {
      vb.tail = new HiNode(options_);
    }
    if (!vb.tail->Insert(dst)) {
      return false;
    }
    ++vb.degree;
    return true;
  }
  // dst belongs inline; the current largest inline id spills to the tail.
  // The spilled id cannot be a tail duplicate (all tail ids exceed it).
  VertexId spilled = end[-1];
  std::copy_backward(it, end - 1, end);
  *it = dst;
  if (vb.tail == nullptr) {
    vb.tail = new HiNode(options_);
  }
  bool inserted = vb.tail->Insert(spilled);
  assert(inserted);
  (void)inserted;
  ++vb.degree;
  return true;
}

bool LSGraph::DeleteFromVertex(VertexBlock& vb, VertexId dst) {
  VertexId* begin = vb.inline_edges;
  VertexId* end = begin + vb.inline_count;
  VertexId* it = std::lower_bound(begin, end, dst);
  if (it != end && *it == dst) {
    std::copy(it + 1, end, it);
    --vb.inline_count;
    --vb.degree;
    if (vb.tail != nullptr) {
      // Backfill from the tail to keep the inline run full (and the
      // inline-max < tail-min invariant trivially true).
      VertexId min_tail = vb.tail->First();
      vb.tail->Delete(min_tail);
      vb.inline_edges[vb.inline_count++] = min_tail;
      FreeTailIfDrained(vb);
    }
    return true;
  }
  if (vb.tail == nullptr || !vb.tail->Delete(dst)) {
    return false;
  }
  --vb.degree;
  FreeTailIfDrained(vb);
  return true;
}

void LSGraph::RebuildVertex(VertexBlock& vb, std::span<const VertexId> ids) {
  size_t inl = std::min<size_t>(ids.size(), kInlineCap);
  for (size_t i = 0; i < inl; ++i) {
    vb.inline_edges[i] = ids[i];
  }
  vb.inline_count = static_cast<uint32_t>(inl);
  vb.degree = static_cast<uint32_t>(ids.size());
  if (ids.size() > inl) {
    if (vb.tail == nullptr) {
      vb.tail = new HiNode(options_);
    }
    vb.tail->BulkLoad(ids.subspan(inl));
  } else if (vb.tail != nullptr) {
    vb.tail->Unref();
    vb.tail = nullptr;
  }
}

size_t LSGraph::MergeGroupIntoVertex(VertexBlock& vb, const PreparedBatch& pb,
                                     size_t g, size_t* oob) {
  const VertexId n = num_vertices();
  std::vector<VertexId> incoming;
  incoming.reserve(pb.group_end(g) - pb.group_begin(g));
  for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
    VertexId dst = pb.edges[i].dst;
    if (dst >= n) {
      ++*oob;
    } else {
      incoming.push_back(dst);  // sorted unique: PrepareBatch deduped
    }
  }
  if (incoming.empty()) {
    return 0;
  }
  std::vector<VertexId> cur;
  cur.reserve(vb.degree);
  for (uint32_t i = 0; i < vb.inline_count; ++i) {
    cur.push_back(vb.inline_edges[i]);
  }
  if (vb.tail != nullptr) {
    vb.tail->Map([&cur](VertexId v) { cur.push_back(v); });
  }
  std::vector<VertexId> merged;
  merged.reserve(cur.size() + incoming.size());
  std::set_union(cur.begin(), cur.end(), incoming.begin(), incoming.end(),
                 std::back_inserter(merged));
  size_t added = merged.size() - cur.size();
  if (added == 0) {
    return 0;
  }
  bool had_tail = vb.tail != nullptr;
  RebuildVertex(vb, merged);
  if (had_tail) {
    stats_.cria_recompressions.fetch_add(1, std::memory_order_relaxed);
  }
  return added;
}

size_t LSGraph::DeleteGroupFromVertex(VertexBlock& vb, const PreparedBatch& pb,
                                      size_t g, size_t* oob) {
  const VertexId n = num_vertices();
  std::vector<VertexId> outgoing;
  outgoing.reserve(pb.group_end(g) - pb.group_begin(g));
  for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
    VertexId dst = pb.edges[i].dst;
    if (dst >= n) {
      ++*oob;
    } else {
      outgoing.push_back(dst);
    }
  }
  if (outgoing.empty() || vb.degree == 0) {
    return 0;
  }
  std::vector<VertexId> cur;
  cur.reserve(vb.degree);
  for (uint32_t i = 0; i < vb.inline_count; ++i) {
    cur.push_back(vb.inline_edges[i]);
  }
  if (vb.tail != nullptr) {
    vb.tail->Map([&cur](VertexId v) { cur.push_back(v); });
  }
  std::vector<VertexId> rest;
  rest.reserve(cur.size());
  std::set_difference(cur.begin(), cur.end(), outgoing.begin(), outgoing.end(),
                      std::back_inserter(rest));
  size_t removed = cur.size() - rest.size();
  if (removed == 0) {
    return 0;
  }
  bool had_tail = vb.tail != nullptr;
  RebuildVertex(vb, rest);
  if (had_tail) {
    stats_.cria_recompressions.fetch_add(1, std::memory_order_relaxed);
  }
  return removed;
}

bool LSGraph::InsertEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> gate(writer_mu_);
  const MutationCtx mv = BeginUnit();
  bool inserted;
  if (mv.cow) {
    VertexBlock work = CowBegin(src);
    inserted = InsertIntoVertex(work, dst);
    CowPublish(src, work, mv);
  } else {
    inserted = InsertIntoVertex(blocks_[src], dst);
  }
  if (inserted) {
    num_edges_.fetch_add(1, std::memory_order_relaxed);
  }
  EndUnit(mv);
  return inserted;
}

bool LSGraph::DeleteEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    oob_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> gate(writer_mu_);
  const MutationCtx mv = BeginUnit();
  bool removed;
  if (mv.cow) {
    VertexBlock work = CowBegin(src);
    removed = DeleteFromVertex(work, dst);
    CowPublish(src, work, mv);
  } else {
    removed = DeleteFromVertex(blocks_[src], dst);
  }
  if (removed) {
    num_edges_.fetch_sub(1, std::memory_order_relaxed);
  }
  EndUnit(mv);
  return removed;
}

bool LSGraph::HasEdge(VertexId src, VertexId dst) const {
  if (src >= num_vertices() || dst >= num_vertices()) {
    return false;
  }
  const VertexBlock& vb = blocks_[src];
  const VertexId* end = vb.inline_edges + vb.inline_count;
  if (std::binary_search(vb.inline_edges, end, dst)) {
    return true;
  }
  return vb.tail != nullptr && vb.tail->Contains(dst);
}

size_t LSGraph::InsertBatch(std::span<const Edge> batch) {
  // Sort/dedup outside the gate; only the apply phase excludes snapshots.
  PreparedBatch pb =
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool());
  std::lock_guard<std::mutex> gate(writer_mu_);
  return InsertPreparedLocked(pb);
}

size_t LSGraph::InsertPrepared(const PreparedBatch& pb) {
  std::lock_guard<std::mutex> gate(writer_mu_);
  return InsertPreparedLocked(pb);
}

size_t LSGraph::InsertPreparedLocked(const PreparedBatch& pb) {
  const MutationCtx mv = BeginUnit();
  std::atomic<size_t> added{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    VertexBlock work;
    if (mv.cow) {
      work = CowBegin(src);
    }
    VertexBlock& vb = mv.cow ? work : blocks_[src];
    if (options_.compress_leaves &&
        pb.group_end(g) - pb.group_begin(g) >= kGroupMergeMin) {
      // Recompress the whole run once instead of re-encoding a block per
      // edge: decode, set-union, rebuild.
      local = MergeGroupIntoVertex(vb, pb, g, &oob);
    } else {
      for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
        VertexId dst = pb.edges[i].dst;
        if (dst >= n) {
          ++oob;
          continue;
        }
        local += InsertIntoVertex(vb, dst);
      }
    }
    if (mv.cow) {
      CowPublish(src, work, mv);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    added.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_.fetch_add(added.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  EndUnit(mv);
  return added.load(std::memory_order_relaxed);
}

size_t LSGraph::DeleteBatch(std::span<const Edge> batch) {
  PreparedBatch pb =
      PrepareBatch(std::vector<Edge>(batch.begin(), batch.end()), pool());
  std::lock_guard<std::mutex> gate(writer_mu_);
  return DeletePreparedLocked(pb);
}

size_t LSGraph::DeletePrepared(const PreparedBatch& pb) {
  std::lock_guard<std::mutex> gate(writer_mu_);
  return DeletePreparedLocked(pb);
}

size_t LSGraph::DeletePreparedLocked(const PreparedBatch& pb) {
  const MutationCtx mv = BeginUnit();
  std::atomic<size_t> removed{0};
  const VertexId n = num_vertices();
  ForEachGroupLargestFirst(pb, pool(), [&](size_t g) {
    VertexId src = pb.group_source(g);
    if (src >= n) {
      oob_rejected_.fetch_add(pb.group_end(g) - pb.group_begin(g),
                              std::memory_order_relaxed);
      return;
    }
    size_t local = 0;
    size_t oob = 0;
    VertexBlock work;
    if (mv.cow) {
      work = CowBegin(src);
    }
    VertexBlock& vb = mv.cow ? work : blocks_[src];
    if (options_.compress_leaves &&
        pb.group_end(g) - pb.group_begin(g) >= kGroupMergeMin) {
      local = DeleteGroupFromVertex(vb, pb, g, &oob);
    } else {
      for (size_t i = pb.group_begin(g); i < pb.group_end(g); ++i) {
        VertexId dst = pb.edges[i].dst;
        if (dst >= n) {
          ++oob;
          continue;
        }
        local += DeleteFromVertex(vb, dst);
      }
    }
    if (mv.cow) {
      CowPublish(src, work, mv);
    }
    if (oob != 0) {
      oob_rejected_.fetch_add(oob, std::memory_order_relaxed);
    }
    removed.fetch_add(local, std::memory_order_relaxed);
  });
  num_edges_.fetch_sub(removed.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  EndUnit(mv);
  return removed.load(std::memory_order_relaxed);
}

// --- MVCC internals ---

LSGraph::MutationCtx LSGraph::BeginUnit() {
  MutationCtx mv;
  mv.w = ++version_;
  std::lock_guard<std::mutex> reg(snap_mu_);
  if (!pinned_.empty()) {
    mv.cow = true;
    mv.newest_pinned = *pinned_.rbegin();
  }
  return mv;
}

LSGraph::VertexBlock LSGraph::CowBegin(VertexId v) const {
  const VertexBlock& slot = blocks_[v];
  VertexBlock work;
  work.degree = slot.degree;
  work.inline_count = slot.inline_count;
  std::copy(slot.inline_edges, slot.inline_edges + kInlineCap,
            work.inline_edges);
  work.tail = slot.tail != nullptr ? slot.tail->CloneShallow() : nullptr;
  return work;
}

void LSGraph::CowPublish(VertexId v, const VertexBlock& work,
                         const MutationCtx& mv) {
  VertexBlock& slot = blocks_[v];
  uint64_t old_vseq = vseq_[v].v.load(std::memory_order_relaxed);
  HiNode* old_tail = slot.tail;
  VertexVersion* prior_head = chains_[v].head.load(std::memory_order_relaxed);
  bool state_exists =
      slot.degree != 0 || old_tail != nullptr || prior_head != nullptr;
  if (mv.newest_pinned >= old_vseq && state_exists) {
    // A pinned snapshot can still read the pre-image: freeze it on the
    // chain. The node takes over the live tail reference.
    auto* node = new VertexVersion;
    node->vseq = old_vseq;
    node->degree = slot.degree;
    node->inline_count = slot.inline_count;
    std::copy(slot.inline_edges, slot.inline_edges + kInlineCap,
              node->inline_edges);
    node->tail = old_tail;
    node->older.store(prior_head, std::memory_order_relaxed);
    chains_[v].head.store(node, std::memory_order_release);
    if (prior_head == nullptr) {
      RecordChained(v);
    }
  } else if (old_tail != nullptr) {
    // No snapshot can reach the pre-image, but an in-flight reader may
    // still be traversing the old tail: free through the epoch reclaimer.
    RetireTail(old_tail);
  }
  // Publish order (DESIGN.md §12): stamp the version first — a reader that
  // loads the new stamp diverts to the chain, where the pre-image above is
  // already visible (release store) — then the fields. A reader that
  // accepted the old stamp re-validates after staging and discards torn
  // field reads on mismatch.
  vseq_[v].v.store(mv.w, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<uint32_t>(slot.degree)
      .store(work.degree, std::memory_order_relaxed);
  std::atomic_ref<uint32_t>(slot.inline_count)
      .store(work.inline_count, std::memory_order_relaxed);
  for (size_t i = 0; i < kInlineCap; ++i) {
    std::atomic_ref<VertexId>(slot.inline_edges[i])
        .store(work.inline_edges[i], std::memory_order_relaxed);
  }
  std::atomic_ref<HiNode*>(slot.tail)
      .store(work.tail, std::memory_order_release);
}

void LSGraph::RecordChained(VertexId v) {
  std::lock_guard<std::mutex> lock(chained_mu_);
  chained_.push_back(v);
}

void LSGraph::RetireTail(HiNode* tail) {
  stats_.deferred_frees.fetch_add(1, std::memory_order_relaxed);
  EpochManager::Global().Retire(
      tail, [](void* p) { static_cast<HiNode*>(p)->Unref(); });
}

void LSGraph::PruneChains() {
  std::vector<uint64_t> pins;
  {
    std::lock_guard<std::mutex> reg(snap_mu_);
    pins.assign(pinned_.begin(), pinned_.end());
  }
  std::lock_guard<std::mutex> lock(chained_mu_);
  for (size_t i = 0; i < chained_.size();) {
    VertexId v = chained_[i];
    VertexVersion* node = chains_[v].head.load(std::memory_order_relaxed);
    // A chain node covers snapshot versions S with node->vseq <= S < upper,
    // where upper is the vseq of the next-newer state. Keep it iff a pin
    // falls in that window; drop it otherwise. Dropped nodes are epoch-
    // retired with their fields intact, because an in-flight reader may be
    // walking through them right now — only kept nodes are relinked.
    uint64_t upper = vseq_[v].v.load(std::memory_order_relaxed);
    VertexVersion* new_head = nullptr;
    VertexVersion* kept_prev = nullptr;
    while (node != nullptr) {
      VertexVersion* older = node->older.load(std::memory_order_relaxed);
      auto it = std::lower_bound(pins.begin(), pins.end(), node->vseq);
      bool needed = it != pins.end() && *it < upper;
      if (needed) {
        if (kept_prev != nullptr) {
          kept_prev->older.store(node, std::memory_order_release);
        } else {
          new_head = node;
        }
        kept_prev = node;
        upper = node->vseq;
      } else {
        stats_.deferred_frees.fetch_add(1, std::memory_order_relaxed);
        EpochManager::Global().Retire(node, [](void* p) {
          auto* n = static_cast<VertexVersion*>(p);
          if (n->tail != nullptr) {
            n->tail->Unref();
          }
          delete n;
        });
      }
      node = older;
    }
    if (kept_prev != nullptr) {
      kept_prev->older.store(nullptr, std::memory_order_release);
    }
    chains_[v].head.store(new_head, std::memory_order_release);
    if (new_head != nullptr) {
      ++i;
    } else {
      chained_[i] = chained_.back();
      chained_.pop_back();
    }
  }
}

void LSGraph::EndUnit(const MutationCtx& mv) {
  // chained_ is only mutated under the writer gate (held here), so the
  // unlocked emptiness probe is safe; it keeps the never-snapshotted path
  // free of any extra locking.
  if (mv.cow || !chained_.empty()) {
    PruneChains();
    EpochManager::Global().TryReclaim();
  }
}

std::shared_ptr<const GraphSnapshot> LSGraph::Snapshot() const {
  std::lock_guard<std::mutex> gate(writer_mu_);
  uint64_t ver = version_;
  VertexId nv = num_vertices();
  EdgeCount ne = num_edges();
  {
    std::lock_guard<std::mutex> reg(snap_mu_);
    pinned_.insert(ver);
  }
  stats_.snapshots_live.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<const GraphSnapshot>(
      new GraphSnapshot(this, ver, nv, ne));
}

void LSGraph::ReleaseSnapshotVersion(uint64_t version) const {
  {
    std::lock_guard<std::mutex> reg(snap_mu_);
    auto it = pinned_.find(version);
    assert(it != pinned_.end());
    pinned_.erase(it);
  }
  stats_.snapshots_live.fetch_sub(1, std::memory_order_relaxed);
  // Opportunistic reclamation. If an update batch holds the gate, skipping
  // is safe: the writer prunes at its next batch boundary.
  LSGraph* self = const_cast<LSGraph*>(this);
  if (self->writer_mu_.try_lock()) {
    std::lock_guard<std::mutex> gate(self->writer_mu_, std::adopt_lock);
    self->PruneChains();
    EpochManager::Global().TryReclaim();
  }
}

bool LSGraph::StageLive(VertexId v, uint64_t s1,
                        std::vector<VertexId>* out) const {
  // Tear-proof staging of the live block: atomic field reads, then a
  // version re-check. atomic_ref needs non-const lvalues; the loads do not
  // mutate.
  VertexBlock& slot = const_cast<VertexBlock&>(blocks_[v]);
  uint32_t ic = std::atomic_ref<uint32_t>(slot.inline_count)
                    .load(std::memory_order_relaxed);
  if (ic > kInlineCap) {
    return false;  // torn metadata; the chain has the consistent state
  }
  for (uint32_t i = 0; i < ic; ++i) {
    out->push_back(std::atomic_ref<VertexId>(slot.inline_edges[i])
                       .load(std::memory_order_relaxed));
  }
  HiNode* tail =
      std::atomic_ref<HiNode*>(slot.tail).load(std::memory_order_acquire);
  if (tail != nullptr) {
    tail->Map([out](VertexId u) { out->push_back(u); });
  }
  // The acquire fence keeps the staging loads above the validation load;
  // on mismatch the caller falls back to the chain, whose head the writer
  // release-published before moving the stamp.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (vseq_[v].v.load(std::memory_order_acquire) != s1) {
    out->clear();
    return false;
  }
  return true;
}

size_t LSGraph::SnapshotDegree(uint64_t snap, VertexId v) const {
  EpochManager::Guard guard;
  uint64_t s1 = vseq_[v].v.load(std::memory_order_acquire);
  if (s1 <= snap) {
    VertexBlock& slot = const_cast<VertexBlock&>(blocks_[v]);
    uint32_t d =
        std::atomic_ref<uint32_t>(slot.degree).load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (vseq_[v].v.load(std::memory_order_acquire) == s1) {
      return d;
    }
  }
  const VertexVersion* node = FindVersion(snap, v);
  return node != nullptr ? node->degree : 0;
}

bool LSGraph::SnapshotHasEdge(uint64_t snap, VertexId src,
                              VertexId dst) const {
  EpochManager::Guard guard;
  uint64_t s1 = vseq_[src].v.load(std::memory_order_acquire);
  if (s1 <= snap) {
    VertexBlock& slot = const_cast<VertexBlock&>(blocks_[src]);
    uint32_t ic = std::atomic_ref<uint32_t>(slot.inline_count)
                      .load(std::memory_order_relaxed);
    if (ic <= kInlineCap) {
      bool found = false;
      for (uint32_t i = 0; i < ic && !found; ++i) {
        found = std::atomic_ref<VertexId>(slot.inline_edges[i])
                    .load(std::memory_order_relaxed) == dst;
      }
      HiNode* tail =
          std::atomic_ref<HiNode*>(slot.tail).load(std::memory_order_acquire);
      if (!found && tail != nullptr) {
        found = tail->Contains(dst);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (vseq_[src].v.load(std::memory_order_acquire) == s1) {
        return found;
      }
    }
  }
  const VertexVersion* node = FindVersion(snap, src);
  if (node == nullptr) {
    return false;
  }
  for (uint32_t i = 0; i < node->inline_count; ++i) {
    if (node->inline_edges[i] == dst) {
      return true;
    }
  }
  return node->tail != nullptr && node->tail->Contains(dst);
}

const LSGraph::VertexVersion* LSGraph::FindVersion(uint64_t snap,
                                                   VertexId v) const {
  // Newest-first walk: the first node with vseq <= snap is the state that
  // was live when `snap` was pinned. Null means the vertex was empty at
  // that version (publishing skips preserving empty chainless state).
  const VertexVersion* node = chains_[v].head.load(std::memory_order_acquire);
  while (node != nullptr && node->vseq > snap) {
    node = node->older.load(std::memory_order_acquire);
  }
  return node;
}

std::vector<VertexId> LSGraph::TakeScratch() {
  if (scratch_pool.empty()) {
    return {};
  }
  std::vector<VertexId> s = std::move(scratch_pool.back());
  scratch_pool.pop_back();
  s.clear();
  return s;
}

void LSGraph::ReturnScratch(std::vector<VertexId> scratch) {
  if (scratch_pool.size() < 4) {
    scratch_pool.push_back(std::move(scratch));
  }
}

// --- End MVCC internals ---

size_t LSGraph::memory_footprint() const {
  // Adjacency structures only: the fixed 16 bytes/vertex of MVCC metadata
  // (vseq_ + chains_) is excluded so the bytes/edge telemetry stays
  // comparable across snapshot and non-snapshot configurations.
  size_t total = blocks_.capacity() * sizeof(VertexBlock);
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->memory_footprint();
    }
  }
  return total;
}

size_t LSGraph::index_bytes() const {
  size_t total = 0;
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->index_bytes();
    }
  }
  return total;
}

size_t LSGraph::adjacency_bytes() const {
  size_t total = 0;
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->memory_footprint();
    }
  }
  return total;
}

EdgeCount LSGraph::tail_edges() const {
  EdgeCount total = 0;
  for (const VertexBlock& vb : blocks_) {
    if (vb.tail != nullptr) {
      total += vb.tail->size();
    }
  }
  return total;
}

bool LSGraph::CheckInvariants() const {
  EdgeCount total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const VertexBlock& vb = blocks_[v];
    const VertexId* end = vb.inline_edges + vb.inline_count;
    if (!std::is_sorted(vb.inline_edges, end) ||
        std::adjacent_find(vb.inline_edges, end) != end) {
      return false;
    }
    size_t tail_size = vb.tail != nullptr ? vb.tail->size() : 0;
    if (vb.tail != nullptr && tail_size == 0) {
      return false;  // drained tails must be freed, not retained
    }
    if (vb.degree != vb.inline_count + tail_size) {
      return false;
    }
    if (tail_size != 0) {
      if (vb.inline_count != kInlineCap) {
        return false;  // tail may only exist once the inline run is full
      }
      if (vb.tail->First() <= end[-1]) {
        return false;
      }
      if (!vb.tail->CheckInvariants()) {
        return false;
      }
    }
    total += vb.degree;
  }
  return total == num_edges();
}

}  // namespace lsg
