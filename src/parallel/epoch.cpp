#include "src/parallel/epoch.h"

namespace lsg {

namespace {

// Retire batches this many items between opportunistic reclaim attempts so
// a writer that never reaches an explicit quiescent point still bounds the
// limbo list.
constexpr size_t kReclaimEvery = 1024;

}  // namespace

// Per-thread epoch slot handle. The destructor runs at thread exit and
// returns the slot to the registry for reuse, so short-lived pool threads
// cannot grow the slot list without bound.
struct EpochThreadRec {
  EpochManager::Slot* slot = nullptr;
  uint32_t depth = 0;

  ~EpochThreadRec() {
    if (slot != nullptr) {
      EpochManager::Global().ReleaseSlot(slot);
      slot = nullptr;
    }
  }

  static EpochThreadRec& Get() {
    thread_local EpochThreadRec rec;
    return rec;
  }
};

EpochManager& EpochManager::Global() {
  static EpochManager* mgr = new EpochManager();  // never destroyed
  return *mgr;
}

EpochManager::Slot* EpochManager::AcquireSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : slots_) {
    if (!s->in_use) {
      s->in_use = true;
      return s.get();
    }
  }
  slots_.push_back(std::make_unique<Slot>());
  slots_.back()->in_use = true;
  return slots_.back().get();
}

void EpochManager::ReleaseSlot(Slot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  slot->epoch.store(kIdle, std::memory_order_release);
  slot->in_use = false;
}

EpochManager::Guard::Guard() {
  EpochThreadRec& rec = EpochThreadRec::Get();
  if (rec.depth++ != 0) {
    return;  // already pinned by an enclosing guard
  }
  EpochManager& mgr = Global();
  if (rec.slot == nullptr) {
    rec.slot = mgr.AcquireSlot();
  }
  rec.slot->epoch.store(mgr.global_epoch_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  // Orders the pin before every pointer load under the guard, pairing with
  // the fence in Retire (the seqlock-style visibility argument of EBR).
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

EpochManager::Guard::~Guard() {
  EpochThreadRec& rec = EpochThreadRec::Get();
  if (--rec.depth == 0) {
    rec.slot->epoch.store(kIdle, std::memory_order_release);
  }
}

void EpochManager::Retire(void* ptr, Deleter deleter) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(mu_);
  limbo_.push_back(
      {global_epoch_.load(std::memory_order_relaxed), ptr, deleter});
  if (limbo_.size() % kReclaimEvery == 0) {
    TryAdvanceLocked();
    ReclaimLocked();
  }
}

bool EpochManager::TryAdvanceLocked() {
  uint64_t g = global_epoch_.load(std::memory_order_relaxed);
  for (const auto& s : slots_) {
    uint64_t e = s->epoch.load(std::memory_order_acquire);
    if (e != kIdle && e != g) {
      return false;  // a pinned reader has not observed the current epoch
    }
  }
  global_epoch_.store(g + 1, std::memory_order_seq_cst);
  return true;
}

size_t EpochManager::ReclaimLocked() {
  uint64_t g = global_epoch_.load(std::memory_order_relaxed);
  size_t freed = 0;
  size_t kept = 0;
  for (size_t i = 0; i < limbo_.size(); ++i) {
    // Two full epoch turns guarantee every reader that could have loaded
    // the pointer has since unpinned.
    if (limbo_[i].epoch + 2 <= g) {
      limbo_[i].deleter(limbo_[i].ptr);
      ++freed;
    } else {
      limbo_[kept++] = limbo_[i];
    }
  }
  limbo_.resize(kept);
  return freed;
}

size_t EpochManager::TryReclaim() {
  std::lock_guard<std::mutex> lock(mu_);
  TryAdvanceLocked();
  return ReclaimLocked();
}

size_t EpochManager::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t freed = 0;
  while (!limbo_.empty()) {
    bool advanced = TryAdvanceLocked();
    size_t n = ReclaimLocked();
    freed += n;
    if (!advanced && n == 0) {
      break;  // pinned readers block further progress
    }
  }
  return freed;
}

size_t EpochManager::limbo_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limbo_.size();
}

}  // namespace lsg
