#include "src/parallel/thread_pool.h"

#include <algorithm>

namespace lsg {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads != 0
                       ? num_threads
                       : std::max<size_t>(1, std::thread::hardware_concurrency())) {
  // The calling thread is worker 0; spawn the rest.
  for (size_t t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  job_ready_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::RunJob(size_t begin, size_t end, size_t grain, JobFn fn,
                        void* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_end_ = end;
    job_grain_ = grain;
    next_index_.store(begin, std::memory_order_relaxed);
    workers_active_.store(num_threads_ - 1, std::memory_order_relaxed);
    ++job_generation_;
  }
  job_ready_.notify_all();

  // The calling thread participates as worker 0.
  ExecuteChunks(0);

  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [this] {
    return workers_active_.load(std::memory_order_acquire) == 0;
  });
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t tid) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [this, seen_generation] {
        return shutting_down_ || job_generation_ != seen_generation;
      });
      if (shutting_down_) {
        return;
      }
      seen_generation = job_generation_;
    }
    ExecuteChunks(tid);
    if (workers_active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out signals the caller. Take the lock so the notify
      // cannot race with the caller entering its wait.
      std::lock_guard<std::mutex> lock(mu_);
      job_done_.notify_one();
    }
  }
}

void ThreadPool::ExecuteChunks(size_t tid) {
  JobFn fn = job_fn_;
  void* ctx = job_ctx_;
  size_t end = job_end_;
  size_t grain = job_grain_;
  for (;;) {
    size_t lo = next_index_.fetch_add(grain, std::memory_order_relaxed);
    if (lo >= end) {
      return;
    }
    size_t hi = std::min(end, lo + grain);
    fn(ctx, lo, hi, tid);
  }
}

}  // namespace lsg
