// Epoch-based grace-period reclamation for the MVCC read path (DESIGN.md
// §12). Writers never free a structure a concurrent snapshot reader might
// still be traversing; they Retire() it instead. Readers wrap every
// traversal in a Guard, which pins the thread's epoch slot at the current
// global epoch. A retired item is freed only after the global epoch has
// advanced twice past its retirement epoch — and the epoch can only advance
// once every pinned slot has observed the current one — so by the time an
// item is freed, every reader that could have loaded a pointer to it has
// unpinned (the classic Fraser scheme).
//
// The read path takes no locks: Guard is two relaxed stores and one fence.
// Retire/TryReclaim take a mutex, but they run on writer threads (batch
// boundaries, snapshot release, destruction), never under a reader.
#ifndef SRC_PARALLEL_EPOCH_H_
#define SRC_PARALLEL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace lsg {

class EpochManager {
 public:
  using Deleter = void (*)(void*);

  // Process-wide instance: epoch slots are per OS thread, not per engine,
  // so one registry serves every graph.
  static EpochManager& Global();

  // Pins the calling thread at the current epoch for its lifetime. Cheap
  // and re-entrant (nested guards keep the outermost pin).
  class Guard {
   public:
    Guard();
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
  };

  // Defers `deleter(ptr)` until no reader pinned at or before the current
  // epoch can remain. Never runs the deleter inline.
  void Retire(void* ptr, Deleter deleter);

  // Advances the epoch if every pinned thread has caught up, then frees
  // every retired item whose grace period has elapsed. Returns the number
  // of items freed. Called at quiescent points (batch boundaries, snapshot
  // release); never on the read path.
  size_t TryReclaim();

  // TryReclaim in a loop until the limbo list is empty or pinned readers
  // block further epoch advances. With no readers pinned this frees
  // everything (used at engine destruction).
  size_t Drain();

  size_t limbo_size() const;
  uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kIdle = ~uint64_t{0};

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
    bool in_use = false;  // guarded by mu_
  };

  struct Retired {
    uint64_t epoch;
    void* ptr;
    Deleter deleter;
  };

  EpochManager() = default;

  Slot* AcquireSlot();
  void ReleaseSlot(Slot* slot);
  // Both require mu_ held.
  bool TryAdvanceLocked();
  size_t ReclaimLocked();

  friend struct EpochThreadRec;

  std::atomic<uint64_t> global_epoch_{0};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;  // stable addresses; reused
  std::vector<Retired> limbo_;
};

}  // namespace lsg

#endif  // SRC_PARALLEL_EPOCH_H_
