// Minimal fork-join runtime.
//
// The paper parallelizes LSGraph with Cilk; this repo substitutes a
// persistent thread pool with dynamic chunk self-scheduling. Engines never
// spawn threads themselves — they take a ThreadPool& so benchmarks can sweep
// thread counts (Fig. 17) without re-building graphs.
#ifndef SRC_PARALLEL_THREAD_POOL_H_
#define SRC_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace lsg {

class ThreadPool {
 public:
  // Creates `num_threads` total workers (including the calling thread, which
  // participates in every ParallelFor). num_threads == 0 means hardware
  // concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Process-wide default pool sized to hardware concurrency.
  static ThreadPool& Global();

  // Runs f(i) for every i in [begin, end). Blocks until all iterations
  // complete. `grain` is the self-scheduling chunk size (0 = auto).
  template <typename F>
  void ParallelFor(size_t begin, size_t end, F&& f, size_t grain = 0) {
    ParallelForChunked(
        begin, end,
        [&f](size_t lo, size_t hi, size_t /*tid*/) {
          for (size_t i = lo; i < hi; ++i) {
            f(i);
          }
        },
        grain);
  }

  // Runs f(chunk_begin, chunk_end, thread_id) over a partition of
  // [begin, end). thread_id is in [0, num_threads()).
  //
  // The callable is routed through a type-erased pointer + trampoline
  // instead of a std::function, so hot loops (EdgeMap, batch apply) pay no
  // per-call heap allocation. The callable outlives the job: RunJob blocks
  // until every chunk has executed.
  template <typename F>
  void ParallelForChunked(size_t begin, size_t end, F&& f, size_t grain = 0) {
    if (begin >= end) {
      return;
    }
    size_t n = end - begin;
    if (num_threads_ == 1 || n == 1) {
      f(begin, end, 0);
      return;
    }
    if (grain == 0) {
      grain = std::max<size_t>(1, n / (num_threads_ * 8));
    }
    RunJob(begin, end, grain, &Trampoline<std::remove_reference_t<F>>,
           const_cast<void*>(
               static_cast<const void*>(std::addressof(f))));
  }

 private:
  // Type-erased job body: fn(ctx, chunk_begin, chunk_end, thread_id).
  using JobFn = void (*)(void* ctx, size_t lo, size_t hi, size_t tid);

  template <typename F>
  static void Trampoline(void* ctx, size_t lo, size_t hi, size_t tid) {
    (*static_cast<F*>(ctx))(lo, hi, tid);
  }

  void RunJob(size_t begin, size_t end, size_t grain, JobFn fn, void* ctx);
  void WorkerLoop(size_t tid);
  void ExecuteChunks(size_t tid);

  const size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  uint64_t job_generation_ = 0;
  bool shutting_down_ = false;

  // Current job state (valid while workers_active_ > 0).
  JobFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  size_t job_end_ = 0;
  size_t job_grain_ = 1;
  std::atomic<size_t> next_index_{0};
  std::atomic<size_t> workers_active_{0};
};

// Convenience wrappers over the global pool.
template <typename F>
void ParallelFor(size_t begin, size_t end, F&& f, size_t grain = 0) {
  ThreadPool::Global().ParallelFor(begin, end, std::forward<F>(f), grain);
}

}  // namespace lsg

#endif  // SRC_PARALLEL_THREAD_POOL_H_
