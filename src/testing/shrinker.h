// Delta-debugging trace minimizer: given a trace on which the differential
// runner reports a divergence, produce the smallest trace (usually a
// handful of ops) that still diverges, suitable for serializing as a
// replay file.
#ifndef SRC_TESTING_SHRINKER_H_
#define SRC_TESTING_SHRINKER_H_

#include "src/testing/differential.h"
#include "src/testing/trace.h"

namespace lsg {

// Returns a minimized trace that still diverges under (config, factory).
// If the input does not diverge, it is returned unchanged. Deterministic:
// the same inputs always shrink to the same trace.
Trace MinimizeTrace(const Trace& trace, const RunConfig& config,
                    const AdapterFactory& factory);

}  // namespace lsg

#endif  // SRC_TESTING_SHRINKER_H_
