#include "src/testing/trace.h"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace lsg {
namespace {

constexpr char kMagic[] = "lsgfuzz 1";

char OpChar(TraceOpKind kind) {
  switch (kind) {
    case TraceOpKind::kInsert:
      return 'i';
    case TraceOpKind::kDelete:
      return 'd';
    case TraceOpKind::kInsertBatch:
      return 'I';
    case TraceOpKind::kDeleteBatch:
      return 'D';
    case TraceOpKind::kBuild:
      return 'B';
    case TraceOpKind::kAddVertices:
      return 'a';
    case TraceOpKind::kHasEdge:
      return 'q';
    case TraceOpKind::kDegree:
      return 'g';
    case TraceOpKind::kSnapshot:
      return 's';
    case TraceOpKind::kAudit:
      return 'c';
    case TraceOpKind::kBfs:
      return 'b';
    case TraceOpKind::kComponents:
      return 'k';
    case TraceOpKind::kPin:
      return 'P';
    case TraceOpKind::kRelease:
      return 'R';
  }
  return '?';
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

std::string SerializeTrace(const Trace& trace) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "v " << trace.initial_vertices << '\n';
  for (const TraceOp& op : trace.ops) {
    switch (op.kind) {
      case TraceOpKind::kInsert:
      case TraceOpKind::kDelete:
      case TraceOpKind::kHasEdge:
        out << OpChar(op.kind) << ' ' << op.u << ' ' << op.v << '\n';
        break;
      case TraceOpKind::kInsertBatch:
      case TraceOpKind::kDeleteBatch:
      case TraceOpKind::kBuild:
        out << OpChar(op.kind) << ' ' << op.edges.size() << '\n';
        for (const Edge& e : op.edges) {
          out << "e " << e.src << ' ' << e.dst << '\n';
        }
        break;
      case TraceOpKind::kAddVertices:
      case TraceOpKind::kDegree:
      case TraceOpKind::kBfs:
        out << OpChar(op.kind) << ' ' << op.u << '\n';
        break;
      case TraceOpKind::kSnapshot:
      case TraceOpKind::kAudit:
      case TraceOpKind::kComponents:
      case TraceOpKind::kPin:
      case TraceOpKind::kRelease:
        out << OpChar(op.kind) << '\n';
        break;
    }
  }
  return out.str();
}

bool ParseTrace(const std::string& text, Trace* out, std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Fail(error, "bad or missing header (expected 'lsgfuzz 1')");
  }
  Trace trace;
  bool saw_vertices = false;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    char c = 0;
    ls >> c;
    auto bad = [&](const char* why) {
      return Fail(error,
                  "line " + std::to_string(line_no) + ": " + why + ": " + line);
    };
    if (c == 'v') {
      if (saw_vertices) {
        return bad("duplicate vertex-count line");
      }
      if (!(ls >> trace.initial_vertices)) {
        return bad("malformed vertex count");
      }
      saw_vertices = true;
      continue;
    }
    if (!saw_vertices) {
      return bad("op before vertex-count line");
    }
    TraceOp op;
    switch (c) {
      case 'i':
      case 'd':
      case 'q': {
        op.kind = c == 'i'   ? TraceOpKind::kInsert
                  : c == 'd' ? TraceOpKind::kDelete
                             : TraceOpKind::kHasEdge;
        if (!(ls >> op.u >> op.v)) {
          return bad("expected two endpoints");
        }
        break;
      }
      case 'I':
      case 'D':
      case 'B': {
        op.kind = c == 'I'   ? TraceOpKind::kInsertBatch
                  : c == 'D' ? TraceOpKind::kDeleteBatch
                             : TraceOpKind::kBuild;
        uint64_t count = 0;
        if (!(ls >> count)) {
          return bad("expected edge count");
        }
        op.edges.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          if (!std::getline(in, line)) {
            return Fail(error, "truncated batch payload");
          }
          ++line_no;
          std::istringstream es(line);
          char e = 0;
          Edge edge;
          if (!(es >> e >> edge.src >> edge.dst) || e != 'e') {
            return bad("expected 'e src dst' payload line");
          }
          op.edges.push_back(edge);
        }
        break;
      }
      case 'a':
      case 'g':
      case 'b': {
        op.kind = c == 'a'   ? TraceOpKind::kAddVertices
                  : c == 'g' ? TraceOpKind::kDegree
                             : TraceOpKind::kBfs;
        if (!(ls >> op.u)) {
          return bad("expected one operand");
        }
        break;
      }
      case 's':
        op.kind = TraceOpKind::kSnapshot;
        break;
      case 'c':
        op.kind = TraceOpKind::kAudit;
        break;
      case 'k':
        op.kind = TraceOpKind::kComponents;
        break;
      case 'P':
        op.kind = TraceOpKind::kPin;
        break;
      case 'R':
        op.kind = TraceOpKind::kRelease;
        break;
      case 'e':
        return bad("stray edge line outside a batch");
      default:
        return bad("unknown op");
    }
    trace.ops.push_back(std::move(op));
  }
  if (!saw_vertices) {
    return Fail(error, "missing vertex-count line");
  }
  *out = std::move(trace);
  return true;
}

bool WriteTraceFile(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << SerializeTrace(trace);
  return static_cast<bool>(out);
}

bool ReadTraceFile(const std::string& path, Trace* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Fail(error, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTrace(buf.str(), out, error);
}

}  // namespace lsg
