// Seed-driven trace generator: a weighted op mix with skewed endpoint
// selection (hub-biased, so traces push vertices through the inline ->
// array -> RIA -> HITree transitions) plus a small rate of deliberately
// out-of-range endpoints exercising the endpoint-validation policy.
// Identical (seed, config) always yields an identical trace.
#ifndef SRC_TESTING_GENERATOR_H_
#define SRC_TESTING_GENERATOR_H_

#include <cstdint>

#include "src/testing/trace.h"

namespace lsg {

struct GeneratorConfig {
  uint32_t num_ops = 10000;
  VertexId initial_vertices = 96;
  uint32_t max_batch = 512;

  // Per-mille rate of endpoints intentionally past num_vertices().
  uint32_t oob_per_mille = 25;
};

Trace GenerateTrace(uint64_t seed, const GeneratorConfig& config);

}  // namespace lsg

#endif  // SRC_TESTING_GENERATOR_H_
