// Lockstep differential executor: runs one trace against a cohort of
// engine adapters (slot 0 = reference oracle) and reports the first
// divergence — mismatched return values, query results, counters, failed
// invariants, or a memory-accounting violation.
#ifndef SRC_TESTING_DIFFERENTIAL_H_
#define SRC_TESTING_DIFFERENTIAL_H_

#include <cstddef>
#include <string>

#include "src/testing/adapters.h"
#include "src/testing/trace.h"

namespace lsg {

struct RunConfig {
  // Thread-pool size the engines run their batch paths on. Results must be
  // identical for any value (batch apply is deterministic per vertex).
  int threads = 1;

  // Run the invariant/counter audit every N ops (0 = only at trace end).
  uint32_t audit_interval = 256;

  // When set, audits additionally check LSGraph's live footprint against a
  // fresh rebuild of the same content: live <= slack * fresh + slack_bytes.
  // Catches delete paths that retain instead of release.
  bool memory_audit = false;
  double memory_slack = 3.0;
  size_t memory_slack_bytes = size_t{1} << 16;
};

struct Divergence {
  bool found = false;
  size_t op_index = 0;   // index into trace.ops (ops.size() = end-of-trace)
  std::string engine;    // adapter that disagreed with the oracle
  std::string message;

  explicit operator bool() const { return found; }
};

// Executes the trace op-by-op against factory(trace.initial_vertices) and
// returns the first divergence (or .found == false). Deterministic for a
// given trace/config/factory.
Divergence RunTrace(const Trace& trace, const RunConfig& config,
                    const AdapterFactory& factory);

// Default cohort: reference + all four engines.
Divergence RunTrace(const Trace& trace, const RunConfig& config);

}  // namespace lsg

#endif  // SRC_TESTING_DIFFERENTIAL_H_
