// Deterministic operation traces for the differential fuzz harness.
//
// A trace is the unit the fuzzer generates, executes, shrinks, and replays:
// an initial vertex count plus a flat op list. The serialized form is a
// line-oriented text format (see DESIGN.md "Differential fuzzing") chosen so
// that minimized failure traces are human-readable and diffable, and so a
// replay file re-executes byte-for-byte deterministically — nothing in a
// trace depends on wall-clock time or global RNG state.
#ifndef SRC_TESTING_TRACE_H_
#define SRC_TESTING_TRACE_H_

#include <string>
#include <vector>

#include "src/util/graph_types.h"

namespace lsg {

enum class TraceOpKind : uint8_t {
  kInsert,       // i src dst      single-edge insert
  kDelete,       // d src dst      single-edge delete
  kInsertBatch,  // I n + n edge lines   prepared batch insert
  kDeleteBatch,  // D n + n edge lines   prepared batch delete
  kBuild,        // B n + n edge lines   BuildFromEdges re-build
  kAddVertices,  // a count        grow the vertex set
  kHasEdge,      // q src dst      membership probe
  kDegree,       // g v            degree probe
  kSnapshot,     // s              full adjacency dump compare
  kAudit,        // c              invariants + counters (+ memory) audit
  kBfs,          // b source       BFS level compare
  kComponents,   // k              connected-components compare
  kPin,          // P              pin a snapshot (engines that support it)
  kRelease,      // R              compare pinned state, release newest pin
};

struct TraceOp {
  TraceOpKind kind;
  // Endpoints for edge/probe ops; u doubles as the count for kAddVertices
  // and the source for kBfs.
  VertexId u = 0;
  VertexId v = 0;
  std::vector<Edge> edges;  // payload for kInsertBatch/kDeleteBatch/kBuild

  friend bool operator==(const TraceOp&, const TraceOp&) = default;

  static TraceOp Of(TraceOpKind kind) {
    TraceOp op;
    op.kind = kind;
    return op;
  }
};

struct Trace {
  VertexId initial_vertices = 0;
  std::vector<TraceOp> ops;

  friend bool operator==(const Trace&, const Trace&) = default;
};

// Text round-trip: Parse(Serialize(t)) == t, and Serialize is canonical
// (Serialize(Parse(s)) == Serialize-normalized s), so replay files compare
// byte-for-byte.
std::string SerializeTrace(const Trace& trace);

// Returns false (and sets *error when non-null) on malformed input.
bool ParseTrace(const std::string& text, Trace* out,
                std::string* error = nullptr);

// File convenience wrappers; return false on I/O or parse failure.
bool WriteTraceFile(const std::string& path, const Trace& trace);
bool ReadTraceFile(const std::string& path, Trace* out,
                   std::string* error = nullptr);

}  // namespace lsg

#endif  // SRC_TESTING_TRACE_H_
