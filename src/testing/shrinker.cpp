#include "src/testing/shrinker.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace lsg {
namespace {

// Zeller's ddmin, complement-reduction form: repeatedly try dropping one of
// n chunks; on success restart at the coarsest useful granularity. pred
// returns true when the candidate still fails.
template <typename T, typename Pred>
std::vector<T> Ddmin(std::vector<T> items, const Pred& pred) {
  size_t n = 2;
  while (items.size() >= 2 && n <= items.size()) {
    size_t chunk = (items.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < items.size(); start += chunk) {
      std::vector<T> candidate;
      candidate.reserve(items.size());
      candidate.insert(candidate.end(), items.begin(), items.begin() + start);
      candidate.insert(candidate.end(),
                       items.begin() + std::min(start + chunk, items.size()),
                       items.end());
      if (!candidate.empty() && pred(candidate)) {
        items = std::move(candidate);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= items.size()) {
        break;
      }
      n = std::min(items.size(), n * 2);
    }
  }
  return items;
}

bool IsBatchKind(TraceOpKind kind) {
  return kind == TraceOpKind::kInsertBatch ||
         kind == TraceOpKind::kDeleteBatch || kind == TraceOpKind::kBuild;
}

}  // namespace

Trace MinimizeTrace(const Trace& trace, const RunConfig& config,
                    const AdapterFactory& factory) {
  Divergence first = RunTrace(trace, config, factory);
  if (!first) {
    return trace;
  }

  // Ops past the divergence point cannot have contributed. The trailing
  // snapshot+audit pair is pinned onto every candidate so divergences that
  // were originally caught by a (possibly dropped) probe or periodic audit
  // stay detectable after shrinking.
  Trace base = trace;
  if (first.op_index + 1 < base.ops.size()) {
    base.ops.resize(first.op_index + 1);
  }
  const std::vector<TraceOp> tail = {TraceOp::Of(TraceOpKind::kSnapshot),
                                     TraceOp::Of(TraceOpKind::kAudit)};

  auto fails = [&](const std::vector<TraceOp>& ops) {
    Trace candidate;
    candidate.initial_vertices = base.initial_vertices;
    candidate.ops = ops;
    candidate.ops.insert(candidate.ops.end(), tail.begin(), tail.end());
    return static_cast<bool>(RunTrace(candidate, config, factory));
  };

  std::vector<TraceOp> ops = base.ops;
  if (!fails(ops)) {
    // Divergence detectable only with the original op sequence (e.g. a
    // probe-result mismatch that leaves no state behind): keep it whole.
    return base;
  }
  ops = Ddmin(std::move(ops), fails);

  // Second phase: shrink each surviving batch payload with the same ddmin,
  // holding the rest of the trace fixed.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!IsBatchKind(ops[i].kind) || ops[i].edges.size() < 2) {
      continue;
    }
    ops[i].edges = Ddmin(std::move(ops[i].edges), [&](
                             const std::vector<Edge>& edges) {
      std::vector<TraceOp> candidate = ops;
      candidate[i].edges = edges;
      return fails(candidate);
    });
  }

  // Final greedy pass: single-op removals unlocked by the payload shrinks.
  for (size_t i = ops.size(); i-- > 0;) {
    std::vector<TraceOp> candidate = ops;
    candidate.erase(candidate.begin() + i);
    if (!candidate.empty() && fails(candidate)) {
      ops = std::move(candidate);
    }
  }

  Trace minimized;
  minimized.initial_vertices = base.initial_vertices;
  minimized.ops = std::move(ops);
  minimized.ops.insert(minimized.ops.end(), tail.begin(), tail.end());
  return minimized;
}

}  // namespace lsg
