#include "src/testing/differential.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <sstream>
#include <vector>

namespace lsg {
namespace {

constexpr uint32_t kUnreached = ~uint32_t{0};

// Serial BFS over an adapter's out-edges; the comparison target is the
// level vector, which is independent of traversal order.
std::vector<uint32_t> BfsLevels(const EngineAdapter& g, VertexId source) {
  std::vector<uint32_t> level(g.NumVertices(), kUnreached);
  std::deque<VertexId> queue{source};
  level[source] = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.Neighbors(u)) {
      if (level[v] == kUnreached) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return level;
}

// Weakly-connected components via union-find over the dumped edge set;
// labels are normalized to the smallest vertex id in each component.
std::vector<VertexId> ComponentLabels(const EngineAdapter& g) {
  VertexId n = g.NumVertices();
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), VertexId{0});
  auto find = [&parent](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.Neighbors(v)) {
      VertexId a = find(v);
      VertexId b = find(u);
      if (a != b) {
        parent[std::max(a, b)] = std::min(a, b);
      }
    }
  }
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v] = find(v);
  }
  return label;
}

// Engines attempt each distinct batch edge exactly once (PrepareBatch
// dedups), so the oracle's batch results are only comparable after the
// same normalization.
std::vector<Edge> DedupBatch(const std::vector<Edge>& edges) {
  std::vector<Edge> out = edges;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

class Runner {
 public:
  Runner(const Trace& trace, const RunConfig& config,
         const AdapterFactory& factory)
      : trace_(trace), config_(config), pool_(config.threads) {
    adapters_ = factory(trace.initial_vertices, &pool_);
  }

  Divergence Run() {
    for (size_t idx = 0; idx < trace_.ops.size(); ++idx) {
      if (Step(idx, trace_.ops[idx])) {
        return result_;
      }
      if (config_.audit_interval != 0 &&
          (idx + 1) % config_.audit_interval == 0 && Audit(idx)) {
        return result_;
      }
    }
    if (Audit(trace_.ops.size())) {
      return result_;
    }
    // Traces need not balance their pins; drain (and check) the leftovers
    // so a pin held to end-of-trace is still compared once.
    while (oracle().NumPins() != 0) {
      if (Release(trace_.ops.size())) {
        return result_;
      }
    }
    return Divergence{};
  }

 private:
  EngineAdapter& oracle() { return *adapters_[0]; }

  bool Diverged(size_t idx, const EngineAdapter& engine,
                const std::string& message) {
    result_.found = true;
    result_.op_index = idx;
    result_.engine = std::string(engine.name());
    result_.message = message;
    return true;
  }

  template <typename T>
  bool CompareAll(size_t idx, const char* what,
                  const std::function<T(EngineAdapter&)>& probe) {
    T want = probe(oracle());
    for (size_t i = 1; i < adapters_.size(); ++i) {
      T got = probe(*adapters_[i]);
      if (got != want) {
        std::ostringstream msg;
        msg << what << " mismatch";
        if constexpr (std::is_arithmetic_v<T>) {
          msg << ": got " << +got << ", oracle " << +want;
        }
        return Diverged(idx, *adapters_[i], msg.str());
      }
    }
    return false;
  }

  bool Step(size_t idx, const TraceOp& op) {
    switch (op.kind) {
      case TraceOpKind::kInsert:
        return CompareAll<bool>(idx, "InsertEdge", [&op](EngineAdapter& a) {
          return a.InsertEdge(op.u, op.v);
        });
      case TraceOpKind::kDelete:
        return CompareAll<bool>(idx, "DeleteEdge", [&op](EngineAdapter& a) {
          return a.DeleteEdge(op.u, op.v);
        });
      case TraceOpKind::kInsertBatch: {
        std::vector<Edge> deduped = DedupBatch(op.edges);
        return CompareAll<size_t>(
            idx, "InsertBatch", [&op, &deduped, this](EngineAdapter& a) {
              return &a == &oracle() ? a.InsertBatch(deduped)
                                     : a.InsertBatch(op.edges);
            });
      }
      case TraceOpKind::kDeleteBatch: {
        std::vector<Edge> deduped = DedupBatch(op.edges);
        return CompareAll<size_t>(
            idx, "DeleteBatch", [&op, &deduped, this](EngineAdapter& a) {
              return &a == &oracle() ? a.DeleteBatch(deduped)
                                     : a.DeleteBatch(op.edges);
            });
      }
      case TraceOpKind::kBuild:
        for (auto& a : adapters_) {
          a->BuildFromEdges(op.edges);
        }
        return false;
      case TraceOpKind::kAddVertices:
        return CompareAll<VertexId>(
            idx, "AddVertices",
            [&op](EngineAdapter& a) { return a.AddVertices(op.u); });
      case TraceOpKind::kHasEdge:
        return CompareAll<bool>(idx, "HasEdge", [&op](EngineAdapter& a) {
          return a.HasEdge(op.u, op.v);
        });
      case TraceOpKind::kDegree:
        if (op.u >= oracle().NumVertices()) {
          return false;  // policy: probes of unknown vertices are skipped
        }
        return CompareAll<size_t>(
            idx, "degree", [&op](EngineAdapter& a) { return a.Degree(op.u); });
      case TraceOpKind::kSnapshot:
        return Snapshot(idx);
      case TraceOpKind::kAudit:
        return Audit(idx);
      case TraceOpKind::kBfs:
        if (op.u >= oracle().NumVertices()) {
          return false;
        }
        return CompareAll<std::vector<uint32_t>>(
            idx, "BFS levels",
            [&op](EngineAdapter& a) { return BfsLevels(a, op.u); });
      case TraceOpKind::kComponents:
        return CompareAll<std::vector<VertexId>>(
            idx, "component labels",
            [](EngineAdapter& a) { return ComponentLabels(a); });
      case TraceOpKind::kPin:
        for (auto& a : adapters_) {
          if (a->SupportsPin()) {
            a->Pin();
          }
        }
        return false;
      case TraceOpKind::kRelease:
        if (oracle().NumPins() == 0) {
          return false;  // unbalanced release is a no-op by policy
        }
        return Release(idx);
    }
    return false;
  }

  // Compares the newest pinned view of every snapshot-capable engine
  // against the oracle's frozen copy, then pops the pin everywhere. The
  // pinned adjacency must be byte-identical no matter how many mutations
  // ran after the pin.
  bool Release(size_t idx) {
    VertexId n = oracle().PinnedNumVertices();
    for (size_t i = 1; i < adapters_.size(); ++i) {
      EngineAdapter& a = *adapters_[i];
      if (!a.SupportsPin()) {
        continue;
      }
      if (a.PinnedNumVertices() != n) {
        std::ostringstream msg;
        msg << "pinned num_vertices mismatch: got " << a.PinnedNumVertices()
            << ", oracle " << n;
        return Diverged(idx, a, msg.str());
      }
      for (VertexId v = 0; v < n; ++v) {
        std::vector<VertexId> want = oracle().PinnedNeighbors(v);
        std::vector<VertexId> got = a.PinnedNeighbors(v);
        if (got != want) {
          std::ostringstream msg;
          msg << "pinned adjacency mismatch at vertex " << v << ": |got| "
              << got.size() << ", |oracle| " << want.size();
          return Diverged(idx, a, msg.str());
        }
      }
    }
    for (auto& a : adapters_) {
      if (a->SupportsPin()) {
        a->ReleasePin();
      }
    }
    return false;
  }

  bool Snapshot(size_t idx) {
    VertexId n = oracle().NumVertices();
    for (size_t i = 1; i < adapters_.size(); ++i) {
      EngineAdapter& a = *adapters_[i];
      if (a.NumVertices() != n) {
        std::ostringstream msg;
        msg << "num_vertices mismatch: got " << a.NumVertices() << ", oracle "
            << n;
        return Diverged(idx, a, msg.str());
      }
      for (VertexId v = 0; v < n; ++v) {
        std::vector<VertexId> want = oracle().Neighbors(v);
        std::vector<VertexId> got = a.Neighbors(v);
        if (got != want) {
          std::ostringstream msg;
          msg << "adjacency mismatch at vertex " << v << ": |got| "
              << got.size() << ", |oracle| " << want.size();
          return Diverged(idx, a, msg.str());
        }
      }
    }
    return false;
  }

  bool Audit(size_t idx) {
    for (size_t i = 1; i < adapters_.size(); ++i) {
      EngineAdapter& a = *adapters_[i];
      if (a.NumVertices() != oracle().NumVertices()) {
        return Diverged(idx, a, "audit: num_vertices mismatch");
      }
      if (a.NumEdges() != oracle().NumEdges()) {
        std::ostringstream msg;
        msg << "audit: num_edges mismatch: got " << a.NumEdges()
            << ", oracle " << oracle().NumEdges();
        return Diverged(idx, a, msg.str());
      }
      if (a.OobRejected() != oracle().OobRejected()) {
        std::ostringstream msg;
        msg << "audit: oob_rejected mismatch: got " << a.OobRejected()
            << ", oracle " << oracle().OobRejected();
        return Diverged(idx, a, msg.str());
      }
      if (!a.CheckInvariants()) {
        return Diverged(idx, a, "audit: CheckInvariants failed");
      }
      if (config_.memory_audit) {
        size_t fresh = a.FreshFootprint();
        if (fresh != 0) {
          size_t live = a.LiveFootprint();
          size_t bound = static_cast<size_t>(
                             config_.memory_slack * static_cast<double>(fresh)) +
                         config_.memory_slack_bytes;
          if (live > bound) {
            std::ostringstream msg;
            msg << "audit: footprint retention: live " << live
                << " bytes exceeds " << config_.memory_slack
                << " * fresh (" << fresh << ") + " << config_.memory_slack_bytes;
            return Diverged(idx, a, msg.str());
          }
        }
      }
    }
    return false;
  }

  const Trace& trace_;
  const RunConfig& config_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<EngineAdapter>> adapters_;
  Divergence result_;
};

}  // namespace

Divergence RunTrace(const Trace& trace, const RunConfig& config,
                    const AdapterFactory& factory) {
  return Runner(trace, config, factory).Run();
}

Divergence RunTrace(const Trace& trace, const RunConfig& config) {
  return RunTrace(trace, config, [](VertexId n, ThreadPool* pool) {
    return MakeDefaultAdapters(n, pool);
  });
}

}  // namespace lsg
