#include "src/testing/generator.h"

#include <algorithm>

#include "src/util/prng.h"

namespace lsg {
namespace {

class TraceBuilder {
 public:
  TraceBuilder(uint64_t seed, const GeneratorConfig& config)
      : rng_(MixSeed(seed, 0)), config_(config) {
    trace_.initial_vertices = config.initial_vertices;
    num_vertices_ = config.initial_vertices;
  }

  Trace Build() {
    for (uint32_t i = 0; i < config_.num_ops; ++i) {
      Emit();
    }
    // Every trace ends with a full content comparison plus audit, so even
    // an all-mutation trace is checked.
    trace_.ops.push_back(TraceOp::Of(TraceOpKind::kSnapshot));
    trace_.ops.push_back(TraceOp::Of(TraceOpKind::kAudit));
    return std::move(trace_);
  }

 private:
  // Hub-skewed vertex pick: squaring the uniform variate concentrates mass
  // on low ids, so a handful of vertices accumulate the high degrees that
  // drive representation transitions.
  VertexId PickVertex() {
    if (rng_.NextBounded(1000) < config_.oob_per_mille) {
      return num_vertices_ + static_cast<VertexId>(rng_.NextBounded(16));
    }
    double u = rng_.NextDouble();
    return static_cast<VertexId>(u * u * num_vertices_);
  }

  Edge PickEdge() { return Edge{PickVertex(), PickVertex()}; }

  std::vector<Edge> PickEdges(size_t count) {
    std::vector<Edge> edges;
    edges.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      edges.push_back(PickEdge());
    }
    return edges;
  }

  size_t PickBatchSize() {
    // Log-uniform in [1, max_batch]: small batches dominate but large ones
    // appear often enough to exercise the parallel apply paths.
    uint64_t bits = rng_.NextBounded(10);
    uint64_t hi = std::min<uint64_t>(config_.max_batch, uint64_t{1} << bits);
    return 1 + rng_.NextBounded(hi);
  }

  void Emit() {
    uint64_t roll = rng_.NextBounded(1000);
    TraceOp op;
    if (roll < 300) {
      op.kind = TraceOpKind::kInsert;
      op.u = PickVertex();
      op.v = PickVertex();
    } else if (roll < 450) {
      op.kind = TraceOpKind::kDelete;
      op.u = PickVertex();
      op.v = PickVertex();
    } else if (roll < 570) {
      op.kind = TraceOpKind::kInsertBatch;
      op.edges = PickEdges(PickBatchSize());
    } else if (roll < 630) {
      op.kind = TraceOpKind::kDeleteBatch;
      op.edges = PickEdges(PickBatchSize());
    } else if (roll < 650) {
      op.kind = TraceOpKind::kBuild;
      op.edges = PickEdges(PickBatchSize());
    } else if (roll < 670) {
      op.kind = TraceOpKind::kAddVertices;
      op.u = 1 + static_cast<VertexId>(rng_.NextBounded(8));
      num_vertices_ += op.u;
    } else if (roll < 820) {
      op.kind = TraceOpKind::kHasEdge;
      op.u = PickVertex();
      op.v = PickVertex();
    } else if (roll < 900) {
      op.kind = TraceOpKind::kDegree;
      op.u = PickVertex();
    } else if (roll < 920) {
      op.kind = TraceOpKind::kSnapshot;
    } else if (roll < 945) {
      // Pin a snapshot; cap the nesting so a pin-heavy roll sequence can't
      // make every later mutation preserve unboundedly many versions.
      if (pin_depth_ < 4) {
        op.kind = TraceOpKind::kPin;
        ++pin_depth_;
      } else {
        op.kind = TraceOpKind::kRelease;
        --pin_depth_;
      }
    } else if (roll < 965) {
      // Releases may be unbalanced (a no-op by runner policy).
      op.kind = TraceOpKind::kRelease;
      if (pin_depth_ > 0) {
        --pin_depth_;
      }
    } else if (roll < 980) {
      op.kind = TraceOpKind::kAudit;
    } else if (roll < 992) {
      op.kind = TraceOpKind::kBfs;
      op.u = PickVertex();
    } else {
      op.kind = TraceOpKind::kComponents;
    }
    trace_.ops.push_back(std::move(op));
  }

  SplitMix64 rng_;
  GeneratorConfig config_;
  Trace trace_;
  VertexId num_vertices_;
  uint32_t pin_depth_ = 0;
};

}  // namespace

Trace GenerateTrace(uint64_t seed, const GeneratorConfig& config) {
  return TraceBuilder(seed, config).Build();
}

}  // namespace lsg
