#include "src/testing/adapters.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/baselines/ctree_graph.h"
#include "src/baselines/sortledton_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/engine_concept.h"
#include "src/core/lsgraph.h"
#include "src/service/router.h"
#include "src/service/shard_map.h"
#include "src/service/sharded_graph.h"

namespace lsg {
namespace {

// Every engine this harness wraps must satisfy the full concept — interface
// drift fails here, at compile time, instead of inside the fuzzer.
static_assert(StreamingEngine<LSGraph>);
static_assert(StreamingEngine<TerraceGraph>);
static_assert(StreamingEngine<AspenGraph>);
static_assert(StreamingEngine<PacTreeGraph>);
static_assert(StreamingEngine<SortledtonGraph>);

// std::set-backed oracle implementing the shared endpoint-validation policy
// (count and skip out-of-range edges) so the engines can be compared against
// it verbatim, rejects included.
class ReferenceAdapter : public EngineAdapter {
 public:
  explicit ReferenceAdapter(VertexId n) : adj_(n) {}

  std::string_view name() const override { return "reference"; }

  bool InsertEdge(VertexId src, VertexId dst) override {
    if (OutOfRange(src, dst)) {
      ++oob_rejected_;
      return false;
    }
    return adj_[src].insert(dst).second;
  }

  bool DeleteEdge(VertexId src, VertexId dst) override {
    if (OutOfRange(src, dst)) {
      ++oob_rejected_;
      return false;
    }
    return adj_[src].erase(dst) != 0;
  }

  size_t InsertBatch(std::span<const Edge> batch) override {
    size_t added = 0;
    for (const Edge& e : batch) {
      added += InsertEdge(e.src, e.dst);
    }
    return added;
  }

  size_t DeleteBatch(std::span<const Edge> batch) override {
    size_t removed = 0;
    for (const Edge& e : batch) {
      removed += DeleteEdge(e.src, e.dst);
    }
    return removed;
  }

  void BuildFromEdges(std::vector<Edge> edges) override {
    for (auto& s : adj_) {
      s.clear();
    }
    oob_rejected_ += RemoveOutOfRangeEdges(&edges, NumVertices());
    for (const Edge& e : edges) {
      adj_[e.src].insert(e.dst);
    }
  }

  VertexId AddVertices(VertexId count) override {
    VertexId first = NumVertices();
    adj_.resize(adj_.size() + count);
    return first;
  }

  bool HasEdge(VertexId src, VertexId dst) const override {
    if (OutOfRange(src, dst)) {
      return false;
    }
    return adj_[src].count(dst) != 0;
  }

  size_t Degree(VertexId v) const override { return adj_[v].size(); }
  VertexId NumVertices() const override {
    return static_cast<VertexId>(adj_.size());
  }
  EdgeCount NumEdges() const override {
    EdgeCount total = 0;
    for (const auto& s : adj_) {
      total += s.size();
    }
    return total;
  }
  uint64_t OobRejected() const override { return oob_rejected_; }

  std::vector<VertexId> Neighbors(VertexId v) const override {
    return {adj_[v].begin(), adj_[v].end()};
  }

  bool CheckInvariants() const override { return true; }

  // Pin = deep copy: the canonical frozen state later pins are diffed
  // against.
  bool SupportsPin() const override { return true; }
  size_t NumPins() const override { return pins_.size(); }
  void Pin() override { pins_.push_back(adj_); }
  void ReleasePin() override { pins_.pop_back(); }
  VertexId PinnedNumVertices() const override {
    return static_cast<VertexId>(pins_.back().size());
  }
  std::vector<VertexId> PinnedNeighbors(VertexId v) const override {
    const auto& adj = pins_.back();
    if (v >= adj.size()) {
      return {};
    }
    return {adj[v].begin(), adj[v].end()};
  }

 private:
  bool OutOfRange(VertexId src, VertexId dst) const {
    return src >= NumVertices() || dst >= NumVertices();
  }

  std::vector<std::set<VertexId>> adj_;
  std::vector<std::vector<std::set<VertexId>>> pins_;
  uint64_t oob_rejected_ = 0;
};

// One template wraps all four engines: they share the update/query surface
// by convention (the typed engine tests rely on the same shape).
template <typename G>
class GraphAdapter : public EngineAdapter {
 public:
  GraphAdapter(std::string_view name, std::unique_ptr<G> graph)
      : name_(name), graph_(std::move(graph)) {}

  std::string_view name() const override { return name_; }

  bool InsertEdge(VertexId src, VertexId dst) override {
    return graph_->InsertEdge(src, dst);
  }
  bool DeleteEdge(VertexId src, VertexId dst) override {
    return graph_->DeleteEdge(src, dst);
  }
  size_t InsertBatch(std::span<const Edge> batch) override {
    return graph_->InsertBatch(batch);
  }
  size_t DeleteBatch(std::span<const Edge> batch) override {
    return graph_->DeleteBatch(batch);
  }
  void BuildFromEdges(std::vector<Edge> edges) override {
    graph_->BuildFromEdges(std::move(edges));
  }
  VertexId AddVertices(VertexId count) override {
    return graph_->AddVertices(count);
  }

  bool HasEdge(VertexId src, VertexId dst) const override {
    return graph_->HasEdge(src, dst);
  }
  size_t Degree(VertexId v) const override { return graph_->degree(v); }
  VertexId NumVertices() const override { return graph_->num_vertices(); }
  EdgeCount NumEdges() const override { return graph_->num_edges(); }
  uint64_t OobRejected() const override { return graph_->oob_rejected(); }

  std::vector<VertexId> Neighbors(VertexId v) const override {
    std::vector<VertexId> out;
    graph_->map_neighbors(v, [&out](VertexId u) { out.push_back(u); });
    return out;
  }

  bool CheckInvariants() const override { return graph_->CheckInvariants(); }

  size_t LiveFootprint() const override { return graph_->memory_footprint(); }

 protected:
  G& graph() { return *graph_; }
  const G& graph() const { return *graph_; }

 private:
  std::string_view name_;
  std::unique_ptr<G> graph_;
};

// LSGraph additionally supports the memory audit: a freshly bulk-loaded
// engine with the same content is the footprint the live engine should stay
// within a constant factor of (delete paths must release, not retain).
class LSGraphAdapter : public GraphAdapter<LSGraph> {
 public:
  LSGraphAdapter(std::unique_ptr<LSGraph> graph, ThreadPool* pool,
                 std::string_view name = "lsgraph")
      : GraphAdapter(name, std::move(graph)), pool_(pool) {}

  size_t FreshFootprint() const override {
    std::vector<Edge> edges;
    for (VertexId v = 0; v < graph().num_vertices(); ++v) {
      graph().map_neighbors(
          v, [&edges, v](VertexId u) { edges.push_back(Edge{v, u}); });
    }
    LSGraph fresh(graph().num_vertices(), graph().options(), pool_);
    fresh.BuildFromEdges(std::move(edges));
    return fresh.memory_footprint();
  }

  // Pin = a real MVCC snapshot of the engine, compared against the
  // oracle's deep copy at every 'R' op.
  bool SupportsPin() const override { return true; }
  size_t NumPins() const override { return pins_.size(); }
  void Pin() override { pins_.push_back(graph().Snapshot()); }
  void ReleasePin() override { pins_.pop_back(); }
  VertexId PinnedNumVertices() const override {
    return pins_.back()->num_vertices();
  }
  std::vector<VertexId> PinnedNeighbors(VertexId v) const override {
    std::vector<VertexId> out;
    pins_.back()->map_neighbors(v, [&out](VertexId u) { out.push_back(u); });
    return out;
  }

 private:
  ThreadPool* pool_;
  // Declared after the base's engine member, so pins release before the
  // engine destructs (snapshots must not outlive their engine).
  std::vector<std::shared_ptr<const GraphSnapshot>> pins_;
};

// The sharded service stack as one cohort member. Every mutation is
// blocking (SubmitAndWait), so by the time an op returns the per-shard
// read views already reflect it and the point-read answers the runner
// compares are exact — the concurrency the service layer adds (queues,
// drainer threads, completions, view swaps) still all executes on every
// op, which is the point: differential traces through this adapter diff
// the entire routing/partitioning/pipeline machinery against std::set.
class ShardedAdapter : public EngineAdapter {
 public:
  ShardedAdapter(VertexId n, uint32_t shards, Options engine_options,
                 ThreadPool* pool, std::string_view name = "sharded")
      : name_(name) {
    ServiceOptions sopts;
    sopts.num_shards = shards;
    sopts.pool = pool;
    // Keep the fuzz cohort lean: one worker per shard engine.
    sopts.engine_threads = shards;
    sopts.engine = engine_options;
    graph_ = std::make_unique<ShardedGraph>(
        n, std::make_unique<HashShardMap>(shards), sopts);
    router_ = std::make_unique<Router>(*graph_);
  }

  std::string_view name() const override { return name_; }

  bool InsertEdge(VertexId src, VertexId dst) override {
    return graph_->SubmitAndWait(ShardedGraph::UpdateKind::kInsert,
                                 {Edge{src, dst}}) == 1;
  }
  bool DeleteEdge(VertexId src, VertexId dst) override {
    return graph_->SubmitAndWait(ShardedGraph::UpdateKind::kDelete,
                                 {Edge{src, dst}}) == 1;
  }
  size_t InsertBatch(std::span<const Edge> batch) override {
    return router_->InsertBatch(batch);
  }
  size_t DeleteBatch(std::span<const Edge> batch) override {
    return router_->DeleteBatch(batch);
  }
  void BuildFromEdges(std::vector<Edge> edges) override {
    graph_->BuildFromEdges(std::move(edges));
  }
  VertexId AddVertices(VertexId count) override {
    return graph_->AddVertices(count);
  }

  bool HasEdge(VertexId src, VertexId dst) const override {
    return router_->HasEdge(src, dst);
  }
  size_t Degree(VertexId v) const override { return router_->Degree(v); }
  VertexId NumVertices() const override { return graph_->num_vertices(); }
  EdgeCount NumEdges() const override { return graph_->num_edges(); }
  uint64_t OobRejected() const override { return graph_->oob_rejected(); }
  std::vector<VertexId> Neighbors(VertexId v) const override {
    return router_->Neighbors(v);
  }

  bool CheckInvariants() const override { return graph_->CheckInvariants(); }

  // Pin = every shard's current view, captured together. Mutations are
  // blocking and the runner is single-threaded, so the capture is one
  // consistent cut of the whole sharded graph.
  bool SupportsPin() const override { return true; }
  size_t NumPins() const override { return pins_.size(); }
  void Pin() override {
    std::vector<std::shared_ptr<const GraphSnapshot>> views;
    views.reserve(graph_->num_shards());
    for (uint32_t s = 0; s < graph_->num_shards(); ++s) {
      views.push_back(graph_->ReadView(s));
    }
    pins_.push_back(std::move(views));
  }
  void ReleasePin() override { pins_.pop_back(); }
  VertexId PinnedNumVertices() const override {
    return pins_.back().front()->num_vertices();
  }
  std::vector<VertexId> PinnedNeighbors(VertexId v) const override {
    const auto& views = pins_.back();
    uint32_t s = graph_->shard_map().ShardOf(v);
    std::vector<VertexId> out;
    views[s]->FillNeighbors(v, &out);
    return out;
  }

 private:
  std::string_view name_;
  std::unique_ptr<ShardedGraph> graph_;
  std::unique_ptr<Router> router_;
  // Declared last: pins release before the graph destructs (views must not
  // outlive their shard engines).
  std::vector<std::vector<std::shared_ptr<const GraphSnapshot>>> pins_;
};

// Deterministically buggy oracle wrapper for harness self-tests.
class DropInsertAdapter : public ReferenceAdapter {
 public:
  DropInsertAdapter(VertexId n, VertexId modulus, VertexId residue)
      : ReferenceAdapter(n), modulus_(modulus), residue_(residue) {}

  std::string_view name() const override { return "drop-insert"; }

  bool InsertEdge(VertexId src, VertexId dst) override {
    if (dst % modulus_ == residue_) {
      return false;  // injected bug: silently drops the edge
    }
    return ReferenceAdapter::InsertEdge(src, dst);
  }

 private:
  VertexId modulus_;
  VertexId residue_;
};

}  // namespace

std::vector<std::unique_ptr<EngineAdapter>> MakeDefaultAdapters(
    VertexId n, ThreadPool* pool) {
  std::vector<std::unique_ptr<EngineAdapter>> out;
  out.push_back(std::make_unique<ReferenceAdapter>(n));
  out.push_back(std::make_unique<LSGraphAdapter>(
      std::make_unique<LSGraph>(n, Options{}, pool), pool));
  // Compressed-leaf LSGraph, run lockstep against the same oracle so every
  // insert/delete/recompress path diffs against std::set. Shrunk thresholds
  // force a short trace through the whole ladder: CRIA -> HITree conversion
  // (m), Lia children whose leaves are CRIAs, and the delete-side
  // downgrades; a small block keeps redistributions/rebuilds frequent.
  Options cria_options;
  cria_options.compress_leaves = true;
  cria_options.m_threshold = 64;
  cria_options.cria_block_bytes = 32;
  out.push_back(std::make_unique<LSGraphAdapter>(
      std::make_unique<LSGraph>(n, cria_options, pool), pool, "lsgraph-cria"));
  out.push_back(std::make_unique<GraphAdapter<TerraceGraph>>(
      "terrace", std::make_unique<TerraceGraph>(n, TerraceOptions{}, pool)));
  out.push_back(std::make_unique<GraphAdapter<AspenGraph>>(
      "aspen", std::make_unique<AspenGraph>(n, pool)));
  out.push_back(std::make_unique<GraphAdapter<SortledtonGraph>>(
      "sortledton", std::make_unique<SortledtonGraph>(n, pool)));
  // The sharded service stack, small compressed-leaf engines behind the
  // router: 3 shards (odd, so hash placement is never trivially aligned
  // with the id space) with the same shrunk CRIA thresholds as above.
  out.push_back(std::make_unique<ShardedAdapter>(n, 3, cria_options, pool,
                                                 "sharded-cria"));
  return out;
}

std::unique_ptr<EngineAdapter> MakeReferenceAdapter(VertexId n) {
  return std::make_unique<ReferenceAdapter>(n);
}

std::unique_ptr<EngineAdapter> MakeDropInsertAdapter(VertexId n,
                                                     VertexId modulus,
                                                     VertexId residue) {
  return std::make_unique<DropInsertAdapter>(n, modulus, residue);
}

std::unique_ptr<EngineAdapter> MakeShardedAdapter(VertexId n, uint32_t shards,
                                                  bool compress_leaves,
                                                  ThreadPool* pool) {
  Options engine_options;
  engine_options.compress_leaves = compress_leaves;
  return std::make_unique<ShardedAdapter>(n, shards, engine_options, pool);
}

}  // namespace lsg
