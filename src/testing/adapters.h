// Type-erased engine adapters for the differential fuzz harness.
//
// Every engine under test (LSGraph, Terrace, Aspen, PaC-tree, Sortledton)
// plus a std::set-backed reference oracle is wrapped behind one virtual
// interface so the runner can drive them in lockstep and compare results
// op by op. Adapter 0 in a factory's output is always the oracle.
#ifndef SRC_TESTING_ADAPTERS_H_
#define SRC_TESTING_ADAPTERS_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/parallel/thread_pool.h"
#include "src/util/graph_types.h"

namespace lsg {

class EngineAdapter {
 public:
  virtual ~EngineAdapter() = default;

  virtual std::string_view name() const = 0;

  virtual bool InsertEdge(VertexId src, VertexId dst) = 0;
  virtual bool DeleteEdge(VertexId src, VertexId dst) = 0;
  virtual size_t InsertBatch(std::span<const Edge> batch) = 0;
  virtual size_t DeleteBatch(std::span<const Edge> batch) = 0;
  virtual void BuildFromEdges(std::vector<Edge> edges) = 0;
  virtual VertexId AddVertices(VertexId count) = 0;

  virtual bool HasEdge(VertexId src, VertexId dst) const = 0;
  virtual size_t Degree(VertexId v) const = 0;
  virtual VertexId NumVertices() const = 0;
  virtual EdgeCount NumEdges() const = 0;
  virtual uint64_t OobRejected() const = 0;
  virtual std::vector<VertexId> Neighbors(VertexId v) const = 0;

  virtual bool CheckInvariants() const = 0;

  // Snapshot-pin hooks (trace ops 'P'/'R'). Pins form a stack; the Pinned*
  // probes read the newest pin. Engines without snapshot support keep the
  // defaults and the runner skips them in pinned-state comparisons. The
  // oracle pins by deep-copying its state, LSGraph by a real Snapshot(),
  // so a 'R' compare proves the pinned view never moved while later trace
  // ops mutated the live graph.
  virtual bool SupportsPin() const { return false; }
  virtual size_t NumPins() const { return 0; }
  virtual void Pin() {}
  virtual void ReleasePin() {}
  virtual VertexId PinnedNumVertices() const { return 0; }
  virtual std::vector<VertexId> PinnedNeighbors(VertexId) const { return {}; }

  // Memory-accounting audit hooks. LiveFootprint() is the engine's current
  // self-reported footprint; FreshFootprint() builds a throwaway engine of
  // the same shape from the current edge set and reports its footprint.
  // Engines without meaningful accounting return 0 from both, which the
  // runner treats as "audit not supported".
  virtual size_t LiveFootprint() const { return 0; }
  virtual size_t FreshFootprint() const { return 0; }
};

// A factory builds the lockstep cohort for a given initial vertex count.
// Slot 0 must be the reference oracle.
using AdapterFactory =
    std::function<std::vector<std::unique_ptr<EngineAdapter>>(VertexId n,
                                                              ThreadPool* pool)>;

// Reference + all four engines (LSGraph, Terrace, Aspen, Sortledton; the
// PaC-tree configuration shares CTreeGraph's code paths with Aspen, so the
// default cohort runs one of the two).
std::vector<std::unique_ptr<EngineAdapter>> MakeDefaultAdapters(
    VertexId n, ThreadPool* pool);

// The std::set-backed oracle on its own (used as a building block and by
// the shrinker tests).
std::unique_ptr<EngineAdapter> MakeReferenceAdapter(VertexId n);

// Oracle wrapper with a deterministic injected bug: single-edge inserts of
// edges with dst % modulus == residue are silently dropped. Lets tests
// prove the harness detects divergence and the shrinker minimizes it,
// without un-fixing a real engine.
std::unique_ptr<EngineAdapter> MakeDropInsertAdapter(VertexId n,
                                                     VertexId modulus,
                                                     VertexId residue);

// The sharded service stack (ShardedGraph + Router, hash-partitioned over
// `shards` engines) as a cohort member: every trace op routes through the
// service layer — partitioning, per-shard queues, blocking completions,
// view refresh — so differential traces diff the whole serving machinery
// against the std::set oracle, not just a single engine. Pins capture all
// shard views at once (one consistent cut, since adapter mutations are
// blocking).
std::unique_ptr<EngineAdapter> MakeShardedAdapter(VertexId n, uint32_t shards,
                                                  bool compress_leaves,
                                                  ThreadPool* pool);

}  // namespace lsg

#endif  // SRC_TESTING_ADAPTERS_H_
