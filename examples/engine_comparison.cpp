// Side-by-side engine comparison on one workload — a miniature of the
// paper's whole evaluation, and a template for benchmarking your own
// workload against all four engines through the common engine concept.
//
//   ./engine_comparison [scale] [avg_degree]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/analytics/bfs.h"
#include "src/analytics/pagerank.h"
#include "src/baselines/ctree_graph.h"
#include "src/baselines/terrace_graph.h"
#include "src/core/lsgraph.h"
#include "src/gen/datasets.h"
#include "src/util/timer.h"

namespace {

using namespace lsg;

struct Report {
  double build_s;
  double insert_s;
  double bfs_s;
  double pr_s;
  double mem_mb;
};

template <typename G>
Report Evaluate(G& graph, const std::vector<Edge>& base,
                const std::vector<Edge>& batch, ThreadPool& pool) {
  Report r;
  Timer timer;
  graph.BuildFromEdges(base);
  r.build_s = timer.Seconds();
  timer.Reset();
  graph.InsertBatch(batch);
  r.insert_s = timer.Seconds();
  (void)Bfs(graph, 0, pool);  // warm caches / lazy indexes
  timer.Reset();
  (void)Bfs(graph, 0, pool);
  r.bfs_s = timer.Seconds();
  timer.Reset();
  (void)PageRank(graph, pool);
  r.pr_s = timer.Seconds();
  r.mem_mb = graph.memory_footprint() / 1e6;
  return r;
}

void Print(const char* name, const Report& r) {
  std::printf("%-9s build %7.3fs  batch-insert %7.3fs  BFS %7.4fs  PR %7.3fs"
              "  mem %8.2f MB\n",
              name, r.build_s, r.insert_s, r.bfs_s, r.pr_s, r.mem_mb);
}

}  // namespace

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 15;
  double avg_degree = argc > 2 ? std::atof(argv[2]) : 16.0;

  DatasetSpec spec{"demo", scale, avg_degree, 42};
  std::vector<Edge> base = BuildDatasetEdges(spec);
  std::vector<Edge> batch = BuildUpdateBatch(spec, base.size() / 4, 0);
  VertexId n = VertexId{1} << scale;
  std::printf("workload: %u vertices, %zu base edges, %zu-edge update batch\n",
              n, base.size(), batch.size());

  ThreadPool& pool = ThreadPool::Global();
  {
    LSGraph g(n);
    Print("LSGraph", Evaluate(g, base, batch, pool));
  }
  {
    TerraceGraph g(n);
    Print("Terrace", Evaluate(g, base, batch, pool));
  }
  {
    AspenGraph g(n);
    Print("Aspen", Evaluate(g, base, batch, pool));
  }
  {
    PacTreeGraph g(n);
    Print("PaC-tree", Evaluate(g, base, batch, pool));
  }
  return 0;
}
