// Quickstart: build a streaming graph, apply update batches, run analytics.
//
//   ./quickstart [edge_list.txt]
//
// Without an argument a small synthetic social-network-like graph is
// generated; with one, a SNAP-style "src dst" edge list is loaded.
#include <cstdio>
#include <string>
#include <vector>

#include "src/analytics/bfs.h"
#include "src/analytics/pagerank.h"
#include "src/core/lsgraph.h"
#include "src/gen/edge_io.h"
#include "src/gen/rmat.h"

int main(int argc, char** argv) {
  using namespace lsg;

  // 1. Get an edge list: from a file, or synthesized.
  std::vector<Edge> edges;
  VertexId num_vertices = 0;
  if (argc > 1) {
    edges = ReadEdgesText(argv[1]);
    for (const Edge& e : edges) {
      num_vertices = std::max({num_vertices, e.src + 1, e.dst + 1});
    }
  } else {
    RmatGenerator gen({/*scale=*/14, 0.5, 0.1, 0.1}, /*seed=*/1);
    edges = gen.Generate(0, 200000);
    num_vertices = gen.num_vertices();
  }
  std::printf("loaded %zu edges over %u vertices\n", edges.size(),
              num_vertices);

  // 2. Build the engine. Options{} gives the paper defaults
  //    (alpha = 1.2, M = 4096, cache-line blocks).
  LSGraph graph(num_vertices);
  graph.BuildFromEdges(edges);
  std::printf("graph built: %llu unique directed edges, %.2f MB\n",
              static_cast<unsigned long long>(graph.num_edges()),
              graph.memory_footprint() / 1e6);

  // 3. Stream updates: batches are sorted, grouped by source vertex, and
  //    applied in parallel, one vertex per thread.
  RmatGenerator updates({14, 0.5, 0.1, 0.1}, /*seed=*/2);
  std::vector<Edge> batch = updates.Generate(0, 50000);
  size_t added = graph.InsertBatch(batch);
  std::printf("streamed a batch of %zu updates: %zu new edges\n",
              batch.size(), added);

  // 4. Analytics on the live graph. Kernels are templates over the engine;
  //    the same code runs against the Terrace/Aspen/PaC-tree baselines.
  ThreadPool& pool = ThreadPool::Global();
  // Push-only: loaded edge lists are not necessarily symmetrized, and the
  // pull direction of the default auto-BFS assumes an undirected graph.
  BfsResult bfs = BfsPush(graph, /*source=*/0, pool);
  std::printf("BFS from vertex 0 reached %zu vertices\n", bfs.reached);

  std::vector<double> rank = PageRank(graph, pool);
  VertexId top = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (rank[v] > rank[top]) {
      top = v;
    }
  }
  std::printf("highest PageRank: vertex %u (score %.6f, degree %zu)\n", top,
              rank[top], graph.degree(top));

  // 5. Deletions use the same batched path.
  size_t removed = graph.DeleteBatch(batch);
  std::printf("deleted the streamed batch again: %zu edges removed (overlap with the base graph included)\n",
              removed);
  return 0;
}
