// Interactive graph shell: a line-oriented CLI over a live LSGraph, the
// fourth runnable example and a handy way to poke at the engine.
//
//   ./graph_cli [num_vertices]
//
// Commands (one per line; `help` prints this):
//   load <file>            load a text edge list (src dst per line)
//   gen <scale> <edges>    generate an rMat graph
//   add <src> <dst>        insert one edge
//   del <src> <dst>        delete one edge
//   has <src> <dst>        edge membership
//   deg <v>                degree of v
//   nbrs <v>               list v's neighbors (first 32)
//   bfs <src>              BFS reach + depth
//   pr                     top-5 PageRank vertices
//   cc                     number of connected components
//   tc                     triangle count
//   kcore                  maximum coreness
//   stats                  vertices / edges / memory
//   save <file>            write binary snapshot
//   quit
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/analytics/bfs.h"
#include "src/analytics/cc.h"
#include "src/analytics/kcore.h"
#include "src/analytics/pagerank.h"
#include "src/analytics/tc.h"
#include "src/core/lsgraph.h"
#include "src/gen/edge_io.h"
#include "src/gen/rmat.h"
#include "src/gen/snapshot.h"

namespace {

using namespace lsg;

void Help() {
  std::printf(
      "commands: load <file> | gen <scale> <edges> | add s d | del s d | "
      "has s d | deg v | nbrs v | bfs s | pr | cc | tc | kcore | stats | "
      "save <file> | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  VertexId n = argc > 1 ? std::atoi(argv[1]) : (1u << 16);
  LSGraph graph(n);
  ThreadPool& pool = ThreadPool::Global();
  std::printf("lsgraph shell: %u vertices. Type 'help'.\n", n);

  char line[512];
  while (std::printf("> "), std::fflush(stdout),
         std::fgets(line, sizeof(line), stdin) != nullptr) {
    char cmd[32] = {0};
    char arg1[256] = {0};
    unsigned long a = 0;
    unsigned long b = 0;
    if (std::sscanf(line, "%31s", cmd) != 1) {
      continue;
    }
    if (std::strcmp(cmd, "quit") == 0 || std::strcmp(cmd, "exit") == 0) {
      break;
    } else if (std::strcmp(cmd, "help") == 0) {
      Help();
    } else if (std::strcmp(cmd, "load") == 0 &&
               std::sscanf(line, "%*s %255s", arg1) == 1) {
      try {
        std::vector<Edge> edges = ReadEdgesText(arg1);
        size_t skipped = 0;
        std::erase_if(edges, [&](const Edge& e) {
          bool bad = e.src >= n || e.dst >= n;
          skipped += bad;
          return bad;
        });
        graph.BuildFromEdges(std::move(edges));
        std::printf("loaded; %llu edges (%zu out-of-range lines skipped)\n",
                    static_cast<unsigned long long>(graph.num_edges()),
                    skipped);
      } catch (const std::exception& e) {
        std::printf("error: %s\n", e.what());
      }
    } else if (std::strcmp(cmd, "gen") == 0 &&
               std::sscanf(line, "%*s %lu %lu", &a, &b) == 2) {
      int scale = static_cast<int>(a);
      if ((VertexId{1} << scale) > n) {
        std::printf("scale %d exceeds %u vertices\n", scale, n);
        continue;
      }
      RmatGenerator gen({scale, 0.5, 0.1, 0.1}, 1);
      graph.BuildFromEdges(gen.Generate(0, b));
      std::printf("generated; %llu unique edges\n",
                  static_cast<unsigned long long>(graph.num_edges()));
    } else if (std::strcmp(cmd, "add") == 0 &&
               std::sscanf(line, "%*s %lu %lu", &a, &b) == 2 && a < n &&
               b < n) {
      std::printf("%s\n", graph.InsertEdge(a, b) ? "added" : "already there");
    } else if (std::strcmp(cmd, "del") == 0 &&
               std::sscanf(line, "%*s %lu %lu", &a, &b) == 2 && a < n &&
               b < n) {
      std::printf("%s\n", graph.DeleteEdge(a, b) ? "deleted" : "not present");
    } else if (std::strcmp(cmd, "has") == 0 &&
               std::sscanf(line, "%*s %lu %lu", &a, &b) == 2 && a < n &&
               b < n) {
      std::printf("%s\n", graph.HasEdge(a, b) ? "yes" : "no");
    } else if (std::strcmp(cmd, "deg") == 0 &&
               std::sscanf(line, "%*s %lu", &a) == 1 && a < n) {
      std::printf("%zu\n", graph.degree(a));
    } else if (std::strcmp(cmd, "nbrs") == 0 &&
               std::sscanf(line, "%*s %lu", &a) == 1 && a < n) {
      size_t shown = 0;
      graph.map_neighbors(static_cast<VertexId>(a), [&shown](VertexId u) {
        if (shown < 32) {
          std::printf("%u ", u);
        }
        ++shown;
      });
      std::printf(shown > 32 ? "... (%zu total)\n" : "(%zu total)\n", shown);
    } else if (std::strcmp(cmd, "bfs") == 0 &&
               std::sscanf(line, "%*s %lu", &a) == 1 && a < n) {
      // Push-only: CLI edge lists are not necessarily symmetrized.
      BfsResult r = BfsPush(graph, static_cast<VertexId>(a), pool);
      uint32_t max_level = 0;
      for (uint32_t l : r.level) {
        if (l != ~uint32_t{0}) {
          max_level = std::max(max_level, l);
        }
      }
      std::printf("reached %zu vertices, eccentricity %u\n", r.reached,
                  max_level);
    } else if (std::strcmp(cmd, "pr") == 0) {
      std::vector<double> rank = PageRank(graph, pool);
      std::vector<VertexId> top;
      for (VertexId v = 0; v < n; ++v) {
        top.push_back(v);
        std::push_heap(top.begin(), top.end(), [&rank](VertexId x, VertexId y) {
          return rank[x] > rank[y];
        });
        if (top.size() > 5) {
          std::pop_heap(top.begin(), top.end(), [&rank](VertexId x, VertexId y) {
            return rank[x] > rank[y];
          });
          top.pop_back();
        }
      }
      std::sort(top.begin(), top.end(),
                [&rank](VertexId x, VertexId y) { return rank[x] > rank[y]; });
      for (VertexId v : top) {
        std::printf("v%u: %.6f (deg %zu)\n", v, rank[v], graph.degree(v));
      }
    } else if (std::strcmp(cmd, "cc") == 0) {
      // Push-only for the same reason as bfs: input may be directed.
      EdgeMapOptions push_only;
      push_only.direction = Direction::kPush;
      std::vector<VertexId> labels = ConnectedComponents(graph, pool, push_only);
      std::map<VertexId, size_t> sizes;
      for (VertexId v = 0; v < n; ++v) {
        ++sizes[labels[v]];
      }
      std::printf("%zu components (largest %zu)\n", sizes.size(),
                  std::max_element(sizes.begin(), sizes.end(),
                                   [](const auto& x, const auto& y) {
                                     return x.second < y.second;
                                   })
                      ->second);
    } else if (std::strcmp(cmd, "tc") == 0) {
      std::printf("%llu triangles\n",
                  static_cast<unsigned long long>(
                      TriangleCount(graph, pool).triangles));
    } else if (std::strcmp(cmd, "kcore") == 0) {
      EdgeMapOptions push_only;
      push_only.direction = Direction::kPush;
      std::vector<uint32_t> core = KCoreDecomposition(graph, pool, push_only);
      std::printf("max coreness %u\n",
                  *std::max_element(core.begin(), core.end()));
    } else if (std::strcmp(cmd, "stats") == 0) {
      std::printf("%u vertices, %llu edges, %.2f MB (%.2f%% index)\n", n,
                  static_cast<unsigned long long>(graph.num_edges()),
                  graph.memory_footprint() / 1e6,
                  100.0 * graph.index_bytes() /
                      std::max<size_t>(graph.memory_footprint(), 1));
    } else if (std::strcmp(cmd, "save") == 0 &&
               std::sscanf(line, "%*s %255s", arg1) == 1) {
      SaveSnapshot(graph, arg1);
      std::printf("saved to %s\n", arg1);
    } else {
      Help();
    }
  }
  return 0;
}
