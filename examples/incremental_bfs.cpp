// Incremental reachability monitoring: keep BFS levels from a source fresh
// while edges stream in. Demonstrates the incremental-computation pattern
// the paper cites as the reason AL-style random vertex access matters
// (§3.1): after each batch only the affected region is recomputed.
//
// After a batch of insertions, a vertex's level can only decrease. Seeding
// a frontier with the endpoints of inserted edges whose level improved and
// relaxing forward visits just the affected subgraph, instead of rerunning
// BFS from scratch.
//
//   ./incremental_bfs [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/analytics/bfs.h"
#include "src/core/edgemap.h"
#include "src/core/lsgraph.h"
#include "src/gen/rmat.h"
#include "src/util/timer.h"

namespace {

using namespace lsg;

// Relaxes levels forward from the seed frontier; returns vertices touched.
size_t IncrementalRelax(const LSGraph& g, std::vector<uint32_t>& level,
                        VertexSubset seeds, ThreadPool& pool) {
  size_t touched = 0;
  VertexSubset frontier = std::move(seeds);
  std::vector<std::atomic<uint32_t>> alevel(level.size());
  for (size_t v = 0; v < level.size(); ++v) {
    alevel[v].store(level[v], std::memory_order_relaxed);
  }
  // The rMat stream is not symmetrized, so the traversal must stay push-only
  // (pull reads out-neighbors as in-neighbors).
  EdgeMapOptions push_only;
  push_only.direction = Direction::kPush;
  while (!frontier.empty()) {
    touched += frontier.size();
    frontier = EdgeMap(
        g, frontier,
        [&alevel](VertexId u, VertexId v) {
          uint32_t lu = alevel[u].load(std::memory_order_relaxed);
          if (lu == ~uint32_t{0}) {
            return false;
          }
          uint32_t cand = lu + 1;
          uint32_t lv = alevel[v].load(std::memory_order_relaxed);
          while (cand < lv) {
            if (alevel[v].compare_exchange_weak(lv, cand,
                                                std::memory_order_relaxed)) {
              return true;
            }
          }
          return false;
        },
        [](VertexId) { return true; }, pool, push_only);
  }
  for (size_t v = 0; v < level.size(); ++v) {
    level[v] = alevel[v].load(std::memory_order_relaxed);
  }
  return touched;
}

}  // namespace

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 16;
  RmatGenerator gen({scale, 0.5, 0.1, 0.1}, 5);
  VertexId n = gen.num_vertices();
  uint64_t base_edges = n * 8ull;

  LSGraph graph(n);
  graph.BuildFromEdges(gen.Generate(0, base_edges));
  ThreadPool& pool = ThreadPool::Global();

  constexpr VertexId kSource = 0;
  BfsResult full = BfsPush(graph, kSource, pool);
  std::vector<uint32_t> level = full.level;
  std::printf("initial BFS: reached %zu of %u vertices\n", full.reached, n);

  uint64_t cursor = base_edges;
  for (int round = 0; round < 8; ++round) {
    std::vector<Edge> batch = gen.Generate(cursor, 20000);
    cursor += batch.size();
    graph.InsertBatch(batch);

    // Seed with insertion endpoints that can propagate an improvement
    // (deduplicated: VertexSubset ids are unique).
    std::vector<VertexId> seed_ids;
    for (const Edge& e : batch) {
      if (level[e.src] != ~uint32_t{0} && level[e.src] + 1 < level[e.dst]) {
        seed_ids.push_back(e.src);
      }
    }
    std::sort(seed_ids.begin(), seed_ids.end());
    seed_ids.erase(std::unique(seed_ids.begin(), seed_ids.end()),
                   seed_ids.end());
    VertexSubset seeds = VertexSubset::FromVertices(n, std::move(seed_ids));
    Timer timer;
    size_t touched = IncrementalRelax(graph, level, std::move(seeds), pool);
    double inc_ms = timer.Millis();
    timer.Reset();
    BfsResult fresh = BfsPush(graph, kSource, pool);
    double full_ms = timer.Millis();

    bool agree = fresh.level == level;
    std::printf(
        "round %d: incremental touched %6zu vertices in %7.2f ms; full BFS "
        "%7.2f ms; results %s\n",
        round, touched, inc_ms, full_ms, agree ? "agree" : "DISAGREE");
    if (!agree) {
      return 1;
    }
  }
  return 0;
}
