// Social-network stream monitor: the scenario from the paper's introduction
// (Twitter/Facebook relationship churn). A bursty temporal stream of
// follow/unfollow events is ingested in batches; after every batch the app
// answers live queries — connected-component sizes (community structure) and
// triangle counts (clustering) — on the updated snapshot.
//
//   ./social_stream [num_users] [num_events]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "src/analytics/cc.h"
#include "src/analytics/tc.h"
#include "src/core/lsgraph.h"
#include "src/gen/temporal.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace lsg;

  VertexId num_users = argc > 1 ? std::atoi(argv[1]) : 50000;
  uint64_t num_events = argc > 2 ? std::atoll(argv[2]) : 400000;

  TemporalSpec spec{"social", num_users, num_events, /*repeat_prob=*/0.35,
                    /*seed=*/7};
  std::vector<Edge> events = GenerateTemporalStream(spec);
  std::printf("social stream: %u users, %zu follow events\n", num_users,
              events.size());

  LSGraph graph(num_users);
  ThreadPool& pool = ThreadPool::Global();

  // Ingest in arrival-order batches; every event is symmetrized (follow
  // relationships are mutual edges here) and about 10% of batches are
  // unfollow bursts.
  constexpr size_t kBatch = 20000;
  size_t round = 0;
  for (size_t off = 0; off < events.size(); off += kBatch, ++round) {
    size_t len = std::min(kBatch, events.size() - off);
    std::vector<Edge> batch;
    batch.reserve(2 * len);
    for (size_t i = off; i < off + len; ++i) {
      batch.push_back(events[i]);
      batch.push_back(Edge{events[i].dst, events[i].src});
    }
    Timer timer;
    size_t changed;
    const char* kind;
    if (round % 10 == 9) {
      changed = graph.DeleteBatch(batch);
      kind = "unfollow";
    } else {
      changed = graph.InsertBatch(batch);
      kind = "follow";
    }
    double update_ms = timer.Millis();

    timer.Reset();
    std::vector<VertexId> labels = ConnectedComponents(graph, pool);
    std::map<VertexId, size_t> sizes;
    for (VertexId v = 0; v < num_users; ++v) {
      ++sizes[labels[v]];
    }
    size_t largest = 0;
    for (const auto& [label, size] : sizes) {
      largest = std::max(largest, size);
    }
    double cc_ms = timer.Millis();

    std::printf(
        "batch %2zu (%-8s): %6zu edges changed in %7.2f ms | %6zu "
        "communities, largest %6zu (%.2f ms)\n",
        round, kind, changed, update_ms, sizes.size(), largest, cc_ms);
  }

  Timer timer;
  TriangleCountResult tc = TriangleCount(graph, pool);
  std::printf(
      "final snapshot: %llu edges, %llu triangles (%.2f ms, traversal "
      "%.1f%%)\n",
      static_cast<unsigned long long>(graph.num_edges()),
      static_cast<unsigned long long>(tc.triangles), timer.Millis(),
      100.0 * tc.traversal_seconds * 1000 / timer.Millis());
  return 0;
}
